//! Zero-copy + hash-once witness for the batched write path.
//!
//! The facility promise after the payload-handle refactor: an acked
//! payload is hashed **exactly once** (the memoized digest on the
//! shared [`Payload`] handle — catalog checksum, object-store metadata,
//! and replica verification all reuse the cell) and **deep-copied zero
//! times** on the success path, across every backend family and every
//! worker count.
//!
//! This lives in its own test binary on purpose: the witnesses are
//! process-global counters (`payload_digests_computed`,
//! `payload_deep_copies`), so no other test may share the process.

use std::sync::Arc;

use bytes::Bytes;

use lsdf_adal::ResilienceConfig;
use lsdf_core::{BackendChoice, Facility, IngestItem, IngestPolicy, ProjectSpec};
use lsdf_dfs::{ClusterTopology, DfsConfig};
use lsdf_metadata::{Document, FieldType, SchemaBuilder, Value};
use lsdf_obs::Registry;
use lsdf_sim::SimRng;
use lsdf_storage::{payload_deep_copies, payload_digests_computed, sha256};

const ITEMS_PER_PROJECT: u64 = 30;

fn schema(name: &str) -> lsdf_metadata::Schema {
    SchemaBuilder::new(name)
        .required("n", FieldType::Int)
        .build()
        .unwrap()
}

/// Three tenants covering the three mount families the write path
/// serves: a plain object store, the block-chunking DFS, and a
/// resilient mount whose puts fan out to a replica.
fn facility(reg: Arc<Registry>, workers: usize) -> Facility {
    Facility::builder()
        .tenant(ProjectSpec::new(
            schema("obj"),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .tenant(ProjectSpec::new(schema("spectro"), BackendChoice::Dfs))
        .tenant(
            ProjectSpec::new(
                schema("resilient"),
                BackendChoice::ObjectStore { capacity: u64::MAX },
            )
            .resilient(
                BackendChoice::ObjectStore { capacity: u64::MAX },
                ResilienceConfig::default(),
            ),
        )
        .cluster(
            ClusterTopology::new(2, 2),
            DfsConfig {
                block_size: 512,
                replication: 2,
                ..DfsConfig::default()
            },
        )
        .registry(reg)
        .workers(workers)
        .build()
        .unwrap()
}

fn batch(seed: u64) -> Vec<IngestItem> {
    let mut rng = SimRng::seed_from_u64(seed).stream("zero-copy");
    let mut items = Vec::new();
    for project in ["obj", "spectro", "resilient"] {
        for n in 0..ITEMS_PER_PROJECT {
            // Multi-block sizes on the DFS tenant so chunking happens.
            let len = rng.range_u64(1, 2048) as usize;
            let payload: Vec<u8> = (0..len).map(|_| rng.range_u64(0, 256) as u8).collect();
            let mut doc = Document::new();
            doc.insert("n".to_string(), Value::Int(n as i64));
            items.push(IngestItem {
                project: project.to_string(),
                key: format!("k/{n:04}"),
                data: Bytes::from(payload),
                metadata: Some(doc),
            });
        }
    }
    items
}

#[test]
fn acked_payloads_hash_once_and_copy_zero_times_at_any_worker_count() {
    let total = 3 * ITEMS_PER_PROJECT;
    let mut reports = Vec::new();
    for workers in [1usize, 4, 8] {
        let reg = Arc::new(Registry::new());
        reg.set_virtual_time_ns(1);
        let f = facility(reg, workers);
        let admin = f.admin().clone();
        let items = batch(0xbeef);
        let expected: Vec<(String, String)> = items
            .iter()
            .map(|i| {
                (
                    format!("lsdf://{}/{}", i.project, i.key),
                    sha256(&i.data).to_hex(),
                )
            })
            .collect();

        let digests_before = payload_digests_computed();
        let copies_before = payload_copies_success_path();
        let report = f.ingest_batch(&admin, items, IngestPolicy::default());
        let digests = payload_digests_computed() - digests_before;
        let copies = payload_copies_success_path() - copies_before;

        assert_eq!(report.registered, total, "workers={workers}: {report:?}");
        // Hash-once: one SHA-256 per acked payload — object-store
        // metadata, the catalog checksum, and the replica fan-out all
        // reuse the memoized cell on the shared handle.
        assert_eq!(
            digests, total,
            "workers={workers}: expected exactly one digest per acked payload"
        );
        // Zero-copy: no deep payload copy anywhere on the ack path.
        assert_eq!(
            copies, 0,
            "workers={workers}: payload bytes were deep-copied on the success path"
        );

        // Read-back stays checksum-clean and does not re-hash (the
        // object store verifies against the memoized cell; DFS reads
        // are zero-copy views for single-block files).
        let digests_before_reads = payload_digests_computed();
        for (location, digest) in &expected {
            let got = f.adal().get(&admin, location).unwrap();
            assert_eq!(&sha256(&got).to_hex(), digest, "{location} corrupted");
        }
        assert_eq!(
            payload_digests_computed(),
            digests_before_reads,
            "workers={workers}: read-back verification re-hashed a payload"
        );
        reports.push(report);
    }
    // The zero-copy path is still observationally worker-invariant.
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[0], reports[2]);
}

/// Deep copies on the success path. `payload_deep_copies` counts the
/// legacy `From<&[u8]>` entry point; nothing in this test should hit
/// it at all.
fn payload_copies_success_path() -> u64 {
    payload_deep_copies()
}
