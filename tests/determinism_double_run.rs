//! Determinism witness: the same seeded mini-soak, run twice in the
//! same process, must leave the obs registry in a byte-identical state.
//!
//! This is the executable form of lint rule **L1 (determinism)**: with
//! every component on the registry's virtual clock and every random
//! decision drawn from a named `lsdf-sim` stream, there is no channel
//! through which wall-clock time or process entropy can reach a result.
//! If someone reintroduces `Instant::now()` or an unseeded RNG into a
//! production path (the mapreduce runner regression this PR fixes), the
//! two JSON exports diverge and this test fails alongside the lint.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;

use lsdf_adal::{
    Acl, Adal, BreakerConfig, Credential, ObjectStoreBackend, ResilienceConfig,
    RetryPolicy, StorageBackend, TokenAuth,
};
use lsdf_chaos::{FaultPlan, FaultyBackend};
use lsdf_dfs::{ClusterTopology, Dfs, DfsConfig};
use lsdf_mapreduce::{no_combiner, run_job, JobConfig, Mapper, Record, Reducer};
use lsdf_obs::Registry;
use lsdf_sim::SimRng;
use lsdf_storage::ObjectStore;

const OPS: u64 = 1_500;
const MS: u64 = 1_000_000;

struct ByteMapper;
impl Mapper for ByteMapper {
    type Key = u8;
    type Value = u64;
    fn map(&self, record: &Record, emit: &mut dyn FnMut(u8, u64)) {
        for &b in record.data.iter() {
            emit(b % 7, 1);
        }
    }
}

struct SumReducer;
impl Reducer for SumReducer {
    type Key = u8;
    type Value = u64;
    type Output = (u8, u64);
    fn reduce(&self, k: &u8, values: &[u64]) -> Vec<(u8, u64)> {
        vec![(*k, values.iter().sum())]
    }
}

/// Runs the mini-soak under virtual time and returns the registry JSON.
fn run_soak(seed: u64) -> String {
    let reg = Arc::new(Registry::new());
    reg.set_virtual_time_ns(1);

    let auth = Arc::new(TokenAuth::new());
    auth.register("tok", "operator");
    let acl = Arc::new(Acl::new());
    acl.grant("operator", "soak", true);
    let adal = Adal::with_registry(auth, acl, reg.clone());
    let cred = Credential::Token("tok".into());

    // A faulty object-store primary with an object-store replica: the
    // resilience machinery (retries, breaker, journal) is all in play.
    let primary: Arc<dyn StorageBackend> = FaultyBackend::new(
        "soak",
        Arc::new(ObjectStoreBackend::new(Arc::new(ObjectStore::new(
            "soak-primary",
            u64::MAX,
        )))),
        FaultPlan::quiet(seed)
            .transient(0.05)
            .latency_spikes(0.05, 2 * MS)
            .outage(150, 190),
        &reg,
    );
    let replica: Arc<dyn StorageBackend> = Arc::new(ObjectStoreBackend::new(Arc::new(
        ObjectStore::new("soak-replica", u64::MAX),
    )));
    adal.mount_resilient(
        "soak",
        primary,
        Some(replica),
        ResilienceConfig {
            retry: RetryPolicy::new(4, MS, 50 * MS, MS / 2),
            breaker: BreakerConfig {
                window: 16,
                min_calls: 8,
                failure_rate: 0.5,
                cooldown_ns: 10 * MS,
                half_open_probes: 2,
            },
            seed,
            ..ResilienceConfig::default()
        },
    );

    let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut keys: Vec<String> = Vec::new();
    let mut rng = SimRng::seed_from_u64(seed).stream("determinism-soak");
    for i in 0..OPS {
        reg.set_virtual_time_ns(1 + i * MS);
        match rng.index(100) {
            0..=54 => {
                let path = format!("lsdf://soak/k/{i:05}");
                let len = rng.range_u64(1, 48) as usize;
                let payload: Vec<u8> = (0..len).map(|_| rng.range_u64(0, 256) as u8).collect();
                if adal.put(&cred, &path, Bytes::from(payload.clone())).is_ok() {
                    keys.push(path.clone());
                    model.insert(path, payload);
                }
            }
            55..=84 if !keys.is_empty() => {
                let path = &keys[rng.index(keys.len())];
                let data = adal
                    .get(&cred, path)
                    .unwrap_or_else(|e| panic!("acked read {path} failed at op {i}: {e}"));
                assert_eq!(&data[..], &model[path.as_str()][..]);
            }
            _ if !keys.is_empty() => {
                let path = &keys[rng.index(keys.len())];
                let meta = adal
                    .stat(&cred, path)
                    .unwrap_or_else(|e| panic!("acked stat {path} failed at op {i}: {e}"));
                assert_eq!(meta.size, model[path.as_str()].len() as u64);
            }
            _ => {}
        }
    }

    // Drain the redo journal under advancing virtual time.
    let mut t = 1 + OPS * MS;
    for round in 0..200u64 {
        t += 20 * MS;
        reg.set_virtual_time_ns(t);
        adal.drain_journal("soak");
        if adal.health("soak").map(|h| h.journal_depth) == Some(0) {
            break;
        }
        assert!(round < 199, "journal failed to drain");
    }

    // A mapreduce job on the same registry: its timing metrics read the
    // registry clock (the regression this PR's lint rule L1 pins down).
    let dfs = Arc::new(Dfs::with_registry(
        ClusterTopology::new(2, 2),
        DfsConfig {
            block_size: 512,
            replication: 2,
            ..DfsConfig::default()
        },
        reg.clone(),
    ));
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    dfs.write("/soak/bytes", &payload, None).expect("dfs write");
    let mut cfg = JobConfig::on_cluster(&dfs, 2);
    cfg.input_format = lsdf_mapreduce::InputFormat::WholeBlock;
    let out = run_job(
        &dfs,
        &["/soak/bytes".to_string()],
        &ByteMapper,
        no_combiner::<ByteMapper>(),
        &SumReducer,
        &cfg,
    )
    .expect("mapreduce job runs");
    assert!(out.stats.map_tasks > 0);
    assert_eq!(out.output.iter().map(|&(_, n)| n).sum::<u64>(), 4096);

    reg.to_json()
}

#[test]
fn determinism_double_run() {
    // The integration crate enables lsdf-sync's `lock-order` feature,
    // so this double run doubles as proof that the runtime lock-order
    // witness does not perturb determinism — but only if it is actually
    // armed. Check, don't assume.
    assert!(
        lsdf_sync::witness_enabled(),
        "integration tests must build with the lock-order witness enabled"
    );
    let first = run_soak(0x15df_2011);
    let second = run_soak(0x15df_2011);
    assert_eq!(first, second, "same seed must export identical registries");
    // And a different seed actually changes the run (the witness is not
    // vacuous because the export ignored the workload).
    let third = run_soak(0x15df_2012);
    assert_ne!(first, third, "registry export is insensitive to the seed");
}

/// Runs a fully-traced facility ingest batch under virtual time and
/// returns the chrome://tracing JSON export.
fn run_traced_ingest(seed: u64, workers: usize) -> String {
    use lsdf_core::{BackendChoice, Facility, IngestItem, IngestPolicy, ProjectSpec};
    use lsdf_metadata::zebrafish_schema;
    use lsdf_obs::TraceConfig;
    use lsdf_workloads::microscopy::HtmGenerator;

    let reg = Arc::new(Registry::new());
    reg.set_virtual_time_ns(42);
    let f = Facility::builder()
        .tenant(ProjectSpec::new(
            zebrafish_schema(),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .registry(reg.clone())
        .workers(workers)
        .tracing(TraceConfig::full().seed(seed))
        .build()
        .expect("facility assembles");
    let admin = f.admin().clone();
    let mut gen = HtmGenerator::new(3, 32);
    for batch_no in 0..3u64 {
        reg.set_virtual_time_ns(42 + batch_no * MS);
        let items: Vec<IngestItem> = gen
            .next_fish()
            .into_iter()
            .map(|(acq, img)| IngestItem {
                project: "zebrafish-htm".into(),
                key: acq.key(),
                data: img.encode(),
                metadata: Some(acq.document()),
            })
            .collect();
        let report = f.ingest_batch(&admin, items, IngestPolicy::default());
        assert_eq!(report.rejected, 0);
    }
    let export = f.tracer().expect("tracing on").export_chrome();
    assert!(
        export.starts_with("{\"traceEvents\":[") && export.ends_with("]}\n"),
        "chrome export must be a well-formed traceEvents document"
    );
    export
}

#[test]
fn traced_chrome_export_is_bit_identical_across_runs_and_workers() {
    // Same seed, run twice: the chrome-trace JSON must agree to the
    // byte — span ids, ordering, and (virtual) timestamps included.
    let first = run_traced_ingest(0x15df_3001, 1);
    assert_eq!(
        first,
        run_traced_ingest(0x15df_3001, 1),
        "repeated seeded runs must export identical traces"
    );
    // And the worker count must be invisible: child slots are reserved
    // serially in index order before the pool fans out, so 4- and
    // 8-wide runs produce the same tree and the same bytes.
    for workers in [4usize, 8] {
        assert_eq!(
            first,
            run_traced_ingest(0x15df_3001, workers),
            "chrome export diverged at {workers} workers"
        );
    }
    // A different seed changes trace ids — the witness sees the seed.
    assert_ne!(first, run_traced_ingest(0x15df_3002, 1));
}
