//! Observability round trip: run a facility_roundtrip-style workload,
//! then assert the shared lsdf-obs registry reproduces every number the
//! subsystems' compatibility views report — ADAL op counts, HSM tier
//! transitions, DFS locality — and that the JSON export carries them.

use std::sync::Arc;

use bytes::Bytes;
use lsdf_core::prelude::*;
use lsdf_dfs::{ClusterTopology, DfsConfig};
use lsdf_metadata::zebrafish_schema;
use lsdf_workloads::microscopy::HtmGenerator;
use lsdf_obs::names;

fn facility(reg: Arc<Registry>) -> Facility {
    Facility::builder()
        .tenant(ProjectSpec::new(
            zebrafish_schema(),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .tenant(ProjectSpec::new(
            SchemaBuilder::new("genomics")
                .required("sample", FieldType::Str)
                .build()
                .expect("schema builds"),
            BackendChoice::Dfs,
        ))
        .tenant(ProjectSpec::new(
            SchemaBuilder::new("climate")
                .required("year", FieldType::Int)
                .indexed()
                .build()
                .expect("schema builds"),
            BackendChoice::Hsm {
                disk_capacity: 5_000,
                low_watermark: 0.4,
                high_watermark: 0.7,
                policy: MigrationPolicy::OldestFirst,
            },
        ))
        .cluster(
            ClusterTopology::new(2, 4),
            DfsConfig {
                block_size: 101 * 20,
                replication: 2,
                ..DfsConfig::default()
            },
        )
        .registry(reg)
        .build()
        .expect("facility assembles")
}

/// Drives ingest across all three backend kinds plus direct ADAL reads,
/// returning the per-path op counts the test later reconciles.
fn run_workload(f: &Facility) -> (u64, u64) {
    let admin = f.admin().clone();
    // Microscopy images into the object store.
    let mut gen = HtmGenerator::new(11, 32);
    let mut ingested = 0u64;
    for _ in 0..2 {
        for (acq, img) in gen.next_fish() {
            f.ingest(
                &admin,
                IngestItem {
                    project: "zebrafish-htm".into(),
                    key: acq.key(),
                    data: img.encode(),
                    metadata: Some(acq.document()),
                },
                IngestPolicy::default(),
            )
            .expect("ingest");
            ingested += 1;
        }
    }
    // Genomics reads onto the DFS.
    f.ingest(
        &admin,
        IngestItem {
            project: "genomics".into(),
            key: "runs/r0".into(),
            data: Bytes::from(vec![b'A'; 4040]),
            metadata: Some(
                [("sample".to_string(), Value::from("s0"))]
                    .into_iter()
                    .collect(),
            ),
        },
        IngestPolicy::default(),
    )
    .expect("ingest");
    ingested += 1;
    // Climate grids through the HSM, forcing demotions.
    for year in 0..8 {
        f.ingest(
            &admin,
            IngestItem {
                project: "climate".into(),
                key: format!("grid/{year}"),
                data: Bytes::from(vec![year as u8; 1000]),
                metadata: Some(
                    [("year".to_string(), Value::Int(year))].into_iter().collect(),
                ),
            },
            IngestPolicy::default(),
        )
        .expect("ingest");
        f.hsm("climate")
            .expect("hsm-backed")
            .run_migration()
            .expect("migration");
    }
    ingested += 8;
    // Reads back through the ADAL (some hitting tape recalls).
    let mut gets = 0u64;
    for year in 0..8 {
        let path = format!("lsdf://climate/grid/{year}");
        let data = f.adal().get(&admin, &path).expect("get");
        assert_eq!(data.len(), 1000);
        gets += 1;
    }
    let _ = f
        .adal()
        .get(&admin, "lsdf://genomics/runs/r0")
        .expect("get");
    gets += 1;
    (ingested, gets)
}

#[test]
fn registry_reconciles_with_every_compat_view() {
    let reg = Arc::new(Registry::new());
    let f = facility(reg.clone());
    let (ingested, gets) = run_workload(&f);

    // ADAL compat counters and the registry agree exactly.
    let counters = f.adal().counters();
    assert_eq!(counters.puts, ingested);
    assert_eq!(counters.gets, gets);
    assert_eq!(
        reg.counter_value(names::ADAL_OPS_TOTAL, &[("op", "put")]),
        counters.puts
    );
    assert_eq!(
        reg.counter_value(names::ADAL_OPS_TOTAL, &[("op", "get")]),
        counters.gets
    );
    assert_eq!(reg.counter_value(names::ADAL_DENIED_TOTAL, &[]), counters.denied);

    // Ingest outcome counters sum to the items pushed.
    assert_eq!(reg.counter_total(names::FACILITY_INGEST_TOTAL), ingested);

    // HSM tier transitions match the compat view.
    let (demotions, recalls) = f.hsm("climate").expect("hsm").counters();
    assert!(demotions > 0, "watermarks force demotions");
    assert!(recalls > 0, "reads force recalls");
    assert_eq!(
        reg.counter_value(names::HSM_DEMOTIONS_TOTAL, &[("store", "climate-disk")]),
        demotions
    );
    assert_eq!(
        reg.counter_value(names::HSM_RECALLS_TOTAL, &[("store", "climate-disk")]),
        recalls
    );

    // DFS saw the genomics file, locality counters included.
    let stats = f.dfs().locality_stats();
    assert_eq!(
        reg.counter_total(names::DFS_BLOCK_READS_TOTAL),
        stats.node_local + stats.rack_local + stats.remote
    );

    // Latency histograms populated with sane quantiles.
    let put_lat = reg.histogram(names::ADAL_OP_LATENCY_NS, &[("op", "put")]);
    assert_eq!(put_lat.count(), ingested);
    assert!(put_lat.quantile(0.50) <= put_lat.quantile(0.95));
    assert!(put_lat.quantile(0.95) <= put_lat.quantile(0.99));
    assert!(put_lat.quantile(0.99) >= put_lat.min());

    // The JSON export carries the counters and the quantiles.
    let json = reg.to_json();
    assert!(json.contains("\"adal_ops_total\""));
    assert!(json.contains("\"facility_ingest_total\""));
    assert!(json.contains("\"p95\""));
    assert!(json.contains("\"hsm_demotions_total\""));
}
