//! Telemetry soak: the facility's time-series pipeline under a seeded
//! sustained chaos burn.
//!
//! The observability contract under test:
//! * **exact reconciliation** — after the final scrape, every counter
//!   series in the [`TelemetryStore`] sums (base + retained deltas)
//!   exactly to the live registry value, eviction notwithstanding, and
//!   every gauge series ends on the live gauge value;
//! * **windows beat instants** — a sustained ~30% error burn on one
//!   tenant hides below a facility-wide instantaneous spike rule
//!   (diluted by the healthy tenant's traffic) but trips the windowed
//!   per-project burn-rate rule, which attributes the breach to the
//!   burning project;
//! * **the governor follows the windowed signal** — the burning tenant
//!   is throttled from windowed violations alone, the healthy tenant is
//!   never touched;
//! * **determinism** — the operator report, the collapsed-stack
//!   export, the telemetry JSON and the registry JSON are all
//!   byte-identical at 1, 4 and 8 pool workers for a fixed seed.

use std::sync::Arc;

use bytes::Bytes;

use lsdf_adal::ObjectStoreBackend;
use lsdf_chaos::{FaultPlan, FaultyBackend};
use lsdf_core::prelude::*;
use lsdf_metadata::{Document, FieldType, SchemaBuilder, Value};
use lsdf_obs::{SloRule, TraceConfig};
use lsdf_sim::SimRng;
use lsdf_storage::ObjectStore;

const ROUNDS: u64 = 24;
const ROUND_NS: u64 = 100_000_000; // 100 ms of virtual time per round
const BURNER: &str = "beamline";
const HEALTHY: &str = "imaging";
/// Injected transient-error rate on the burner's backend: high enough
/// to torch a 5% error budget, low enough to hide under a 50%
/// facility-wide spike threshold.
const BURN_RATE: f64 = 0.3;
/// The windowed burn-rate rule: rejected-vs-admitted over the last 6
/// scrape intervals, against a 5% error budget, alerting at 2x burn.
const WINDOW: u64 = 6;

fn schema(name: &str) -> Schema {
    SchemaBuilder::new(name)
        .required("run", FieldType::Int)
        .build()
        .unwrap()
}

fn doc(run: i64) -> Document {
    let mut d = Document::new();
    d.insert("run".to_string(), Value::Int(run));
    d
}

struct SoakOutcome {
    registry_json: String,
    telemetry_json: String,
    operator_report: String,
    collapsed_stacks: String,
    burn_alert_rounds: Vec<u64>,
    spike_alert_rounds: Vec<u64>,
    burner_throttle: i64,
    healthy_throttle: i64,
}

fn run_soak(seed: u64, workers: usize) -> SoakOutcome {
    let reg = Arc::new(Registry::new());
    reg.set_virtual_time_ns(1);

    let spike_rule = "rate(chaos_injected_total / admission_admitted_total) <= 0.5".to_string();
    let burn_rule = format!(
        "window({WINDOW}) burn(facility_ingest_total{{outcome=rejected,project={BURNER}}} / \
         admission_admitted_total{{lane=bulk,project={BURNER}}}, 0.05) <= 2"
    );
    let f = Facility::builder()
        .registry(reg.clone())
        .workers(workers)
        .tracing(TraceConfig::full().seed(seed))
        // One scrape per soak round; capacity below ROUNDS so the ring
        // must evict (and fold counter mass into the base) mid-run.
        .telemetry(
            TelemetryConfig::default()
                .interval_ns(ROUND_NS)
                .capacity(12),
        )
        .slo(vec![
            SloRule::parse(&spike_rule).expect("spike rule parses"),
            SloRule::parse(&burn_rule).expect("burn rule parses"),
        ])
        .tenant(ProjectSpec::new(
            schema(HEALTHY),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .tenant(ProjectSpec::new(
            schema(BURNER),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .build()
        .expect("facility assembles");

    // Remount the burner on a chaos backend injecting transient I/O
    // errors at BURN_RATE. Every soak op on it is a fixed-size write,
    // so the fault-draw sequence — and every aggregate it feeds — is
    // worker-order independent.
    let store = Arc::new(ObjectStore::new("beamline-chaos", u64::MAX));
    let faulty = FaultyBackend::new(
        BURNER,
        Arc::new(ObjectStoreBackend::new(store)),
        FaultPlan::quiet(seed).transient(BURN_RATE),
        &reg,
    );
    f.adal().mount(BURNER, faulty);

    let admin = f.admin().clone();
    let mut rng = SimRng::seed_from_u64(seed).stream("telemetry-soak");
    let mut burn_alert_rounds = Vec::new();
    let mut spike_alert_rounds = Vec::new();
    for round in 0..ROUNDS {
        reg.set_virtual_time_ns((round + 1) * ROUND_NS);
        let mut items = Vec::new();
        for i in 0..8u64 {
            let len = rng.range_u64(64, 512) as usize;
            let payload: Vec<u8> = (0..len).map(|_| rng.range_u64(0, 256) as u8).collect();
            items.push(IngestItem {
                project: HEALTHY.to_string(),
                key: format!("img/{round:03}/{i:02}"),
                data: Bytes::from(payload),
                metadata: Some(doc((round * 100 + i) as i64)),
            });
        }
        for i in 0..12u64 {
            // Fixed-size burner payloads: whichever item draws a fault,
            // the byte/latency aggregates are the same multiset.
            let payload: Vec<u8> = (0..256).map(|_| rng.range_u64(0, 256) as u8).collect();
            items.push(IngestItem {
                project: BURNER.to_string(),
                key: format!("beam/{round:03}/{i:02}"),
                data: Bytes::from(payload),
                metadata: Some(doc((round * 100 + i) as i64)),
            });
        }
        // ingest_batch ends with the serial telemetry scrape hook; the
        // govern() that follows evaluates against that fresh history.
        f.ingest_batch(&admin, items, IngestPolicy::default());
        let health = f.govern();
        for outcome in &health.rules {
            if outcome.ok {
                continue;
            }
            if outcome.rule == burn_rule {
                burn_alert_rounds.push(round);
            } else if outcome.rule == spike_rule {
                spike_alert_rounds.push(round);
            }
        }
        // Attribution: every breach of the burning tenant is windowed,
        // and the healthy tenant is never attributed anything.
        for acct in &health.projects {
            if acct.project == BURNER {
                assert_eq!(acct.violations, 0, "round {round}: instantaneous breach");
            } else {
                assert_eq!(
                    (acct.violations, acct.windowed_violations),
                    (0, 0),
                    "round {round}: healthy tenant {} was blamed",
                    acct.project
                );
            }
        }
    }

    // --- Exact reconciliation: one final scrape, then compare every
    // counter and gauge series against the live registry. Nothing
    // mutates between the scrape and the snapshot, so equality must be
    // exact — the store's own telemetry_* series lag one scrape by
    // design (self-accounting is recorded after the snapshot is taken).
    reg.set_virtual_time_ns((ROUNDS + 1) * ROUND_NS);
    f.telemetry().scrape(&reg);
    let snap = reg.snapshot();
    for (id, value) in &snap.counters {
        let labels: Vec<(&str, &str)> = id
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let sum = f.telemetry().counter_sum(&id.name, &labels);
        if id.name.starts_with("telemetry_") {
            assert!(sum <= *value, "{id}: TSDB sum {sum} ahead of registry {value}");
        } else {
            assert_eq!(sum, *value, "{id}: TSDB sum diverged from registry");
        }
    }
    for (id, value) in &snap.gauges {
        let labels: Vec<(&str, &str)> = id
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let last = f
            .telemetry()
            .gauge_series(&id.name, &labels)
            .last()
            .map(|(_, v)| *v);
        if !id.name.starts_with("telemetry_") {
            assert_eq!(last, Some(*value), "{id}: gauge series ended off the live value");
        }
    }
    // The self-accounting lags exactly one scrape: the final scrape's
    // snapshot saw every previous scrape's increment but not its own.
    let scrapes = reg.counter_value(names::TELEMETRY_SCRAPES_TOTAL, &[]);
    assert_eq!(scrapes, ROUNDS + 1, "one scrape per round plus the final");
    assert_eq!(
        f.telemetry().counter_sum(names::TELEMETRY_SCRAPES_TOTAL, &[]),
        scrapes - 1
    );
    // The ring actually evicted (capacity 12 < 25 scrapes) — so the
    // exact reconciliation above covered the base-folding path.
    assert!(
        reg.counter_value(names::TELEMETRY_EVICTIONS_TOTAL, &[]) > 0,
        "soak never exercised eviction"
    );

    let burner_throttle = reg.gauge_value(names::ADMISSION_THROTTLE_LEVEL, &[("project", BURNER)]);
    let healthy_throttle = reg.gauge_value(names::ADMISSION_THROTTLE_LEVEL, &[("project", HEALTHY)]);

    SoakOutcome {
        registry_json: reg.to_json(),
        telemetry_json: f.telemetry().to_json(),
        operator_report: f.operator_report(),
        collapsed_stacks: f.collapsed_stacks().expect("tracing is on"),
        burn_alert_rounds,
        spike_alert_rounds,
        burner_throttle,
        healthy_throttle,
    }
}

#[test]
fn windowed_burn_alert_catches_what_the_instantaneous_rule_misses() {
    let soak = run_soak(1701, 1);
    assert!(
        !soak.burn_alert_rounds.is_empty(),
        "the sustained burn never tripped the windowed rule"
    );
    assert!(
        soak.spike_alert_rounds.is_empty(),
        "the facility-wide spike rule should stay silent on a diluted burn; \
         fired in rounds {:?}",
        soak.spike_alert_rounds
    );
    // The governor acted on the windowed signal alone.
    assert!(
        soak.burner_throttle > 0,
        "governor never throttled the burning tenant"
    );
    assert_eq!(soak.healthy_throttle, 0, "healthy tenant was throttled");
    // The alert is on the console, attributed and marked sustained.
    assert!(
        soak.operator_report.contains("[sustained]"),
        "operator report lost the active windowed alert:\n{}",
        soak.operator_report
    );
    assert!(soak.operator_report.contains(BURNER));
}

#[test]
fn telemetry_soak_is_byte_identical_at_any_worker_count() {
    let serial = run_soak(42, 1);
    assert!(!serial.collapsed_stacks.is_empty());
    assert!(!serial.burn_alert_rounds.is_empty());
    for workers in [4usize, 8] {
        let pooled = run_soak(42, workers);
        assert_eq!(
            serial.registry_json, pooled.registry_json,
            "registry diverged at {workers} workers"
        );
        assert_eq!(
            serial.telemetry_json, pooled.telemetry_json,
            "telemetry history diverged at {workers} workers"
        );
        assert_eq!(
            serial.operator_report, pooled.operator_report,
            "operator report diverged at {workers} workers"
        );
        assert_eq!(
            serial.collapsed_stacks, pooled.collapsed_stacks,
            "collapsed stacks diverged at {workers} workers"
        );
        assert_eq!(serial.burn_alert_rounds, pooled.burn_alert_rounds);
    }
}
