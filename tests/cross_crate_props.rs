//! Cross-crate property tests: invariants that only hold when several
//! subsystems compose correctly.

use lsdf_core::{BackendChoice, DataBrowser, Facility, IngestItem, IngestPolicy, ProjectSpec};
use lsdf_metadata::query::eq;
use lsdf_metadata::{zebrafish_schema, Value};
use lsdf_storage::sha256;
use lsdf_workloads::microscopy::{HtmGenerator, Image};
use proptest::prelude::*;

fn facility() -> Facility {
    Facility::builder()
        .tenant(ProjectSpec::new(
            zebrafish_schema(),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .build()
        .expect("facility assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ingest → catalog → fetch preserves every byte and every checksum,
    /// for arbitrary mixes of fish and seeds.
    #[test]
    fn ingest_fetch_integrity(seed in any::<u64>(), n_fish in 1usize..4) {
        let f = facility();
        let admin = f.admin().clone();
        let mut gen = HtmGenerator::new(seed, 32);
        let mut originals = Vec::new();
        for _ in 0..n_fish {
            for (acq, img) in gen.next_fish() {
                let data = img.encode();
                originals.push((acq.key(), data.clone()));
                f.ingest(
                    &admin,
                    IngestItem {
                        project: "zebrafish-htm".into(),
                        key: acq.key(),
                        data,
                        metadata: Some(acq.document()),
                    },
                    IngestPolicy::default(),
                )
                .expect("ingest");
            }
        }
        let store = f.store("zebrafish-htm").expect("project");
        let browser = DataBrowser::new(&f, admin.clone());
        prop_assert_eq!(store.len(), originals.len());
        for (key, data) in &originals {
            let rec = store.get_by_name(key).expect("catalogued");
            prop_assert_eq!(rec.size_bytes, data.len() as u64);
            prop_assert_eq!(&rec.checksum_hex, &sha256(data).to_hex());
            let fetched = browser.fetch("zebrafish-htm", rec.id).expect("fetch");
            prop_assert_eq!(&fetched, data);
            // The payload still decodes as an image after the round trip.
            prop_assert!(Image::decode(&fetched).is_some());
        }
    }

    /// Catalog counts equal generator counts for every queryable
    /// dimension (fish, wavelength, focus) — metadata and payload agree.
    #[test]
    fn catalog_marginals_match_generator(seed in any::<u64>()) {
        let f = facility();
        let admin = f.admin().clone();
        let mut gen = HtmGenerator::new(seed, 32);
        for _ in 0..3 {
            for (acq, img) in gen.next_fish() {
                f.ingest(
                    &admin,
                    IngestItem {
                        project: "zebrafish-htm".into(),
                        key: acq.key(),
                        data: img.encode(),
                        metadata: Some(acq.document()),
                    },
                    IngestPolicy::default(),
                )
                .expect("ingest");
            }
        }
        let store = f.store("zebrafish-htm").expect("project");
        for fish in 0..3i64 {
            prop_assert_eq!(store.query(&eq("fish_id", fish)).len(), 24);
        }
        for wl in [405.0, 488.0, 561.0] {
            prop_assert_eq!(store.query(&eq("wavelength_nm", wl)).len(), 24);
        }
        for focus in 0..8 {
            prop_assert_eq!(
                store.query(&eq("focus_um", f64::from(focus) * 5.0)).len(),
                9
            );
        }
        prop_assert_eq!(store.total_bytes(), 72 * (16 + 32 * 32) as u128);
    }

    /// Processing results accumulate monotonically and never disturb the
    /// WORM basic metadata, whatever the append order.
    #[test]
    fn processing_appends_preserve_worm(order in prop::collection::vec(0usize..24, 1..40)) {
        let f = facility();
        let admin = f.admin().clone();
        let mut gen = HtmGenerator::new(1, 32);
        let mut ids = Vec::new();
        for (acq, img) in gen.next_fish() {
            let id = f
                .ingest(
                    &admin,
                    IngestItem {
                        project: "zebrafish-htm".into(),
                        key: acq.key(),
                        data: img.encode(),
                        metadata: Some(acq.document()),
                    },
                    IngestPolicy::default(),
                )
                .expect("ingest")
                .expect("registered");
            ids.push(id);
        }
        let store = f.store("zebrafish-htm").expect("project");
        let before: Vec<_> = ids.iter().map(|&id| store.get(id).unwrap().basic).collect();
        for (step_no, &which) in order.iter().enumerate() {
            store
                .append_processing(
                    ids[which],
                    "reproc",
                    Default::default(),
                    [("pass".to_string(), Value::Int(step_no as i64))]
                        .into_iter()
                        .collect(),
                    vec![],
                )
                .expect("append");
        }
        for (i, &id) in ids.iter().enumerate() {
            let rec = store.get(id).unwrap();
            prop_assert_eq!(&rec.basic, &before[i], "WORM violated");
            let expected = order.iter().filter(|&&w| w == i).count();
            prop_assert_eq!(rec.processing.len(), expected);
            // Sequence numbers are 1..=n in order.
            for (j, p) in rec.processing.iter().enumerate() {
                prop_assert_eq!(p.seq as usize, j + 1);
            }
        }
    }
}
