//! Chaos soak: a seeded 10 000-op mixed workload against all three
//! backend families (object store, DFS, HSM) with an active fault plan
//! on every primary — transient I/O errors, torn writes, latency
//! spikes, and a scheduled full outage per backend, plus a flaky DFS
//! datanode mid-run.
//!
//! The durability contract under test:
//! * zero data loss — every acknowledged put is readable afterwards
//!   with a matching SHA-256, and reads of acked data never fail even
//!   while a breaker is open (journal + replica failover);
//! * every breaker opens and closes at least once;
//! * the obs registry reconciles: observed transients equal retries
//!   plus exhausted retry loops, journals drain to empty;
//! * the whole run is bit-identical for a fixed seed (virtual clock,
//!   named RNG streams everywhere).

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;

use lsdf_adal::{
    Acl, Adal, BreakerConfig, Credential, DfsBackend, HsmBackend, ObjectStoreBackend,
    ResilienceConfig, RetryPolicy, StorageBackend, TokenAuth,
};
use lsdf_chaos::{FaultPlan, FaultyBackend};
use lsdf_dfs::{ClusterTopology, Dfs, DfsConfig, DfsNodeId};
use lsdf_obs::{
    facility_status, ConsoleInputs, Registry, SloMonitor, SloRule, TelemetryConfig, TelemetryStore,
};
use lsdf_sim::SimRng;
use lsdf_storage::{sha256, Hsm, MigrationPolicy, ObjectStore};
use lsdf_obs::names;

const PROJECTS: [&str; 3] = ["disk", "dfs", "hsm"];
const OPS: u64 = 10_000;
const MS: u64 = 1_000_000;

fn replica(name: &str) -> Arc<dyn StorageBackend> {
    Arc::new(ObjectStoreBackend::new(Arc::new(ObjectStore::new(
        name,
        u64::MAX,
    ))))
}

/// Runs the soak with a given worker-pool width and returns the
/// determinism witness: registry JSON, telemetry history, and the
/// mid-run + closing operator reports. Panics on any violated
/// invariant. `workers > 1` exercises the parallel primary/replica
/// fan-out in `resilient_put`; the durability contract (and the final
/// registry) must not depend on the width.
fn run_soak_with(seed: u64, workers: usize) -> String {
    let reg = Arc::new(Registry::new());
    reg.set_virtual_time_ns(1);

    let auth = Arc::new(TokenAuth::new());
    auth.register("tok", "operator");
    let acl = Arc::new(Acl::new());
    for p in PROJECTS {
        acl.grant("operator", p, true);
    }
    let adal = Adal::builder()
        .auth(auth)
        .acl(acl)
        .registry(reg.clone())
        .workers(workers)
        .build();
    let cred = Credential::Token("tok".into());

    // Primaries: one per backend family, each wrapped in a FaultyBackend.
    let disk_inner: Arc<dyn StorageBackend> = Arc::new(ObjectStoreBackend::new(Arc::new(
        ObjectStore::new("disk-primary", u64::MAX),
    )));
    let dfs = Arc::new(Dfs::with_registry(
        ClusterTopology::new(2, 2),
        DfsConfig {
            block_size: 4096,
            replication: 2,
            ..DfsConfig::default()
        },
        reg.clone(),
    ));
    let dfs_inner: Arc<dyn StorageBackend> = Arc::new(DfsBackend::new(dfs.clone()));
    let hsm = Arc::new(Hsm::with_registry(
        Arc::new(ObjectStore::new("hsm-disk", 20_000)),
        Arc::new(ObjectStore::new("hsm-tape", u64::MAX)),
        0.5,
        0.8,
        MigrationPolicy::OldestFirst,
        reg.clone(),
    ));
    let hsm_inner: Arc<dyn StorageBackend> = Arc::new(HsmBackend::new(hsm));

    // Fault mix: probabilistic transients/tears/spikes everywhere plus a
    // staggered scheduled outage per backend. Windows live in
    // backend-local op-index space and sit early enough that every
    // backend recovers well before the workload ends.
    let plan = |outage: (u64, u64)| {
        FaultPlan::quiet(seed)
            .transient(0.04)
            .torn_writes(0.02)
            .latency_spikes(0.05, 2 * MS)
            .outage(outage.0, outage.1)
    };
    let faulty = |name: &str,
                  inner: Arc<dyn StorageBackend>,
                  outage: (u64, u64)|
     -> Arc<dyn StorageBackend> { FaultyBackend::new(name, inner, plan(outage), &reg) };
    let primaries: [(&str, Arc<dyn StorageBackend>); 3] = [
        ("disk", faulty("disk", disk_inner, (200, 240))),
        ("dfs", faulty("dfs", dfs_inner, (400, 440))),
        ("hsm", faulty("hsm", hsm_inner, (300, 340))),
    ];
    let cfg = ResilienceConfig {
        retry: RetryPolicy::new(5, MS, 100 * MS, MS / 2),
        breaker: BreakerConfig {
            window: 16,
            min_calls: 8,
            failure_rate: 0.5,
            cooldown_ns: 10 * MS,
            half_open_probes: 2,
        },
        seed,
        ..ResilienceConfig::default()
    };
    for (project, primary) in primaries {
        adal.mount_resilient(
            project,
            primary,
            Some(replica(&format!("{project}-replica"))),
            cfg.clone(),
        );
    }

    // The operator's view of the soak: telemetry history scraped every
    // 500 virtual ms plus a windowed SLO distinguishing the scheduled
    // outages (sustained) from background transients (spikes). The
    // periodic report is folded into the determinism witness below, so
    // worker-count invariance covers the console too.
    let telemetry = TelemetryStore::new(TelemetryConfig::default().interval_ns(500 * MS));
    let monitor = SloMonitor::new(vec![SloRule::parse(&format!(
        "window(4) rate({} / {}) <= 0.25",
        names::ADAL_TRANSIENT_OBSERVED_TOTAL,
        names::ADAL_PROJECT_OPS_TOTAL
    ))
    .expect("rule parses")]);
    let mut last_report = String::new();

    // The model: every ACKED put, by full path. BTreeMap so the final
    // verification sweep is deterministic.
    let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    // Sampling pools of acked keys, per project (deterministic order).
    let mut pool: BTreeMap<&str, Vec<String>> = PROJECTS.iter().map(|p| (*p, vec![])).collect();
    let mut seq: BTreeMap<&str, u64> = PROJECTS.iter().map(|p| (*p, 0)).collect();
    let mut rng = SimRng::seed_from_u64(seed).stream("chaos-workload");
    let mut acked_puts = 0u64;
    let mut rejected_puts = 0u64;

    for i in 0..OPS {
        reg.set_virtual_time_ns(1 + i * MS);
        if i == 6_000 {
            dfs.set_node_flaky(DfsNodeId(0), 0.2, seed ^ 0x5bd1);
        }
        if i == 7_000 {
            dfs.clear_node_flaky(DfsNodeId(0));
        }
        let project = PROJECTS[(i % 3) as usize];
        let keys = pool.get_mut(project).unwrap();
        let dice = rng.index(100);
        match dice {
            // 50 % puts: fresh write-once keys, random small payloads.
            0..=49 => {
                let n = seq.get_mut(project).unwrap();
                let path = format!("lsdf://{project}/k/{:05}", *n);
                *n += 1;
                let len = rng.range_u64(1, 64) as usize;
                let payload: Vec<u8> = (0..len).map(|_| rng.range_u64(0, 256) as u8).collect();
                match adal.put(&cred, &path, Bytes::from(payload.clone())) {
                    Ok(()) => {
                        acked_puts += 1;
                        keys.push(path.clone());
                        model.insert(path, payload);
                    }
                    Err(_) => rejected_puts += 1,
                }
            }
            // 30 % reads of acked data: must ALWAYS succeed, intact —
            // journal, retries or replica failover notwithstanding.
            50..=79 if !keys.is_empty() => {
                let path = &keys[rng.index(keys.len())];
                let data = adal
                    .get(&cred, path)
                    .unwrap_or_else(|e| panic!("acked read {path} failed at op {i}: {e}"));
                assert_eq!(
                    sha256(&data),
                    sha256(&model[path.as_str()]),
                    "payload corrupted for {path} at op {i}"
                );
            }
            // 10 % stats.
            80..=89 if !keys.is_empty() => {
                let path = &keys[rng.index(keys.len())];
                let meta = adal
                    .stat(&cred, path)
                    .unwrap_or_else(|e| panic!("acked stat {path} failed at op {i}: {e}"));
                assert_eq!(meta.size, model[path.as_str()].len() as u64);
            }
            // 5 % listings: merged view covers every acked key.
            90..=94 => {
                let listed = adal
                    .list(&cred, &format!("lsdf://{project}/k/"))
                    .unwrap_or_else(|e| panic!("list on {project} failed at op {i}: {e}"));
                assert!(
                    listed.len() >= keys.len(),
                    "listing lost acked keys on {project} at op {i}: {} < {}",
                    listed.len(),
                    keys.len()
                );
            }
            // 5 % deletes of a random acked key.
            _ if !keys.is_empty() => {
                let idx = rng.index(keys.len());
                let path = keys[idx].clone();
                if adal.delete(&cred, &path).is_ok() {
                    keys.swap_remove(idx);
                    model.remove(&path);
                }
            }
            _ => {}
        }
        telemetry.maybe_scrape(&reg);
        // Periodic reporter hook: every 2 000 ops an operator report is
        // rendered exactly as `just status` would show it mid-soak.
        if i % 2_000 == 1_999 {
            let health = monitor.evaluate_with_history(&reg, Some(&telemetry));
            last_report = facility_status(&ConsoleInputs {
                registry: &reg,
                telemetry: Some(&telemetry),
                health: &health,
                profile: None,
            });
            assert!(
                last_report.contains("== facility status"),
                "report lost its header at op {i}"
            );
        }
    }
    assert!(!last_report.is_empty(), "reporter hook never fired");

    // Recovery: let every breaker cool down and drain the journals dry.
    let mut t = 1 + OPS * MS;
    for round in 0..500u64 {
        t += 20 * MS;
        reg.set_virtual_time_ns(t);
        let all_empty = PROJECTS
            .iter()
            .map(|p| {
                adal.drain_journal(p);
                adal.health(p).unwrap().journal_depth
            })
            .all(|d| d == 0);
        if all_empty {
            break;
        }
        assert!(round < 499, "journals failed to drain after recovery");
    }

    // Zero data loss: every acked put is still readable, bit-for-bit.
    for (path, payload) in &model {
        let data = adal
            .get(&cred, path)
            .unwrap_or_else(|e| panic!("post-soak read lost {path}: {e}"));
        assert_eq!(sha256(&data), sha256(payload), "post-soak corruption in {path}");
    }
    assert!(acked_puts > 1_000, "workload acked too few puts: {acked_puts}");
    assert!(
        rejected_puts < acked_puts,
        "more rejections ({rejected_puts}) than acks ({acked_puts})"
    );

    // Observability reconciles. Per project: the retry identity, a full
    // breaker cycle, and an empty journal.
    for p in PROJECTS {
        let l = [("project", p)];
        assert_eq!(
            reg.counter_value(names::ADAL_TRANSIENT_OBSERVED_TOTAL, &l),
            reg.counter_value(names::ADAL_RETRIES_TOTAL, &l)
                + reg.counter_value(names::ADAL_RETRY_EXHAUSTED_TOTAL, &l),
            "retry identity broken for {p}"
        );
        for to in ["open", "half_open", "closed"] {
            assert!(
                reg.counter_value(
                    names::ADAL_BREAKER_TRANSITIONS_TOTAL,
                    &[("project", p), ("to", to)]
                ) >= 1,
                "breaker for {p} never went {to}"
            );
        }
        assert_eq!(reg.gauge_value(names::ADAL_JOURNAL_DEPTH, &l), 0);
        assert_eq!(reg.gauge_value(names::ADAL_JOURNAL_BYTES, &l), 0);
        let h = adal.health(p).unwrap();
        assert_eq!(h.journal_depth, 0);
        // Every injected fault kind actually fired on this backend.
        for fault in ["transient", "torn_write", "outage", "latency_spike"] {
            assert!(
                reg.counter_value(names::CHAOS_INJECTED_TOTAL, &[("backend", p), ("fault", fault)])
                    >= 1,
                "no {fault} injected into {p}"
            );
        }
    }
    // Degradation paths were actually exercised facility-wide.
    assert!(reg.counter_total(names::ADAL_FAILOVER_READS_TOTAL) >= 1);
    assert!(reg.counter_total(names::ADAL_JOURNAL_ENQUEUED_TOTAL) >= 1);
    assert!(reg.counter_total(names::ADAL_JOURNAL_DRAINED_TOTAL) >= 1);
    assert!(reg.counter_total(names::ADAL_WRITE_VERIFY_FAILURES_TOTAL) >= 1);
    assert!(reg.counter_value(names::DFS_FLAKY_FAILURES_TOTAL, &[]) >= 1);

    // Closing report: scrape once more after recovery so the console
    // shows the drained state, then fold report + telemetry history
    // into the witness alongside the registry.
    telemetry.scrape(&reg);
    let health = monitor.evaluate_with_history(&reg, Some(&telemetry));
    let report = facility_status(&ConsoleInputs {
        registry: &reg,
        telemetry: Some(&telemetry),
        health: &health,
        profile: None,
    });
    format!("{}\n{}\n{}\n{}", reg.to_json(), telemetry.to_json(), last_report, report)
}

#[test]
fn chaos_soak_survives_and_reconciles() {
    run_soak_with(7, 1);
}

#[test]
fn chaos_soak_is_bit_identical_for_a_fixed_seed() {
    assert_eq!(run_soak_with(42, 1), run_soak_with(42, 1));
}

#[test]
fn chaos_soak_with_worker_pool_matches_serial_registry() {
    // Same seed, pooled replica fan-out: every durability assertion in
    // the soak still holds (zero acked-write loss, retry identity,
    // drained journals) and the registry JSON is byte-identical to the
    // serial run — parallelism must be observationally invisible.
    assert_eq!(run_soak_with(11, 1), run_soak_with(11, 4));
}
