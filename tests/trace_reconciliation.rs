//! Tracing <-> metrics reconciliation under chaos.
//!
//! A seeded mini-soak against a faulty primary, with full causal
//! tracing on, must tell the *same story* twice: every retry, retry
//! exhaustion, breaker-open transition, and injected fault that the
//! metric counters tally must appear as a trace event, and vice versa.
//! Divergence would mean one of the two observability channels lies.
//!
//! The same run doubles as the SLO-flip witness: a declarative rule on
//! the breaker-state gauge must flip `FacilityHealth` to violated while
//! the breaker is open mid-soak and back to healthy once the facility
//! recovers.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;

use lsdf_adal::{
    Acl, Adal, BreakerConfig, Credential, ObjectStoreBackend, ResilienceConfig, RetryPolicy,
    StorageBackend, TokenAuth,
};
use lsdf_chaos::{FaultPlan, FaultyBackend};
use lsdf_obs::{names, Registry, SloMonitor, SloRule, TraceConfig, Tracer};
use lsdf_sim::SimRng;
use lsdf_storage::ObjectStore;

const OPS: u64 = 1_500;
const MS: u64 = 1_000_000;

/// Counts trace events by `(event name, fault/to field value)` across
/// every retained trace.
fn event_tallies(tracer: &Tracer) -> BTreeMap<(String, String), u64> {
    let mut tallies: BTreeMap<(String, String), u64> = BTreeMap::new();
    for trace in tracer.traces() {
        trace.root.for_each_event(&mut |_, event| {
            let detail = event
                .fields
                .iter()
                .find(|(k, _)| k == "fault" || k == "to")
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            *tallies.entry((event.name.to_string(), detail)).or_insert(0) += 1;
        });
    }
    tallies
}

#[test]
fn traced_chaos_soak_reconciles_events_with_counters() {
    let seed = 0x15df_0005u64;
    let reg = Arc::new(Registry::new());
    reg.set_virtual_time_ns(1);
    let tracer = Tracer::new(&reg, TraceConfig::full().capacity(100_000).seed(seed));

    let auth = Arc::new(TokenAuth::new());
    auth.register("tok", "operator");
    let acl = Arc::new(Acl::new());
    acl.grant("operator", "soak", true);
    let adal = Adal::builder()
        .auth(auth)
        .acl(acl)
        .registry(reg.clone())
        .tracer(tracer.clone())
        .build();
    let cred = Credential::Token("tok".into());

    // Only the primary is faulty, and with full tracing every primary
    // op runs under an enabled trace context — so chaos decisions are
    // visible to both the counters and the trace events.
    let primary: Arc<dyn StorageBackend> = FaultyBackend::new(
        "soak",
        Arc::new(ObjectStoreBackend::new(Arc::new(ObjectStore::new(
            "soak-primary",
            u64::MAX,
        )))),
        FaultPlan::quiet(seed)
            .transient(0.05)
            .torn_writes(0.02)
            .latency_spikes(0.05, 2 * MS)
            .outage(150, 190),
        &reg,
    );
    let replica: Arc<dyn StorageBackend> = Arc::new(ObjectStoreBackend::new(Arc::new(
        ObjectStore::new("soak-replica", u64::MAX),
    )));
    adal.mount_resilient(
        "soak",
        primary,
        Some(replica),
        ResilienceConfig {
            retry: RetryPolicy::new(4, MS, 50 * MS, MS / 2),
            breaker: BreakerConfig {
                window: 16,
                min_calls: 8,
                failure_rate: 0.5,
                cooldown_ns: 10 * MS,
                half_open_probes: 2,
            },
            seed,
            ..ResilienceConfig::default()
        },
    );

    // The SLO under test: the soak project's breaker must be closed.
    let rule = format!("gauge({}{{project=soak}}) == 0", names::ADAL_BREAKER_STATE);
    let monitor = SloMonitor::new(vec![SloRule::parse(&rule).expect("rule parses")]);
    let mut violated_mid_soak = false;

    let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut keys: Vec<String> = Vec::new();
    let mut rng = SimRng::seed_from_u64(seed).stream("trace-reconciliation");
    for i in 0..OPS {
        reg.set_virtual_time_ns(1 + i * MS);
        match rng.index(100) {
            0..=54 => {
                let path = format!("lsdf://soak/k/{i:05}");
                let len = rng.range_u64(1, 48) as usize;
                let payload: Vec<u8> = (0..len).map(|_| rng.range_u64(0, 256) as u8).collect();
                if adal.put(&cred, &path, Bytes::from(payload.clone())).is_ok() {
                    keys.push(path.clone());
                    model.insert(path, payload);
                }
            }
            55..=84 if !keys.is_empty() => {
                let path = &keys[rng.index(keys.len())];
                let data = adal
                    .get(&cred, path)
                    .unwrap_or_else(|e| panic!("acked read {path} failed at op {i}: {e}"));
                assert_eq!(&data[..], &model[path.as_str()][..]);
            }
            _ if !keys.is_empty() => {
                let path = &keys[rng.index(keys.len())];
                let meta = adal
                    .stat(&cred, path)
                    .unwrap_or_else(|e| panic!("acked stat {path} failed at op {i}: {e}"));
                assert_eq!(meta.size, model[path.as_str()].len() as u64);
            }
            _ => {}
        }
        if !monitor.evaluate(&reg).healthy {
            violated_mid_soak = true;
        }
    }
    assert!(
        violated_mid_soak,
        "the breaker-state SLO never flipped FacilityHealth to violated under chaos"
    );

    // Recovery: cooldowns expire, journals drain, breaker closes.
    let mut t = 1 + OPS * MS;
    for round in 0..200u64 {
        t += 20 * MS;
        reg.set_virtual_time_ns(t);
        adal.drain_journal("soak");
        if adal.health("soak").map(|h| h.journal_depth) == Some(0) {
            break;
        }
        assert!(round < 199, "journal failed to drain");
    }
    let health = monitor.evaluate(&reg);
    assert!(
        health.healthy,
        "facility must be healthy after recovery: {:?}",
        health.rules
    );

    // Reconciliation: trace events and metric counters agree exactly.
    let tallies = event_tallies(&tracer);
    let tally = |name: &str, detail: &str| {
        tallies
            .get(&(name.to_string(), detail.to_string()))
            .copied()
            .unwrap_or(0)
    };
    let l = [("project", "soak")];
    assert_eq!(
        tally(names::ADAL_RETRY_EVENT, ""),
        reg.counter_value(names::ADAL_RETRIES_TOTAL, &l),
        "retry events vs retry counter"
    );
    assert_eq!(
        tally(names::ADAL_RETRY_EXHAUSTED_EVENT, ""),
        reg.counter_value(names::ADAL_RETRY_EXHAUSTED_TOTAL, &l),
        "retry-exhausted events vs counter"
    );
    for to in ["open", "half_open", "closed"] {
        assert_eq!(
            tally(names::ADAL_BREAKER_TRANSITION_EVENT, to),
            reg.counter_value(
                names::ADAL_BREAKER_TRANSITIONS_TOTAL,
                &[("project", "soak"), ("to", to)]
            ),
            "breaker transitions to {to}"
        );
    }
    for fault in ["transient", "torn_write", "outage", "latency_spike"] {
        assert_eq!(
            tally(names::CHAOS_FAULT_EVENT, fault),
            reg.counter_value(
                names::CHAOS_INJECTED_TOTAL,
                &[("backend", "soak"), ("fault", fault)]
            ),
            "chaos {fault} events vs injected counter"
        );
        assert!(
            tally(names::CHAOS_FAULT_EVENT, fault) >= 1,
            "no {fault} was injected — the soak is vacuous"
        );
    }

    // At least one retained trace tells a full degradation story:
    // retries that exhausted or a breaker that opened.
    let degraded = tracer.traces().into_iter().any(|tr| {
        let mut hit = false;
        tr.root.for_each_event(&mut |_, e| {
            if e.name == names::ADAL_RETRY_EXHAUSTED_EVENT
                || (e.name == names::ADAL_BREAKER_TRANSITION_EVENT
                    && e.fields.iter().any(|(k, v)| k == "to" && v == "open"))
            {
                hit = true;
            }
        });
        hit
    });
    assert!(
        degraded,
        "no trace captured a retry-exhausted or breaker-open event"
    );
}
