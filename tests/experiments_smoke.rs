//! Scaled-down smoke runs of every experiment (E1–E14) defined in
//! DESIGN.md, asserting the *shape* each paper claim predicts. The bench
//! harness (`crates/bench`) runs the full-size versions; these keep the
//! claims continuously verified in `cargo test`.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use lsdf_core::planner::{lsdf_2011_communities, plan_processing, project_growth};
use lsdf_core::{BackendChoice, DataBrowser, Facility, IngestItem, IngestPolicy, ProjectSpec};
use lsdf_dfs::{ClusterTopology, Dfs, DfsConfig};
use lsdf_mapreduce::{no_combiner, run_job, InputFormat, JobConfig};
use lsdf_metadata::query::eq;
use lsdf_metadata::{
    dataset, zebrafish_schema, CrossQuery, Federation, FieldType, ProjectStore, SchemaBuilder,
    UnifiedCatalog, Value,
};
use lsdf_net::units::{GB, PB, TB, TEN_GBIT};
use lsdf_net::{lsdf as lsdf_net_topo, NetSim, Placement, TransferModel};
use lsdf_sim::{SimDuration, Simulation};
use lsdf_storage::{ArrayModel, TapeLibrary, TapeOp, TapeParams};
use lsdf_workloads::microscopy::{rates, HtmGenerator};
use lsdf_workloads::volume::{MipMapper, MipReducer, Volume};

/// E1: microscopy ingest sustains (a scaled version of) 200k images/day.
#[test]
fn e1_ingest_rate_shape() {
    let f = Facility::builder()
        .tenant(ProjectSpec::new(
            zebrafish_schema(),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .build()
        .unwrap();
    let admin = f.admin().clone();
    let mut gen = HtmGenerator::new(1, 32);
    let mut items = Vec::new();
    for _ in 0..4 {
        for (acq, img) in gen.next_fish() {
            items.push(IngestItem {
                project: "zebrafish-htm".into(),
                key: acq.key(),
                data: img.encode(),
                metadata: Some(acq.document()),
            });
        }
    }
    let t = std::time::Instant::now();
    let report = f.ingest_batch(&admin, items, IngestPolicy::default());
    let rate = report.registered as f64 / t.elapsed().as_secs_f64();
    assert_eq!(report.registered, 96);
    // The paper's rate is 2.3 images/s; any healthy build beats it by
    // orders of magnitude even in debug mode.
    assert!(rate > rates::IMAGES_PER_DAY as f64 / 86_400.0);
}

/// E2: the facility network carries concurrent DAQ streams at line rate
/// and the arrays have the paper's capacities.
#[test]
fn e2_facility_capacity_and_throughput() {
    assert_eq!(
        ArrayModel::lsdf_ibm().capacity_bytes + ArrayModel::lsdf_ddn().capacity_bytes,
        1_900 * TB
    );
    let net = lsdf_net_topo::build(2).expect("lsdf net builds");
    let sim_net = NetSim::new(net.topology.clone());
    let mut sim = Simulation::new();
    let done = Rc::new(RefCell::new(0u32));
    for &daq in &net.daq {
        let done = done.clone();
        sim_net
            .start_flow(&mut sim, daq, net.storage_ibm, 125 * GB, move |_, _| {
                *done.borrow_mut() += 1;
            })
            .unwrap();
    }
    let end = sim.run();
    assert_eq!(*done.borrow(), 2);
    // Both at ~line rate thanks to dual-homing: ~100 s, not 200.
    assert!(end.as_secs_f64() < 110.0, "took {}", end.as_secs_f64());
}

/// E3: 1 PB over ideal 10 Gb/s ≈ 9.3 days; ≈15 days at 62 % goodput.
#[test]
fn e3_pb_transfer_estimate() {
    let ideal = TransferModel::ideal(TEN_GBIT).days_for_bytes(PB);
    assert!((ideal - 9.26).abs() < 0.05, "ideal {ideal}");
    let real = TransferModel::with_efficiency(TEN_GBIT, 0.62).days_for_bytes(PB);
    assert!((real - 14.9).abs() < 0.5, "realistic {real}");
}

/// E4: MapReduce strong scaling. Correctness half on the real executor
/// (identical output across worker counts); scaling half on the
/// virtual-time cluster model, since the host machine may have a single
/// core (the paper's 60 nodes are simulated per the substitution rule).
#[test]
fn e4_scaling_shape() {
    use lsdf_mapreduce::{simulate_job, ClusterModel, Mapper, Record, Reducer};
    struct Count;
    impl Mapper for Count {
        type Key = u8;
        type Value = u64;
        fn map(&self, record: &Record, emit: &mut dyn FnMut(u8, u64)) {
            emit(0, record.data.len() as u64);
        }
    }
    struct Sum;
    impl Reducer for Sum {
        type Key = u8;
        type Value = u64;
        type Output = u64;
        fn reduce(&self, _k: &u8, v: &[u64]) -> Vec<u64> {
            vec![v.iter().sum()]
        }
    }
    let dfs = Dfs::new(
        ClusterTopology::new(2, 4),
        DfsConfig {
            block_size: 256,
            replication: 2,
            ..DfsConfig::default()
        },
    );
    dfs.write("/in", &vec![7u8; 16 * 256], None).unwrap();
    let mut outputs = Vec::new();
    for workers in [1usize, 8] {
        let mut cfg = JobConfig::on_cluster(&dfs, 1);
        cfg.workers.truncate(workers);
        cfg.input_format = InputFormat::WholeBlock;
        let out = run_job(
            &dfs,
            &["/in".to_string()],
            &Count,
            no_combiner::<Count>(),
            &Sum,
            &cfg,
        )
        .unwrap();
        outputs.push(out.output);
    }
    assert_eq!(outputs[0], outputs[1], "worker count must not change results");
    // Facility-scale strong scaling on the calibrated cluster model.
    let mut last = f64::INFINITY;
    for nodes in [1usize, 4, 15, 60] {
        let r = simulate_job(
            &ClusterModel::lsdf_2011().with_nodes(nodes),
            TB,
            16_384,
            2 * nodes,
        );
        assert!(
            r.total.as_secs_f64() < last,
            "{nodes} nodes must beat fewer nodes"
        );
        last = r.total.as_secs_f64();
    }
}

/// E5: distributed MIP equals the sequential render (the correctness half
/// of the 1 TB-in-20-min claim; the timing half lives in the benches).
#[test]
fn e5_visualization_correctness() {
    let v = Volume::synthetic(3, 24, 24, 16);
    let slabs = v.to_slabs(4);
    let slab_bytes = slabs[0].len() as u64;
    let dfs = Dfs::new(
        ClusterTopology::new(2, 3),
        DfsConfig {
            block_size: slab_bytes,
            replication: 2,
            ..DfsConfig::default()
        },
    );
    let mut all = Vec::new();
    for s in &slabs {
        all.extend_from_slice(s);
    }
    dfs.write("/vol", &all, None).unwrap();
    let mut cfg = JobConfig::on_cluster(&dfs, 1);
    cfg.input_format = InputFormat::WholeBlock;
    let out = run_job(
        &dfs,
        &["/vol".to_string()],
        &MipMapper,
        no_combiner::<MipMapper>(),
        &MipReducer,
        &cfg,
    )
    .unwrap();
    assert_eq!(out.output[0], v.mip());
}

/// E7: indexed metadata queries scan only their hits.
#[test]
fn e7_index_scan_shape() {
    let store = ProjectStore::new(
        SchemaBuilder::new("t")
            .required("run", FieldType::Int)
            .indexed()
            .build()
            .unwrap(),
    );
    for i in 0..2_000i64 {
        store
            .insert(dataset(
                &format!("d{i}"),
                1,
                [("run".to_string(), Value::Int(i % 50))].into_iter().collect(),
            ))
            .unwrap();
    }
    let hits = store.query(&eq("run", 7i64));
    assert_eq!(hits.len(), 40);
    let (_, scanned) = store.query_stats();
    assert_eq!(scanned, 40, "index must avoid the 2000-record scan");
}

/// E8: the unified catalog answers cross-project queries with one store
/// contact; the federation needs N.
#[test]
fn e8_unified_vs_federated_shape() {
    let schemas: Vec<_> = (0..6)
        .map(|i| {
            SchemaBuilder::new(format!("p{i}"))
                .required("kind", FieldType::Str)
                .indexed()
                .build()
                .unwrap()
        })
        .collect();
    let unified = UnifiedCatalog::new(&schemas).unwrap();
    let mut fed = Federation::new();
    for (i, s) in schemas.iter().enumerate() {
        let store = Arc::new(ProjectStore::new(s.clone()));
        for j in 0..50 {
            let kind = if i == 3 && j % 10 == 0 { "rare" } else { "common" };
            let d = dataset(
                &format!("d{j}"),
                1,
                [("kind".to_string(), Value::from(kind))].into_iter().collect(),
            );
            store.insert(d.clone()).unwrap();
            unified.insert(&format!("p{i}"), d).unwrap();
        }
        fed.add(store);
    }
    let pred = eq("kind", "rare");
    let u = unified.cross_query(&pred);
    let f = fed.cross_query(&pred);
    assert_eq!(u.hits.len(), 5);
    assert_eq!(f.hits.len(), 5);
    assert_eq!(u.stores_contacted, 1);
    assert_eq!(f.stores_contacted, 6);
}

/// E10: VM deployment is minutes, not hours, and spread placement
/// balances hosts.
#[test]
fn e10_cloud_deploy_shape() {
    use lsdf_cloud::{CloudConfig, CloudManager, VmTemplate};
    let cloud = CloudManager::new(CloudConfig::lsdf());
    let mut sim = Simulation::new();
    for i in 0..20 {
        cloud
            .submit(&mut sim, VmTemplate::small(&format!("vm{i}")), |_, _| {})
            .unwrap();
    }
    sim.run();
    let stats = cloud.stats();
    assert_eq!(stats.deployed, 20);
    // "very fast to deploy": all 20 running within 10 simulated minutes.
    assert!(stats.max_deploy_secs < 600.0, "max {}", stats.max_deploy_secs);
    // Spread policy: no host holds more than one of the 20 VMs (60 hosts).
    assert!(cloud.vms_per_host().iter().all(|&n| n <= 1));
}

/// E12: the move-data/move-compute crossover exists and sits between
/// 100 GB and 1 TB for the facility's parameters.
#[test]
fn e12_crossover_shape() {
    let link = TransferModel::with_efficiency(TEN_GBIT, 0.7);
    let plan_small = plan_processing(10 * GB, link, SimDuration::from_mins(5), 4 * GB);
    let plan_large = plan_processing(10 * TB, link, SimDuration::from_mins(5), 4 * GB);
    assert_eq!(plan_small.placement, Placement::MoveData);
    assert_eq!(plan_large.placement, Placement::MoveCompute);
}

/// E13: tape recall latency is minutes and grows under contention; disk
/// reads are instant by comparison.
#[test]
fn e13_tape_latency_shape() {
    let lib = TapeLibrary::new(TapeParams::lto5(2));
    let mut sim = Simulation::new();
    for _ in 0..6 {
        lib.submit(&mut sim, TapeOp::Recall, 10 * GB, |_, _| {});
    }
    sim.run();
    let lat = lib.recall_latency();
    assert_eq!(lat.count(), 6);
    assert!(lat.min() >= 90.0, "even unloaded recall takes ~minutes");
    assert!(lat.max() > 2.0 * lat.min(), "contention inflates the tail");
}

/// E14: without enforced metadata a fraction of data becomes unfindable.
#[test]
fn e14_findability_shape() {
    let f = Facility::builder()
        .tenant(ProjectSpec::new(
            zebrafish_schema(),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .build()
        .unwrap();
    let admin = f.admin().clone();
    let mut gen = HtmGenerator::new(4, 32);
    // A sloppy instrument: 1 in 4 items arrives without metadata.
    for (i, (acq, img)) in gen.next_fish().into_iter().enumerate() {
        let metadata = if i % 4 == 0 { None } else { Some(acq.document()) };
        f.ingest(
            &admin,
            IngestItem {
                project: "zebrafish-htm".into(),
                key: acq.key(),
                data: img.encode(),
                metadata,
            },
            IngestPolicy {
                enforce_metadata: false,
            },
        )
        .unwrap();
    }
    let b = DataBrowser::new(&f, admin.clone());
    let report = b.findability("zebrafish-htm").unwrap();
    assert_eq!(report.stored_objects, 24);
    assert_eq!(report.invisible, 6);
    // With enforcement the same instrument loses nothing (rejects force
    // the operator to fix the metadata feed).
    let f2 = Facility::builder()
        .tenant(ProjectSpec::new(
            zebrafish_schema(),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .build()
        .unwrap();
    let admin2 = f2.admin().clone();
    let mut gen = HtmGenerator::new(4, 32);
    for (acq, img) in gen.next_fish() {
        let _ = f2.ingest(
            &admin2,
            IngestItem {
                project: "zebrafish-htm".into(),
                key: acq.key(),
                data: img.encode(),
                metadata: Some(acq.document()),
            },
            IngestPolicy::default(),
        );
    }
    let b2 = DataBrowser::new(&f2, admin2);
    let report2 = b2.findability("zebrafish-htm").unwrap();
    assert_eq!(report2.invisible, 0);
}

/// E1/E2 supporting claim: growth projections land in the paper's bands.
#[test]
fn growth_projection_shape() {
    let rows = project_growth(&lsdf_2011_communities(), 4);
    assert!(rows[1].produced_bytes > PB as f64); // "1+ PB/year in 2012"
    assert!(rows[3].produced_bytes > 4.0 * PB as f64); // "~6 PB/year in 2014"
}
