//! Failure injection across subsystems: datanode death mid-campaign,
//! host failures under the cloud manager, tape-library contention, and
//! metadata enforcement failures — verifying the facility degrades the
//! way the real one must.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use lsdf_cloud::{CloudConfig, CloudManager, HostSpec, Placement, VmState, VmTemplate};
use lsdf_dfs::{ClusterTopology, Dfs, DfsConfig, DfsNodeId, PlacementPolicy};
use lsdf_mapreduce::{no_combiner, run_job, JobConfig, Mapper, Record, Reducer};
use lsdf_sim::{SimDuration, Simulation};
use lsdf_storage::{TapeLibrary, TapeOp, TapeParams};

struct CountMap;
impl Mapper for CountMap {
    type Key = u8;
    type Value = u64;
    fn map(&self, record: &Record, emit: &mut dyn FnMut(u8, u64)) {
        emit(0, record.data.len() as u64);
    }
}
struct SumReduce;
impl Reducer for SumReduce {
    type Key = u8;
    type Value = u64;
    type Output = u64;
    fn reduce(&self, _k: &u8, values: &[u64]) -> Vec<u64> {
        vec![values.iter().sum()]
    }
}

#[test]
fn mapreduce_completes_after_datanode_death_with_rereplication() {
    let dfs = Dfs::new(
        ClusterTopology::new(3, 3),
        DfsConfig {
            block_size: 64,
            replication: 3,
            node_capacity: u64::MAX,
            placement: PlacementPolicy::RackAware,
            seed: 5,
        },
    );
    let payload: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
    dfs.write("/data", &payload, Some(DfsNodeId(0))).unwrap();

    // Kill two nodes (replication is 3: data must survive).
    dfs.kill_node(DfsNodeId(0));
    dfs.kill_node(DfsNodeId(4));
    assert!(!dfs.under_replicated().is_empty());
    dfs.re_replicate();
    assert!(dfs.under_replicated().is_empty());

    // The job runs on the surviving nodes and sees every byte.
    let mut cfg = JobConfig::on_cluster(&dfs, 1); // live nodes only
    cfg.input_format = lsdf_mapreduce::InputFormat::WholeBlock;
    assert_eq!(cfg.workers.len(), 7);
    let out = run_job(
        &dfs,
        &["/data".to_string()],
        &CountMap,
        no_combiner::<CountMap>(),
        &SumReduce,
        &cfg,
    )
    .unwrap();
    assert_eq!(out.output, vec![2048]);
}

#[test]
fn cascading_failures_eventually_lose_blocks_detectably() {
    let dfs = Dfs::new(
        ClusterTopology::new(2, 2),
        DfsConfig {
            block_size: 64,
            replication: 2,
            node_capacity: u64::MAX,
            placement: PlacementPolicy::RackAware,
            seed: 6,
        },
    );
    dfs.write("/data", &[1u8; 512], None).unwrap();
    // Kill everything: reads must fail loudly, not fabricate data.
    for n in dfs.live_nodes() {
        dfs.kill_node(n);
    }
    assert!(dfs.read("/data", None).is_err());
    // Re-replication cannot help with zero live sources.
    assert_eq!(dfs.re_replicate(), 0);
    // Reviving one replica-holder restores service.
    dfs.revive_node(DfsNodeId(0));
    dfs.revive_node(DfsNodeId(1));
    dfs.revive_node(DfsNodeId(2));
    dfs.revive_node(DfsNodeId(3));
    assert_eq!(dfs.read("/data", None).unwrap().len(), 512);
}

#[test]
fn cloud_host_failure_kills_vms_and_pending_queue_reroutes() {
    let cloud = CloudManager::new(CloudConfig {
        hosts: vec![HostSpec::lsdf_node(); 3],
        staging_bps: 1e9,
        concurrent_stagings: 4,
        boot_time: SimDuration::from_secs(10),
        policy: Placement::Spread,
    });
    let mut sim = Simulation::new();
    let running: Rc<RefCell<Vec<_>>> = Rc::new(RefCell::new(Vec::new()));
    for i in 0..3 {
        let running = running.clone();
        cloud
            .submit(&mut sim, VmTemplate::small(&format!("vm{i}")), move |_, id| {
                running.borrow_mut().push(id);
            })
            .unwrap();
    }
    sim.run();
    assert_eq!(running.borrow().len(), 3);
    // Fail the host of vm0.
    let victim = running.borrow()[0];
    let host = cloud.host_of(victim).unwrap();
    let failed = cloud.fail_host(&mut sim, host).unwrap();
    assert_eq!(failed, vec![victim]);
    assert_eq!(cloud.state(victim).unwrap(), VmState::Failed);
    // Resubmission lands on a surviving host.
    let resubmitted = Rc::new(RefCell::new(None));
    {
        let resubmitted = resubmitted.clone();
        cloud
            .submit(&mut sim, VmTemplate::small("vm0-retry"), move |_, id| {
                *resubmitted.borrow_mut() = Some(id);
            })
            .unwrap();
    }
    sim.run();
    let new_vm = resubmitted.borrow().expect("redeployed");
    assert_ne!(cloud.host_of(new_vm).unwrap(), host);
    assert_eq!(cloud.stats().failed, 1);
}

#[test]
fn tape_contention_degrades_latency_gracefully() {
    // One drive, burst of recalls: latency grows linearly with queue
    // position — no starvation, strict FIFO.
    let lib = TapeLibrary::new(TapeParams {
        drives: 1,
        mount: SimDuration::from_secs(60),
        seek: SimDuration::from_secs(30),
        stream_bps: 100e6,
        unmount: SimDuration::from_secs(10),
    });
    let mut sim = Simulation::new();
    let finishes: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
    for _ in 0..5 {
        let finishes = finishes.clone();
        lib.submit(&mut sim, TapeOp::Recall, 1_000_000_000, move |s, _| {
            finishes.borrow_mut().push(s.now().as_secs_f64());
        });
    }
    sim.run();
    let f = finishes.borrow();
    // Each service takes 60+30+10+10 = 110 s.
    for (i, &t) in f.iter().enumerate() {
        assert!(
            (t - 110.0 * (i as f64 + 1.0)).abs() < 1e-6,
            "recall {i} finished at {t}"
        );
    }
    let tally = lib.recall_latency();
    assert_eq!(tally.count(), 5);
    assert!((tally.max() - 550.0).abs() < 1e-6);
}

#[test]
fn mapreduce_straggler_with_speculation_still_exact() {
    let dfs = Dfs::new(
        ClusterTopology::new(1, 4),
        DfsConfig {
            block_size: 64,
            replication: 2,
            node_capacity: u64::MAX,
            placement: PlacementPolicy::Random,
            seed: 8,
        },
    );
    let payload = vec![9u8; 1024];
    dfs.write("/d", &payload, None).unwrap();
    let mut cfg = JobConfig::on_cluster(&dfs, 2);
    cfg.input_format = lsdf_mapreduce::InputFormat::WholeBlock;
    cfg.speculative = true;
    cfg.slow_nodes = vec![
        (DfsNodeId(0), Duration::from_millis(150)),
        (DfsNodeId(1), Duration::from_millis(150)),
    ];
    let out = run_job(
        &dfs,
        &["/d".to_string()],
        &CountMap,
        no_combiner::<CountMap>(),
        &SumReduce,
        &cfg,
    )
    .unwrap();
    assert_eq!(out.output, vec![1024]);
    // Byte accounting unaffected by duplicated attempts.
    assert_eq!(out.stats.bytes_read, 1024);
    assert_eq!(out.stats.map_tasks, 16);
}
