//! Restart-under-chaos soak: the crash-durability contract, end to end.
//!
//! A durable facility (namenode WAL + per-project metadata WALs over
//! one shared [`DurableStore`]) ingests a seeded mixed workload in
//! batches while a [`FaultPlan`] crash schedule kills and restarts the
//! whole facility at virtual times mid-soak. The invariants:
//!
//! * **replay-identical recovery** — at every crash point the DFS
//!   namespace digest and every project catalog digest are
//!   bit-identical before the crash and after recovery;
//! * **zero acked-write loss** — every acknowledged ingest reads back
//!   checksum-clean after every restart (and at the end), and every
//!   registered dataset is still findable in its catalog;
//! * **worker invisibility** — the final obs registry JSON (which
//!   folds in WAL, checkpoint and recovery counters) is bit-identical
//!   at 1, 4 and 8 ingest workers;
//! * the crash schedule actually fired: at least three seeded crash
//!   points land mid-ingest, each replaying a non-trivial log.
//!
//! Set `LSDF_RESTART_REPORT=<path>` to write the concatenated
//! [`RecoveryReport`] JSON for all crash points — CI uploads it as the
//! recovery artifact.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;

use lsdf_chaos::FaultPlan;
use lsdf_core::{BackendChoice, Facility, IngestItem, IngestPolicy, ProjectSpec, RecoveryReport};
use lsdf_dfs::{ClusterTopology, DfsConfig};
use lsdf_durability::{DurabilityConfig, DurableStore};
use lsdf_metadata::{Document, FieldType, SchemaBuilder, Value};
use lsdf_obs::{names, Registry};
use lsdf_sim::SimRng;
use lsdf_storage::sha256;

const MS: u64 = 1_000_000;
const BATCHES: u64 = 48;
const ITEMS_PER_BATCH: u64 = 50;
const SEED: u64 = 0xd15c;

/// Two tenants so both durable component families see WAL traffic:
/// a DFS-backed spectrometer project (namenode WAL) and an
/// object-store imaging project (metadata WAL only — the object store
/// itself survives a process crash like a datanode disk does).
fn facility(reg: Arc<Registry>, disk: DurableStore, workers: usize) -> Facility {
    let spectro = SchemaBuilder::new("spectro")
        .required("run", FieldType::Int)
        .build()
        .unwrap();
    let imaging = SchemaBuilder::new("imaging")
        .required("frame", FieldType::Int)
        .build()
        .unwrap();
    Facility::builder()
        .tenant(ProjectSpec::new(spectro, BackendChoice::Dfs))
        .tenant(ProjectSpec::new(
            imaging,
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .cluster(
            ClusterTopology::new(2, 3),
            DfsConfig {
                block_size: 2048,
                replication: 2,
                ..DfsConfig::default()
            },
        )
        .durability(
            disk,
            DurabilityConfig {
                checkpoint_every: 192,
                ..DurabilityConfig::default()
            },
        )
        .registry(reg)
        .workers(workers)
        .build()
        .unwrap()
}

/// One seeded batch: alternating DFS / object-store items with valid
/// per-project metadata and write-once keys.
fn batch(seed: u64, b: u64) -> Vec<IngestItem> {
    let mut rng = SimRng::seed_from_u64(seed).stream(&format!("restart-batch-{b}"));
    (0..ITEMS_PER_BATCH)
        .map(|j| {
            let n = b * ITEMS_PER_BATCH + j;
            let (project, field) = if j % 2 == 0 {
                ("spectro", "run")
            } else {
                ("imaging", "frame")
            };
            let len = rng.range_u64(1, 512) as usize;
            let payload: Vec<u8> = (0..len).map(|_| rng.range_u64(0, 256) as u8).collect();
            let mut doc = Document::new();
            doc.insert(field.to_string(), Value::Int(n as i64));
            IngestItem {
                project: project.to_string(),
                key: format!("{field}/{n:06}"),
                data: Bytes::from(payload),
                metadata: Some(doc),
            }
        })
        .collect()
}

/// Sweeps every acked write (location → payload checksum) through the
/// ADAL and asserts checksum-clean readback; then checks every catalog
/// entry is present with the checksum that was acked.
fn verify_acked(f: &Facility, model: &BTreeMap<String, (String, String)>, when: &str) {
    let admin = f.admin().clone();
    for (location, (key, digest)) in model {
        let data = f
            .adal()
            .get(&admin, location)
            .unwrap_or_else(|e| panic!("acked write {location} lost {when}: {e}"));
        assert_eq!(
            &sha256(&data).to_hex(),
            digest,
            "acked write {location} corrupted {when}"
        );
        let project = location
            .strip_prefix("lsdf://")
            .and_then(|r| r.split('/').next())
            .unwrap();
        let rec = f
            .store(project)
            .unwrap()
            .get_by_name(key)
            .unwrap_or_else(|| panic!("catalog entry {key} lost {when}"));
        assert_eq!(&rec.checksum_hex, digest, "catalog checksum drifted {when}");
    }
}

/// Runs the soak at one pool width and returns the registry JSON (the
/// worker-invisibility witness) plus the per-crash recovery reports.
fn run_soak_with(seed: u64, workers: usize) -> (String, Vec<RecoveryReport>) {
    let reg = Arc::new(Registry::new());
    reg.set_virtual_time_ns(1);
    let disk = DurableStore::new();
    let f = facility(reg.clone(), disk, workers);
    let admin = f.admin().clone();

    // Crash schedule in virtual time: three points on batch boundaries
    // plus one between boundaries (fires at the next poll) — each
    // lands mid-ingest with unreplayed WAL tail on at least one log.
    let plan = FaultPlan::quiet(seed)
        .crash_at(1 + 9 * MS, seed ^ 0x01)
        .crash_at(1 + 21 * MS, seed ^ 0x02)
        .crash_at(30 * MS + 500, seed ^ 0x03)
        .crash_at(1 + 41 * MS, seed ^ 0x04);

    // Every ACKED ingest: location → (key, payload sha256 hex).
    let mut model: BTreeMap<String, (String, String)> = BTreeMap::new();
    let mut reports = Vec::new();
    let mut last_poll = 0u64;
    for b in 0..BATCHES {
        let now = 1 + b * MS;
        reg.set_virtual_time_ns(now);
        let items = batch(seed, b);
        for item in &items {
            model.insert(
                format!("lsdf://{}/{}", item.project, item.key),
                (item.key.clone(), sha256(&item.data).to_hex()),
            );
        }
        let report = f.ingest_batch(&admin, items, IngestPolicy::default());
        assert_eq!(
            report.registered, ITEMS_PER_BATCH,
            "batch {b} did not fully register: {report:?}"
        );
        f.run_durability_reconciler();
        for cp in plan.crashes_due(last_poll, now) {
            let dfs_digest = f.dfs().namespace_digest();
            let spectro_digest = f.store("spectro").unwrap().catalog_digest();
            let imaging_digest = f.store("imaging").unwrap().catalog_digest();
            let report = f.crash_restart(cp.seed);
            assert_eq!(
                report.components.len(),
                3,
                "dfs + two metadata stores recover at {}", cp.at_ns
            );
            assert_eq!(f.dfs().namespace_digest(), dfs_digest, "namenode replay drifted");
            assert_eq!(
                f.store("spectro").unwrap().catalog_digest(),
                spectro_digest,
                "spectro catalog replay drifted"
            );
            assert_eq!(
                f.store("imaging").unwrap().catalog_digest(),
                imaging_digest,
                "imaging catalog replay drifted"
            );
            verify_acked(&f, &model, &format!("after crash at {}ns", cp.at_ns));
            reports.push(report);
        }
        last_poll = now;
    }
    assert!(
        reports.len() >= 3,
        "crash schedule must fire at least 3 points mid-soak, fired {}",
        reports.len()
    );
    // Every restart did real recovery work on every component: either
    // a checkpoint base was installed or a WAL tail was replayed (both,
    // usually). And across the soak the WALs carried real traffic.
    for (i, r) in reports.iter().enumerate() {
        for c in &r.components {
            assert!(
                c.snapshot_loaded || c.replayed > 0,
                "crash {i}: component {} recovered from nothing: {r:?}",
                c.component
            );
        }
    }
    assert!(
        reports.iter().map(RecoveryReport::total_replayed).sum::<u64>() > 0,
        "no WAL records replayed across the whole soak"
    );
    verify_acked(&f, &model, "at end of soak");
    // Batched WAL group commit: every N-file batch commit on the
    // namenode WAL shares ONE accounted fsync. The per-record path
    // charges one fsync per `group_commit` (default 8) records, so the
    // batched path must beat that floor outright across the soak.
    let appends = reg.counter_value(names::WAL_APPENDS_TOTAL, &[("log", "dfs")]);
    let fsyncs = reg.counter_value(names::WAL_FSYNCS_TOTAL, &[("log", "dfs")]);
    assert!(appends > 0, "namenode WAL saw no traffic");
    assert!(
        fsyncs > 0 && fsyncs * 8 < appends,
        "batched commit did not amortize fsyncs: {fsyncs} fsyncs for {appends} appends          (per-record group commit would charge ~{})",
        appends / 8
    );
    (reg.to_json(), reports)
}

#[test]
fn restart_soak_survives_seeded_crashes_and_is_worker_invariant() {
    let (serial_json, serial_reports) = run_soak_with(SEED, 1);
    assert_eq!(serial_reports.len(), 4, "all four scheduled points fired");
    for workers in [4usize, 8] {
        let (json, reports) = run_soak_with(SEED, workers);
        assert_eq!(reports.len(), serial_reports.len());
        assert_eq!(
            serial_json, json,
            "registry JSON drifted at workers={workers}"
        );
    }
    // CI artifact: the per-crash recovery reports from the serial run.
    // Relative paths are resolved against the workspace root (cargo
    // runs integration tests with the package dir as CWD).
    if let Ok(path) = std::env::var("LSDF_RESTART_REPORT") {
        let p = std::path::PathBuf::from(&path);
        let p = if p.is_absolute() {
            p
        } else {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("integration crate lives two levels under the workspace root")
                .join(p)
        };
        if let Some(dir) = p.parent() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
        }
        let body: Vec<String> = serial_reports.iter().map(RecoveryReport::to_json).collect();
        std::fs::write(&p, format!("[\n{}\n]\n", body.join(",\n")))
            .unwrap_or_else(|e| panic!("writing recovery report {}: {e}", p.display()));
    }
}

#[test]
fn torn_wal_tail_never_loses_acked_writes() {
    // A focused variant: crash with a seed chosen per restart so the
    // torn-tail injection exercises different byte offsets; acked data
    // must survive every one.
    let reg = Arc::new(Registry::new());
    reg.set_virtual_time_ns(1);
    let disk = DurableStore::new();
    let f = facility(reg, disk, 1);
    let admin = f.admin().clone();
    let mut model: BTreeMap<String, (String, String)> = BTreeMap::new();
    for round in 0..6u64 {
        let items = batch(SEED ^ round, round);
        for item in &items {
            model.insert(
                format!("lsdf://{}/{}", item.project, item.key),
                (item.key.clone(), sha256(&item.data).to_hex()),
            );
        }
        let report = f.ingest_batch(&admin, items, IngestPolicy::default());
        assert_eq!(report.registered, ITEMS_PER_BATCH);
        let report = f.crash_restart(0x7e57 ^ round);
        assert!(report.total_torn_tails() >= 1, "round {round} tore no tail");
        verify_acked(&f, &model, &format!("after torn restart {round}"));
    }
}
