//! Parallel ingest determinism: the facility promise that the worker
//! pool is *observationally invisible*.
//!
//! A batch ingest fanned across 4 or 8 workers must produce, for the
//! same input:
//! * the same [`IngestReport`] (outcomes merged in submission order),
//! * a byte-identical obs registry JSON snapshot (all counters and
//!   histograms are order-independent sums under the virtual clock),
//!
//! as the serial run. This is the contract that lets `LSDF_WORKERS` be
//! a pure throughput knob — flipping it can never change what an
//! experiment observes, only how fast it observes it.

use std::sync::Arc;

use bytes::Bytes;

use lsdf_core::{BackendChoice, Facility, IngestItem, IngestPolicy, IngestReport, ProjectSpec};
use lsdf_dfs::{ClusterTopology, DfsConfig};
use lsdf_metadata::{zebrafish_schema, Document, FieldType, SchemaBuilder, Value};
use lsdf_obs::Registry;
use lsdf_sim::SimRng;
use lsdf_workloads::microscopy::HtmGenerator;

/// Builds the facility: one object-store project (zebrafish HTM) and
/// one DFS-backed project (katrin), both recording into `reg`.
fn facility(reg: Arc<Registry>, workers: usize) -> Facility {
    Facility::builder()
        .tenant(ProjectSpec::new(
            zebrafish_schema(),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .tenant(ProjectSpec::new(
            SchemaBuilder::new("katrin")
                .required("run", FieldType::Int)
                .build()
                .unwrap(),
            BackendChoice::Dfs,
        ))
        .cluster(
            ClusterTopology::new(2, 2),
            DfsConfig {
                block_size: 1024,
                replication: 2,
                ..DfsConfig::default()
            },
        )
        .registry(reg)
        .workers(workers)
        .build()
        .unwrap()
}

/// A seeded mixed batch: microscopy items with valid metadata, DFS
/// spectrometer runs, plus deliberately bad items (schema-invalid and
/// missing metadata) so every outcome arm is exercised.
fn batch(seed: u64) -> Vec<IngestItem> {
    let mut rng = SimRng::seed_from_u64(seed).stream("parallel-ingest");
    let mut items = Vec::new();
    let mut gen = HtmGenerator::new(5, 32);
    for (acq, img) in gen.next_fish() {
        items.push(IngestItem {
            project: "zebrafish-htm".to_string(),
            key: acq.key(),
            data: img.encode(),
            metadata: Some(acq.document()),
        });
    }
    for run in 0..40i64 {
        let len = rng.range_u64(1, 4096) as usize;
        let payload: Vec<u8> = (0..len).map(|_| rng.range_u64(0, 256) as u8).collect();
        let mut doc = Document::new();
        doc.insert("run".to_string(), Value::Int(run));
        items.push(IngestItem {
            project: "katrin".to_string(),
            key: format!("run/{run:04}"),
            data: Bytes::from(payload),
            metadata: Some(doc),
        });
    }
    // Poison a deterministic handful: wrong schema, missing metadata,
    // unknown project — rejected at three different pipeline stages.
    items[3].metadata = Some(Document::new());
    items[11].metadata = None;
    items[17].project = "no-such-project".to_string();
    items
}

/// Runs one ingest with the given pool width and returns the merged
/// report plus the registry JSON witness.
fn run(workers: usize, seed: u64) -> (IngestReport, String) {
    let reg = Arc::new(Registry::new());
    reg.set_virtual_time_ns(1);
    let f = facility(reg.clone(), workers);
    let admin = f.admin().clone();
    let report = f.ingest_batch(&admin, batch(seed), IngestPolicy::default());
    (report, reg.to_json())
}

#[test]
fn pooled_ingest_is_bit_identical_to_serial() {
    let (serial_report, serial_json) = run(1, 97);
    // The batch actually exercises both sides of the pipeline.
    assert!(serial_report.registered > 0, "{serial_report:?}");
    assert!(serial_report.rejected > 0, "{serial_report:?}");
    for workers in [4usize, 8] {
        let (report, json) = run(workers, 97);
        assert_eq!(serial_report, report, "report drifted at workers={workers}");
        assert_eq!(
            serial_json, json,
            "registry JSON drifted at workers={workers}"
        );
    }
}

#[test]
fn pooled_ingest_report_matches_item_count() {
    let items = batch(97);
    let n = items.len() as u64;
    let reg = Arc::new(Registry::new());
    reg.set_virtual_time_ns(1);
    let f = facility(reg, 4);
    let admin = f.admin().clone();
    let report = f.ingest_batch(&admin, items, IngestPolicy::default());
    assert_eq!(
        report.registered + report.stored_unregistered + report.rejected,
        n,
        "every submitted item must be accounted for exactly once: {report:?}"
    );
}
