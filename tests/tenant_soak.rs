//! Tenant-isolation soak: a fleet of tenant projects ingesting side by
//! side while one project — mounted on a chaos backend injecting
//! latency spikes — floods the facility at many times its contracted
//! rate.
//!
//! The multi-tenancy contract under test:
//! * **isolation** — the flood cannot move a victim tenant's p99
//!   admission wait by more than a bounded epsilon; in fact the
//!   victims' wait histograms are byte-identical to a calm run;
//! * **back-pressure lands on the offender** — the flooder is shed
//!   (with finite `retry_after` hints) and the adaptive governor
//!   throttles it; no victim is ever shed or throttled;
//! * **zero acked-write loss** — every registered dataset reads back
//!   with a matching SHA-256, flood or no flood;
//! * **determinism** — the registry JSON of the whole soak is
//!   byte-identical at 1, 4 and 8 pool workers for a fixed seed.
//!
//! Scale: `LSDF_SOAK_TENANTS` overrides the fleet size (default 48 for
//! CI; `just soak-tenants` runs thousands).

use std::sync::Arc;

use lsdf_adal::ObjectStoreBackend;
use lsdf_chaos::{FaultPlan, FaultyBackend};
use lsdf_core::prelude::*;
use lsdf_obs::SloRule;
use lsdf_storage::{sha256, ObjectStore};
use lsdf_workloads::tenants::{tenant_schema, TenantFleet};

const ROUNDS: u64 = 30;
const ROUND_NS: u64 = 100_000_000; // 100 ms of virtual time per round
const FLOODER: usize = 0;
const FLOOD_MULTIPLIER: u64 = 40;
/// Bound on how far a flood may move a victim's p99 admission wait.
/// (The distribution-equality assertion below proves the shift is in
/// fact exactly zero; the epsilon states the contract.)
const EPSILON_NS: u64 = 1_000;

fn fleet_size() -> usize {
    std::env::var("LSDF_SOAK_TENANTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// One victim tenant's admission-wait distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
struct VictimWait {
    project: String,
    count: u64,
    sum: u64,
    p99: u64,
}

struct SoakOutcome {
    registry_json: String,
    operator_report: String,
    victim_waits: Vec<VictimWait>,
    flooder_usage: ProjectUsage,
    total_shed: u64,
}

/// Runs the soak and checks the per-run invariants. `flood_multiplier`
/// of 1 is the calm baseline; larger floods the [`FLOODER`] tenant.
fn run_soak(seed: u64, workers: usize, flood_multiplier: u64) -> SoakOutcome {
    let n = fleet_size();
    let fleet = TenantFleet::new(seed, n);
    let flooder = fleet.project_name(FLOODER);
    let reg = Arc::new(Registry::new());
    reg.set_virtual_time_ns(0);

    let mut builder = Facility::builder()
        .registry(reg.clone())
        .workers(workers)
        // The governor watches the flooder's bulk-lane p99 wait: once
        // the flood drives it past 1 ms of borrowing, the project is
        // breaching its latency SLO and gets throttled.
        .slo(vec![SloRule::parse(&format!(
            "p99(admission_wait_ns{{lane=bulk,project={flooder}}}) < 1000000"
        ))
        .expect("rule parses")]);
    for name in fleet.project_names() {
        let backend = BackendChoice::ObjectStore { capacity: u64::MAX };
        let quota = if name == flooder {
            // The flooder's contract: far below its flooded volume.
            QuotaSpec::per_second(200, 1 << 22).queue_depth(64)
        } else {
            // Victims are contracted well above their actual load, so
            // any wait they see could only come from cross-tenant leak.
            QuotaSpec::per_second(10_000, 1 << 30)
        };
        builder = builder.tenant(ProjectSpec::new(tenant_schema(&name), backend).quota(quota));
    }
    let f = builder.build().expect("facility assembles");

    // Chaos-flood the offender: remount it on a backend injecting
    // deterministic latency spikes (no errors — acked writes must
    // still verify). All soak-phase ops on this backend are writes, so
    // the spike draw sequence is worker-order independent.
    let chaos_store = Arc::new(ObjectStore::new("flooder-chaos", u64::MAX));
    let plan = FaultPlan::quiet(seed).latency_spikes(0.05, 5_000_000);
    let faulty = FaultyBackend::new(
        &flooder,
        Arc::new(ObjectStoreBackend::new(chaos_store)),
        plan,
        &reg,
    );
    f.adal().mount(&flooder, faulty);

    let admin = f.admin().clone();
    let mut total_shed = 0u64;
    let mut registered = 0u64;
    for round in 0..ROUNDS {
        reg.set_virtual_time_ns(round * ROUND_NS);
        let items: Vec<IngestItem> = fleet
            .round(round, FLOODER, flood_multiplier)
            .into_iter()
            .map(|op| IngestItem {
                project: op.project,
                key: op.key,
                data: op.data,
                metadata: Some(op.doc),
            })
            .collect();
        let report = f.ingest_batch(&admin, items, IngestPolicy::default());
        assert_eq!(report.rejected, 0, "round {round}: only shed, never rejected");
        total_shed += report.shed;
        registered += report.registered;
        f.govern();
        // Periodic reporter hook: every tenth round an operator would
        // glance at the console; the render must never panic mid-flood
        // and always carries the tenant table.
        if round % 10 == 9 {
            let status = f.operator_report();
            assert!(
                status.contains("-- tenants --"),
                "round {round}: operator report lost its tenant table"
            );
        }
    }

    // Zero acked-write loss: every registered dataset reads back with
    // a matching checksum — including everything the chaos backend
    // acknowledged for the flooder.
    let mut records = 0u64;
    for project in f.projects() {
        for rec in f.store(&project).expect("project store").all() {
            let data = f
                .adal()
                .get(&admin, &rec.location)
                .unwrap_or_else(|e| panic!("acked write {} lost: {e}", rec.location));
            assert_eq!(
                sha256(&data).to_hex(),
                rec.checksum_hex,
                "acked write {} corrupted",
                rec.location
            );
            records += 1;
        }
    }
    assert_eq!(records, registered, "catalog and report disagree");

    // Back-pressure lands on the offender only.
    let mut victim_waits = Vec::new();
    for project in f.projects() {
        let usage = f
            .admission()
            .usage(&project)
            .expect("project registered for admission");
        if project == flooder {
            continue;
        }
        assert_eq!(usage.shed, 0, "victim {project} was shed");
        assert_eq!(usage.throttle_level, 0, "victim {project} was throttled");
        let wait = reg.histogram(
            names::ADMISSION_WAIT_NS,
            &[("project", &project), ("lane", "bulk")],
        );
        victim_waits.push(VictimWait {
            project,
            count: wait.count(),
            sum: wait.sum(),
            p99: wait.quantile(0.99),
        });
    }
    let flooder_usage = f
        .admission()
        .usage(&flooder)
        .expect("flooder registered for admission");

    SoakOutcome {
        registry_json: reg.to_json(),
        operator_report: f.operator_report(),
        victim_waits,
        flooder_usage,
        total_shed,
    }
}

#[test]
fn flood_backpressure_hits_flooder_and_spares_victims() {
    let calm = run_soak(23, 1, 1);
    assert_eq!(calm.total_shed, 0, "nobody sheds in the calm baseline");

    let flood = run_soak(23, 1, FLOOD_MULTIPLIER);
    assert!(flood.total_shed > 0, "the flood must overrun its quota");
    assert_eq!(
        flood.total_shed, flood.flooder_usage.shed,
        "every shed in the run belongs to the flooder"
    );
    assert!(
        flood.flooder_usage.throttle_level > 0,
        "the governor must throttle the flooder"
    );

    // Isolation: the flood moved no victim's p99 beyond epsilon — the
    // victims' wait distributions are identical to the calm run.
    assert_eq!(calm.victim_waits.len(), flood.victim_waits.len());
    for (calm_w, flood_w) in calm.victim_waits.iter().zip(&flood.victim_waits) {
        assert_eq!(calm_w.project, flood_w.project);
        assert!(
            flood_w.p99.abs_diff(calm_w.p99) <= EPSILON_NS,
            "{}: flood moved victim p99 wait from {} to {}",
            calm_w.project,
            calm_w.p99,
            flood_w.p99
        );
        assert_eq!(
            (calm_w.count, calm_w.sum),
            (flood_w.count, flood_w.sum),
            "{}: flood perturbed the victim's whole wait distribution",
            calm_w.project
        );
    }
}

#[test]
fn flooded_soak_is_bit_identical_at_any_worker_count() {
    let serial = run_soak(42, 1, FLOOD_MULTIPLIER);
    for workers in [4, 8] {
        let pooled = run_soak(42, workers, FLOOD_MULTIPLIER);
        assert_eq!(
            serial.registry_json, pooled.registry_json,
            "registry diverged at {workers} workers"
        );
        assert_eq!(
            serial.operator_report, pooled.operator_report,
            "operator report diverged at {workers} workers"
        );
        assert_eq!(serial.total_shed, pooled.total_shed);
        assert_eq!(serial.flooder_usage, pooled.flooder_usage);
    }
}
