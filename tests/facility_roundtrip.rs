//! End-to-end facility round trips spanning every crate: ingest →
//! metadata → workflow trigger → processing → query → fetch, the full
//! slide-10 architecture in motion.

use lsdf_core::{BackendChoice, DataBrowser, Facility, IngestItem, IngestPolicy, ProjectSpec};
use lsdf_dfs::{ClusterTopology, DfsConfig};
use lsdf_mapreduce::{run_job, JobConfig};
use lsdf_metadata::query::{eq, has_tag};
use lsdf_metadata::{zebrafish_schema, FieldType, SchemaBuilder, Value};
use lsdf_storage::MigrationPolicy;
use lsdf_workflow::{
    Collect, Director, MapActor, Token, TriggerEngine, TriggerRule, VecSource, Workflow,
};
use lsdf_workloads::genomics::{
    count_kmers_sequential, generate_reads, random_genome, KmerCombiner, KmerMapper, KmerReducer,
    ReadSim,
};
use lsdf_workloads::imaging::count_cells;
use lsdf_workloads::microscopy::{HtmGenerator, Image};

fn facility() -> Facility {
    Facility::builder()
        .tenant(ProjectSpec::new(
            zebrafish_schema(),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .tenant(ProjectSpec::new(
            SchemaBuilder::new("genomics")
                .required("sample", FieldType::Str)
                .build()
                .expect("schema builds"),
            BackendChoice::Dfs,
        ))
        .tenant(ProjectSpec::new(
            SchemaBuilder::new("climate")
                .required("year", FieldType::Int)
                .indexed()
                .build()
                .expect("schema builds"),
            BackendChoice::Hsm {
                disk_capacity: 5_000,
                low_watermark: 0.4,
                high_watermark: 0.7,
                policy: MigrationPolicy::OldestFirst,
            },
        ))
        .cluster(
            ClusterTopology::new(2, 4),
            DfsConfig {
                block_size: 101 * 20,
                replication: 2,
                ..DfsConfig::default()
            },
        )
        .build()
        .expect("facility assembles")
}

#[test]
fn microscopy_ingest_trigger_process_query_fetch() {
    let f = facility();
    let admin = f.admin().clone();
    let mut gen = HtmGenerator::new(1, 64);
    // Ingest 5 fish.
    let mut items = Vec::new();
    for _ in 0..5 {
        for (acq, img) in gen.next_fish() {
            items.push(IngestItem {
                project: "zebrafish-htm".into(),
                key: acq.key(),
                data: img.encode(),
                metadata: Some(acq.document()),
            });
        }
    }
    let report = f.ingest_batch(&admin, items, IngestPolicy::default());
    assert_eq!(report.registered, 120);
    assert_eq!(report.rejected, 0);

    // Trigger engine: segmentation on tag.
    let store = f.store("zebrafish-htm").expect("project").clone();
    let adal = f.adal().clone();
    let cred = admin.clone();
    let store2 = store.clone();
    let engine = TriggerEngine::new(
        store.clone(),
        vec![TriggerRule {
            step: "segmentation".into(),
            tag: "todo".into(),
            done_tag: "done".into(),
            remove_trigger_tag: true,
            build: Box::new(move |id, sink| {
                let rec = store2.get(id).expect("dataset");
                let data = adal.get(&cred, &rec.location).expect("payload");
                let mut wf = Workflow::new();
                let src = wf.add(VecSource::new("img", vec![Token::Data(data.to_vec())]));
                let m = wf.add(MapActor::new("count", |t: Token| {
                    let Token::Data(b) = t else { return Err("bytes".into()) };
                    let img = Image::decode(&b).ok_or("decode")?;
                    Ok(vec![
                        Token::str("cells"),
                        Token::int(count_cells(&img, 6) as i64),
                    ])
                }));
                let out = wf.add(Collect::new("sink", sink));
                wf.connect(src, 0, m, 0).expect("ports");
                wf.connect(m, 0, out, 0).expect("ports");
                wf
            }),
        }],
        Director::Sequential,
    );

    let browser = DataBrowser::new(&f, admin.clone());
    let n = browser
        .tag_matching("zebrafish-htm", &eq("fish_id", 2i64), "todo")
        .expect("tagging");
    assert_eq!(n, 24);
    let outcomes = engine.run_pending().expect("workflows run");
    assert_eq!(outcomes.len(), 24);

    // Every processed dataset has queryable results and fetchable bytes.
    let done = browser
        .query("zebrafish-htm", &has_tag("done"))
        .expect("query");
    assert_eq!(done.len(), 24);
    for rec in &done {
        let p = rec.latest_processing("segmentation").expect("recorded");
        assert!(matches!(p.results.get("cells"), Some(Value::Int(_))));
        let bytes = browser.fetch("zebrafish-htm", rec.id).expect("fetch");
        assert_eq!(
            lsdf_storage::sha256(&bytes).to_hex(),
            rec.checksum_hex,
            "payload integrity across the full loop"
        );
    }
}

#[test]
fn genomics_project_runs_mapreduce_on_facility_dfs() {
    let f = facility();
    let admin = f.admin().clone();
    let genome = random_genome(3, 5_000);
    let reads = generate_reads(
        &genome,
        &ReadSim {
            read_len: 100,
            error_rate: 0.0,
            coverage: 6.0,
        },
        5,
    );
    // Ingest through the ADAL into the DFS-backed project.
    f.ingest(
        &admin,
        IngestItem {
            project: "genomics".into(),
            key: "runs/r1".into(),
            data: bytes::Bytes::from(reads.clone()),
            metadata: Some(
                [("sample".to_string(), Value::from("zebrafish-gDNA"))]
                    .into_iter()
                    .collect(),
            ),
        },
        IngestPolicy::default(),
    )
    .expect("ingest");
    // The payload is a DFS file; run MapReduce directly on it.
    let out = run_job(
        f.dfs(),
        &["runs/r1".to_string()],
        &KmerMapper { k: 15 },
        Some(&KmerCombiner),
        &KmerReducer,
        &JobConfig::on_cluster(f.dfs(), 4),
    )
    .expect("job runs");
    let expect = count_kmers_sequential(&reads, 15);
    assert_eq!(out.output.len(), expect.len());
    for (kmer, count) in &out.output {
        assert_eq!(expect.get(kmer), Some(count));
    }
    // And the dataset is still catalogued.
    let rec = f
        .store("genomics")
        .expect("project")
        .get_by_name("runs/r1")
        .expect("catalogued");
    assert_eq!(rec.size_bytes, reads.len() as u64);
}

#[test]
fn climate_archival_tiering_stays_transparent_through_adal() {
    let f = facility();
    let admin = f.admin().clone();
    let mut model = lsdf_workloads::climate::ClimateModel::new(9, 6, 12, 1.0);
    // Ingest 40 daily grids (16+144 B each) into the 5 kB disk tier.
    for day in 0..40 {
        let grid = model.next_day();
        f.ingest(
            &admin,
            IngestItem {
                project: "climate".into(),
                key: format!("daily/d{day:03}"),
                data: grid.encode(),
                metadata: Some(
                    [("year".to_string(), Value::Int(2011))].into_iter().collect(),
                ),
            },
            IngestPolicy::default(),
        )
        .expect("ingest");
        f.hsm("climate").expect("hsm").run_migration().expect("migrate");
    }
    let hsm = f.hsm("climate").expect("hsm");
    let tape_count = hsm
        .catalog()
        .iter()
        .filter(|e| e.tier == lsdf_storage::Tier::Tape)
        .count();
    assert!(tape_count > 0, "old days migrated to tape");
    // Reading an archived day through the unified layer transparently
    // recalls it.
    let data = f
        .adal()
        .get(&admin, "lsdf://climate/daily/d000")
        .expect("transparent recall");
    assert!(lsdf_workloads::climate::ClimateGrid::decode(&data).is_some());
}

#[test]
fn access_control_isolates_projects_end_to_end() {
    let f = facility();
    let admin = f.admin().clone();
    f.ingest(
        &admin,
        IngestItem {
            project: "climate".into(),
            key: "daily/x".into(),
            data: bytes::Bytes::from_static(b"grid"),
            metadata: None,
        },
        IngestPolicy {
            enforce_metadata: false,
        },
    )
    .expect("ingest");
    f.register_user("zeb-token", "biologist");
    f.grant("biologist", "zebrafish-htm", true);
    let cred = lsdf_adal::Credential::Token("zeb-token".into());
    // Can use own project...
    f.adal()
        .put(
            &cred,
            "lsdf://zebrafish-htm/raw/own",
            bytes::Bytes::from_static(b"x"),
        )
        .expect("own project writable");
    // ...but not the climate archive.
    assert!(f.adal().get(&cred, "lsdf://climate/daily/x").is_err());
}
