# Workspace task runner. `just check` is the gate a PR must pass.

# Build, test, lint (clippy + lsdf-lint) the whole workspace.
check:
    cargo build --release
    cargo test -q
    cargo clippy --workspace --all-targets -- -D warnings
    cargo run --release -p lsdf-lint

# Fast compile-only feedback.
build:
    cargo build --release

# Run the full test suite.
test:
    cargo test -q

# Lint with warnings promoted to errors.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Facility-invariant static analysis (determinism, metric names,
# panic-freedom ratchet, lock discipline, lock-order analysis).
lint:
    cargo run --release -p lsdf-lint

# Machine-readable lint report (stable ordering) at
# target/lint-report.json; CI uploads it as an artifact.
lint-json:
    mkdir -p target
    cargo run --release -p lsdf-lint -- --json > target/lint-report.json || true
    cat target/lint-report.json

# Regenerate lint-baseline.json from the current no_panic / raw_locks
# debt (the ratchet refuses to record larger counts than the file
# already holds).
lint-baseline:
    cargo run --release -p lsdf-lint -- --write-baseline

# Operator console: run the seeded chaos demo and print the facility
# status report it writes (tenant sparklines, breakers, durability lag,
# active alerts, slowest operations).
status:
    cargo run --release -p lsdf-examples --bin chaos_run -- 42 > /dev/null
    cat target/operator-report.txt

# Seeded chaos: the 10k-op fault-injection soak plus the demo run.
chaos:
    cargo test -q -p lsdf-integration --test chaos_soak
    cargo run --release -p lsdf-examples --bin chaos_run -- 42

# Full-scale tenant-isolation soak: thousands of tenants, one of them
# chaos-flooded, victims' p99 pinned (CI runs the reduced default).
soak-tenants:
    LSDF_SOAK_TENANTS=2000 cargo test -q --release -p lsdf-integration --test tenant_soak

# Restart-under-chaos soak: seeded kill-and-restart mid-ingest, replay-
# identical recovery, zero acked-write loss, worker-invariant registry.
# Writes the per-crash recovery reports to target/restart-soak-report.json.
soak-restart:
    LSDF_RESTART_REPORT=target/restart-soak-report.json cargo test -q --release -p lsdf-integration --test restart_soak

# Regenerate the paper-vs-measured experiment report (quick mode).
report:
    cargo run --release -p lsdf-bench --bin report -- --quick

# Re-measure the throughput baselines (BENCH_E1.json / BENCH_E3.json /
# BENCH_TRACE.json / BENCH_RECOVERY.json at the workspace root). Commit
# the refreshed files to move the baseline.
bench-snapshot:
    cargo run --release -p lsdf-bench --bin bench_snapshot

# CI smoke: quick-mode ingest throughput must stay within 2x of the
# committed BENCH_E1.json baseline, the WAL ingest tax within 1.5x, and
# a 100k-file recovery within 4x of the committed BENCH_RECOVERY.json
# replay rate (which must keep its million-file row).
bench-smoke:
    cargo run --release -p lsdf-bench --bin bench_snapshot -- --check

# The full facility-day example, registry snapshot included.
day:
    cargo run --release -p lsdf-examples --bin facility_day
