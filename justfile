# Workspace task runner. `just check` is the gate a PR must pass.

# Build, test, and lint the whole workspace.
check:
    cargo build --release
    cargo test -q
    cargo clippy --workspace -- -D warnings

# Fast compile-only feedback.
build:
    cargo build --release

# Run the full test suite.
test:
    cargo test -q

# Lint with warnings promoted to errors.
clippy:
    cargo clippy --workspace -- -D warnings

# Regenerate the paper-vs-measured experiment report (quick mode).
report:
    cargo run --release -p lsdf-bench --bin report -- --quick

# The full facility-day example, registry snapshot included.
day:
    cargo run --release -p lsdf-examples --bin facility_day
