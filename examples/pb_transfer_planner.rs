//! Bulk-transfer planning (paper, slide 11): reproduces the "15 days to
//! transfer 1 PB over an ideal 10 Gb/s link" estimate, sweeps dataset
//! size against link speed, finds the move-data vs move-compute
//! crossover, and cross-checks the analytic numbers against the
//! flow-level facility network simulation.
//!
//! Run with: `cargo run --release -p lsdf-examples --bin pb_transfer_planner`


#![allow(clippy::print_stdout)] // binaries report to stdout by design
use std::cell::RefCell;
use std::rc::Rc;

use lsdf_core::planner::plan_processing;
use lsdf_net::units::{GB, GBIT, PB, TB, TEN_GBIT};
use lsdf_net::{lsdf, movement_crossover, NetSim, Placement, PlacementCosts, TransferModel};
use lsdf_sim::{SimDuration, Simulation};

fn main() {
    // --- The paper's headline estimate --------------------------------
    println!("== 1 PB over 10 Gb/s (paper slide 11) ==");
    for (label, eff) in [("ideal link", 1.0), ("realistic (62% goodput)", 0.62)] {
        let m = TransferModel::with_efficiency(TEN_GBIT, eff);
        println!("  {label:<24} {:>6.2} days", m.days_for_bytes(PB));
    }
    println!("  paper quote:            ~15 days\n");

    // --- Size x bandwidth sweep ---------------------------------------
    println!("== transfer time (days), 70% protocol efficiency ==");
    println!("{:>10} {:>10} {:>10} {:>10}", "size", "1 Gb/s", "10 Gb/s", "100 Gb/s");
    for (label, bytes) in [
        ("1 TB", TB),
        ("10 TB", 10 * TB),
        ("100 TB", 100 * TB),
        ("1 PB", PB),
        ("6 PB", 6 * PB),
    ] {
        let row: Vec<String> = [GBIT, TEN_GBIT, 10.0 * TEN_GBIT]
            .iter()
            .map(|&bw| {
                let m = TransferModel::with_efficiency(bw, 0.7);
                format!("{:>10.2}", m.days_for_bytes(bytes))
            })
            .collect();
        println!("{label:>10} {}", row.join(" "));
    }

    // --- Move data or move compute? ------------------------------------
    println!("\n== bring computing to the data (slide 11) ==");
    let link = TransferModel::with_efficiency(TEN_GBIT, 0.7);
    let staging = SimDuration::from_mins(5);
    let image = 4 * GB;
    let costs = PlacementCosts {
        data_link: link,
        compute_staging: staging,
        compute_image_bytes: image,
    };
    let crossover = movement_crossover(&costs, PB).expect("crossover exists");
    println!(
        "  crossover at {:.0} GB: below this, ship the data; above, ship the VM",
        crossover as f64 / GB as f64
    );
    for bytes in [10 * GB, 500 * GB, 10 * TB, PB] {
        let plan = plan_processing(bytes, link, staging, image);
        println!(
            "  {:>8.1} GB -> {:<12} ({} vs {} for the alternative)",
            bytes as f64 / GB as f64,
            match plan.placement {
                Placement::MoveData => "move data",
                Placement::MoveCompute => "move compute",
            },
            plan.duration,
            plan.alternative,
        );
    }

    // --- Cross-check with the flow-level facility simulation -----------
    println!("\n== flow-level simulation cross-check ==");
    let net = lsdf::build(2).expect("lsdf net builds");
    let sim_net = NetSim::with_efficiency(net.topology.clone(), 0.62);
    let mut sim = Simulation::new();
    let done: Rc<RefCell<Option<f64>>> = Rc::new(RefCell::new(None));
    {
        let done = done.clone();
        sim_net
            .start_flow(&mut sim, net.storage_ibm, net.heidelberg, PB, move |s, _| {
                *done.borrow_mut() = Some(s.now().as_secs_f64());
            })
            .expect("route exists");
    }
    sim.run();
    let days = done.borrow().expect("flow completes") / 86_400.0;
    println!("  simulated 1 PB KIT -> Heidelberg: {days:.2} days (analytic: {:.2})",
        TransferModel::with_efficiency(TEN_GBIT, 0.62).days_for_bytes(PB));

    // Contended: two experiments share the backbone to one storage head.
    let sim_net = NetSim::with_efficiency(net.topology.clone(), 1.0);
    let mut sim = Simulation::new();
    let times: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
    for &daq in &net.daq {
        let times = times.clone();
        sim_net
            .start_flow(&mut sim, daq, net.storage_ibm, 100 * TB, move |s, _| {
                times.borrow_mut().push(s.now().as_secs_f64());
            })
            .expect("route exists");
    }
    sim.run();
    let t = times.borrow();
    println!(
        "  two DAQs x 100 TB into one storage head: {:.2} days each \
         (dual-homed head absorbs both at line rate)",
        t[0] / 86_400.0
    );
    println!("\nplanner complete");
}
