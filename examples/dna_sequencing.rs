//! DNA sequencing on the analysis cluster (paper, slide 13: "DNA
//! sequencing and reconstruction using Hadoop tools"): simulate a
//! sequencing run, load the reads into the DFS, and count canonical
//! k-mers with a MapReduce job — comparing against the sequential
//! reference and showing the effect of combiners and cluster size.
//!
//! Run with: `cargo run --release -p lsdf-examples --bin dna_sequencing`


#![allow(clippy::print_stdout)] // binaries report to stdout by design
use std::time::Instant;

use lsdf_dfs::{ClusterTopology, Dfs, DfsConfig};
use lsdf_mapreduce::{no_combiner, run_job, JobConfig};
use lsdf_workloads::genomics::{
    count_kmers_sequential, generate_reads, random_genome, KmerCombiner, KmerMapper, KmerReducer,
    ReadSim,
};

const GENOME_LEN: usize = 40_000;
const K: usize = 21;

fn main() {
    // --- Sequencing run ----------------------------------------------
    let genome = random_genome(11, GENOME_LEN);
    let sim = ReadSim {
        read_len: 100,
        error_rate: 0.01,
        coverage: 12.0,
    };
    let reads = generate_reads(&genome, &sim, 13);
    println!(
        "sequenced {} bp genome at {}x coverage -> {} MB of reads",
        GENOME_LEN,
        sim.coverage,
        reads.len() / 1_000_000
    );

    // --- Load into the DFS -------------------------------------------
    // 101 bytes per read line; 40 reads per block keeps records aligned.
    let dfs = Dfs::new(
        ClusterTopology::lsdf(),
        DfsConfig {
            block_size: 101 * 40,
            replication: 3,
            ..DfsConfig::default()
        },
    );
    dfs.write("/runs/run1/reads", &reads, None)
        .expect("reads fit");
    let meta = dfs.stat("/runs/run1/reads").expect("file exists");
    println!(
        "stored {} bytes as {} blocks x3 replicas on {} nodes",
        meta.size,
        meta.blocks,
        dfs.topology().node_count()
    );

    // --- Sequential reference ----------------------------------------
    let t = Instant::now(); // lint: allow(determinism) -- demo prints real wall-clock runtime; results are seeded
    let reference = count_kmers_sequential(&reads, K);
    let seq_time = t.elapsed();
    println!(
        "sequential {K}-mer count: {} distinct k-mers in {:.2?}",
        reference.len(),
        seq_time
    );

    // --- MapReduce job, with and without combiner ---------------------
    for (label, use_combiner) in [("no combiner", false), ("combiner", true)] {
        let cfg = JobConfig::on_cluster(&dfs, 8);
        let t = Instant::now(); // lint: allow(determinism) -- demo prints real wall-clock runtime; results are seeded // lint: allow(determinism) -- demo prints real wall-clock runtime; results are seeded
        let out = if use_combiner {
            run_job(
                &dfs,
                &["/runs/run1/reads".to_string()],
                &KmerMapper { k: K },
                Some(&KmerCombiner),
                &KmerReducer,
                &cfg,
            )
        } else {
            run_job(
                &dfs,
                &["/runs/run1/reads".to_string()],
                &KmerMapper { k: K },
                no_combiner::<KmerMapper>(),
                &KmerReducer,
                &cfg,
            )
        }
        .expect("job runs");
        let wall = t.elapsed();
        assert_eq!(out.output.len(), reference.len(), "results must agree");
        println!(
            "mapreduce ({label}): {} maps, locality {}/{}/{} (node/rack/remote), \
             shuffled {} of {} pairs, {:.2?}",
            out.stats.map_tasks,
            out.stats.node_local_maps,
            out.stats.rack_local_maps,
            out.stats.remote_maps,
            out.stats.shuffled_records,
            out.stats.map_output_records,
            wall
        );
    }

    // --- Verify against the reference --------------------------------
    let cfg = JobConfig::on_cluster(&dfs, 8);
    let out = run_job(
        &dfs,
        &["/runs/run1/reads".to_string()],
        &KmerMapper { k: K },
        Some(&KmerCombiner),
        &KmerReducer,
        &cfg,
    )
    .expect("job runs");
    let mut got: Vec<(Vec<u8>, u64)> = out.output;
    got.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (kmer, count) in got.iter().take(5) {
        assert_eq!(reference.get(kmer), Some(count));
        println!(
            "  {:>6}x {}",
            count,
            String::from_utf8_lossy(kmer)
        );
    }
    println!("distributed and sequential counts agree; sequencing demo complete");
}
