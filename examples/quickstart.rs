//! Quickstart: assemble a facility, ingest experiment data, query the
//! metadata repository, and run a tag-triggered workflow — the whole
//! LSDF loop in ~100 lines.
//!
//! Run with: `cargo run -p lsdf-examples --bin quickstart`


#![allow(clippy::print_stdout)] // binaries report to stdout by design
use lsdf_core::{BackendChoice, DataBrowser, Facility, IngestItem, IngestPolicy, ProjectSpec};
use lsdf_metadata::query::{eq, has_tag};
use lsdf_metadata::zebrafish_schema;
use lsdf_workflow::{
    Collect, Director, MapActor, Token, TriggerEngine, TriggerRule, VecSource, Workflow,
};
use lsdf_workloads::imaging::count_cells;
use lsdf_workloads::microscopy::{HtmGenerator, Image};

fn main() {
    // 1. Assemble the facility: one project, object-store backed.
    let facility = Facility::builder()
        .tenant(ProjectSpec::new(
            zebrafish_schema(),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .build()
        .expect("facility assembles");
    let admin = facility.admin().clone();

    // 2. Ingest two fish (48 images) from the microscope generator.
    let mut microscope = HtmGenerator::new(7, 128);
    let mut items = Vec::new();
    for _ in 0..2 {
        for (acq, img) in microscope.next_fish() {
            items.push(IngestItem {
                project: "zebrafish-htm".into(),
                key: acq.key(),
                data: img.encode(),
                metadata: Some(acq.document()),
            });
        }
    }
    let report = facility.ingest_batch(&admin, items, IngestPolicy::default());
    println!(
        "ingested {} datasets ({} bytes), {} rejected",
        report.registered, report.bytes, report.rejected
    );

    // 3. Query the catalog through the DataBrowser.
    let browser = DataBrowser::new(&facility, admin.clone());
    let in_focus = browser
        .query("zebrafish-htm", &eq("focus_um", 0.0))
        .expect("query runs");
    println!("{} images at the in-focus plane", in_focus.len());

    // 4. Wire a segmentation workflow to the "needs-segmentation" tag.
    let store = facility
        .store("zebrafish-htm")
        .expect("project exists")
        .clone();
    let adal = facility.adal().clone();
    let store_for_rule = store.clone();
    let cred = admin.clone();
    let rule = TriggerRule {
        step: "segmentation".into(),
        tag: "needs-segmentation".into(),
        done_tag: "segmented".into(),
        remove_trigger_tag: true,
        build: Box::new(move |dataset_id, sink| {
            // Fetch the image payload and count cells inside the workflow.
            let rec = store_for_rule.get(dataset_id).expect("dataset exists");
            let data = adal.get(&cred, &rec.location).expect("payload readable");
            let mut wf = Workflow::new();
            let src = wf.add(VecSource::new("image", vec![Token::Data(data.to_vec())]));
            let seg = wf.add(MapActor::new("count-cells", |t: Token| {
                let Token::Data(bytes) = t else {
                    return Err("expected image bytes".into());
                };
                let img = Image::decode(&bytes).ok_or("bad image encoding")?;
                let cells = count_cells(&img, 6) as i64;
                Ok(vec![Token::str("cells"), Token::int(cells)])
            }));
            let out = wf.add(Collect::new("results", sink));
            wf.connect(src, 0, seg, 0).expect("ports exist");
            wf.connect(seg, 0, out, 0).expect("ports exist");
            wf
        }),
    };
    let engine = TriggerEngine::new(store.clone(), vec![rule], Director::Sequential);

    // 5. Tag the in-focus images; the engine processes the selection.
    let tagged = browser
        .tag_matching("zebrafish-htm", &eq("focus_um", 0.0), "needs-segmentation")
        .expect("tagging works");
    let outcomes = engine.run_pending().expect("workflows run");
    println!("tagged {tagged}, segmented {} datasets", outcomes.len());

    // 6. Results landed back in the metadata DB, queryable like any field.
    let segmented = browser
        .query("zebrafish-htm", &has_tag("segmented"))
        .expect("query runs");
    assert_eq!(segmented.len(), outcomes.len());
    let sample = &segmented[0];
    let cells = sample
        .latest_processing("segmentation")
        .expect("processing recorded")
        .results
        .get("cells")
        .cloned();
    println!(
        "dataset '{}' -> cells = {}",
        sample.name,
        cells.map(|v| v.to_string()).unwrap_or_default()
    );
    println!("quickstart complete");
}
