//! Shared placeholder library for the examples package.
