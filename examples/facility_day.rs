//! A full facility day: every community from the paper ingests data
//! simultaneously — zebrafish microscopy (auto-tagged and segmented by
//! policy + trigger rules), DNA sequencing analysed on the DFS cluster,
//! KATRIN runs archived through the HSM, climate grids migrated to tape,
//! ANKA tomography scans reconstructed — followed by the operations
//! summary and the capacity projection from slide 14.
//!
//! Run with: `cargo run --release -p lsdf-examples --bin facility_day`


#![allow(clippy::print_stdout)] // binaries report to stdout by design
use lsdf_core::planner::{lsdf_2011_communities, project_growth};
use lsdf_core::{
    AutoTagRule, BackendChoice, DataBrowser, Facility, IngestItem, IngestPolicy, PolicyEngine,
    ProjectSpec,
};
use lsdf_dfs::{ClusterTopology, DfsConfig};
use lsdf_mapreduce::{run_job, JobConfig};
use lsdf_metadata::query::{eq, has_tag};
use lsdf_metadata::{zebrafish_schema, FieldType, SchemaBuilder, Value};
use lsdf_storage::{MigrationPolicy, Tier};
use lsdf_workflow::{
    Collect, Director, MapActor, Token, TriggerEngine, TriggerRule, VecSource, Workflow,
};
use lsdf_workloads::anka::BeamlineScan;
use lsdf_workloads::climate::ClimateModel;
use lsdf_workloads::genomics::{
    generate_reads, random_genome, KmerCombiner, KmerMapper, KmerReducer, ReadSim,
};
use lsdf_workloads::imaging::count_cells;
use lsdf_workloads::katrin::KatrinGenerator;
use lsdf_workloads::microscopy::{HtmGenerator, Image};

fn main() {
    // ---- Assemble the facility with all five communities -------------
    let facility = Facility::builder()
        .tenant(ProjectSpec::new(
            zebrafish_schema(),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .tenant(ProjectSpec::new(
            SchemaBuilder::new("genomics")
                .required("sample", FieldType::Str)
                .build()
                .expect("schema"),
            BackendChoice::Dfs,
        ))
        .tenant(ProjectSpec::new(
            SchemaBuilder::new("katrin")
                .required("run", FieldType::Int)
                .indexed()
                .build()
                .expect("schema"),
            BackendChoice::Hsm {
                disk_capacity: 500_000,
                low_watermark: 0.4,
                high_watermark: 0.7,
                policy: MigrationPolicy::OldestFirst,
            },
        ))
        .tenant(ProjectSpec::new(
            SchemaBuilder::new("climate")
                .required("day", FieldType::Int)
                .indexed()
                .build()
                .expect("schema"),
            BackendChoice::Hsm {
                disk_capacity: 120_000,
                low_watermark: 0.4,
                high_watermark: 0.7,
                policy: MigrationPolicy::OldestFirst,
            },
        ))
        .tenant(ProjectSpec::new(
            SchemaBuilder::new("anka")
                .required("scan", FieldType::Int)
                .indexed()
                .required("angles", FieldType::Int)
                .build()
                .expect("schema"),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .cluster(
            ClusterTopology::new(2, 4),
            DfsConfig {
                block_size: 101 * 40,
                replication: 2,
                ..DfsConfig::default()
            },
        )
        .build()
        .expect("facility assembles");
    let admin = facility.admin().clone();
    println!("facility up: projects {:?}", facility.projects());

    // ---- Zebrafish: policy auto-tag + trigger segmentation -----------
    let zstore = facility.store("zebrafish-htm").expect("project").clone();
    let _policy = PolicyEngine::attach(
        zstore.clone(),
        vec![AutoTagRule {
            name: "queue-infocus-488".into(),
            predicate: eq("focus_um", 0.0).and(eq("wavelength_nm", 488.0)),
            tag: "needs-segmentation".into(),
        }],
    );
    let adal = facility.adal().clone();
    let cred = admin.clone();
    let zstore2 = zstore.clone();
    let trigger = TriggerEngine::with_registry(
        zstore.clone(),
        vec![TriggerRule {
            step: "segmentation".into(),
            tag: "needs-segmentation".into(),
            done_tag: "segmented".into(),
            remove_trigger_tag: true,
            build: Box::new(move |id, sink| {
                let rec = zstore2.get(id).expect("dataset");
                let data = adal.get(&cred, &rec.location).expect("payload");
                let mut wf = Workflow::new();
                let src = wf.add(VecSource::new("img", vec![Token::Data(data.to_vec())]));
                let seg = wf.add(MapActor::new("segment", |t: Token| {
                    let Token::Data(b) = t else { return Err("bytes".into()) };
                    let img = Image::decode(&b).ok_or("decode")?;
                    Ok(vec![
                        Token::str("cells"),
                        Token::int(count_cells(&img, 6) as i64),
                    ])
                }));
                let out = wf.add(Collect::new("results", sink));
                wf.connect(src, 0, seg, 0).expect("ports");
                wf.connect(seg, 0, out, 0).expect("ports");
                wf
            }),
        }],
        Director::Sequential,
        facility.obs().clone(),
    );
    let mut microscope = HtmGenerator::new(2026, 96);
    for _ in 0..8 {
        for (acq, img) in microscope.next_fish() {
            facility
                .ingest(
                    &admin,
                    IngestItem {
                        project: "zebrafish-htm".into(),
                        key: acq.key(),
                        data: img.encode(),
                        metadata: Some(acq.document()),
                    },
                    IngestPolicy::default(),
                )
                .expect("ingest");
        }
    }
    let outcomes = trigger.run_pending().expect("workflows run");
    println!(
        "zebrafish: 192 images in; policy queued {} in-focus 488nm frames; segmented {}",
        outcomes.len(),
        outcomes.len()
    );

    // ---- Genomics: reads to the DFS, k-mer job on the cluster --------
    let genome = random_genome(11, 20_000);
    let reads = generate_reads(
        &genome,
        &ReadSim {
            read_len: 100,
            error_rate: 0.01,
            coverage: 8.0,
        },
        13,
    );
    facility
        .ingest(
            &admin,
            IngestItem {
                project: "genomics".into(),
                key: "runs/today".into(),
                data: bytes::Bytes::from(reads.clone()),
                metadata: Some(
                    [("sample".to_string(), Value::from("zebrafish-gDNA"))]
                        .into_iter()
                        .collect(),
                ),
            },
            IngestPolicy::default(),
        )
        .expect("ingest");
    let job = run_job(
        facility.dfs(),
        &["runs/today".to_string()],
        &KmerMapper { k: 21 },
        Some(&KmerCombiner),
        &KmerReducer,
        &JobConfig::on_cluster(facility.dfs(), 4),
    )
    .expect("job runs");
    println!(
        "genomics: {} of reads -> {} distinct 21-mers on the cluster ({} maps, {}/{}/{} locality)",
        reads.len(),
        job.output.len(),
        job.stats.map_tasks,
        job.stats.node_local_maps,
        job.stats.rack_local_maps,
        job.stats.remote_maps
    );

    // ---- KATRIN: runs into the HSM-backed archive ---------------------
    let mut katrin = KatrinGenerator::new(21, 0.0, 1000.0);
    for run in 0..20 {
        let data = katrin.run_bytes(2000);
        facility
            .ingest(
                &admin,
                IngestItem {
                    project: "katrin".into(),
                    key: format!("runs/run{run:04}"),
                    data: bytes::Bytes::from(data.to_vec()),
                    metadata: Some(
                        [("run".to_string(), Value::Int(run))].into_iter().collect(),
                    ),
                },
                IngestPolicy::default(),
            )
            .expect("ingest");
        facility.hsm("katrin").expect("hsm").run_migration().expect("migrate");
    }
    let k_tape = facility
        .hsm("katrin")
        .expect("hsm")
        .catalog()
        .iter()
        .filter(|e| e.tier == Tier::Tape)
        .count();
    println!("katrin: 20 runs archived; {k_tape} already on tape");

    // ---- Climate: daily grids through HSM ------------------------------
    let mut climate = ClimateModel::new(9, 45, 90, 2.0);
    for day in 0..30 {
        facility
            .ingest(
                &admin,
                IngestItem {
                    project: "climate".into(),
                    key: format!("daily/d{day:03}"),
                    data: climate.next_day().encode(),
                    metadata: Some(
                        [("day".to_string(), Value::Int(day))].into_iter().collect(),
                    ),
                },
                IngestPolicy::default(),
            )
            .expect("ingest");
        facility.hsm("climate").expect("hsm").run_migration().expect("migrate");
    }
    let c_tape = facility
        .hsm("climate")
        .expect("hsm")
        .catalog()
        .iter()
        .filter(|e| e.tier == Tier::Tape)
        .count();
    println!("climate: 30 daily grids archived; {c_tape} migrated to tape");

    // ---- ANKA: tomography scans + reconstruction check -----------------
    let mut beamline = BeamlineScan::new(3, 48, 64);
    for _ in 0..6 {
        let (id, sino) = beamline.next_scan();
        let recon = sino.backproject(32);
        let peak = recon.iter().cloned().fold(0.0f32, f32::max);
        facility
            .ingest(
                &admin,
                IngestItem {
                    project: "anka".into(),
                    key: format!("scans/scan{id:04}"),
                    data: sino.encode(),
                    metadata: Some(
                        [
                            ("scan".to_string(), Value::Int(id as i64)),
                            ("angles".to_string(), Value::Int(i64::from(sino.angles))),
                        ]
                        .into_iter()
                        .collect(),
                    ),
                },
                IngestPolicy::default(),
            )
            .expect("ingest");
        assert!(peak > 0.0, "reconstruction must see the absorbers");
    }
    println!("anka: 6 tomography scans stored and reconstructed");

    // ---- Operations summary --------------------------------------------
    let browser = DataBrowser::new(&facility, admin.clone());
    println!("\n== end-of-day operations summary ==");
    for project in facility.projects() {
        let store = facility.store(&project).expect("project");
        let report = browser.findability(&project).expect("audit");
        println!(
            "  {project:<14} {:>5} datasets, {:>10} bytes, {} invisible",
            store.len(),
            store.total_bytes(),
            report.invisible
        );
    }
    let segmented = browser
        .query("zebrafish-htm", &has_tag("segmented"))
        .expect("query");
    println!("  segmentation results queryable: {}", segmented.len());
    let json = browser
        .export_json("katrin", &eq("run", 0i64))
        .expect("export");
    println!("  sample JSON export (katrin run 0): {} bytes", json.len());

    // ---- Observability: the facility-wide registry ----------------------
    // Every subsystem above recorded into one shared lsdf-obs registry:
    // ADAL ops and latencies, HSM tier transitions, DFS block locality,
    // ingest outcomes per project, workflow firings. Export it whole.
    println!("\n== metrics registry snapshot (lsdf-obs) ==");
    println!("{}", facility.obs().to_json());

    // ---- Capacity projection (slide 14 outlook) -------------------------
    println!("\n== capacity projection (paper slide 5/14) ==");
    for row in project_growth(&lsdf_2011_communities(), 4) {
        println!(
            "  year {}: +{:>6.2} PB produced, {:>6.2} PB cumulative",
            2011 + row.year,
            row.produced_bytes / 1e15,
            row.cumulative_bytes / 1e15
        );
    }
    println!("\nfacility day complete");
}
