//! Zebrafish high-throughput-microscopy screening day (paper, slides 4–5,
//! 12): a scaled-down acquisition day flows through ingest, automated
//! tag-triggered segmentation, and quality queries, then the measured
//! throughput is extrapolated to the paper's 200 000-images/day rate.
//!
//! Run with: `cargo run --release -p lsdf-examples --bin zebrafish_screening`


#![allow(clippy::print_stdout)] // binaries report to stdout by design
use std::time::Instant;

use lsdf_core::{BackendChoice, DataBrowser, Facility, IngestItem, IngestPolicy, ProjectSpec};
use lsdf_metadata::query::{eq, ge, has_tag};
use lsdf_metadata::{zebrafish_schema, Value};
use lsdf_workflow::{
    Collect, Director, MapActor, Token, TriggerEngine, TriggerRule, VecSource, Workflow,
};
use lsdf_workloads::imaging::count_cells;
use lsdf_workloads::microscopy::{rates, HtmGenerator, Image};

const FISH: usize = 20; // scaled-down day: 20 fish = 480 images
const EDGE: u32 = 128; // scaled-down image edge (full size: 2000)

fn main() {
    let facility = Facility::builder()
        .tenant(ProjectSpec::new(
            zebrafish_schema(),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .build()
        .expect("facility assembles");
    let admin = facility.admin().clone();

    // --- Acquisition + ingest ---------------------------------------
    let mut microscope = HtmGenerator::new(2026, EDGE);
    let t0 = Instant::now(); // lint: allow(determinism) -- demo prints real wall-clock runtime; results are seeded
    let mut items = Vec::new();
    for _ in 0..FISH {
        for (acq, img) in microscope.next_fish() {
            items.push(IngestItem {
                project: "zebrafish-htm".into(),
                key: acq.key(),
                data: img.encode(),
                metadata: Some(acq.document()),
            });
        }
    }
    let gen_time = t0.elapsed();
    let t1 = Instant::now(); // lint: allow(determinism) -- demo prints real wall-clock runtime; results are seeded
    let report = facility.ingest_batch(&admin, items, IngestPolicy::default());
    let ingest_time = t1.elapsed();
    println!(
        "acquired {} images in {:.2?}, ingested {} ({} MB) in {:.2?}",
        report.registered,
        gen_time,
        report.registered,
        report.bytes / 1_000_000,
        ingest_time
    );
    let img_per_sec = report.registered as f64 / ingest_time.as_secs_f64();
    let day_capacity = img_per_sec * 86_400.0;
    println!(
        "ingest rate: {:.0} images/s -> {:.1}x the paper's 200k images/day",
        img_per_sec,
        day_capacity / rates::IMAGES_PER_DAY as f64
    );

    // --- Automated segmentation via tag triggers ---------------------
    let store = facility
        .store("zebrafish-htm")
        .expect("project exists")
        .clone();
    let adal = facility.adal().clone();
    let cred = admin.clone();
    let store_rule = store.clone();
    let rule = TriggerRule {
        step: "segmentation".into(),
        tag: "needs-segmentation".into(),
        done_tag: "segmented".into(),
        remove_trigger_tag: true,
        build: Box::new(move |id, sink| {
            let rec = store_rule.get(id).expect("dataset exists");
            let data = adal.get(&cred, &rec.location).expect("payload readable");
            let mut wf = Workflow::new();
            let src = wf.add(VecSource::new("image", vec![Token::Data(data.to_vec())]));
            let seg = wf.add(MapActor::new("segment", |t: Token| {
                let Token::Data(bytes) = t else {
                    return Err("expected bytes".into());
                };
                let img = Image::decode(&bytes).ok_or("bad encoding")?;
                Ok(vec![
                    Token::str("cells"),
                    Token::int(count_cells(&img, 6) as i64),
                ])
            }));
            let out = wf.add(Collect::new("results", sink));
            wf.connect(src, 0, seg, 0).expect("ports");
            wf.connect(seg, 0, out, 0).expect("ports");
            wf
        }),
    };
    let engine = TriggerEngine::new(store.clone(), vec![rule], Director::Sequential);
    let browser = DataBrowser::new(&facility, admin.clone());

    // The screening protocol segments the in-focus 488 nm channel.
    let t2 = Instant::now(); // lint: allow(determinism) -- demo prints real wall-clock runtime; results are seeded
    let selected = browser
        .tag_matching(
            "zebrafish-htm",
            &eq("focus_um", 0.0).and(eq("wavelength_nm", 488.0)),
            "needs-segmentation",
        )
        .expect("selection works");
    let outcomes = engine.run_pending().expect("workflows run");
    let seg_time = t2.elapsed();
    println!(
        "segmented {} of {} selected images in {:.2?} ({:.1} images/s)",
        outcomes.len(),
        selected,
        seg_time,
        outcomes.len() as f64 / seg_time.as_secs_f64()
    );

    // --- Science queries over the combined metadata ------------------
    let mut counts: Vec<i64> = Vec::new();
    for rec in browser
        .query("zebrafish-htm", &has_tag("segmented"))
        .expect("query runs")
    {
        if let Some(Value::Int(c)) = rec
            .latest_processing("segmentation")
            .and_then(|p| p.results.get("cells"))
        {
            counts.push(*c);
        }
    }
    counts.sort_unstable();
    let median = counts[counts.len() / 2];
    println!(
        "cell counts: n={} min={} median={} max={}",
        counts.len(),
        counts.first().expect("nonempty"),
        median,
        counts.last().expect("nonempty"),
    );
    // Flag outlier fish (toxicological endpoint: too few cells).
    let low = browser
        .query("zebrafish-htm", &has_tag("segmented"))
        .expect("query")
        .into_iter()
        .filter(|r| {
            matches!(
                r.latest_processing("segmentation")
                    .and_then(|p| p.results.get("cells")),
                Some(Value::Int(c)) if *c < median / 2
            )
        })
        .count();
    println!("{low} images flagged below half-median cell count");

    // Range queries on acquisition metadata keep working alongside.
    let late = browser
        .query(
            "zebrafish-htm",
            &ge("acquired_at", Value::Time((FISH as i64 / 2) * 1_000_000_000)),
        )
        .expect("query runs");
    println!("{} images from the second half of the day", late.len());
    println!("screening day complete");
}
