//! Seeded chaos run: a resilient ADAL mount over a fault-injected
//! object store, driven through an outage with full causal tracing on,
//! then a JSON obs report, the slowest traces, and a facility-health
//! verdict.
//!
//! ```text
//! cargo run -p lsdf-examples --bin chaos_run -- [seed]
//! ```
//!
//! The same seed always produces the same faults, the same retries and
//! the same report — paste a failing seed into a test and it replays.
//! Artifacts land under `target/`: `chaos-trace.json` (open it at
//! chrome://tracing), `facility-health.json` (the final SLO report),
//! `operator-report.txt` (the operator console), and
//! `chaos-collapsed.txt` (collapsed stacks for flamegraph.pl).


#![allow(clippy::print_stdout)] // binaries report to stdout by design
use std::sync::Arc;

use bytes::Bytes;

use lsdf_adal::{
    Acl, Adal, Credential, ObjectStoreBackend, ResilienceConfig, StorageBackend, TokenAuth,
};
use lsdf_chaos::{FaultPlan, FaultyBackend};
use lsdf_obs::{
    facility_status, names, ConsoleInputs, Registry, SloMonitor, SloRule, SpanProfile,
    TelemetryConfig, TelemetryStore, TraceConfig, Tracer,
};
use lsdf_sim::SimRng;
use lsdf_storage::ObjectStore;

const MS: u64 = 1_000_000;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // Shared registry on a virtual clock: the run is bit-reproducible.
    let reg = Arc::new(Registry::new());
    reg.set_virtual_time_ns(1);

    let auth = Arc::new(TokenAuth::new());
    auth.register("tok", "operator");
    let acl = Arc::new(Acl::new());
    acl.grant("operator", "screening", true);
    // Full causal tracing: every ADAL op mints a trace whose children
    // record retries, breaker flips, and injected faults.
    let tracer = Tracer::new(&reg, TraceConfig::full().capacity(4096).seed(seed));
    let adal = Adal::builder()
        .auth(auth)
        .acl(acl)
        .registry(reg.clone())
        .tracer(tracer.clone())
        .build();
    let cred = Credential::Token("tok".into());

    // The SLO under watch: the screening project's breaker stays closed.
    let rule = format!("gauge({}{{project=screening}}) == 0", names::ADAL_BREAKER_STATE);
    let monitor = SloMonitor::new(vec![SloRule::parse(&rule).expect("rule parses")]);
    let mut violated_evals = 0u64;
    // Telemetry history every 10 virtual ms: feeds the sparklines in
    // the operator report written at the end of the run.
    let telemetry = TelemetryStore::new(TelemetryConfig::default().interval_ns(10 * MS));

    // Primary disk array wrapped in a fault plan: 5 % transient errors,
    // 2 % torn writes, and a hard outage for backend ops 60..90.
    let primary: Arc<dyn StorageBackend> = Arc::new(ObjectStoreBackend::new(Arc::new(
        ObjectStore::new("screening-primary", u64::MAX),
    )));
    let plan = FaultPlan::quiet(seed)
        .transient(0.05)
        .torn_writes(0.02)
        .latency_spikes(0.05, 2 * MS)
        .outage(60, 90);
    let faulty: Arc<dyn StorageBackend> =
        FaultyBackend::new("screening", primary, plan, &reg);
    let replica: Arc<dyn StorageBackend> = Arc::new(ObjectStoreBackend::new(Arc::new(
        ObjectStore::new("screening-replica", u64::MAX),
    )));
    adal.mount_resilient(
        "screening",
        faulty,
        Some(replica),
        ResilienceConfig {
            seed,
            ..ResilienceConfig::default()
        },
    );

    // 300 ops of seeded ingest + readback across the outage.
    let mut rng = SimRng::seed_from_u64(seed).stream("chaos-example");
    let mut acked: Vec<String> = Vec::new();
    let (mut ok_puts, mut ok_gets) = (0u64, 0u64);
    for i in 0..300u64 {
        reg.set_virtual_time_ns(1 + i * MS);
        if i % 2 == 0 {
            let path = format!("lsdf://screening/img/{i:04}");
            let len = rng.range_u64(16, 128) as usize;
            let data: Vec<u8> = (0..len).map(|_| rng.range_u64(0, 256) as u8).collect();
            if adal.put(&cred, &path, Bytes::from(data)).is_ok() {
                ok_puts += 1;
                acked.push(path);
            }
        } else if !acked.is_empty() {
            let path = &acked[rng.index(acked.len())];
            if adal.get(&cred, path).is_ok() {
                ok_gets += 1;
            }
        }
        if !monitor.evaluate(&reg).healthy {
            violated_evals += 1;
        }
        telemetry.maybe_scrape(&reg);
    }

    // Recovery: cool the breaker down and drain the redo journal.
    let mut drained = 0;
    for round in 1..=100u64 {
        reg.set_virtual_time_ns(1 + (300 + round * 60) * MS);
        drained += adal.drain_journal("screening");
        if adal.health("screening").unwrap().journal_depth == 0 {
            break;
        }
    }

    let h = adal.health("screening").unwrap();
    println!("chaos run (seed {seed})");
    println!("  acked puts         : {ok_puts}");
    println!("  successful reads   : {ok_gets}");
    println!("  journal drained    : {drained}");
    println!("  breaker            : {:?} (failure rate {:.2})", h.breaker, h.failure_rate);
    println!("  retries            : {}", h.retries);
    println!("  failover reads     : {}", h.failover_reads);
    println!(
        "  injected faults    : {}",
        reg.counter_total(names::CHAOS_INJECTED_TOTAL)
    );
    assert_eq!(h.journal_depth, 0, "journal must drain after recovery");
    // Zero data loss: every acked put is still readable.
    for path in &acked {
        adal.get(&cred, path).expect("acked write lost");
    }
    println!("  data loss          : none ({} keys verified)", acked.len());

    // The SLO flipped to violated while the breaker was open, and the
    // facility is demonstrably healthy again after recovery.
    let health = monitor.evaluate(&reg);
    assert!(
        violated_evals >= 1,
        "the outage must flip the breaker SLO at least once"
    );
    assert!(health.healthy, "facility must be healthy after recovery");
    println!("  slo violations     : {violated_evals} evaluations during the outage");
    println!("  facility health    : healthy again after recovery");

    println!("\n--- slowest traces ---");
    println!("{}", tracer.render_slowest(3));

    std::fs::create_dir_all("target").expect("create target dir");
    let trace_path = "target/chaos-trace.json";
    std::fs::write(trace_path, tracer.export_chrome()).expect("write chrome trace");
    println!("wrote {trace_path} (open at chrome://tracing)");
    let health_path = "target/facility-health.json";
    std::fs::write(health_path, health.to_json()).expect("write health report");
    println!("wrote {health_path}");

    // Operator console + span profile: the same artifacts CI uploads
    // from the chaos soak, reproducible byte-for-byte from the seed.
    telemetry.scrape(&reg);
    let profile = SpanProfile::from_traces(&tracer.traces());
    let report = facility_status(&ConsoleInputs {
        registry: &reg,
        telemetry: Some(&telemetry),
        health: &health,
        profile: Some(&profile),
    });
    let report_path = "target/operator-report.txt";
    std::fs::write(report_path, &report).expect("write operator report");
    println!("wrote {report_path}");
    let collapsed_path = "target/chaos-collapsed.txt";
    std::fs::write(collapsed_path, profile.collapsed_stacks()).expect("write collapsed stacks");
    println!("wrote {collapsed_path} (flamegraph.pl-compatible collapsed stacks)");

    println!("\n--- obs report (JSON) ---");
    println!("{}", reg.to_json());
}
