//! KATRIN event archival (paper, slide 14): ingest neutrino-experiment
//! runs into an HSM-backed project, let watermark migration move cold
//! runs to tape, recall an old run for reanalysis, and model the recall
//! latency on the tape-library simulator.
//!
//! Run with: `cargo run --release -p lsdf-examples --bin katrin_archive`


#![allow(clippy::print_stdout)] // binaries report to stdout by design
use std::cell::RefCell;
use std::rc::Rc;

use lsdf_core::{BackendChoice, Facility, IngestItem, IngestPolicy, ProjectSpec};
use lsdf_metadata::{FieldType, SchemaBuilder, Value};
use lsdf_sim::Simulation;
use lsdf_storage::{MigrationPolicy, TapeLibrary, TapeOp, TapeParams, Tier};
use lsdf_workloads::katrin::{KatrinGenerator, Spectrum, ENDPOINT_EV};

const RUNS: usize = 30;
const EVENTS_PER_RUN: usize = 2_000;

fn main() {
    // --- Facility with an HSM-backed KATRIN project --------------------
    let schema = SchemaBuilder::new("katrin")
        .required("run", FieldType::Int)
        .indexed()
        .required("m_nu_hypothesis_ev", FieldType::Float)
        .required("events", FieldType::Int)
        .build()
        .expect("schema builds");
    let facility = Facility::builder()
        .tenant(ProjectSpec::new(
            schema,
            BackendChoice::Hsm {
                // Small disk tier so migration actually happens.
                disk_capacity: 12 * EVENTS_PER_RUN as u64 * 18,
                low_watermark: 0.4,
                high_watermark: 0.75,
                policy: MigrationPolicy::OldestFirst,
            },
        ))
        .build()
        .expect("facility assembles");
    let admin = facility.admin().clone();

    // --- Ingest a month of runs ----------------------------------------
    let mut gen = KatrinGenerator::new(21, 0.0, 1_000.0);
    for run in 0..RUNS {
        let data = gen.run_bytes(EVENTS_PER_RUN);
        let doc = [
            ("run".to_string(), Value::Int(run as i64)),
            ("m_nu_hypothesis_ev".to_string(), Value::Float(0.0)),
            ("events".to_string(), Value::Int(EVENTS_PER_RUN as i64)),
        ]
        .into_iter()
        .collect();
        facility
            .ingest(
                &admin,
                IngestItem {
                    project: "katrin".into(),
                    key: format!("runs/run{run:04}"),
                    data: bytes::Bytes::from(data.to_vec()),
                    metadata: Some(doc),
                },
                IngestPolicy::default(),
            )
            .expect("ingest succeeds");
        // The facility's migration daemon runs between ingests.
        facility
            .hsm("katrin")
            .expect("HSM-backed")
            .run_migration()
            .expect("migration succeeds");
    }
    let hsm = facility.hsm("katrin").expect("HSM-backed");
    let on_tape = hsm
        .catalog()
        .iter()
        .filter(|e| e.tier == Tier::Tape)
        .count();
    let (demotions, _) = hsm.counters();
    println!(
        "ingested {RUNS} runs; {} on tape after {} demotions (disk at {:.0}%)",
        on_tape,
        demotions,
        hsm.disk_usage() * 100.0
    );

    // --- Recall an old run for reanalysis -------------------------------
    let old_run = "runs/run0000";
    assert_eq!(hsm.tier_of(old_run).expect("catalogued"), Tier::Tape);
    let data = hsm.get(old_run).expect("transparent recall");
    assert_eq!(hsm.tier_of(old_run).expect("catalogued"), Tier::Disk);
    let mut spectrum = Spectrum::new(ENDPOINT_EV - 200.0, 2.0, 100);
    let n = spectrum.fill_run(&data);
    println!(
        "recalled {old_run} from tape: {n} events, {} within 40 eV of the endpoint",
        spectrum.endpoint_counts(40.0)
    );

    // --- Tape-library latency model (the physical recall cost) ----------
    println!("\ntape recall latency (LTO-5 library, 4 drives):");
    let lib = TapeLibrary::new(TapeParams::lto5(4));
    let mut sim = Simulation::new();
    let latencies: Rc<RefCell<Vec<(usize, f64)>>> = Rc::new(RefCell::new(Vec::new()));
    // A reanalysis campaign recalls 12 archived runs (2 GB each) at once.
    for i in 0..12usize {
        let latencies = latencies.clone();
        lib.submit(&mut sim, TapeOp::Recall, 2_000_000_000, move |_, c| {
            latencies
                .borrow_mut()
                .push((i, c.finished.since(c.submitted).as_secs_f64()));
        });
    }
    sim.run();
    let lat = latencies.borrow();
    let mean = lat.iter().map(|&(_, s)| s).sum::<f64>() / lat.len() as f64;
    let max = lat.iter().map(|&(_, s)| s).fold(0.0, f64::max);
    println!(
        "  12 recalls x 2 GB: first {:.0} s, mean {:.0} s, last {:.0} s \
         (drive + robot contention)",
        lat.iter().map(|&(_, s)| s).fold(f64::MAX, f64::min),
        mean,
        max
    );
    let stats = lib.recall_latency();
    println!(
        "  unloaded latency would be {:.0} s -> queueing inflates the mean {:.1}x",
        lib.unloaded_latency(2_000_000_000).as_secs_f64(),
        stats.mean() / lib.unloaded_latency(2_000_000_000).as_secs_f64()
    );
    println!("\narchive demo complete");
}
