//! Torn-tail property, proved exhaustively: a WAL image cut at EVERY
//! byte offset (and corrupted at every byte offset) replays without
//! panicking, yields exactly the committed frame prefix, and — after
//! the recovery-time tail repair — accepts new appends that survive
//! the next replay.

use std::sync::Arc;

use lsdf_durability::{parse_frames, DurableLog, DurableStore, WalConfig, FRAME_HEADER_LEN};
use lsdf_obs::Registry;

/// Patterned records of awkward sizes: empty, tiny, header-sized,
/// and multi-header payloads.
fn records() -> Vec<Vec<u8>> {
    [0usize, 1, 7, FRAME_HEADER_LEN, 32, 255, 9]
        .iter()
        .enumerate()
        .map(|(i, &len)| (0..len).map(|j| (i * 31 + j) as u8).collect())
        .collect()
}

/// Writes the records through a real log and returns the durable
/// segment image plus the cumulative frame-boundary offsets.
fn committed_image() -> (Vec<u8>, Vec<usize>) {
    let store = DurableStore::new();
    let log = DurableLog::open(store.clone(), "t", &Arc::new(Registry::new()), WalConfig::default());
    let mut boundaries = vec![0usize];
    for r in records() {
        log.append_commit(&r);
        boundaries.push(boundaries.last().unwrap() + FRAME_HEADER_LEN + r.len());
    }
    let bytes = store.get("t-wal-00000000").expect("segment 0 exists").read();
    assert_eq!(bytes.len(), *boundaries.last().unwrap());
    (bytes, boundaries)
}

/// Frames wholly committed below `cut`.
fn expect_prefix(boundaries: &[usize], cut: usize) -> usize {
    boundaries.iter().filter(|&&b| b != 0 && b <= cut).count()
}

#[test]
fn truncation_at_every_byte_offset_replays_the_committed_prefix() {
    let all = records();
    let (bytes, boundaries) = committed_image();
    for cut in 0..=bytes.len() {
        let want = expect_prefix(&boundaries, cut);
        // Pure parser: exact prefix, torn iff the cut split a frame.
        let (parsed, torn) = parse_frames(&bytes[..cut]);
        assert_eq!(parsed.len(), want, "cut={cut}");
        assert_eq!(parsed, all[..want].to_vec(), "cut={cut}");
        assert_eq!(torn, !boundaries.contains(&cut), "cut={cut}");

        // Full log recovery over a device truncated at the same offset.
        let store = DurableStore::new();
        store.open("t-wal-00000000").set(&bytes[..cut]);
        let log = DurableLog::open(
            store.clone(),
            "t",
            &Arc::new(Registry::new()),
            WalConfig::default(),
        );
        let r = log.replay_from(0);
        assert_eq!(r.records, all[..want].to_vec(), "cut={cut}");
        assert_eq!(r.torn_tails, u64::from(torn), "cut={cut}");
        // The repair leaves the log appendable: an ack'd write after
        // recovery survives the next replay at every cut point.
        log.append_commit(b"post-recovery");
        let r2 = log.replay_from(0);
        assert_eq!(r2.records.len(), want + 1, "cut={cut}");
        assert_eq!(r2.records[want], b"post-recovery".to_vec(), "cut={cut}");
        assert_eq!(r2.torn_tails, 0, "cut={cut} tail not repaired");
    }
}

#[test]
fn corruption_at_every_byte_offset_never_panics_and_never_invents_records() {
    let all = records();
    let (bytes, _) = committed_image();
    for pos in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0xFF;
        let (parsed, torn) = parse_frames(&corrupted);
        // A flipped byte can only shorten the committed prefix — replay
        // must never fabricate or reorder records past the damage.
        assert!(torn, "pos={pos}: corruption must mark the tail torn");
        assert!(
            parsed.len() < all.len() && parsed == all[..parsed.len()].to_vec(),
            "pos={pos}: parsed a non-prefix after corruption"
        );
    }
}
