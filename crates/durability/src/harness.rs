//! [`ComponentDurability`] — the one-stop handle a stateful component
//! (namenode, metadata store) holds to get WAL + checkpoints + recovery
//! without re-implementing the epoch dance.
//!
//! Protocol per component:
//!
//! * every acked mutation calls [`ComponentDurability::log`] with a
//!   canonical record *before* returning to the caller;
//! * a background reconciler polls [`ComponentDurability::should_checkpoint`]
//!   and calls [`ComponentDurability::checkpoint_with`] with a canonical
//!   full-state snapshot;
//! * after a crash, [`ComponentDurability::recover`] hands back the
//!   latest verified checkpoint plus the committed WAL suffix, which the
//!   component applies idempotently.

use crate::checkpoint::CheckpointStore;
use crate::device::DurableStore;
use crate::log::{DurableLog, WalConfig};
use lsdf_obs::names;
use lsdf_obs::{Counter, Histogram, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Modeled cost of applying one replayed record during recovery.
const REPLAY_NS_PER_RECORD: u64 = 1_000;
/// Modeled fixed cost of opening the log + manifest during recovery.
const RECOVERY_BASE_NS: u64 = 20_000;

/// Facility-level durability tuning, shared by every component.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityConfig {
    /// Modeled single-fsync latency (see [`WalConfig::fsync_ns`]).
    pub fsync_ns: u64,
    /// Records per accounted fsync (see [`WalConfig::group_commit`]).
    pub group_commit: u64,
    /// Checkpoint after this many WAL records since the last one.
    pub checkpoint_every: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self { fsync_ns: 50_000, group_commit: 8, checkpoint_every: 4_096 }
    }
}

/// What [`ComponentDurability::recover`] found on disk.
pub struct Recovered {
    /// Verified checkpoint snapshot, if any.
    pub snapshot: Option<Vec<u8>>,
    /// Committed WAL records to replay over the snapshot, in log order.
    pub records: Vec<Vec<u8>>,
    /// Segments that ended in a torn frame (discarded un-acked tails).
    pub torn_tails: u64,
}

struct RecoveryObs {
    runs: Counter,
    replayed: Counter,
    skipped: Counter,
    latency: Histogram,
}

/// WAL + checkpoint + recovery bundle for one named component.
pub struct ComponentDurability {
    log: DurableLog,
    ckpts: CheckpointStore,
    checkpoint_every: u64,
    since_ckpt: AtomicU64,
    obs: RecoveryObs,
}

impl ComponentDurability {
    /// Opens (or creates) the durable state for component `name`.
    pub fn open(
        store: &DurableStore,
        name: &str,
        registry: &Arc<Registry>,
        cfg: &DurabilityConfig,
    ) -> Self {
        let wal_cfg = WalConfig { fsync_ns: cfg.fsync_ns, group_commit: cfg.group_commit };
        let labels = &[("log", name)];
        let obs = RecoveryObs {
            runs: registry.counter(names::RECOVERY_RUNS_TOTAL, labels),
            replayed: registry.counter(names::RECOVERY_REPLAYED_RECORDS_TOTAL, labels),
            skipped: registry.counter(names::RECOVERY_SKIPPED_RECORDS_TOTAL, labels),
            latency: registry.histogram(names::RECOVERY_LATENCY_NS, labels),
        };
        Self {
            log: DurableLog::open(store.clone(), name, registry, wal_cfg),
            ckpts: CheckpointStore::open(store.clone(), name, registry),
            checkpoint_every: cfg.checkpoint_every.max(1),
            since_ckpt: AtomicU64::new(0),
            obs,
        }
    }

    /// Durably commits one mutation record; the mutation may ack once
    /// this returns.
    pub fn log(&self, payload: &[u8]) {
        self.log.append_commit(payload);
        self.since_ckpt.fetch_add(1, Ordering::Relaxed);
    }

    /// Logs a batch of records through one group commit: a single lock
    /// acquisition and a single fsync charge for the whole batch (see
    /// [`DurableLog::append_commit_batch`]). Every record still counts
    /// toward the checkpoint cadence.
    pub fn log_batch(&self, payloads: &[Vec<u8>]) {
        if payloads.is_empty() {
            return;
        }
        self.log.append_commit_batch(payloads);
        self.since_ckpt
            .fetch_add(payloads.len() as u64, Ordering::Relaxed);
    }

    /// True when enough records have accumulated since the last
    /// checkpoint for the reconciler to take a new one.
    pub fn should_checkpoint(&self) -> bool {
        self.since_ckpt.load(Ordering::Relaxed) >= self.checkpoint_every
    }

    /// WAL records committed since the last checkpoint.
    pub fn records_since_checkpoint(&self) -> u64 {
        self.since_ckpt.load(Ordering::Relaxed)
    }

    /// Takes a checkpoint: rotates the WAL so new records land in a
    /// fresh segment, snapshots state via `snapshot`, persists the blob
    /// and manifest, then truncates the superseded segments. Returns the
    /// checkpoint's content hash.
    pub fn checkpoint_with(&self, snapshot: impl FnOnce() -> Vec<u8>) -> String {
        let epoch = self.log.rotate();
        self.since_ckpt.store(0, Ordering::Relaxed);
        // Mutations racing with the snapshot land in the new segment and
        // may or may not be captured by `snapshot()`; replay over the
        // checkpoint is idempotent either way.
        let snap = snapshot();
        let hex = self.ckpts.save(&snap, epoch);
        let truncated = self.log.truncate_below(epoch);
        self.ckpts.note_truncated(truncated);
        hex
    }

    /// Reads the latest verified checkpoint and the committed WAL suffix
    /// above it. Counts the run and models replay latency on the
    /// recovery histogram.
    pub fn recover(&self) -> Recovered {
        let (manifest, snapshot) = self.ckpts.load();
        // If the checkpoint blob failed verification, fall back to
        // replaying every surviving segment rather than just the suffix.
        let from_epoch = if snapshot.is_some() { manifest.wal_epoch } else { 0 };
        let replay = self.log.replay_from(from_epoch);
        self.obs.runs.inc();
        self.obs.replayed.add(replay.records.len() as u64);
        self.obs
            .latency
            .record(RECOVERY_BASE_NS + REPLAY_NS_PER_RECORD * replay.records.len() as u64);
        self.since_ckpt.store(replay.records.len() as u64, Ordering::Relaxed);
        Recovered { snapshot, records: replay.records, torn_tails: replay.torn_tails }
    }

    /// Counts records that replay skipped because their effect was
    /// already present (idempotent re-application).
    pub fn note_skipped(&self, n: u64) {
        self.obs.skipped.add(n);
    }

    /// Simulates the crash tearing an in-flight, never-acked frame onto
    /// the active segment's tail; `seed` picks the tear point.
    pub fn crash_torn(&self, seed: u64) {
        let payload_len = 16 + (seed % 48) as usize;
        let payload: Vec<u8> = (0..payload_len).map(|i| (seed as u8).wrapping_add(i as u8)).collect();
        let keep = (seed % (payload_len as u64 + crate::log::FRAME_HEADER_LEN as u64)) as usize;
        self.log.crash_torn(&payload, keep);
    }
}
