//! Deterministic little-endian binary codec for WAL records and
//! checkpoint snapshots.
//!
//! Bit-identical recovery requires a canonical byte encoding: the same
//! logical state must always serialize to the same bytes regardless of
//! worker count or allocation history. Callers are responsible for
//! iterating collections in a canonical order (e.g. `BTreeMap` order);
//! this module only fixes the primitive wire format. Decoding is
//! panic-free — every read returns `Option` and a short or corrupt
//! buffer yields `None`, never an out-of-bounds access.

/// Append-only encoder over a byte vector.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte (record tags, booleans).
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (total, deterministic).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Cursor-based decoder; every accessor is bounds-checked.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a `u16` little-endian.
    pub fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a `u32` little-endian.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a `u64` little-endian.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Reads an `i64` little-endian.
    pub fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|s| i64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let b = self.bytes()?;
        std::str::from_utf8(b).ok().map(str::to_owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(1025);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.i64(-42);
        e.f64(3.5);
        e.str("zebrafish/run-001");
        e.bytes(&[0, 255, 128]);
        let buf = e.finish();

        let mut d = Dec::new(&buf);
        assert_eq!(d.u8(), Some(7));
        assert_eq!(d.u16(), Some(1025));
        assert_eq!(d.u32(), Some(0xDEAD_BEEF));
        assert_eq!(d.u64(), Some(u64::MAX - 1));
        assert_eq!(d.i64(), Some(-42));
        assert_eq!(d.f64(), Some(3.5));
        assert_eq!(d.str().as_deref(), Some("zebrafish/run-001"));
        assert_eq!(d.bytes(), Some(&[0u8, 255, 128][..]));
        assert!(d.at_end());
    }

    #[test]
    fn truncated_reads_yield_none() {
        let mut e = Enc::new();
        e.str("hello");
        let buf = e.finish();
        for cut in 0..buf.len() {
            let mut d = Dec::new(&buf[..cut]);
            assert!(d.str().is_none());
        }
        // A declared length larger than the remaining buffer is rejected.
        let mut d = Dec::new(&[0xff, 0xff, 0xff, 0xff, b'x']);
        assert!(d.bytes().is_none());
    }
}
