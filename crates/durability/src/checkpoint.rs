//! Content-addressed checkpoints with an atomically replaced manifest.
//!
//! A checkpoint is a full canonical snapshot of a component's state,
//! stored in a device named by the SHA-256 of its bytes
//! (`<name>-ckpt-<hex>`). The manifest device (`<name>-manifest`)
//! points at the current checkpoint hash and the WAL epoch from which
//! replay must start; it is replaced atomically (write-temp + rename in
//! a real filesystem, [`MemDisk::set`] here), so recovery always sees
//! either the old pair or the new pair, never a half-written one.
//! Content addressing gives a free integrity check: a blob whose hash
//! does not match its name is ignored and recovery falls back to pure
//! WAL replay from epoch 0.
//!
//! [`MemDisk::set`]: crate::device::MemDisk::set

use crate::codec::{Dec, Enc};
use crate::device::DurableStore;
use lsdf_obs::names;
use lsdf_obs::{Counter, Histogram, Registry};
use lsdf_storage::sha256;
use std::sync::Arc;

/// The durable pointer at the root of recovery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Hex SHA-256 of the current checkpoint blob, if one exists.
    pub ckpt_hex: Option<String>,
    /// WAL segments at or above this epoch must be replayed over the
    /// checkpoint.
    pub wal_epoch: u64,
}

const MANIFEST_VERSION: u8 = 1;

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(MANIFEST_VERSION);
        e.u64(self.wal_epoch);
        match &self.ckpt_hex {
            Some(hex) => {
                e.u8(1);
                e.str(hex);
            }
            None => e.u8(0),
        }
        e.finish()
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut d = Dec::new(bytes);
        if d.u8()? != MANIFEST_VERSION {
            return None;
        }
        let wal_epoch = d.u64()?;
        let ckpt_hex = match d.u8()? {
            0 => None,
            1 => Some(d.str()?),
            _ => return None,
        };
        Some(Self { ckpt_hex, wal_epoch })
    }
}

struct CkptObs {
    taken: Counter,
    bytes: Histogram,
    truncated: Counter,
}

/// Saves and loads content-addressed checkpoints for one component.
pub struct CheckpointStore {
    store: DurableStore,
    name: String,
    obs: CkptObs,
}

impl CheckpointStore {
    /// Opens the checkpoint namespace for component `name`.
    pub fn open(store: DurableStore, name: &str, registry: &Arc<Registry>) -> Self {
        let labels = &[("log", name)];
        let obs = CkptObs {
            taken: registry.counter(names::CKPT_TAKEN_TOTAL, labels),
            bytes: registry.histogram(names::CKPT_BYTES, labels),
            truncated: registry.counter(names::CKPT_SEGMENTS_TRUNCATED_TOTAL, labels),
        };
        Self { store, name: name.to_string(), obs }
    }

    fn blob_device(&self, hex: &str) -> String {
        format!("{}-ckpt-{hex}", self.name)
    }

    fn manifest_device(&self) -> String {
        format!("{}-manifest", self.name)
    }

    /// Writes a checkpoint blob, atomically repoints the manifest at it
    /// (with `wal_epoch` as the replay floor), and garbage-collects
    /// superseded blobs. Returns the new checkpoint's hex hash.
    pub fn save(&self, snapshot: &[u8], wal_epoch: u64) -> String {
        let hex = sha256(snapshot).to_hex();
        self.store.open(&self.blob_device(&hex)).set(snapshot);
        let manifest = Manifest { ckpt_hex: Some(hex.clone()), wal_epoch };
        self.store.open(&self.manifest_device()).set(&manifest.encode());
        // Older blobs are unreachable once the manifest points elsewhere.
        let keep = self.blob_device(&hex);
        for dev in self.store.names_with_prefix(&format!("{}-ckpt-", self.name)) {
            if dev != keep {
                self.store.remove(&dev);
            }
        }
        self.obs.taken.inc();
        self.obs.bytes.record(snapshot.len() as u64);
        hex
    }

    /// Records how many WAL segments the caller truncated after this
    /// checkpoint landed.
    pub fn note_truncated(&self, segments: u64) {
        self.obs.truncated.add(segments);
    }

    /// Loads the manifest and, if it names a checkpoint, the verified
    /// blob. A missing manifest yields the default (epoch 0, no blob); a
    /// blob that is missing or fails its hash check is dropped so the
    /// caller replays the WAL from the manifest epoch with no base state
    /// (idempotent replay makes that safe when segments still exist).
    pub fn load(&self) -> (Manifest, Option<Vec<u8>>) {
        let Some(dev) = self.store.get(&self.manifest_device()) else {
            return (Manifest::default(), None);
        };
        let Some(manifest) = Manifest::decode(&dev.read()) else {
            return (Manifest::default(), None);
        };
        let blob = manifest.ckpt_hex.as_ref().and_then(|hex| {
            let bytes = self.store.get(&self.blob_device(hex))?.read();
            (sha256(&bytes).to_hex() == *hex).then_some(bytes)
        });
        (manifest, blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Arc<Registry> {
        Arc::new(Registry::new())
    }

    #[test]
    fn save_load_roundtrip_and_gc() {
        let store = DurableStore::new();
        let ckpts = CheckpointStore::open(store.clone(), "t", &registry());
        let h1 = ckpts.save(b"state-v1", 1);
        let h2 = ckpts.save(b"state-v2", 2);
        assert_ne!(h1, h2);
        let (m, blob) = ckpts.load();
        assert_eq!(m.wal_epoch, 2);
        assert_eq!(m.ckpt_hex.as_deref(), Some(h2.as_str()));
        assert_eq!(blob.as_deref(), Some(&b"state-v2"[..]));
        // Superseded blob was garbage-collected.
        assert_eq!(store.names_with_prefix("t-ckpt-").len(), 1);
    }

    #[test]
    fn missing_manifest_is_epoch_zero() {
        let store = DurableStore::new();
        let ckpts = CheckpointStore::open(store, "t", &registry());
        let (m, blob) = ckpts.load();
        assert_eq!(m, Manifest::default());
        assert!(blob.is_none());
    }

    #[test]
    fn corrupt_blob_is_rejected() {
        let store = DurableStore::new();
        let ckpts = CheckpointStore::open(store.clone(), "t", &registry());
        let hex = ckpts.save(b"good", 3);
        store.open(&format!("t-ckpt-{hex}")).set(b"tampered");
        let (m, blob) = ckpts.load();
        assert_eq!(m.wal_epoch, 3);
        assert!(blob.is_none());
    }
}
