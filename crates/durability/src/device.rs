//! Simulated durable devices.
//!
//! A [`MemDisk`] models one append-mostly file on stable storage with an
//! explicit *staged* / *synced* boundary: `append` stages bytes in the
//! device's volatile write cache, `sync` (the simulated `fsync`) moves
//! the staged tail to the durable image. A crash discards the write
//! cache except for a seeded prefix of the oldest in-flight bytes —
//! exactly how a real disk tears a frame that was being written when
//! power was lost. Bytes that were synced before the crash always
//! survive; bytes that were never synced never ack'd, so losing them
//! cannot lose an acknowledged write.
//!
//! A [`DurableStore`] is a flat named-device directory shared by every
//! durable component of a facility — the namenode WAL segments, the
//! per-project metadata WAL segments, checkpoint blobs, and manifests
//! all live here under distinct names, which is what lets a facility be
//! re-opened "from disk" after a crash.

use lsdf_sync::{ranks, OrderedMutex};
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Default)]
struct DiskState {
    /// The durable image: survives any crash.
    synced: Vec<u8>,
    /// The volatile write cache: staged but not yet fsync'd.
    staged: Vec<u8>,
}

/// One simulated append-mostly file on stable storage.
pub struct MemDisk {
    state: OrderedMutex<DiskState>,
}

impl Default for MemDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl MemDisk {
    /// Creates an empty device.
    pub fn new() -> Self {
        Self { state: OrderedMutex::new(ranks::MEMDISK_STATE, DiskState::default()) }
    }

    /// Stages bytes in the write cache (not yet durable).
    pub fn append(&self, data: &[u8]) {
        self.state.lock().staged.extend_from_slice(data);
    }

    /// Simulated `fsync`: moves every staged byte to the durable image.
    /// Returns the number of bytes flushed (0 means the cache was clean).
    pub fn sync(&self) -> u64 {
        let mut s = self.state.lock();
        let n = s.staged.len() as u64;
        if n > 0 {
            let staged = std::mem::take(&mut s.staged);
            s.synced.extend_from_slice(&staged);
        }
        n
    }

    /// Atomically replaces the entire durable image (models write-temp +
    /// rename, the idiom used for manifests and checkpoint blobs). The
    /// write cache is discarded.
    pub fn set(&self, data: &[u8]) {
        let mut s = self.state.lock();
        s.synced = data.to_vec();
        s.staged.clear();
    }

    /// Snapshot of the durable image.
    pub fn read(&self) -> Vec<u8> {
        self.state.lock().synced.clone()
    }

    /// Bytes in the durable image.
    pub fn synced_len(&self) -> u64 {
        self.state.lock().synced.len() as u64
    }

    /// Bytes sitting in the volatile write cache.
    pub fn staged_len(&self) -> u64 {
        self.state.lock().staged.len() as u64
    }

    /// Truncates the durable image to `len` bytes, discarding any staged
    /// bytes — the `ftruncate` a WAL performs on open to repair a torn
    /// tail, so that post-recovery appends land at a valid frame
    /// boundary instead of hiding behind garbage.
    pub fn truncate(&self, len: usize) {
        let mut s = self.state.lock();
        s.synced.truncate(len);
        s.staged.clear();
    }

    /// Simulates power loss: keeps at most `keep_staged` bytes of the
    /// write cache (the prefix the disk happened to get down before the
    /// lights went out — typically tearing a frame in half) and discards
    /// the rest. The durable image is untouched.
    pub fn crash(&self, keep_staged: usize) {
        let mut s = self.state.lock();
        let keep = keep_staged.min(s.staged.len());
        let staged = std::mem::take(&mut s.staged);
        s.synced.extend_from_slice(&staged[..keep]);
    }
}

/// A flat, named-device directory: the "disk" a facility re-opens after
/// a crash. Cloning shares the underlying devices.
#[derive(Clone)]
pub struct DurableStore {
    devices: Arc<OrderedMutex<BTreeMap<String, Arc<MemDisk>>>>,
}

impl Default for DurableStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DurableStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self { devices: Arc::new(OrderedMutex::new(ranks::DURABLE_DEVICES, BTreeMap::new())) }
    }

    /// Opens (creating if absent) the device with the given name.
    pub fn open(&self, name: &str) -> Arc<MemDisk> {
        self.devices
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(MemDisk::new()))
            .clone()
    }

    /// Returns the device if it exists, without creating it.
    pub fn get(&self, name: &str) -> Option<Arc<MemDisk>> {
        self.devices.lock().get(name).cloned()
    }

    /// Deletes a device (segment truncation, stale checkpoint GC).
    pub fn remove(&self, name: &str) -> bool {
        self.devices.lock().remove(name).is_some()
    }

    /// Names of all devices, in lexicographic order.
    pub fn names(&self) -> Vec<String> {
        self.devices.lock().keys().cloned().collect()
    }

    /// Names of devices starting with `prefix`, in lexicographic order.
    pub fn names_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.devices
            .lock()
            .keys()
            .filter(|n| n.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Total durable bytes across every device.
    pub fn durable_bytes(&self) -> u64 {
        self.devices.lock().values().map(|d| d.synced_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_moves_staged_to_durable() {
        let d = MemDisk::new();
        d.append(b"abc");
        assert_eq!(d.synced_len(), 0);
        assert_eq!(d.staged_len(), 3);
        assert_eq!(d.sync(), 3);
        assert_eq!(d.read(), b"abc");
        assert_eq!(d.sync(), 0);
    }

    #[test]
    fn crash_preserves_synced_and_tears_staged() {
        let d = MemDisk::new();
        d.append(b"durable");
        d.sync();
        d.append(b"in-flight");
        d.crash(4);
        assert_eq!(d.read(), b"durablein-f");
        assert_eq!(d.staged_len(), 0);
    }

    #[test]
    fn store_namespaces_devices() {
        let s = DurableStore::new();
        s.open("dfs-wal-0").append(b"x");
        s.open("meta-zebrafish-wal-0");
        assert_eq!(s.names(), vec!["dfs-wal-0", "meta-zebrafish-wal-0"]);
        assert_eq!(s.names_with_prefix("dfs-"), vec!["dfs-wal-0"]);
        let again = s.open("dfs-wal-0");
        assert_eq!(again.staged_len(), 1);
        assert!(s.remove("dfs-wal-0"));
        assert!(s.get("dfs-wal-0").is_none());
    }
}
