//! # lsdf-durability — crash durability for facility metadata
//!
//! The paper's facility stewards experiment data for years; a namenode
//! or metadata-store restart must not lose the namespace. This crate
//! provides the simulation-grade durable substrate the stateful
//! components log through:
//!
//! * [`DurableStore`] / [`MemDisk`] — a named-device "disk" with an
//!   explicit staged/synced boundary and seeded crash semantics (synced
//!   bytes always survive; staged bytes tear);
//! * [`DurableLog`] — an epoch-segmented, CRC-framed write-ahead log
//!   with torn-tail-tolerant replay and group-commit cost accounting;
//! * [`CheckpointStore`] — content-addressed full-state checkpoints
//!   behind an atomically replaced manifest;
//! * [`ComponentDurability`] — the per-component bundle tying the three
//!   together (log → checkpoint → recover);
//! * [`Enc`] / [`Dec`] — the deterministic little-endian codec that
//!   makes snapshots canonical and recovery bit-identical.
//!
//! Everything is deterministic: no wall clock, no ambient randomness —
//! crash tear points come from caller-provided seeds, and metric
//! accounting is defined in terms of record counts so runs are
//! bit-identical at any worker count.

#![warn(missing_docs)]

mod checkpoint;
pub mod codec;
mod crc;
mod device;
mod harness;
mod log;

pub use checkpoint::{CheckpointStore, Manifest};
pub use codec::{Dec, Enc};
pub use crc::crc32;
pub use device::{DurableStore, MemDisk};
pub use harness::{ComponentDurability, DurabilityConfig, Recovered};
pub use log::{parse_frames, DurableLog, Replay, WalConfig, FRAME_HEADER_LEN, MAX_RECORD_LEN};
