//! CRC-framed write-ahead log over a [`DurableStore`].
//!
//! ## Frame format
//!
//! ```text
//! +-------+-----------+-----------+-----------------+
//! | 0xA7  | len: u32  | crc: u32  | payload[len]    |
//! | magic |   LE      |  LE (IEEE)|                 |
//! +-------+-----------+-----------+-----------------+
//! ```
//!
//! Replay walks frames from the start of each segment and stops at the
//! first frame that fails the magic, length, or CRC check — a *torn
//! tail* left by a crash mid-write. Everything before the torn frame is
//! exactly the committed prefix; nothing after it can have been ack'd,
//! because [`DurableLog::append_commit`] only returns once the frame is
//! synced to the durable image.
//!
//! ## Segments
//!
//! The log is a sequence of epoch-numbered segment devices
//! (`<name>-wal-00000000`, `<name>-wal-00000001`, ...). A checkpoint
//! rotates to a fresh segment first, snapshots state, then truncates
//! every segment below the new epoch — so a crash at any point in that
//! sequence leaves either the old segments (replayable over the old
//! checkpoint) or the new manifest (replaying the fresh segment, whose
//! records are applied idempotently).
//!
//! ## Cost model
//!
//! Every frame is physically synced before the append returns (that is
//! what "acked writes survive" means). The *cost* of syncing is charged
//! with group-commit batching: `wal_fsyncs_total` and the modeled
//! `wal_fsync_latency_ns` are recorded once per `group_commit` records,
//! reflecting that a real namenode coalesces concurrent commits into one
//! fsync. Charging by record count keeps the metrics bit-identical at
//! any worker count.

use crate::crc::crc32;
use crate::device::{DurableStore, MemDisk};
use lsdf_obs::names;
use lsdf_obs::{Counter, Histogram, Registry};
use lsdf_sync::{ranks, OrderedMutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Frame header: magic byte + u32 length + u32 CRC.
pub const FRAME_HEADER_LEN: usize = 9;
const FRAME_MAGIC: u8 = 0xA7;
/// Upper bound on a single record payload (guards against reading a
/// garbage length field as an allocation size).
pub const MAX_RECORD_LEN: u32 = 1 << 26;

/// Tuning knobs for one write-ahead log.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Modeled latency of one device fsync, charged to
    /// `wal_fsync_latency_ns`.
    pub fsync_ns: u64,
    /// Records per accounted fsync (group commit batching).
    pub group_commit: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self { fsync_ns: 50_000, group_commit: 8 }
    }
}

struct ActiveSegment {
    epoch: u64,
    dev: Arc<MemDisk>,
}

struct WalObs {
    appends: Counter,
    append_bytes: Histogram,
    fsyncs: Counter,
    fsync_latency: Histogram,
    torn_tails: Counter,
}

/// An epoch-segmented, CRC-framed write-ahead log.
pub struct DurableLog {
    store: DurableStore,
    name: String,
    active: OrderedMutex<ActiveSegment>,
    records: AtomicU64,
    cfg: WalConfig,
    obs: WalObs,
}

/// Result of replaying the log from a starting epoch.
#[derive(Debug, Default)]
pub struct Replay {
    /// Committed record payloads, in log order.
    pub records: Vec<Vec<u8>>,
    /// Number of segments that ended in a torn (partial/corrupt) frame.
    pub torn_tails: u64,
    /// Number of segments scanned.
    pub segments: u64,
}

fn segment_name(name: &str, epoch: u64) -> String {
    // Zero-padded so lexicographic device order equals epoch order.
    format!("{name}-wal-{epoch:08}")
}

fn parse_epoch(name: &str, device: &str) -> Option<u64> {
    let rest = device.strip_prefix(name)?.strip_prefix("-wal-")?;
    rest.parse::<u64>().ok()
}

impl DurableLog {
    /// Opens the log named `name` in `store`, resuming at the highest
    /// existing segment epoch (or creating segment 0).
    pub fn open(store: DurableStore, name: &str, registry: &Arc<Registry>, cfg: WalConfig) -> Self {
        let epoch = store
            .names_with_prefix(&format!("{name}-wal-"))
            .iter()
            .filter_map(|d| parse_epoch(name, d))
            .max()
            .unwrap_or(0);
        let dev = store.open(&segment_name(name, epoch));
        let labels = &[("log", name)];
        let obs = WalObs {
            appends: registry.counter(names::WAL_APPENDS_TOTAL, labels),
            append_bytes: registry.histogram(names::WAL_APPEND_BYTES, labels),
            fsyncs: registry.counter(names::WAL_FSYNCS_TOTAL, labels),
            fsync_latency: registry.histogram(names::WAL_FSYNC_LATENCY_NS, labels),
            torn_tails: registry.counter(names::WAL_TORN_TAIL_TOTAL, labels),
        };
        Self {
            store,
            name: name.to_string(),
            active: OrderedMutex::new(ranks::WAL_ACTIVE, ActiveSegment { epoch, dev }),
            records: AtomicU64::new(0),
            cfg,
            obs,
        }
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        out.push(FRAME_MAGIC);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Appends one record and syncs it to the durable image before
    /// returning — the caller may ack its mutation as soon as this
    /// returns. Fsync cost is charged once per `group_commit` records.
    pub fn append_commit(&self, payload: &[u8]) {
        let frame = Self::frame(payload);
        {
            let seg = self.active.lock();
            seg.dev.append(&frame);
            seg.dev.sync();
        }
        self.obs.appends.inc();
        self.obs.append_bytes.record(frame.len() as u64);
        let n = self.records.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.cfg.group_commit.max(1)) {
            self.obs.fsyncs.inc();
            self.obs.fsync_latency.record(self.cfg.fsync_ns);
        }
    }

    /// Appends a batch of records under one lock acquisition and one
    /// sync — the group commit the batched namenode path relies on: N
    /// file commits share a single fsync charge instead of advancing
    /// the per-record group counter N times. The whole batch is synced
    /// before return, so every record in it may be acked. Batch
    /// composition is deterministic in the caller, which keeps the
    /// fsync accounting identical at any worker count.
    pub fn append_commit_batch(&self, payloads: &[Vec<u8>]) {
        if payloads.is_empty() {
            return;
        }
        let frames: Vec<Vec<u8>> = payloads.iter().map(|p| Self::frame(p)).collect();
        {
            let seg = self.active.lock();
            for frame in &frames {
                seg.dev.append(frame);
            }
            seg.dev.sync();
        }
        for frame in &frames {
            self.obs.appends.inc();
            self.obs.append_bytes.record(frame.len() as u64);
        }
        self.obs.fsyncs.inc();
        self.obs.fsync_latency.record(self.cfg.fsync_ns);
    }

    /// Current segment epoch.
    pub fn active_epoch(&self) -> u64 {
        self.active.lock().epoch
    }

    /// Rotates to a fresh segment and returns its epoch. Subsequent
    /// appends land in the new segment; older segments stay until
    /// [`DurableLog::truncate_below`].
    pub fn rotate(&self) -> u64 {
        let mut seg = self.active.lock();
        seg.epoch += 1;
        seg.dev = self.store.open(&segment_name(&self.name, seg.epoch));
        seg.epoch
    }

    /// Deletes every segment with epoch below `epoch`; returns how many
    /// were removed.
    pub fn truncate_below(&self, epoch: u64) -> u64 {
        let mut removed = 0;
        for dev in self.store.names_with_prefix(&format!("{}-wal-", self.name)) {
            if let Some(e) = parse_epoch(&self.name, &dev) {
                if e < epoch && self.store.remove(&dev) {
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Replays every committed record in segments `from_epoch..`,
    /// tolerating a torn tail at the end of any segment.
    ///
    /// A torn tail is *repaired* as it is found: the segment is
    /// truncated back to its committed prefix, so records appended
    /// after this recovery sit at a valid frame boundary and survive
    /// the *next* crash too — without the repair they would hide
    /// behind the garbage tail and vanish from every later replay.
    pub fn replay_from(&self, from_epoch: u64) -> Replay {
        let mut out = Replay::default();
        let mut devices: Vec<(u64, String)> = self
            .store
            .names_with_prefix(&format!("{}-wal-", self.name))
            .into_iter()
            .filter_map(|d| parse_epoch(&self.name, &d).map(|e| (e, d)))
            .filter(|(e, _)| *e >= from_epoch)
            .collect();
        devices.sort();
        for (_, device) in devices {
            out.segments += 1;
            let Some(dev) = self.store.get(&device) else { continue };
            let bytes = dev.read();
            let (records, torn) = parse_frames(&bytes);
            if torn {
                out.torn_tails += 1;
                self.obs.torn_tails.inc();
                let committed: usize =
                    records.iter().map(|r| FRAME_HEADER_LEN + r.len()).sum();
                dev.truncate(committed);
            }
            out.records.extend(records);
        }
        out
    }

    /// Simulates a crash mid-write of an *un-acked* record: stages the
    /// frame for `payload` in the write cache and then loses power
    /// keeping only `keep` bytes of it — producing a torn tail for
    /// recovery to discard. Committed frames are untouched.
    pub fn crash_torn(&self, payload: &[u8], keep: usize) {
        let frame = Self::frame(payload);
        let seg = self.active.lock();
        seg.dev.append(&frame);
        // Keep strictly less than the whole frame so the tail is torn.
        seg.dev.crash(keep.min(frame.len().saturating_sub(1)));
    }
}

/// Parses `bytes` as a sequence of frames. Returns the committed
/// payload prefix and whether a torn/corrupt tail was found. Never
/// panics on any input.
pub fn parse_frames(bytes: &[u8]) -> (Vec<Vec<u8>>, bool) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < FRAME_HEADER_LEN || rest[0] != FRAME_MAGIC {
            return (records, true);
        }
        let len = u32::from_le_bytes([rest[1], rest[2], rest[3], rest[4]]);
        let crc = u32::from_le_bytes([rest[5], rest[6], rest[7], rest[8]]);
        if len > MAX_RECORD_LEN {
            return (records, true);
        }
        let len = len as usize;
        let Some(payload) = rest.get(FRAME_HEADER_LEN..FRAME_HEADER_LEN + len) else {
            return (records, true);
        };
        if crc32(payload) != crc {
            return (records, true);
        }
        records.push(payload.to_vec());
        pos += FRAME_HEADER_LEN + len;
    }
    (records, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Arc<Registry> {
        Arc::new(Registry::new())
    }

    #[test]
    fn append_replay_roundtrip() {
        let store = DurableStore::new();
        let log = DurableLog::open(store.clone(), "t", &registry(), WalConfig::default());
        log.append_commit(b"one");
        log.append_commit(b"two");
        log.append_commit(b"");
        let r = log.replay_from(0);
        assert_eq!(r.records, vec![b"one".to_vec(), b"two".to_vec(), Vec::new()]);
        assert_eq!(r.torn_tails, 0);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let store = DurableStore::new();
        let log = DurableLog::open(store.clone(), "t", &registry(), WalConfig::default());
        log.append_commit(b"committed");
        log.crash_torn(b"never-acked-record", 7);
        let reopened = DurableLog::open(store, "t", &registry(), WalConfig::default());
        let r = reopened.replay_from(0);
        assert_eq!(r.records, vec![b"committed".to_vec()]);
        assert_eq!(r.torn_tails, 1);
    }

    #[test]
    fn torn_tail_is_repaired_so_later_appends_survive_the_next_crash() {
        let store = DurableStore::new();
        let log = DurableLog::open(store.clone(), "t", &registry(), WalConfig::default());
        log.append_commit(b"one");
        log.crash_torn(b"never-acked", 5);
        // First recovery discards and *repairs* the torn tail...
        let r = log.replay_from(0);
        assert_eq!(r.records, vec![b"one".to_vec()]);
        assert_eq!(r.torn_tails, 1);
        // ...so a record acked after recovery is replayable after a
        // second crash, instead of hiding behind the garbage bytes.
        log.append_commit(b"two");
        let r = log.replay_from(0);
        assert_eq!(r.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(r.torn_tails, 0, "tail was repaired on first replay");
    }

    #[test]
    fn rotation_and_truncation() {
        let store = DurableStore::new();
        let log = DurableLog::open(store.clone(), "t", &registry(), WalConfig::default());
        log.append_commit(b"old");
        let e = log.rotate();
        assert_eq!(e, 1);
        log.append_commit(b"new");
        assert_eq!(log.replay_from(0).records.len(), 2);
        assert_eq!(log.replay_from(e).records, vec![b"new".to_vec()]);
        assert_eq!(log.truncate_below(e), 1);
        assert_eq!(log.replay_from(0).records, vec![b"new".to_vec()]);
        // Reopen resumes at the surviving epoch.
        let reopened = DurableLog::open(store, "t", &registry(), WalConfig::default());
        assert_eq!(reopened.active_epoch(), 1);
    }

    #[test]
    fn fsync_accounting_batches_by_group() {
        let reg = registry();
        let store = DurableStore::new();
        let cfg = WalConfig { fsync_ns: 1_000, group_commit: 4 };
        let log = DurableLog::open(store, "t", &reg, cfg);
        for i in 0..10u8 {
            log.append_commit(&[i]);
        }
        assert_eq!(reg.counter_value(names::WAL_APPENDS_TOTAL, &[("log", "t")]), 10);
        assert_eq!(reg.counter_value(names::WAL_FSYNCS_TOTAL, &[("log", "t")]), 2);
    }

    #[test]
    fn batch_append_shares_one_fsync_and_replays_in_order() {
        let reg = registry();
        let store = DurableStore::new();
        let cfg = WalConfig { fsync_ns: 1_000, group_commit: 4 };
        let log = DurableLog::open(store, "t", &reg, cfg);
        let batch: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
        log.append_commit_batch(&batch);
        log.append_commit_batch(&[]);
        assert_eq!(reg.counter_value(names::WAL_APPENDS_TOTAL, &[("log", "t")]), 10);
        // One fsync for the whole batch (an empty batch charges none),
        // vs. two on the per-record path above at group_commit = 4.
        assert_eq!(reg.counter_value(names::WAL_FSYNCS_TOTAL, &[("log", "t")]), 1);
        let r = log.replay_from(0);
        assert_eq!(r.records, batch);
        assert_eq!(r.torn_tails, 0);
    }
}
