//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for WAL frame
//! integrity. Implemented from scratch — the workspace's offline
//! dependency set has no checksum crate — with a lazily built 256-entry
//! lookup table so per-byte cost is one table load and one xor.

/// Reflected IEEE polynomial used by zlib, Ethernet, and HDFS editlogs.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `data` (init `!0`, final xor `!0`, as in zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in data {
        c = (c >> 8) ^ t[((c ^ b as u32) & 0xff) as usize];
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from zlib's crc32().
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let mut flipped = b"hello world".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }
}
