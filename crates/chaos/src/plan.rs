//! Declarative fault plans: what to inject, how often, and when.

use lsdf_sim::SimRng;

/// A scheduled kill-and-restart point for the facility's stateful
/// services (namenode + metadata stores), in virtual time.
///
/// Unlike the per-operation fault axes, a crash is a process-level
/// event: volatile state is wiped, an in-flight WAL frame is torn, and
/// the service must recover from its durable log. The seed picks the
/// tear point so every run reproduces the same torn tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Virtual time (ns) at which the crash fires.
    pub at_ns: u64,
    /// Seed for the torn-frame tear point.
    pub seed: u64,
}

/// A declarative mix of faults applied by [`crate::FaultyBackend`].
///
/// Probabilistic faults fire per operation with the configured rate,
/// drawn from a deterministic RNG stream; scheduled outages are
/// half-open windows `[start, end)` in the wrapped backend's own
/// operation-index space (op 0 is its first call), so a plan describes
/// the same failure timeline on every seeded run. Scheduled crashes
/// ([`FaultPlan::crash_at`]) live in virtual-time space instead and are
/// polled by the driver via [`FaultPlan::crashes_due`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// RNG seed; the per-backend stream is derived from the backend name.
    pub seed: u64,
    /// Probability that an operation fails with a transient I/O error.
    pub transient_rate: f64,
    /// Probability that an operation is hit by a latency spike.
    pub latency_spike_rate: f64,
    /// Size of an injected latency spike, in nanoseconds.
    pub latency_spike_ns: u64,
    /// Probability that a `put` is torn: one payload byte is flipped
    /// before it reaches the backend while the call still succeeds.
    pub torn_write_rate: f64,
    /// Scheduled full outages as `[start, end)` op-index windows; every
    /// operation inside a window fails as unavailable.
    pub outages: Vec<(u64, u64)>,
    /// Scheduled kill-and-restart points in virtual time, sorted by
    /// [`CrashPoint::at_ns`].
    pub crashes: Vec<CrashPoint>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 42,
            transient_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike_ns: 0,
            torn_write_rate: 0.0,
            outages: Vec::new(),
            crashes: Vec::new(),
        }
    }
}

/// What a plan decided to inject into one operation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultDecision {
    /// The op falls inside a scheduled outage window: fail unavailable.
    pub outage: bool,
    /// Fail the op with a transient I/O error.
    pub transient: bool,
    /// Tear the payload (writes only): flip a byte, still succeed.
    pub torn: bool,
    /// Latency spike to account against the op, if any.
    pub latency_ns: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (the identity wrapper).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the transient I/O error rate.
    pub fn transient(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.transient_rate = rate;
        self
    }

    /// Sets the latency spike rate and magnitude.
    pub fn latency_spikes(mut self, rate: f64, spike_ns: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.latency_spike_rate = rate;
        self.latency_spike_ns = spike_ns;
        self
    }

    /// Sets the torn-write rate.
    pub fn torn_writes(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.torn_write_rate = rate;
        self
    }

    /// Schedules a full outage for ops in `[start, end)`.
    pub fn outage(mut self, start: u64, end: u64) -> Self {
        assert!(start < end, "outage window must be non-empty");
        self.outages.push((start, end));
        self
    }

    /// Schedules a kill-and-restart of the facility's stateful services
    /// at virtual time `at_ns`; `seed` picks the torn-frame tear point.
    /// Points are kept sorted so [`FaultPlan::crashes_due`] replays them
    /// in timeline order regardless of insertion order.
    pub fn crash_at(mut self, at_ns: u64, seed: u64) -> Self {
        self.crashes.push(CrashPoint { at_ns, seed });
        self.crashes.sort_by_key(|c| (c.at_ns, c.seed));
        self
    }

    /// Crash points that fire in the half-open window `(after_ns,
    /// now_ns]` — the driver polls this at batch boundaries with the
    /// previous poll's `now_ns` as `after_ns`, so each point fires
    /// exactly once per run.
    pub fn crashes_due(&self, after_ns: u64, now_ns: u64) -> Vec<CrashPoint> {
        self.crashes
            .iter()
            .filter(|c| c.at_ns > after_ns && c.at_ns <= now_ns)
            .copied()
            .collect()
    }

    /// The RNG stream a backend named `name` draws its faults from.
    pub fn stream(&self, name: &str) -> SimRng {
        SimRng::seed_from_u64(self.seed).stream(name)
    }

    /// True when `op` falls inside a scheduled outage window.
    pub fn in_outage(&self, op: u64) -> bool {
        self.outages.iter().any(|&(s, e)| op >= s && op < e)
    }

    /// Decides the faults for operation number `op`.
    ///
    /// An outage pre-empts the probabilistic draws (no RNG is consumed
    /// while a backend is down, so shifting an outage window does not
    /// reshuffle the faults outside it — windows stay independently
    /// tunable under a fixed seed). `is_write` gates torn writes.
    pub fn decide(&self, op: u64, is_write: bool, rng: &mut SimRng) -> FaultDecision {
        if self.in_outage(op) {
            return FaultDecision {
                outage: true,
                ..FaultDecision::default()
            };
        }
        let transient = self.transient_rate > 0.0 && rng.chance(self.transient_rate);
        let torn = !transient
            && is_write
            && self.torn_write_rate > 0.0
            && rng.chance(self.torn_write_rate);
        let latency_ns = (self.latency_spike_rate > 0.0 && rng.chance(self.latency_spike_rate))
            .then_some(self.latency_spike_ns);
        FaultDecision {
            outage: false,
            transient,
            torn,
            latency_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_decides_nothing() {
        let plan = FaultPlan::quiet(1);
        let mut rng = plan.stream("b");
        for op in 0..64 {
            assert_eq!(plan.decide(op, true, &mut rng), FaultDecision::default());
        }
    }

    #[test]
    fn outage_windows_are_half_open() {
        let plan = FaultPlan::quiet(1).outage(10, 20);
        assert!(!plan.in_outage(9));
        assert!(plan.in_outage(10));
        assert!(plan.in_outage(19));
        assert!(!plan.in_outage(20));
    }

    #[test]
    fn decisions_are_seed_reproducible() {
        let plan = FaultPlan::quiet(7)
            .transient(0.3)
            .torn_writes(0.2)
            .latency_spikes(0.25, 5_000);
        let run = || {
            let mut rng = plan.stream("disk");
            (0..256)
                .map(|op| plan.decide(op, op % 2 == 0, &mut rng))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.iter().any(|d| d.transient));
        assert!(a.iter().any(|d| d.torn));
        assert!(a.iter().any(|d| d.latency_ns.is_some()));
        // Different stream names draw different faults.
        let mut other = plan.stream("tape");
        let b: Vec<_> = (0..256)
            .map(|op| plan.decide(op, op % 2 == 0, &mut other))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn torn_writes_never_hit_reads() {
        let plan = FaultPlan::quiet(3).torn_writes(1.0);
        let mut rng = plan.stream("b");
        for op in 0..32 {
            let d = plan.decide(op, false, &mut rng);
            assert!(!d.torn);
        }
        let d = plan.decide(32, true, &mut rng);
        assert!(d.torn);
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn rates_are_validated() {
        let _ = FaultPlan::quiet(1).transient(1.5);
    }

    #[test]
    fn crash_schedule_fires_each_point_exactly_once() {
        let plan = FaultPlan::quiet(1)
            .crash_at(30_000, 7)
            .crash_at(10_000, 5)
            .crash_at(20_000, 6);
        // Kept sorted regardless of insertion order.
        let times: Vec<u64> = plan.crashes.iter().map(|c| c.at_ns).collect();
        assert_eq!(times, vec![10_000, 20_000, 30_000]);
        // Polling with the previous poll's now as `after` partitions
        // the timeline: every point fires exactly once.
        let mut fired = Vec::new();
        let mut last = 0;
        for now in [5_000u64, 10_000, 25_000, 25_000, 100_000] {
            fired.extend(plan.crashes_due(last, now));
            last = now;
        }
        assert_eq!(
            fired,
            vec![
                CrashPoint { at_ns: 10_000, seed: 5 },
                CrashPoint { at_ns: 20_000, seed: 6 },
                CrashPoint { at_ns: 30_000, seed: 7 },
            ]
        );
        // Window is half-open: a point exactly at `after_ns` is not due.
        assert!(plan.crashes_due(10_000, 10_000).is_empty());
    }

    #[test]
    fn quiet_plan_schedules_no_crashes() {
        assert!(FaultPlan::quiet(1).crashes_due(0, u64::MAX).is_empty());
    }
}
