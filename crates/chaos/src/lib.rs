//! # lsdf-chaos — facility-wide fault injection
//!
//! A 24/7 data facility earns its durability claims under failure, not
//! in the happy path. This crate turns the failure model of the LSDF
//! paper's environment (disk arrays stalling, tape robots wedging, GPFS
//! nodes dropping I/O) into *seed-reproducible* injected faults:
//!
//! * [`FaultPlan`] — a declarative mix of probabilistic faults
//!   (transient I/O errors, latency spikes, torn writes) and scheduled
//!   full outages (windows in per-backend operation index space);
//! * [`FaultyBackend`] — wraps any [`lsdf_adal::StorageBackend`] and
//!   applies a plan to every call, counting each injection in the
//!   shared `lsdf-obs` registry (`chaos_injected_total{backend,fault}`).
//!
//! All randomness flows from [`lsdf_sim::SimRng`] named streams, so a
//! chaos run with a fixed seed injects the *same* faults at the *same*
//! operations every time — failures become regression tests.
//!
//! Component-level hooks live next to the components they break:
//! datanode flakiness is `lsdf_dfs::Dfs::set_node_flaky`, stuck tape
//! mounts are `lsdf_storage::TapeLibrary::inject_stuck_mounts`. This
//! crate covers the ADAL-facing backend path they all share.

#![warn(missing_docs)]

mod backend;
mod plan;

pub use backend::FaultyBackend;
pub use plan::{CrashPoint, FaultDecision, FaultPlan};
