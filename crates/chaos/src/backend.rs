//! A `StorageBackend` wrapper that injects the faults a plan decides.

use std::sync::Arc;

use lsdf_storage::Payload;
use parking_lot::Mutex;

use lsdf_adal::{BackendError, EntryMeta, StorageBackend};
use lsdf_obs::{Counter, Histogram, Registry, TraceCtx};
use lsdf_sim::SimRng;

use crate::plan::{FaultDecision, FaultPlan};
use lsdf_obs::names;

/// Per-backend injection state: the fault RNG stream and the op index,
/// advanced together under one lock so concurrent callers still see a
/// single deterministic fault sequence.
struct InjectState {
    rng: SimRng,
    ops: u64,
}

/// Cached registry handles for the injection counters.
struct ChaosObs {
    outages: Counter,
    transients: Counter,
    torn_writes: Counter,
    latency_spikes: Counter,
    injected_latency: Histogram,
}

impl ChaosObs {
    fn new(reg: &Registry, backend: &str) -> Self {
        let fault = |f| reg.counter(names::CHAOS_INJECTED_TOTAL, &[("backend", backend), ("fault", f)]);
        ChaosObs {
            outages: fault("outage"),
            transients: fault("transient"),
            torn_writes: fault("torn_write"),
            latency_spikes: fault("latency_spike"),
            injected_latency: reg.histogram(names::CHAOS_INJECTED_LATENCY_NS, &[("backend", backend)]),
        }
    }
}

/// Wraps a [`StorageBackend`] and injects faults per a [`FaultPlan`].
///
/// Injected failures surface as the errors real hardware produces —
/// [`BackendError::Unavailable`] for scheduled outages,
/// [`BackendError::TransientIo`] for probabilistic drops — and torn
/// writes corrupt one payload byte while still acknowledging the call,
/// exactly the failure a read-back checksum must catch. Every injection
/// is counted in `chaos_injected_total{backend,fault}`; latency spikes
/// additionally land in `chaos_injected_latency_ns{backend}`.
pub struct FaultyBackend {
    inner: Arc<dyn StorageBackend>,
    name: String,
    plan: FaultPlan,
    state: Mutex<InjectState>,
    obs: ChaosObs,
}

impl FaultyBackend {
    /// Wraps `inner` under `plan`, drawing faults from the plan's RNG
    /// stream for `name` and counting injections in `registry`.
    pub fn new(
        name: &str,
        inner: Arc<dyn StorageBackend>,
        plan: FaultPlan,
        registry: &Registry,
    ) -> Arc<Self> {
        let rng = plan.stream(name);
        Arc::new(FaultyBackend {
            inner,
            name: name.to_string(),
            obs: ChaosObs::new(registry, name),
            plan,
            state: Mutex::new(InjectState { rng, ops: 0 }),
        })
    }

    /// The injection name this backend counts faults under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Operations seen so far (the outage-window clock).
    pub fn ops_seen(&self) -> u64 {
        self.state.lock().ops
    }

    /// Draws the fault decision for the next operation and counts the
    /// non-tearing injections (torn writes are counted at the tear, so
    /// an empty payload that cannot be torn is not over-counted).
    fn next_decision(&self, is_write: bool) -> FaultDecision {
        let mut st = self.state.lock();
        let op = st.ops;
        st.ops += 1;
        let d = self.plan.decide(op, is_write, &mut st.rng);
        if d.outage {
            self.obs.outages.inc();
        }
        if d.transient {
            self.obs.transients.inc();
        }
        if let Some(ns) = d.latency_ns {
            self.obs.latency_spikes.inc();
            self.obs.injected_latency.record(ns);
        }
        d
    }

    /// Maps a decision to the error it injects, if any.
    fn gate(&self, d: &FaultDecision, op: &str, key: &str) -> Result<(), BackendError> {
        if d.outage {
            return Err(BackendError::Unavailable(format!(
                "injected outage: {} {op} '{key}'",
                self.name
            )));
        }
        if d.transient {
            return Err(BackendError::TransientIo(format!(
                "injected fault: {} {op} '{key}'",
                self.name
            )));
        }
        Ok(())
    }

    /// Mirrors the non-tearing injection counters onto the trace, so a
    /// trace's `chaos_fault` events reconcile 1:1 with
    /// `chaos_injected_total` when every operation is traced.
    fn trace_decision(&self, ctx: &TraceCtx, d: &FaultDecision) {
        if !ctx.is_enabled() {
            return;
        }
        if d.outage {
            ctx.event(
                names::CHAOS_FAULT_EVENT,
                &[("backend", self.name.as_str()), ("fault", "outage")],
            );
        }
        if d.transient {
            ctx.event(
                names::CHAOS_FAULT_EVENT,
                &[("backend", self.name.as_str()), ("fault", "transient")],
            );
        }
        if let Some(ns) = d.latency_ns {
            ctx.event(
                names::CHAOS_FAULT_EVENT,
                &[
                    ("backend", self.name.as_str()),
                    ("fault", "latency_spike"),
                    ("latency_ns", &ns.to_string()),
                ],
            );
        }
    }

    /// Flips one payload byte (torn write). The shared buffer is
    /// immutable, so the flip happens on a private copy returned as a
    /// *fresh* payload: its new digest cell cannot inherit the
    /// original's memoized digest, which is exactly what lets read-back
    /// verification catch the tear.
    fn tear(&self, data: Payload) -> Payload {
        if data.is_empty() {
            return data;
        }
        let idx = {
            let mut st = self.state.lock();
            st.rng.index(data.len())
        };
        self.obs.torn_writes.inc();
        let mut torn = data.to_vec();
        torn[idx] ^= 0x01;
        Payload::from(torn)
    }
}

impl StorageBackend for FaultyBackend {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn put(&self, key: &str, data: Payload) -> Result<(), BackendError> {
        let d = self.next_decision(true);
        self.gate(&d, "put", key)?;
        let payload = if d.torn { self.tear(data) } else { data };
        self.inner.put(key, payload)
    }

    fn get(&self, key: &str) -> Result<Payload, BackendError> {
        let d = self.next_decision(false);
        self.gate(&d, "get", key)?;
        self.inner.get(key)
    }

    fn stat(&self, key: &str) -> Result<EntryMeta, BackendError> {
        let d = self.next_decision(false);
        self.gate(&d, "stat", key)?;
        self.inner.stat(key)
    }

    fn delete(&self, key: &str) -> Result<(), BackendError> {
        let d = self.next_decision(false);
        self.gate(&d, "delete", key)?;
        self.inner.delete(key)
    }

    fn list(&self, prefix: &str) -> Result<Vec<EntryMeta>, BackendError> {
        let d = self.next_decision(false);
        self.gate(&d, "list", prefix)?;
        self.inner.list(prefix)
    }

    fn put_traced(&self, ctx: &TraceCtx, key: &str, data: Payload) -> Result<(), BackendError> {
        let d = self.next_decision(true);
        self.trace_decision(ctx, &d);
        self.gate(&d, "put", key)?;
        let payload = if d.torn {
            // tear() silently skips empty payloads; only an actual flip
            // is counted, so only an actual flip is traced.
            if !data.is_empty() && ctx.is_enabled() {
                ctx.event(
                    names::CHAOS_FAULT_EVENT,
                    &[("backend", self.name.as_str()), ("fault", "torn_write")],
                );
            }
            self.tear(data)
        } else {
            data
        };
        self.inner.put_traced(ctx, key, payload)
    }

    fn get_traced(&self, ctx: &TraceCtx, key: &str) -> Result<Payload, BackendError> {
        let d = self.next_decision(false);
        self.trace_decision(ctx, &d);
        self.gate(&d, "get", key)?;
        self.inner.get_traced(ctx, key)
    }

    fn stat_traced(&self, ctx: &TraceCtx, key: &str) -> Result<EntryMeta, BackendError> {
        let d = self.next_decision(false);
        self.trace_decision(ctx, &d);
        self.gate(&d, "stat", key)?;
        self.inner.stat_traced(ctx, key)
    }

    fn delete_traced(&self, ctx: &TraceCtx, key: &str) -> Result<(), BackendError> {
        let d = self.next_decision(false);
        self.trace_decision(ctx, &d);
        self.gate(&d, "delete", key)?;
        self.inner.delete_traced(ctx, key)
    }

    fn list_traced(&self, ctx: &TraceCtx, prefix: &str) -> Result<Vec<EntryMeta>, BackendError> {
        let d = self.next_decision(false);
        self.trace_decision(ctx, &d);
        self.gate(&d, "list", prefix)?;
        self.inner.list_traced(ctx, prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdf_adal::ObjectStoreBackend;
    use lsdf_storage::ObjectStore;

    fn store(name: &str) -> Arc<dyn StorageBackend> {
        Arc::new(ObjectStoreBackend::new(Arc::new(ObjectStore::new(
            name,
            u64::MAX,
        ))))
    }

    fn b(s: &str) -> Payload {
        Payload::from(s.as_bytes().to_vec())
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let reg = Registry::new();
        let fb = FaultyBackend::new("disk", store("d"), FaultPlan::quiet(1), &reg);
        fb.put("k", b("v")).unwrap();
        assert_eq!(fb.get("k").unwrap(), b("v"));
        assert_eq!(fb.stat("k").unwrap().size, 1);
        assert_eq!(fb.list("").unwrap().len(), 1);
        fb.delete("k").unwrap();
        assert!(!fb.exists("k"));
        assert_eq!(reg.counter_total(names::CHAOS_INJECTED_TOTAL), 0);
        assert_eq!(fb.ops_seen(), 6); // exists() routes through stat()
    }

    #[test]
    fn outage_window_fails_exactly_its_ops() {
        let reg = Registry::new();
        let plan = FaultPlan::quiet(1).outage(1, 3);
        let fb = FaultyBackend::new("disk", store("d"), plan, &reg);
        fb.put("a", b("1")).unwrap(); // op 0: before the window
        assert!(matches!(
            fb.put("b", b("2")), // op 1
            Err(BackendError::Unavailable(_))
        ));
        assert!(matches!(fb.get("a"), Err(BackendError::Unavailable(_)))); // op 2
        assert_eq!(fb.get("a").unwrap(), b("1")); // op 3: recovered
        assert_eq!(
            reg.counter_value(
                names::CHAOS_INJECTED_TOTAL,
                &[("backend", "disk"), ("fault", "outage")]
            ),
            2
        );
    }

    #[test]
    fn transient_faults_are_counted_and_reproducible() {
        let run = || {
            let reg = Registry::new();
            let plan = FaultPlan::quiet(9).transient(0.5);
            let fb = FaultyBackend::new("disk", store("d"), plan, &reg);
            (0..64)
                .map(|i| fb.put(&format!("k{i}"), b("x")).is_ok())
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.iter().any(|ok| *ok));
        assert!(a.iter().any(|ok| !*ok));
    }

    #[test]
    fn torn_write_acknowledges_but_corrupts() {
        let reg = Registry::new();
        let inner = store("d");
        let plan = FaultPlan::quiet(5).torn_writes(1.0);
        let fb = FaultyBackend::new("disk", inner.clone(), plan, &reg);
        fb.put("k", b("payload")).unwrap(); // acked!
        let stored = inner.get("k").unwrap();
        assert_ne!(stored, b("payload"));
        assert_eq!(stored.len(), 7); // one byte flipped, not truncated
        assert_eq!(
            reg.counter_value(
                names::CHAOS_INJECTED_TOTAL,
                &[("backend", "disk"), ("fault", "torn_write")]
            ),
            1
        );
    }

    #[test]
    fn torn_write_mutates_a_private_copy_never_the_shared_buffer() {
        // The zero-copy invariant under chaos: the caller's Payload
        // handle is shared with replicas and the catalog, so a torn
        // write must corrupt its own copy — the shared buffer and its
        // memoized digest cell stay pristine.
        let reg = Registry::new();
        let inner = store("d");
        let plan = FaultPlan::quiet(5).torn_writes(1.0);
        let fb = FaultyBackend::new("disk", inner.clone(), plan, &reg);
        let original = b("payload");
        let caller_handle = original.clone(); // e.g. the replica's handle
        let digest_before = caller_handle.digest();
        fb.put("k", original).unwrap();
        assert_eq!(caller_handle, b("payload"), "shared buffer was mutated");
        assert_eq!(
            caller_handle.digest(),
            digest_before,
            "memoized digest cell poisoned by the torn copy"
        );
        let stored = inner.get("k").unwrap();
        assert_ne!(stored, caller_handle);
        assert_ne!(stored.digest(), digest_before, "tear got its own digest cell");
    }

    #[test]
    fn faulty_backend_is_send_sync() {
        // The worker pool fans ADAL puts across threads; a chaos-wrapped
        // backend must stay shareable or pooled soaks cannot compile.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FaultyBackend>();
    }

    #[test]
    fn latency_spikes_recorded_without_failing() {
        let reg = Registry::new();
        let plan = FaultPlan::quiet(2).latency_spikes(1.0, 7_000);
        let fb = FaultyBackend::new("disk", store("d"), plan, &reg);
        fb.put("k", b("v")).unwrap();
        assert_eq!(fb.get("k").unwrap(), b("v"));
        let h = reg.histogram(names::CHAOS_INJECTED_LATENCY_NS, &[("backend", "disk")]);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 14_000);
    }
}
