//! Integration-test host crate.
