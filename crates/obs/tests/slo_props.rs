//! Property tests for the SLO rule grammar: every parseable rule
//! renders to a canonical form that re-parses to the same rule
//! (display/parse is a fixed point after one normalisation), and the
//! malformed shapes the grammar promises to reject are rejected for
//! every instantiation, not just the hand-picked unit-test cases.

use proptest::prelude::*;

use lsdf_obs::SloRule;

/// A metric name: lowercase snake_case, like every `lsdf_obs::names`
/// constant.
fn name_strat() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,12}"
}

/// Label sets as they appear in rule text. Keys and values are bare
/// tokens; the parser sorts them, so generation order is free.
fn labels_strat() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(("[a-z][a-z0-9_]{0,6}", "[a-z0-9][a-z0-9_.-]{0,6}"), 0..3)
}

fn fmt_ref(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        name.to_string()
    } else {
        let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{name}{{{}}}", body.join(","))
    }
}

fn cmp_strat() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("<"), Just("<="), Just("==")]
}

/// Thresholds and budgets that survive f64 round-tripping exactly
/// (`{}` on f64 prints the shortest string that parses back equal).
fn threshold_strat() -> impl Strategy<Value = f64> {
    prop_oneof![
        (0u32..10_000).prop_map(|n| n as f64 / 100.0),
        (0u64..u64::MAX / 2).prop_map(|n| n as f64),
    ]
}

fn budget_strat() -> impl Strategy<Value = f64> {
    (1u32..10_000).prop_map(|n| n as f64 / 1_000.0)
}

/// One grammar-valid rule string assembled from parts.
#[derive(Debug, Clone)]
struct RuleParts {
    window: Option<u32>,
    body: String,
    cmp: &'static str,
    threshold: f64,
}

impl RuleParts {
    fn text(&self) -> String {
        let prefix = match self.window {
            Some(w) => format!("window({w}) "),
            None => String::new(),
        };
        format!("{prefix}{} {} {}", self.body, self.cmp, self.threshold)
    }
}

fn valid_rule_strat() -> impl Strategy<Value = RuleParts> {
    let quantile = (
        prop_oneof![Just("p50"), Just("p95"), Just("p99")],
        name_strat(),
        labels_strat(),
        prop::option::of(1u32..32),
    )
        .prop_map(|(q, n, l, w)| (w, format!("{q}({})", fmt_ref(&n, &l))));

    let gauge = (name_strat(), labels_strat())
        .prop_map(|(n, l)| (None, format!("gauge({})", fmt_ref(&n, &l))));

    // Instantaneous rate: bare names only, no window.
    let inst_rate =
        (name_strat(), name_strat()).prop_map(|(n, d)| (None, format!("rate({n} / {d})")));

    let windowed_rate = (
        name_strat(),
        labels_strat(),
        name_strat(),
        labels_strat(),
        1u32..32,
    )
        .prop_map(|(n, nl, d, dl, w)| {
            (
                Some(w),
                format!("rate({} / {})", fmt_ref(&n, &nl), fmt_ref(&d, &dl)),
            )
        });

    let delta = (name_strat(), labels_strat(), 1u32..32)
        .prop_map(|(n, l, w)| (Some(w), format!("delta({})", fmt_ref(&n, &l))));

    let burn = (
        name_strat(),
        labels_strat(),
        name_strat(),
        labels_strat(),
        budget_strat(),
        1u32..32,
    )
        .prop_map(|(n, nl, d, dl, b, w)| {
            (
                Some(w),
                format!("burn({} / {}, {b})", fmt_ref(&n, &nl), fmt_ref(&d, &dl)),
            )
        });

    (
        prop_oneof![quantile, gauge, inst_rate, windowed_rate, delta, burn],
        cmp_strat(),
        threshold_strat(),
    )
        .prop_map(|((window, body), cmp, threshold)| RuleParts {
            window,
            body,
            cmp,
            threshold,
        })
}

proptest! {
    /// parse → display → parse → display reaches a fixed point after
    /// one normalisation pass, and the normalised form preserves the
    /// window and project attribution of the original.
    #[test]
    fn display_parse_is_a_fixed_point(parts in valid_rule_strat()) {
        let text = parts.text();
        let rule = SloRule::parse(&text)
            .unwrap_or_else(|e| panic!("generated rule {text:?} must parse: {e}"));
        let d1 = rule.to_string();
        let rule2 = SloRule::parse(&d1)
            .unwrap_or_else(|e| panic!("canonical form {d1:?} must re-parse: {e}"));
        let d2 = rule2.to_string();
        prop_assert_eq!(&d1, &d2, "display not a fixed point for {}", text);
        prop_assert_eq!(rule.window(), rule2.window());
        prop_assert_eq!(rule.project(), rule2.project());
    }

    /// The canonical form keeps the window prefix textually intact, so
    /// window boundaries survive serialisation of rule sets.
    #[test]
    fn window_survives_round_trip(parts in valid_rule_strat()) {
        let rule = SloRule::parse(&parts.text()).unwrap();
        match parts.window {
            Some(w) => {
                prop_assert_eq!(rule.window(), Some(u64::from(w)));
                prop_assert!(rule.to_string().starts_with(&format!("window({w}) ")));
            }
            None => {
                prop_assert_eq!(rule.window(), None);
                prop_assert!(!rule.to_string().starts_with("window("));
            }
        }
    }

    /// `window(0)` is meaningless (an empty lookback) and rejected for
    /// every otherwise-valid rule body.
    #[test]
    fn zero_window_is_rejected(parts in valid_rule_strat()) {
        let text = format!("window(0) {} {} {}", parts.body, parts.cmp, parts.threshold);
        prop_assert!(SloRule::parse(&text).is_err(), "accepted {}", text);
    }

    /// Gauges are point-in-time reads: combining them with a window is
    /// a grammar error for any gauge reference.
    #[test]
    fn windowed_gauge_is_rejected(
        name in name_strat(),
        labels in labels_strat(),
        w in 1u32..32,
        thr in threshold_strat(),
    ) {
        let text = format!("window({w}) gauge({}) <= {thr}", fmt_ref(&name, &labels));
        prop_assert!(SloRule::parse(&text).is_err(), "accepted {}", text);
    }

    /// `delta` and `burn` only make sense over a window; without one
    /// they are rejected whatever their arguments.
    #[test]
    fn windowless_delta_and_burn_are_rejected(
        name in name_strat(),
        den in name_strat(),
        labels in labels_strat(),
        budget in budget_strat(),
        thr in threshold_strat(),
    ) {
        let d = format!("delta({}) <= {thr}", fmt_ref(&name, &labels));
        prop_assert!(SloRule::parse(&d).is_err(), "accepted {}", d);
        let b = format!("burn({} / {den}, {budget}) <= {thr}", fmt_ref(&name, &labels));
        prop_assert!(SloRule::parse(&b).is_err(), "accepted {}", b);
    }

    /// Instantaneous `rate` has no per-label history to draw on, so a
    /// label block without a window is rejected.
    #[test]
    fn labelled_instantaneous_rate_is_rejected(
        num in name_strat(),
        den in name_strat(),
        k in "[a-z]{1,6}",
        v in "[a-z0-9]{1,6}",
        thr in threshold_strat(),
    ) {
        let text = format!("rate({num}{{{k}={v}}} / {den}) <= {thr}");
        prop_assert!(SloRule::parse(&text).is_err(), "accepted {}", text);
    }

    /// Burn budgets must be positive and finite.
    #[test]
    fn non_positive_burn_budget_is_rejected(
        num in name_strat(),
        den in name_strat(),
        w in 1u32..32,
        thr in threshold_strat(),
        bad in prop_oneof![Just(0.0), (1u32..1000).prop_map(|n| -(n as f64) / 100.0)],
    ) {
        let text = format!("window({w}) burn({num} / {den}, {bad}) <= {thr}");
        prop_assert!(SloRule::parse(&text).is_err(), "accepted {}", text);
    }
}
