//! Property tests pinning down the histogram's quantile-error contract:
//! for any data set and any quantile, the log2-bucketed estimate is
//! at least the true nearest-rank quantile and less than twice it
//! (exactly equal when the true quantile is 0 or 1).

use lsdf_obs::Histogram;
use proptest::prelude::*;

/// True nearest-rank quantile with the same rank convention the
/// histogram uses: rank = clamp(ceil(q * n), 1, n), value = sorted[rank-1].
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #[test]
    fn quantile_estimate_is_within_2x(
        mut values in prop::collection::vec(any::<u64>(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let truth = true_quantile(&values, q);
        let est = h.quantile(q);
        prop_assert!(est >= truth, "estimate {est} below true quantile {truth}");
        if truth == 0 {
            prop_assert_eq!(est, 0);
        } else {
            // est <= 2*truth - 1 < 2*truth (bucket upper bound), and the
            // clamp to the observed max can only tighten it.
            prop_assert!(
                est <= truth.saturating_mul(2).saturating_sub(1),
                "estimate {est} not within 2x of true quantile {truth}"
            );
        }
    }

    #[test]
    fn count_sum_min_max_are_exact(
        values in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.min(), values.iter().copied().min().unwrap_or(0));
        prop_assert_eq!(h.max(), values.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        values in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(h.quantile(w[0]) <= h.quantile(w[1]));
        }
        // p100 is exactly the max (clamp makes this tight).
        prop_assert_eq!(h.quantile(1.0), values.iter().copied().max().unwrap());
    }
}
