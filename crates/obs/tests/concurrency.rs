//! Concurrency: many threads hammering the same registry handles must
//! lose no increments and tear no histogram state.

use std::sync::Arc;
use std::thread;

use lsdf_obs::Registry;

#[test]
fn concurrent_counter_increments_are_lossless() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let reg = Arc::new(Registry::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let reg = reg.clone();
        handles.push(thread::spawn(move || {
            // Each thread resolves its own handle: get-or-create must
            // converge on the same underlying cell.
            let c = reg.counter("stress_total", &[("kind", "inc")]);
            let g = reg.gauge("stress_inflight", &[]);
            for i in 0..PER_THREAD {
                g.add(1);
                c.inc();
                // Mix in per-thread labels to exercise map growth.
                if i % 1000 == 0 {
                    reg.counter("stress_total", &[("kind", "labelled")])
                        .inc();
                }
                g.add(-1);
            }
            let _ = t;
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        reg.counter_value("stress_total", &[("kind", "inc")]),
        (THREADS as u64) * PER_THREAD
    );
    assert_eq!(
        reg.counter_value("stress_total", &[("kind", "labelled")]),
        (THREADS as u64) * (PER_THREAD / 1000)
    );
    assert_eq!(reg.gauge_value("stress_inflight", &[]), 0);
    assert_eq!(
        reg.counter_total("stress_total"),
        (THREADS as u64) * (PER_THREAD + PER_THREAD / 1000)
    );
}

#[test]
fn concurrent_histogram_records_preserve_count_and_sum() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    let reg = Arc::new(Registry::new());
    let hist = reg.histogram("stress_lat_ns", &[]);
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let hist = hist.clone();
        handles.push(thread::spawn(move || {
            for i in 0..PER_THREAD {
                hist.record(t * PER_THREAD + i);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let n = THREADS * PER_THREAD;
    assert_eq!(hist.count(), n);
    assert_eq!(hist.sum(), n * (n - 1) / 2);
    assert_eq!(hist.min(), 0);
    assert_eq!(hist.max(), n - 1);
}
