//! The metrics registry: named, labelled metric handles plus spans and
//! a bounded event log.

use std::collections::{BTreeMap, VecDeque};

use lsdf_sync::{ranks, OrderedMutex, OrderedRwLock};

use crate::clock::Clock;
use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};

/// Maximum number of events retained; older events are dropped first.
const EVENT_CAPACITY: usize = 1024;

/// A metric's identity: its name plus a sorted set of labels.
///
/// Label order does not matter at the call site — labels are sorted by
/// key on construction, so `[("op","put"),("project","alice")]` and the
/// reverse order name the same metric.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    /// Metric name, e.g. `adal_ops_total`.
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Builds an id, sorting the labels by key.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }
}

impl std::fmt::Display for MetricId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}={v}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// A timestamped, structured occurrence (tape mount, VM boot, host
/// failure). Kept in a bounded ring; exported with the snapshot.
#[derive(Clone, Debug)]
pub struct Event {
    /// Timestamp in nanoseconds from the registry clock (wall or
    /// virtual, whichever mode the clock was in).
    pub t_ns: u64,
    /// Event name, e.g. `tape_mount`.
    pub name: String,
    /// Structured fields.
    pub fields: Vec<(String, String)>,
}

/// The facility-wide metrics registry.
///
/// Handles returned by [`Registry::counter`] / [`Registry::gauge`] /
/// [`Registry::histogram`] are get-or-create: the first call for an id
/// creates the metric, later calls return a handle to the same cells.
/// The registry lock is only held during lookup — cache the handle and
/// the hot path is purely atomic.
pub struct Registry {
    clock: Clock,
    counters: OrderedRwLock<BTreeMap<MetricId, Counter>>,
    gauges: OrderedRwLock<BTreeMap<MetricId, Gauge>>,
    histograms: OrderedRwLock<BTreeMap<MetricId, Histogram>>,
    events: OrderedMutex<VecDeque<Event>>,
}

impl Registry {
    /// An empty registry with a wall-mode clock.
    pub fn new() -> Self {
        Registry {
            clock: Clock::new(),
            counters: OrderedRwLock::new(ranks::OBS_COUNTERS, BTreeMap::new()),
            gauges: OrderedRwLock::new(ranks::OBS_GAUGES, BTreeMap::new()),
            histograms: OrderedRwLock::new(ranks::OBS_HISTOGRAMS, BTreeMap::new()),
            events: OrderedMutex::new(ranks::OBS_EVENTS, VecDeque::new()),
        }
    }

    /// The registry's clock (shared by spans and events).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Switches the clock to virtual time and advances it to `ns`
    /// (typically `SimTime::as_nanos()` from `lsdf-sim`).
    pub fn set_virtual_time_ns(&self, ns: u64) {
        self.clock.set_virtual_ns(ns);
    }

    /// Current clock reading in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Get-or-create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = MetricId::new(name, labels);
        if let Some(c) = self.counters.read().get(&id) {
            return c.clone();
        }
        self.counters.write().entry(id).or_default().clone()
    }

    /// Get-or-create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = MetricId::new(name, labels);
        if let Some(g) = self.gauges.read().get(&id) {
            return g.clone();
        }
        self.gauges.write().entry(id).or_default().clone()
    }

    /// Get-or-create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let id = MetricId::new(name, labels);
        if let Some(h) = self.histograms.read().get(&id) {
            return h.clone();
        }
        self.histograms.write().entry(id).or_default().clone()
    }

    /// Current value of a counter, or 0 when it does not exist.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let id = MetricId::new(name, labels);
        self.counters.read().get(&id).map(Counter::get).unwrap_or(0)
    }

    /// Current value of a gauge, or 0 when it does not exist.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> i64 {
        let id = MetricId::new(name, labels);
        self.gauges.read().get(&id).map(Gauge::get).unwrap_or(0)
    }

    /// Sum of a counter across all label sets sharing `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.read()
            .iter()
            .filter(|(id, _)| id.name == name)
            .map(|(_, c)| c.get())
            .sum()
    }

    /// Starts a span that records its elapsed time (per the registry
    /// clock) into `hist` when dropped or [`Span::finish`]ed.
    pub fn span(&self, hist: &Histogram) -> Span {
        Span {
            clock: self.clock.clone(),
            hist: hist.clone(),
            start_ns: self.clock.now_ns(),
            armed: true,
        }
    }

    /// Records an event timestamped with the registry clock.
    pub fn event(&self, name: &str, fields: &[(&str, &str)]) {
        self.event_at(self.clock.now_ns(), name, fields);
    }

    /// Records an event with an explicit timestamp — for subsystems on
    /// their own virtual timeline (e.g. a DES run) that should not flip
    /// the shared clock into virtual mode.
    pub fn event_at(&self, t_ns: u64, name: &str, fields: &[(&str, &str)]) {
        let mut ring = self.events.lock();
        if ring.len() == EVENT_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(Event {
            t_ns,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().iter().cloned().collect()
    }

    /// A point-in-time copy of every metric and event.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self.counters.read()
                .iter()
                .map(|(id, c)| (id.clone(), c.get()))
                .collect(),
            gauges: self.gauges.read()
                .iter()
                .map(|(id, g)| (id.clone(), g.get()))
                .collect(),
            histograms: self.histograms.read()
                .iter()
                .map(|(id, h)| (id.clone(), h.snapshot()))
                .collect(),
            events: self.events(),
        }
    }

    /// Renders [`Registry::snapshot`] as a JSON document. Metrics appear
    /// in sorted id order, so the output is deterministic for a given
    /// set of recorded values.
    pub fn to_json(&self) -> String {
        crate::json::render(&self.snapshot())
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.counters.read().len())
            .field("gauges", &self.gauges.read().len())
            .field("histograms", &self.histograms.read().len())
            .field("events", &self.events.lock().len())
            .finish()
    }
}

/// A point-in-time copy of a [`Registry`], sorted by metric id.
#[derive(Clone, Debug)]
pub struct RegistrySnapshot {
    /// Counter values.
    pub counters: Vec<(MetricId, u64)>,
    /// Gauge values.
    pub gauges: Vec<(MetricId, i64)>,
    /// Histogram summaries.
    pub histograms: Vec<(MetricId, HistogramSnapshot)>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
}

/// An in-flight timing: created by [`Registry::span`], records the
/// elapsed nanoseconds into its histogram when dropped (or explicitly
/// via [`Span::finish`]). Error paths that bail early therefore still
/// record their latency.
#[must_use = "a span records on drop; bind it to a variable for the scope being timed"]
pub struct Span {
    clock: Clock,
    hist: Histogram,
    start_ns: u64,
    armed: bool,
}

impl Span {
    /// Elapsed nanoseconds so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.start_ns)
    }

    /// Records now and returns the elapsed nanoseconds.
    pub fn finish(mut self) -> u64 {
        let dt = self.elapsed_ns();
        self.hist.record(dt);
        self.armed = false;
        dt
    }

    /// Drops the span without recording anything.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.elapsed_ns());
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("start_ns", &self.start_ns)
            .field("elapsed_ns", &self.elapsed_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_shared_handles() {
        let r = Registry::new();
        let a = r.counter("ops", &[("op", "put")]);
        let b = r.counter("ops", &[("op", "put")]);
        a.inc();
        b.inc();
        assert_eq!(r.counter_value("ops", &[("op", "put")]), 2);
        // Different labels -> different metric.
        r.counter("ops", &[("op", "get")]).add(5);
        assert_eq!(r.counter_total("ops"), 7);
    }

    #[test]
    fn label_order_is_irrelevant() {
        let r = Registry::new();
        r.counter("x", &[("a", "1"), ("b", "2")]).inc();
        r.counter("x", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(r.counter_value("x", &[("b", "2"), ("a", "1")]), 2);
        assert_eq!(r.snapshot().counters.len(), 1);
    }

    #[test]
    fn span_records_on_drop_and_finish() {
        let r = Registry::new();
        let h = r.histogram("lat", &[]);
        {
            let _s = r.span(&h);
        }
        assert_eq!(h.count(), 1);
        let s = r.span(&h);
        s.finish();
        assert_eq!(h.count(), 2);
        let s = r.span(&h);
        s.cancel();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn span_on_virtual_time() {
        let r = Registry::new();
        r.set_virtual_time_ns(1_000);
        let h = r.histogram("vlat", &[]);
        let s = r.span(&h);
        r.set_virtual_time_ns(5_000);
        assert_eq!(s.finish(), 4_000);
        assert_eq!(h.max(), 4_000);
    }

    #[test]
    fn event_ring_is_bounded() {
        let r = Registry::new();
        for i in 0..(EVENT_CAPACITY + 10) {
            r.event_at(i as u64, "tick", &[]);
        }
        let evs = r.events();
        assert_eq!(evs.len(), EVENT_CAPACITY);
        assert_eq!(evs[0].t_ns, 10);
    }

    #[test]
    fn gauge_roundtrip() {
        let r = Registry::new();
        let g = r.gauge("depth", &[]);
        g.add(4);
        g.add(-1);
        assert_eq!(r.gauge_value("depth", &[]), 3);
    }
}
