//! `lsdf-obs` — the facility-wide observability substrate.
//!
//! The paper's LSDF is an *operated* facility: every number it reports
//! (ingest rates, ADAL overhead, HSM recall latency, VM deploy times) is
//! an operational measurement. This crate provides the measuring
//! instrument: a lock-cheap [`Registry`] of named [`Counter`]s,
//! [`Gauge`]s, and log-bucketed [`Histogram`]s (with p50/p95/p99
//! summaries), a lightweight [`Span`]/event API that can timestamp
//! against either the wall clock or `lsdf-sim` virtual time, and a
//! dependency-free JSON exporter for bench reports.
//!
//! Design rules:
//!
//! * **Hot paths touch only atomics.** Handles ([`Counter`],
//!   [`Gauge`], [`Histogram`]) are cheap `Arc` clones around atomic
//!   cells; callers look them up once and cache them. The registry's
//!   lock is taken only at get-or-create time.
//! * **Labels are first-class.** A metric identity is its name plus a
//!   sorted label set (`("project", "zebrafish")`, `("op", "put")`),
//!   so per-project / per-backend breakdowns fall out of the same API.
//! * **Minimal dependencies.** The crate depends only on `lsdf-sync`
//!   (whose rank-ordered locks every facility crate uses); JSON is
//!   rendered by hand so the bench report works in hermetic builds.

#![warn(missing_docs)]

mod clock;
mod console;
mod json;
mod metric;
pub mod names;
mod profile;
mod registry;
mod slo;
mod telemetry;
mod trace;

pub use clock::Clock;
pub use console::{facility_status, sparkline, ConsoleInputs};
pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use profile::{SpanProfile, SpanProfileRow};
pub use registry::{Event, MetricId, Registry, RegistrySnapshot, Span};
pub use slo::{Cmp, FacilityHealth, ProjectAccount, Quantile, RuleOutcome, Selector, SloMonitor, SloRule};
pub use telemetry::{HistPoint, TelemetryConfig, TelemetryStore};
pub use trace::{SampleMode, SpanRecord, TraceConfig, TraceCtx, TraceEvent, TraceId, TraceRecord, Tracer};
