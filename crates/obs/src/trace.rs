//! Deterministic causal tracing: every ADAL operation can mint a
//! [`TraceId`], and the components it fans out to (retry loops, circuit
//! breakers, pool workers, DFS block placement, HSM staging, tape
//! mounts, chaos injections) attach child spans and events through an
//! explicit [`TraceCtx`] threaded down the call path.
//!
//! Determinism rules (the same rules the rest of the facility obeys):
//!
//! * all timestamps come from the registry [`Clock`] — under a virtual
//!   clock a seeded run produces bit-identical traces;
//! * sampling is a pure hash of the trace id and the configured seed —
//!   never wall entropy, so lint rule L1 holds;
//! * a child span reserves its slot in the parent at **creation** time
//!   (creation sites are serial) and fills it at finish, so the tree
//!   shape never depends on which pool worker finished first;
//! * trace ids are hashes of (seed, span name, key, clock), never a
//!   shared counter, so they are independent of scheduling order.
//!
//! Storage is a bounded map ordered by `(start_ns, trace_id)`; when the
//! capacity is exceeded the oldest traces are evicted first, which is
//! insertion-order independent. Two consumers sit on top: a
//! chrome://tracing JSON exporter ([`Tracer::export_chrome`]) and a
//! text tree renderer for the slowest traces
//! ([`Tracer::render_slowest`]).

use std::collections::BTreeMap;
use std::sync::Arc;

use lsdf_sync::{ranks, OrderedMutex};

use crate::clock::Clock;
use crate::json::escape;
use crate::metric::{Counter, Gauge};
use crate::names;
use crate::registry::Registry;

/// splitmix64 finalizer — the deterministic hash behind trace ids and
/// sampling decisions.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the bytes, then finalized with [`mix`].
fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(h)
}

/// Identity of one causal trace (one root ADAL operation and everything
/// it fanned out to).
///
/// Derived by hashing `(sampling seed, root span name, key, clock)` —
/// never an allocation counter — so the id is identical at any worker
/// count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A point-in-time occurrence inside a span (a retry decision, a
/// breaker transition, an injected fault).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Timestamp from the registry clock, nanoseconds.
    pub t_ns: u64,
    /// Event name (a `lsdf_obs::names` const).
    pub name: &'static str,
    /// Structured fields.
    pub fields: Vec<(String, String)>,
}

/// A completed span: one timed stretch of work attributed to a trace.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span name (a `lsdf_obs::names` const).
    pub name: &'static str,
    /// Start timestamp, nanoseconds (registry clock).
    pub start_ns: u64,
    /// End timestamp, nanoseconds (registry clock).
    pub end_ns: u64,
    /// Structured fields attached while the span was live.
    pub fields: Vec<(String, String)>,
    /// Point events recorded inside this span, in recording order.
    pub events: Vec<TraceEvent>,
    /// Child spans in creation order (creation sites are serial, so
    /// this order is identical at any worker count).
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Span duration in nanoseconds (0 when the clock did not advance).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Total spans in this subtree, the span itself included.
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanRecord::span_count).sum::<usize>()
    }

    /// Depth-first walk over the subtree's events.
    pub fn for_each_event(&self, f: &mut impl FnMut(&SpanRecord, &TraceEvent)) {
        for e in &self.events {
            f(self, e);
        }
        for c in &self.children {
            c.for_each_event(f);
        }
    }
}

/// An in-flight span: the slot vector lets children finish in any
/// order while the record keeps creation order.
struct SpanBuild {
    name: &'static str,
    start_ns: u64,
    fields: Vec<(String, String)>,
    events: Vec<TraceEvent>,
    children: Vec<Option<SpanRecord>>,
}

impl SpanBuild {
    fn new(name: &'static str, start_ns: u64) -> Self {
        SpanBuild {
            name,
            start_ns,
            fields: Vec::new(),
            events: Vec::new(),
            children: Vec::new(),
        }
    }

    fn into_record(self, end_ns: u64) -> SpanRecord {
        SpanRecord {
            name: self.name,
            start_ns: self.start_ns,
            end_ns,
            fields: self.fields,
            events: self.events,
            // A `None` slot is a child that never finished (e.g. a sim
            // callback that was never scheduled); it is dropped rather
            // than exported half-built.
            children: self.children.into_iter().flatten().collect(),
        }
    }
}

type SpanCell = Arc<OrderedMutex<Option<SpanBuild>>>;

/// Where a finished span's record goes.
enum Parent {
    /// This ctx is the trace root: the record lands in the tracer store.
    Root {
        /// Key the root was minted for (stored alongside the trace).
        key: String,
    },
    /// A child: the record fills `slot` in the parent's build.
    Span {
        /// The parent's in-flight cell.
        cell: SpanCell,
        /// Slot reserved at creation time.
        slot: usize,
    },
}

struct CtxInner {
    tracer: Tracer,
    trace_id: TraceId,
    cell: SpanCell,
    parent: Parent,
}

/// The handle a traced call path carries: spans and events attach to
/// the trace through it.
///
/// A disabled ctx ([`TraceCtx::disabled`], or anything derived from
/// one) is a no-op on every method — the untraced hot path costs one
/// `Option` check. The ctx is owned and `Send`: children can be moved
/// into pool workers and `'static` simulation callbacks. Dropping a
/// ctx finishes its span at the current clock reading, so early error
/// returns still produce complete trees.
pub struct TraceCtx {
    inner: Option<CtxInner>,
}

impl TraceCtx {
    /// A no-op ctx for untraced call paths.
    pub fn disabled() -> Self {
        TraceCtx { inner: None }
    }

    /// False for [`TraceCtx::disabled`] (and for children of a finished
    /// parent).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace this ctx belongs to, if enabled.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.inner.as_ref().map(|i| i.trace_id)
    }

    fn now_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.tracer.inner.clock.now_ns())
    }

    /// Opens a child span at the current clock reading. `name` must be
    /// a `lsdf_obs::names` const (enforced by lint rule L3).
    pub fn child(&self, name: &'static str) -> TraceCtx {
        self.child_at(name, self.now_ns())
    }

    /// Opens a child span at an explicit timestamp (simulation-driven
    /// components pass `sim.now`). The child's slot in the parent is
    /// reserved here, under the parent lock, so creation order — not
    /// completion order — fixes the tree shape.
    pub fn child_at(&self, name: &'static str, t_ns: u64) -> TraceCtx {
        let Some(inner) = &self.inner else {
            return TraceCtx::disabled();
        };
        let slot = {
            let mut guard = inner.cell.lock();
            let Some(build) = guard.as_mut() else {
                // The parent already finished (late sim callback): the
                // child traces nothing rather than dangling.
                return TraceCtx::disabled();
            };
            build.children.push(None);
            build.children.len() - 1
        };
        TraceCtx {
            inner: Some(CtxInner {
                tracer: inner.tracer.clone(),
                trace_id: inner.trace_id,
                cell: Arc::new(OrderedMutex::new(ranks::OBS_SPAN_CELL, Some(SpanBuild::new(name, t_ns)))),
                parent: Parent::Span {
                    cell: Arc::clone(&inner.cell),
                    slot,
                },
            }),
        }
    }

    /// Attaches a structured field to this span.
    pub fn add_field(&self, key: &str, value: &str) {
        let Some(inner) = &self.inner else { return };
        if let Some(build) = inner.cell.lock().as_mut() {
            build.fields.push((key.to_string(), value.to_string()));
        }
    }

    /// Records a point event at the current clock reading.
    pub fn event(&self, name: &'static str, fields: &[(&str, &str)]) {
        self.event_at(self.now_ns(), name, fields);
    }

    /// Records a point event at an explicit timestamp.
    pub fn event_at(&self, t_ns: u64, name: &'static str, fields: &[(&str, &str)]) {
        let Some(inner) = &self.inner else { return };
        if let Some(build) = inner.cell.lock().as_mut() {
            build.events.push(TraceEvent {
                t_ns,
                name,
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            });
        }
    }

    /// Finishes the span at the current clock reading.
    pub fn finish(mut self) {
        let t = self.now_ns();
        self.finish_inner(t);
    }

    /// Finishes the span at an explicit timestamp.
    pub fn finish_at(mut self, t_ns: u64) {
        self.finish_inner(t_ns);
    }

    fn finish_inner(&mut self, t_ns: u64) {
        let Some(inner) = self.inner.take() else { return };
        let Some(build) = inner.cell.lock().take() else {
            return;
        };
        let record = build.into_record(t_ns);
        match inner.parent {
            Parent::Span { cell, slot } => {
                if let Some(parent) = cell.lock().as_mut() {
                    parent.children[slot] = Some(record);
                }
                // Parent already finished: the late child is dropped —
                // deterministically, since schedules are deterministic.
            }
            Parent::Root { key } => inner.tracer.store_root(inner.trace_id, key, record),
        }
    }
}

impl Drop for TraceCtx {
    fn drop(&mut self) {
        let t = self.now_ns();
        self.finish_inner(t);
    }
}

/// How roots are selected for retention.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleMode {
    /// Trace nothing (mint disabled ctxs — the overhead floor).
    Off,
    /// Keep roots whose id hashes under `ppm` parts-per-million. The
    /// decision is a pure function of (trace id, seed): deterministic,
    /// scheduling-independent.
    Ratio(u32),
    /// Trace every root.
    Full,
}

/// Tracer construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Sampling mode.
    pub mode: SampleMode,
    /// Retained-trace bound; oldest `(start_ns, trace_id)` evicted first.
    pub capacity: usize,
    /// Seed folded into trace ids and sampling decisions.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mode: SampleMode::Full,
            capacity: 1024,
            seed: 0,
        }
    }
}

impl TraceConfig {
    /// Full tracing with the default capacity.
    pub fn full() -> Self {
        TraceConfig::default()
    }

    /// Tracing disabled (minting only counts roots).
    pub fn off() -> Self {
        TraceConfig {
            mode: SampleMode::Off,
            ..TraceConfig::default()
        }
    }

    /// Seeded ratio sampling, `ppm` parts-per-million of roots kept.
    pub fn sampled(ppm: u32) -> Self {
        TraceConfig {
            mode: SampleMode::Ratio(ppm),
            ..TraceConfig::default()
        }
    }

    /// Overrides the retained-trace bound.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Overrides the sampling/id seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One retained trace: its id, the key the root was minted for, and
/// the completed span tree.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Trace identity.
    pub trace_id: TraceId,
    /// Root key (e.g. the ADAL path).
    pub key: String,
    /// Root span with all attached children.
    pub root: SpanRecord,
}

struct TracerInner {
    clock: Clock,
    config: TraceConfig,
    store: OrderedMutex<BTreeMap<(u64, u64), TraceRecord>>,
    roots: Counter,
    sampled: Counter,
    retained: Gauge,
}

/// The trace store and root-minting factory. Cheap to clone (shared
/// interior, like [`crate::Registry`] handles).
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer on `registry`'s clock, counting
    /// `trace_roots_total` / `trace_sampled_total` and mirroring the
    /// retained-trace count into the `trace_retained` gauge.
    pub fn new(registry: &Registry, config: TraceConfig) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                clock: registry.clock().clone(),
                config,
                store: OrderedMutex::new(ranks::OBS_TRACE_STORE, BTreeMap::new()),
                roots: registry.counter(names::TRACE_ROOTS_TOTAL, &[]),
                sampled: registry.counter(names::TRACE_SAMPLED_TOTAL, &[]),
                retained: registry.gauge(names::TRACE_RETAINED, &[]),
            }),
        }
    }

    /// The configuration this tracer runs with.
    pub fn config(&self) -> TraceConfig {
        self.inner.config
    }

    /// Mints a trace root for one operation on `key`. Returns a
    /// disabled ctx when sampling rejects the root. `name` must be a
    /// `lsdf_obs::names` const (enforced by lint rule L3).
    pub fn root(&self, name: &'static str, key: &str) -> TraceCtx {
        self.inner.roots.inc();
        if self.inner.config.mode == SampleMode::Off {
            return TraceCtx::disabled();
        }
        let now = self.inner.clock.now_ns();
        let seed = self.inner.config.seed;
        let mut h = mix(seed);
        h = mix(h ^ hash_str(name));
        h = mix(h ^ hash_str(key));
        h = mix(h ^ now);
        let id = TraceId(h);
        if let SampleMode::Ratio(ppm) = self.inner.config.mode {
            if mix(id.0 ^ seed) % 1_000_000 >= u64::from(ppm) {
                return TraceCtx::disabled();
            }
        }
        self.inner.sampled.inc();
        let mut build = SpanBuild::new(name, now);
        build.fields.push(("key".to_string(), key.to_string()));
        TraceCtx {
            inner: Some(CtxInner {
                tracer: self.clone(),
                trace_id: id,
                cell: Arc::new(OrderedMutex::new(ranks::OBS_SPAN_CELL, Some(build))),
                parent: Parent::Root {
                    key: key.to_string(),
                },
            }),
        }
    }

    fn store_root(&self, id: TraceId, key: String, root: SpanRecord) {
        let mut store = self.inner.store.lock();
        store.insert(
            (root.start_ns, id.0),
            TraceRecord {
                trace_id: id,
                key,
                root,
            },
        );
        while store.len() > self.inner.config.capacity {
            // Oldest (start_ns, id) first: the retained set is the same
            // regardless of completion/insertion order.
            store.pop_first();
        }
        self.inner.retained.set(store.len() as i64);
    }

    /// Retained traces in `(start_ns, trace_id)` order.
    pub fn traces(&self) -> Vec<TraceRecord> {
        self.inner.store.lock().values().cloned().collect()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.inner.store.lock().len()
    }

    /// True when no trace is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every retained trace.
    pub fn clear(&self) {
        self.inner.store.lock().clear();
        self.inner.retained.set(0);
    }

    /// Exports every retained trace as chrome://tracing JSON (the
    /// "Trace Event Format": complete `ph:"X"` events for spans,
    /// instant `ph:"i"` events for point events). Timestamps are
    /// microseconds with fixed three-decimal nanosecond precision, so
    /// the export is byte-stable for a given trace set.
    pub fn export_chrome(&self) -> String {
        let traces = self.traces();
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (i, tr) in traces.iter().enumerate() {
            let tid = i + 1;
            emit_chrome_span(&mut out, &mut first, tr, &tr.root, tid);
        }
        out.push_str("]}\n");
        out
    }

    /// Renders the `n` slowest traces (by root duration, ties broken by
    /// start time then id) as an indented text tree — the operator's
    /// quick look before opening the chrome export.
    pub fn render_slowest(&self, n: usize) -> String {
        let mut traces = self.traces();
        traces.sort_by(|a, b| {
            b.root
                .duration_ns()
                .cmp(&a.root.duration_ns())
                .then(a.root.start_ns.cmp(&b.root.start_ns))
                .then(a.trace_id.cmp(&b.trace_id))
        });
        let mut out = String::new();
        for tr in traces.iter().take(n) {
            out.push_str(&format!(
                "trace {} key={} {} ({} spans)\n",
                tr.trace_id,
                tr.key,
                fmt_dur(tr.root.duration_ns()),
                tr.root.span_count()
            ));
            render_span(&mut out, &tr.root, 1);
        }
        out
    }
}

/// `ns` as fixed-point microseconds (`123.456`), the chrome `ts` unit.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Human-readable duration for the text renderer.
fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
    } else {
        format!("{}us", fmt_us(ns))
    }
}

fn push_args(out: &mut String, extra: &[(&str, &str)], fields: &[(String, String)]) {
    out.push_str("\"args\":{");
    let mut first = true;
    for (k, v) in extra {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}:{}", escape(k), escape(v)));
    }
    for (k, v) in fields {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}:{}", escape(k), escape(v)));
    }
    out.push('}');
}

fn emit_chrome_span(
    out: &mut String,
    first: &mut bool,
    tr: &TraceRecord,
    span: &SpanRecord,
    tid: usize,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let id = tr.trace_id.to_string();
    out.push_str(&format!(
        "\n{{\"name\":{},\"cat\":\"lsdf\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},",
        escape(span.name),
        fmt_us(span.start_ns),
        fmt_us(span.duration_ns()),
        tid
    ));
    push_args(out, &[("trace_id", &id)], &span.fields);
    out.push('}');
    for e in &span.events {
        out.push_str(&format!(
            ",\n{{\"name\":{},\"cat\":\"lsdf\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\"pid\":1,\"tid\":{},",
            escape(e.name),
            fmt_us(e.t_ns),
            tid
        ));
        push_args(out, &[("trace_id", &id)], &e.fields);
        out.push('}');
    }
    for c in &span.children {
        emit_chrome_span(out, first, tr, c, tid);
    }
}

fn render_span(out: &mut String, span: &SpanRecord, depth: usize) {
    let pad = "  ".repeat(depth);
    out.push_str(&format!("{pad}{} {}", span.name, fmt_dur(span.duration_ns())));
    for (k, v) in &span.fields {
        out.push_str(&format!(" {k}={v}"));
    }
    out.push('\n');
    for e in &span.events {
        out.push_str(&format!("{pad}  ! {} @{}us", e.name, fmt_us(e.t_ns)));
        for (k, v) in &e.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
    }
    for c in &span.children {
        render_span(out, c, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Registry {
        let r = Registry::new();
        r.set_virtual_time_ns(1_000);
        r
    }

    #[test]
    fn root_child_event_tree() {
        let r = reg();
        let tracer = Tracer::new(&r, TraceConfig::full());
        let root = tracer.root("op_a", "k/1");
        r.set_virtual_time_ns(2_000);
        let c1 = root.child("step_one");
        c1.add_field("attempt", "0");
        c1.event("hiccup", &[("why", "io")]);
        r.set_virtual_time_ns(3_000);
        c1.finish();
        let c2 = root.child("step_two");
        r.set_virtual_time_ns(4_000);
        c2.finish();
        root.finish();

        let traces = tracer.traces();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.key, "k/1");
        assert_eq!(t.root.name, "op_a");
        assert_eq!(t.root.start_ns, 1_000);
        assert_eq!(t.root.end_ns, 4_000);
        assert_eq!(t.root.children.len(), 2);
        assert_eq!(t.root.children[0].name, "step_one");
        assert_eq!(t.root.children[0].events.len(), 1);
        assert_eq!(t.root.children[0].fields, vec![("attempt".into(), "0".into())]);
        assert_eq!(t.root.children[1].name, "step_two");
        assert_eq!(t.root.span_count(), 3);
    }

    #[test]
    fn children_keep_creation_order_regardless_of_finish_order() {
        let r = reg();
        let tracer = Tracer::new(&r, TraceConfig::full());
        let root = tracer.root("op_a", "k");
        let a = root.child("first");
        let b = root.child("second");
        b.finish(); // out of order on purpose
        a.finish();
        root.finish();
        let t = &tracer.traces()[0];
        assert_eq!(t.root.children[0].name, "first");
        assert_eq!(t.root.children[1].name, "second");
    }

    #[test]
    fn disabled_ctx_is_a_noop_everywhere() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        assert!(ctx.trace_id().is_none());
        let child = ctx.child("anything");
        assert!(!child.is_enabled());
        child.event("e", &[]);
        child.add_field("k", "v");
        child.finish();
        ctx.finish();
    }

    #[test]
    fn off_mode_mints_disabled_roots_but_counts_them() {
        let r = reg();
        let tracer = Tracer::new(&r, TraceConfig::off());
        let ctx = tracer.root("op_a", "k");
        assert!(!ctx.is_enabled());
        ctx.finish();
        assert_eq!(r.counter_value(names::TRACE_ROOTS_TOTAL, &[]), 1);
        assert_eq!(r.counter_value(names::TRACE_SAMPLED_TOTAL, &[]), 0);
        assert!(tracer.is_empty());
    }

    #[test]
    fn ratio_sampling_is_deterministic_and_partial() {
        let r = reg();
        let tracer = Tracer::new(&r, TraceConfig::sampled(500_000).seed(7));
        let decide = |key: &str| tracer.root("op_a", key).is_enabled();
        let first: Vec<bool> = (0..64).map(|i| decide(&format!("k/{i}"))).collect();
        let second: Vec<bool> = (0..64).map(|i| decide(&format!("k/{i}"))).collect();
        assert_eq!(first, second, "sampling must be a pure hash");
        assert!(first.iter().any(|s| *s));
        assert!(first.iter().any(|s| !*s));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let r = reg();
        let tracer = Tracer::new(&r, TraceConfig::full().capacity(2));
        for i in 0..5u64 {
            r.set_virtual_time_ns(1_000 + i * 100);
            tracer.root("op_a", &format!("k/{i}")).finish();
        }
        let keys: Vec<String> = tracer.traces().into_iter().map(|t| t.key).collect();
        assert_eq!(keys, vec!["k/3", "k/4"]);
        assert_eq!(r.gauge_value(names::TRACE_RETAINED, &[]), 2);
    }

    #[test]
    fn dropping_a_ctx_finishes_it() {
        let r = reg();
        let tracer = Tracer::new(&r, TraceConfig::full());
        {
            let root = tracer.root("op_a", "k");
            let _child = root.child("step_one");
            // Both dropped here (error-path shape).
        }
        let t = &tracer.traces()[0];
        assert_eq!(t.root.children.len(), 1);
    }

    #[test]
    fn late_child_of_a_finished_parent_is_dropped() {
        let r = reg();
        let tracer = Tracer::new(&r, TraceConfig::full());
        let root = tracer.root("op_a", "k");
        let child = root.child("step_one");
        root.finish();
        // The parent is gone; finishing the child must not panic and
        // must not resurrect the trace.
        child.finish();
        assert_eq!(tracer.traces()[0].root.children.len(), 0);
        // A grandchild minted through the orphaned child also vanishes
        // with it — the trace stays a tree rooted in the store.
        let root2 = tracer.root("op_a", "k2");
        let c = root2.child("step_one");
        root2.finish();
        c.child("grand").finish();
        c.finish();
        assert_eq!(tracer.traces()[1].root.children.len(), 0);
    }

    #[test]
    fn chrome_export_shape_and_determinism() {
        let build = || {
            let r = reg();
            let tracer = Tracer::new(&r, TraceConfig::full());
            let root = tracer.root("op_a", "k\"quoted\"");
            let c = root.child("step_one");
            c.event("hiccup", &[("delay_ns", "42")]);
            r.set_virtual_time_ns(5_500);
            c.finish();
            root.finish();
            tracer.export_chrome()
        };
        let json = build();
        assert_eq!(json, build(), "export must be byte-stable");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}\n"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":4.500"));
        assert!(json.contains("k\\\"quoted\\\""));
        // Balanced braces/brackets — cheap structural validity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON braces"
        );
    }

    #[test]
    fn render_slowest_orders_by_duration() {
        let r = reg();
        let tracer = Tracer::new(&r, TraceConfig::full());
        let slow = tracer.root("op_a", "slow");
        let s = slow.child("step_one");
        r.set_virtual_time_ns(10_000_000);
        s.finish();
        slow.finish();
        let fast = tracer.root("op_a", "fast");
        fast.finish();
        let text = tracer.render_slowest(2);
        let slow_at = text.find("key=slow").expect("slow trace rendered");
        let fast_at = text.find("key=fast").expect("fast trace rendered");
        assert!(slow_at < fast_at, "slowest first:\n{text}");
        assert!(text.contains("step_one"));
        assert_eq!(tracer.render_slowest(1).matches("trace ").count(), 1);
    }

    #[test]
    fn trace_ids_do_not_depend_on_mint_order() {
        let r = reg();
        let tracer = Tracer::new(&r, TraceConfig::full());
        let a1 = tracer.root("op_a", "x").trace_id().unwrap();
        let b1 = tracer.root("op_b", "y").trace_id().unwrap();
        let tracer2 = Tracer::new(&r, TraceConfig::full());
        let b2 = tracer2.root("op_b", "y").trace_id().unwrap();
        let a2 = tracer2.root("op_a", "x").trace_id().unwrap();
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_ne!(a1, b1);
    }
}
