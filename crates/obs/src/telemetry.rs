//! The telemetry store: a deterministic in-process TSDB over the
//! registry.
//!
//! The paper's facility is *watched*, not just measured: operators ask
//! "what did tenant X's p99 do over the last 10k virtual seconds" and
//! "when did the error rate start climbing", questions a single
//! point-in-time snapshot cannot answer. [`TelemetryStore`] closes that
//! gap by scraping the [`Registry`] on the registry clock at a fixed
//! interval and retaining bounded history per metric:
//!
//! * **counters** are delta-encoded: each scrape appends the increase
//!   since the previous scrape (zero deltas are skipped — they carry no
//!   mass), and eviction *folds* evicted deltas into a per-series base
//!   so the invariant `base + Σ retained deltas == counter value at the
//!   last scrape` holds exactly, forever, at any ring size;
//! * **gauges** sample the current value every scrape;
//! * **histograms** sample the summary (count/sum/p50/p95/p99/max)
//!   every scrape, which is what rolling-quantile alerting and the
//!   operator sparklines consume.
//!
//! Memory is bounded two ways: a per-series point capacity and an
//! age horizon (`max_age_ns`), both enforced at scrape time. The store
//! observes itself — `telemetry_scrapes_total`, `telemetry_samples_total`,
//! `telemetry_evictions_total`, and the points high-water gauge land in
//! the registry *after* the snapshot is taken, so scrape N records
//! scrape N−1's self-accounting and the whole pipeline stays a pure
//! function of the virtual clock (bit-identical at any worker count).
//!
//! Lock order: the store's ring state ranks *outside* the registry
//! tables (`OBS_TELEMETRY` 830 < `OBS_COUNTERS` 900), so a scrape may
//! read the registry while folding. Query methods return owned data and
//! never hold the ring lock across caller code.

use std::collections::{BTreeMap, VecDeque};

use lsdf_sync::{ranks, OrderedMutex};

use crate::json::escape;
use crate::names;
use crate::registry::{MetricId, Registry};

/// Scrape cadence and retention bounds for a [`TelemetryStore`].
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Minimum virtual-time distance between scrapes.
    pub interval_ns: u64,
    /// Maximum points retained per series (ring capacity).
    pub capacity: usize,
    /// Maximum point age; older points are evicted (counters fold into
    /// the series base). `u64::MAX` disables the age bound.
    pub max_age_ns: u64,
}

impl Default for TelemetryConfig {
    /// 1 virtual millisecond between scrapes, 512 points per series,
    /// no age bound.
    fn default() -> Self {
        TelemetryConfig {
            interval_ns: 1_000_000,
            capacity: 512,
            max_age_ns: u64::MAX,
        }
    }
}

impl TelemetryConfig {
    /// Sets the scrape interval.
    pub fn interval_ns(mut self, ns: u64) -> Self {
        self.interval_ns = ns;
        self
    }

    /// Sets the per-series ring capacity.
    pub fn capacity(mut self, points: usize) -> Self {
        self.capacity = points.max(1);
        self
    }

    /// Sets the age horizon.
    pub fn max_age_ns(mut self, ns: u64) -> Self {
        self.max_age_ns = ns;
        self
    }
}

/// One histogram sample: the summary the registry reported at a scrape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistPoint {
    /// Observation count at the scrape.
    pub count: u64,
    /// Observation sum at the scrape.
    pub sum: u64,
    /// Median estimate at the scrape.
    pub p50: u64,
    /// 95th-percentile estimate at the scrape.
    pub p95: u64,
    /// 99th-percentile estimate at the scrape.
    pub p99: u64,
    /// Largest observation at the scrape.
    pub max: u64,
}

enum Series {
    /// `base` carries every evicted delta; `last` is the counter value
    /// at the most recent scrape (== base + Σ point deltas).
    Counter {
        base: u64,
        last: u64,
        points: VecDeque<(u64, u64)>,
    },
    Gauge(VecDeque<(u64, i64)>),
    Hist(VecDeque<(u64, HistPoint)>),
}

impl Series {
    fn len(&self) -> usize {
        match self {
            Series::Counter { points, .. } => points.len(),
            Series::Gauge(points) => points.len(),
            Series::Hist(points) => points.len(),
        }
    }

    /// Evicts by capacity then age, folding counter deltas into the
    /// base. Returns how many points were evicted.
    fn evict(&mut self, capacity: usize, age_cutoff_ns: u64) -> u64 {
        let mut evicted = 0u64;
        match self {
            Series::Counter { base, points, .. } => {
                while points.len() > capacity
                    || points.front().is_some_and(|(t, _)| *t < age_cutoff_ns)
                {
                    let (_, delta) = points.pop_front().expect("loop guard ensures front");
                    *base += delta;
                    evicted += 1;
                }
            }
            Series::Gauge(points) => {
                while points.len() > capacity
                    || points.front().is_some_and(|(t, _)| *t < age_cutoff_ns)
                {
                    points.pop_front();
                    evicted += 1;
                }
            }
            Series::Hist(points) => {
                while points.len() > capacity
                    || points.front().is_some_and(|(t, _)| *t < age_cutoff_ns)
                {
                    points.pop_front();
                    evicted += 1;
                }
            }
        }
        evicted
    }
}

struct Inner {
    last_scrape_ns: Option<u64>,
    series: BTreeMap<MetricId, Series>,
    points: u64,
    high_water: u64,
}

/// CSV-quotes a field when it contains a comma, quote, or newline.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A ring-buffer time-series store scraping one [`Registry`] on the
/// virtual clock. See the module docs for the retention model.
pub struct TelemetryStore {
    config: TelemetryConfig,
    inner: OrderedMutex<Inner>,
}

impl TelemetryStore {
    /// A fresh store; no history until the first scrape.
    pub fn new(config: TelemetryConfig) -> Self {
        TelemetryStore {
            config,
            inner: OrderedMutex::new(
                ranks::OBS_TELEMETRY,
                Inner {
                    last_scrape_ns: None,
                    series: BTreeMap::new(),
                    points: 0,
                    high_water: 0,
                },
            ),
        }
    }

    /// The configured scrape interval.
    pub fn interval_ns(&self) -> u64 {
        self.config.interval_ns
    }

    /// When the store last scraped, per the registry clock.
    pub fn last_scrape_ns(&self) -> Option<u64> {
        self.inner.lock().last_scrape_ns
    }

    /// Scrapes if at least one interval has elapsed since the previous
    /// scrape (always scrapes the first time). Returns whether a scrape
    /// ran — hot paths call this once per batch and pay one clock read
    /// when the answer is no.
    pub fn maybe_scrape(&self, registry: &Registry) -> bool {
        let now = registry.now_ns();
        let due = {
            let inner = self.inner.lock();
            match inner.last_scrape_ns {
                None => true,
                Some(last) => now >= last.saturating_add(self.config.interval_ns),
            }
        };
        if due {
            self.scrape(registry);
        }
        due
    }

    /// Scrapes the registry now: appends one sample per live metric,
    /// evicts by capacity and age, then records the store's own
    /// accounting metrics into the registry.
    pub fn scrape(&self, registry: &Registry) {
        let snap = registry.snapshot();
        let now = registry.now_ns();
        let age_cutoff = now.saturating_sub(self.config.max_age_ns);

        let mut appended = 0u64;
        let mut evicted = 0u64;
        let (high_water, series_count) = {
            let mut inner = self.inner.lock();
            inner.last_scrape_ns = Some(now);
            for (id, value) in &snap.counters {
                let s = inner.series.entry(id.clone()).or_insert(Series::Counter {
                    base: 0,
                    last: 0,
                    points: VecDeque::new(),
                });
                if let Series::Counter { last, points, .. } = s {
                    let delta = value.saturating_sub(*last);
                    *last = *value;
                    if delta > 0 {
                        points.push_back((now, delta));
                        appended += 1;
                    }
                }
            }
            for (id, value) in &snap.gauges {
                let s = inner
                    .series
                    .entry(id.clone())
                    .or_insert(Series::Gauge(VecDeque::new()));
                if let Series::Gauge(points) = s {
                    points.push_back((now, *value));
                    appended += 1;
                }
            }
            for (id, h) in &snap.histograms {
                let s = inner
                    .series
                    .entry(id.clone())
                    .or_insert(Series::Hist(VecDeque::new()));
                if let Series::Hist(points) = s {
                    points.push_back((
                        now,
                        HistPoint {
                            count: h.count,
                            sum: h.sum,
                            p50: h.p50,
                            p95: h.p95,
                            p99: h.p99,
                            max: h.max,
                        },
                    ));
                    appended += 1;
                }
            }
            for s in inner.series.values_mut() {
                evicted += s.evict(self.config.capacity, age_cutoff);
            }
            inner.points = inner.series.values().map(|s| s.len() as u64).sum();
            inner.high_water = inner.high_water.max(inner.points);
            (inner.high_water, inner.series.len())
        };

        // Self-accounting lands after the snapshot: scrape N observes
        // scrape N−1's telemetry_* values, keeping the fold a pure
        // function of the snapshot it read.
        registry.counter(names::TELEMETRY_SCRAPES_TOTAL, &[]).inc();
        registry
            .counter(names::TELEMETRY_SAMPLES_TOTAL, &[])
            .add(appended);
        registry
            .counter(names::TELEMETRY_EVICTIONS_TOTAL, &[])
            .add(evicted);
        registry
            .gauge(names::TELEMETRY_POINTS_HIGH_WATER, &[])
            .set(high_water as i64);
        registry
            .gauge(names::TELEMETRY_SERIES, &[])
            .set(series_count as i64);
    }

    /// The delta points retained for one counter series, oldest first.
    pub fn counter_series(&self, name: &str, labels: &[(&str, &str)]) -> Vec<(u64, u64)> {
        let id = MetricId::new(name, labels);
        let inner = self.inner.lock();
        match inner.series.get(&id) {
            Some(Series::Counter { points, .. }) => points.iter().copied().collect(),
            _ => Vec::new(),
        }
    }

    /// `base + Σ retained deltas` for one counter series — exactly the
    /// registry's value at the last scrape, regardless of how much the
    /// ring has evicted. This is the reconciliation invariant the
    /// telemetry soak asserts.
    pub fn counter_sum(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let id = MetricId::new(name, labels);
        let inner = self.inner.lock();
        match inner.series.get(&id) {
            Some(Series::Counter { base, points, .. }) => {
                base + points.iter().map(|(_, d)| d).sum::<u64>()
            }
            _ => 0,
        }
    }

    /// Σ of one counter series' deltas with timestamps strictly after
    /// `since_ns` — the windowed mass behind rate-of-change and
    /// burn-rate rules.
    pub fn counter_window_sum(&self, name: &str, labels: &[(&str, &str)], since_ns: u64) -> u64 {
        let id = MetricId::new(name, labels);
        let inner = self.inner.lock();
        match inner.series.get(&id) {
            Some(Series::Counter { points, .. }) => points
                .iter()
                .filter(|(t, _)| *t > since_ns)
                .map(|(_, d)| d)
                .sum(),
            _ => 0,
        }
    }

    /// Windowed delta mass summed across *all* label sets of a counter
    /// name (the windowed analogue of `Registry::counter_total`).
    pub fn counter_window_total(&self, name: &str, since_ns: u64) -> u64 {
        let inner = self.inner.lock();
        inner
            .series
            .iter()
            .filter(|(id, _)| id.name == name)
            .map(|(_, s)| match s {
                Series::Counter { points, .. } => points
                    .iter()
                    .filter(|(t, _)| *t > since_ns)
                    .map(|(_, d)| d)
                    .sum::<u64>(),
                _ => 0,
            })
            .sum()
    }

    /// Delta points merged (by timestamp) across every series of
    /// `name` whose labels contain `label` — the per-tenant sparkline
    /// source, where one project fans out over `backend`/`op` label
    /// sets.
    pub fn counter_series_filtered(&self, name: &str, label: (&str, &str)) -> Vec<(u64, u64)> {
        let want = (label.0.to_string(), label.1.to_string());
        let inner = self.inner.lock();
        let mut merged: BTreeMap<u64, u64> = BTreeMap::new();
        for (id, s) in &inner.series {
            if id.name != name || !id.labels.contains(&want) {
                continue;
            }
            if let Series::Counter { points, .. } = s {
                for (t, d) in points {
                    *merged.entry(*t).or_insert(0) += d;
                }
            }
        }
        merged.into_iter().collect()
    }

    /// The sampled values of one gauge series, oldest first.
    pub fn gauge_series(&self, name: &str, labels: &[(&str, &str)]) -> Vec<(u64, i64)> {
        let id = MetricId::new(name, labels);
        let inner = self.inner.lock();
        match inner.series.get(&id) {
            Some(Series::Gauge(points)) => points.iter().copied().collect(),
            _ => Vec::new(),
        }
    }

    /// The sampled summaries of one histogram series, oldest first.
    pub fn hist_series(&self, name: &str, labels: &[(&str, &str)]) -> Vec<(u64, HistPoint)> {
        let id = MetricId::new(name, labels);
        let inner = self.inner.lock();
        match inner.series.get(&id) {
            Some(Series::Hist(points)) => points.iter().copied().collect(),
            _ => Vec::new(),
        }
    }

    /// Largest p99 sample of a histogram series with timestamps strictly
    /// after `since_ns`, or `None` when the window holds no samples —
    /// the rolling quantile behind `window(N) p99(...)` rules.
    pub fn hist_window_p99(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        since_ns: u64,
    ) -> Option<u64> {
        let id = MetricId::new(name, labels);
        let inner = self.inner.lock();
        match inner.series.get(&id) {
            Some(Series::Hist(points)) => points
                .iter()
                .filter(|(t, _)| *t > since_ns)
                .map(|(_, h)| h.p99)
                .max(),
            _ => None,
        }
    }

    /// Largest windowed quantile sample for any of p50/p95/p99.
    pub fn hist_window_quantile(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        since_ns: u64,
        pick: fn(&HistPoint) -> u64,
    ) -> Option<u64> {
        let id = MetricId::new(name, labels);
        let inner = self.inner.lock();
        match inner.series.get(&id) {
            Some(Series::Hist(points)) => points
                .iter()
                .filter(|(t, _)| *t > since_ns)
                .map(|(_, h)| pick(h))
                .max(),
            _ => None,
        }
    }

    /// Number of series currently tracked.
    pub fn series_count(&self) -> usize {
        self.inner.lock().series.len()
    }

    /// Points retained across all series right now.
    pub fn points_retained(&self) -> u64 {
        self.inner.lock().points
    }

    /// High-water mark of [`TelemetryStore::points_retained`].
    pub fn points_high_water(&self) -> u64 {
        self.inner.lock().high_water
    }

    /// Renders the full store as a deterministic JSON document (same
    /// hand-rolled style as the registry exporter): series sorted by
    /// id, counters as `base` + delta points, histograms as
    /// `[t, count, sum, p50, p95, p99, max]` tuples.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"interval_ns\": {},\n  \"last_scrape_ns\": {},\n  \"series\": [",
            self.config.interval_ns,
            inner
                .last_scrape_ns
                .map_or("null".to_string(), |t| t.to_string())
        ));
        for (i, (id, s)) in inner.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"id\": ");
            out.push_str(&escape(&id.to_string()));
            match s {
                Series::Counter { base, points, .. } => {
                    out.push_str(&format!(", \"kind\": \"counter\", \"base\": {base}, \"points\": ["));
                    for (j, (t, d)) in points.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{t},{d}]"));
                    }
                    out.push_str("]}");
                }
                Series::Gauge(points) => {
                    out.push_str(", \"kind\": \"gauge\", \"points\": [");
                    for (j, (t, v)) in points.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{t},{v}]"));
                    }
                    out.push_str("]}");
                }
                Series::Hist(points) => {
                    out.push_str(", \"kind\": \"histogram\", \"points\": [");
                    for (j, (t, h)) in points.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!(
                            "[{},{},{},{},{},{},{}]",
                            t, h.count, h.sum, h.p50, h.p95, h.p99, h.max
                        ));
                    }
                    out.push_str("]}");
                }
            }
        }
        if !inner.series.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders the store as deterministic CSV:
    /// `kind,series,t_ns,field,value` — counters one `delta` row per
    /// point, gauges one `value` row, histograms one row per summary
    /// field. Commas and quotes in series ids are CSV-quoted.
    pub fn to_csv(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::with_capacity(4096);
        out.push_str("kind,series,t_ns,field,value\n");
        for (id, s) in &inner.series {
            let sid = csv_field(&id.to_string());
            match s {
                Series::Counter { points, .. } => {
                    for (t, d) in points {
                        out.push_str(&format!("counter,{sid},{t},delta,{d}\n"));
                    }
                }
                Series::Gauge(points) => {
                    for (t, v) in points {
                        out.push_str(&format!("gauge,{sid},{t},value,{v}\n"));
                    }
                }
                Series::Hist(points) => {
                    for (t, h) in points {
                        for (field, v) in [
                            ("count", h.count),
                            ("sum", h.sum),
                            ("p50", h.p50),
                            ("p95", h.p95),
                            ("p99", h.p99),
                            ("max", h.max),
                        ] {
                            out.push_str(&format!("histogram,{sid},{t},{field},{v}\n"));
                        }
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for TelemetryStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("TelemetryStore")
            .field("interval_ns", &self.config.interval_ns)
            .field("series", &inner.series.len())
            .field("points", &inner.points)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn store(capacity: usize) -> TelemetryStore {
        TelemetryStore::new(
            TelemetryConfig::default()
                .interval_ns(MS)
                .capacity(capacity),
        )
    }

    #[test]
    fn counters_delta_encode_and_reconcile() {
        let r = Registry::new();
        let ts = store(512);
        let c = r.counter(names::ADAL_OPS_TOTAL, &[("op", "put")]);
        c.add(10);
        r.set_virtual_time_ns(MS);
        ts.scrape(&r);
        c.add(5);
        r.set_virtual_time_ns(2 * MS);
        ts.scrape(&r);
        r.set_virtual_time_ns(3 * MS);
        ts.scrape(&r); // idle scrape: zero delta, no point
        let series = ts.counter_series(names::ADAL_OPS_TOTAL, &[("op", "put")]);
        assert_eq!(series, vec![(MS, 10), (2 * MS, 5)]);
        assert_eq!(ts.counter_sum(names::ADAL_OPS_TOTAL, &[("op", "put")]), 15);
        assert_eq!(
            ts.counter_sum(names::ADAL_OPS_TOTAL, &[("op", "put")]),
            r.counter_value(names::ADAL_OPS_TOTAL, &[("op", "put")])
        );
    }

    #[test]
    fn maybe_scrape_respects_the_interval() {
        let r = Registry::new();
        let ts = store(512);
        r.set_virtual_time_ns(1);
        assert!(ts.maybe_scrape(&r), "first scrape always runs");
        assert!(!ts.maybe_scrape(&r), "same instant: not due");
        r.set_virtual_time_ns(1 + MS - 1);
        assert!(!ts.maybe_scrape(&r), "one ns short of the interval");
        r.set_virtual_time_ns(1 + MS);
        assert!(ts.maybe_scrape(&r), "exactly one interval later");
        assert_eq!(r.counter_value(names::TELEMETRY_SCRAPES_TOTAL, &[]), 2);
    }

    #[test]
    fn capacity_eviction_folds_counter_mass_into_the_base() {
        let r = Registry::new();
        let ts = store(4);
        let c = r.counter(names::DFS_OPS_TOTAL, &[("op", "write")]);
        for k in 1..=20u64 {
            c.add(k);
            r.set_virtual_time_ns(k * MS);
            ts.scrape(&r);
        }
        let series = ts.counter_series(names::DFS_OPS_TOTAL, &[("op", "write")]);
        assert_eq!(series.len(), 4, "ring holds exactly `capacity` points");
        assert_eq!(series.last(), Some(&(20 * MS, 20)));
        // Mass is conserved through eviction: 1+2+..+20 == 210.
        assert_eq!(ts.counter_sum(names::DFS_OPS_TOTAL, &[("op", "write")]), 210);
        assert_eq!(
            ts.counter_sum(names::DFS_OPS_TOTAL, &[("op", "write")]),
            r.counter_value(names::DFS_OPS_TOTAL, &[("op", "write")])
        );
        assert!(r.counter_value(names::TELEMETRY_EVICTIONS_TOTAL, &[]) > 0);
    }

    #[test]
    fn age_eviction_respects_the_horizon() {
        let r = Registry::new();
        let ts = TelemetryStore::new(
            TelemetryConfig::default()
                .interval_ns(MS)
                .capacity(512)
                .max_age_ns(3 * MS),
        );
        let g = r.gauge(names::ADMISSION_QUEUE_DEPTH, &[("project", "p"), ("lane", "bulk")]);
        for k in 1..=10u64 {
            g.set(k as i64);
            r.set_virtual_time_ns(k * MS);
            ts.scrape(&r);
        }
        let series = ts.gauge_series(names::ADMISSION_QUEUE_DEPTH, &[("project", "p"), ("lane", "bulk")]);
        // At t=10ms the horizon is 7ms; points with t < 7ms are gone.
        assert!(series.iter().all(|(t, _)| *t >= 7 * MS), "{series:?}");
        assert_eq!(series.len(), 4);
    }

    #[test]
    fn window_sums_cover_exactly_full_partial_and_evicted_windows() {
        let r = Registry::new();
        let ts = store(4);
        let c = r.counter(names::HSM_PUTS_TOTAL, &[("store", "s")]);
        // Partial window at startup: only two scrapes exist, a window
        // of 8 intervals covers them all.
        c.add(3);
        r.set_virtual_time_ns(MS);
        ts.scrape(&r);
        c.add(4);
        r.set_virtual_time_ns(2 * MS);
        ts.scrape(&r);
        let since = (2 * MS).saturating_sub(8 * MS);
        assert_eq!(ts.counter_window_sum(names::HSM_PUTS_TOTAL, &[("store", "s")], since), 7);
        // Exactly-full window: 4 more scrapes; a window of 4 intervals
        // ending at t=6ms covers t in (2ms, 6ms] — exactly 4 points.
        for k in 3..=6u64 {
            c.add(10);
            r.set_virtual_time_ns(k * MS);
            ts.scrape(&r);
        }
        assert_eq!(
            ts.counter_window_sum(names::HSM_PUTS_TOTAL, &[("store", "s")], 6 * MS - 4 * MS),
            40
        );
        // Eviction across the window edge: capacity 4 has evicted the
        // first two points; a window reaching past them sees only what
        // is retained, while counter_sum still reconciles exactly.
        assert_eq!(ts.counter_window_sum(names::HSM_PUTS_TOTAL, &[("store", "s")], 0), 40);
        assert_eq!(ts.counter_sum(names::HSM_PUTS_TOTAL, &[("store", "s")]), 47);
    }

    #[test]
    fn rolling_p99_takes_the_window_max() {
        let r = Registry::new();
        let ts = store(512);
        let h = r.histogram(names::ADAL_OP_LATENCY_NS, &[("op", "get")]);
        h.record(100);
        r.set_virtual_time_ns(MS);
        ts.scrape(&r);
        h.record(100_000);
        r.set_virtual_time_ns(2 * MS);
        ts.scrape(&r);
        let spike = ts
            .hist_window_p99(names::ADAL_OP_LATENCY_NS, &[("op", "get")], 0)
            .unwrap();
        assert!(spike >= 100_000, "rolling p99 keeps the spike: {spike}");
        assert_eq!(
            ts.hist_window_p99(names::ADAL_OP_LATENCY_NS, &[("op", "get")], 2 * MS),
            None,
            "empty window has no quantile"
        );
    }

    #[test]
    fn exports_are_deterministic_and_balanced() {
        let r = Registry::new();
        let ts = store(512);
        r.counter(names::ADAL_OPS_TOTAL, &[("op", "put")]).add(2);
        r.gauge(names::TRACE_RETAINED, &[]).set(1);
        r.histogram(names::DFS_OP_LATENCY_NS, &[("op", "read")]).record(9);
        r.set_virtual_time_ns(MS);
        ts.scrape(&r);
        let json = ts.to_json();
        assert_eq!(json, ts.to_json());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"kind\": \"counter\""), "{json}");
        let csv = ts.to_csv();
        assert_eq!(csv, ts.to_csv());
        assert!(csv.starts_with("kind,series,t_ns,field,value\n"));
        assert!(csv.contains("histogram,dfs_op_latency_ns{op=read},1000000,p99,9"), "{csv}");
    }

    #[test]
    fn the_observer_is_observable() {
        let r = Registry::new();
        let ts = store(512);
        r.counter(names::ADAL_OPS_TOTAL, &[]).add(1);
        r.set_virtual_time_ns(MS);
        ts.scrape(&r);
        r.set_virtual_time_ns(2 * MS);
        ts.scrape(&r);
        assert_eq!(r.counter_value(names::TELEMETRY_SCRAPES_TOTAL, &[]), 2);
        assert!(r.counter_value(names::TELEMETRY_SAMPLES_TOTAL, &[]) > 0);
        assert!(r.gauge_value(names::TELEMETRY_POINTS_HIGH_WATER, &[]) > 0);
        assert!(r.gauge_value(names::TELEMETRY_SERIES, &[]) > 0);
        assert_eq!(
            r.gauge_value(names::TELEMETRY_POINTS_HIGH_WATER, &[]) as u64,
            ts.points_high_water()
        );
        // Scrape 2 folded scrape 1's self-metrics into history.
        assert!(ts.counter_sum(names::TELEMETRY_SCRAPES_TOTAL, &[]) >= 1);
    }
}
