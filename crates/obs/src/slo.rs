//! SLO monitoring: declarative rules over registry snapshots, producing
//! a [`FacilityHealth`] report with per-project accounting.
//!
//! The LSDF paper's facility is run against advertised operating
//! points, with a project database accounting for what each scientific
//! community consumes. This module is that loop in miniature: a
//! [`SloMonitor`] holds parsed [`SloRule`]s and evaluates them against
//! a [`Registry`] snapshot on demand, yielding a report that says
//! whether the facility currently holds its promises and what each
//! project did to the stack.
//!
//! Rule grammar (one rule per string):
//!
//! ```text
//! p50|p95|p99(<hist>{k=v,...}) <|<= <number>     quantile bound
//! gauge(<gauge>{k=v,...}) ==|<=|< <number>       gauge bound
//! rate(<counter> / <counter>) <|<= <number>      windowed error rate
//! ```
//!
//! The label block is optional. `rate` divides the *deltas* of the two
//! counter totals (summed across label sets) since the previous
//! evaluation — the first evaluation and idle windows (denominator
//! delta 0) report 0.0. A metric that does not exist yet evaluates as
//! 0, so rules hold vacuously before traffic arrives. Evaluation is a
//! pure function of the snapshot plus the monitor's window state:
//! deterministic for deterministic runs.

use lsdf_sync::{ranks, OrderedMutex};

use crate::json::{escape, fmt_f64};
use crate::names;
use crate::registry::{MetricId, Registry, RegistrySnapshot};

/// Which quantile a quantile rule reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quantile {
    /// Median.
    P50,
    /// 95th percentile.
    P95,
    /// 99th percentile.
    P99,
}

/// What a rule measures.
#[derive(Clone, Debug, PartialEq)]
pub enum Selector {
    /// A histogram quantile, e.g. `p99(adal_op_latency_ns{op=put})`.
    HistQuantile {
        /// Which quantile.
        q: Quantile,
        /// Histogram name.
        name: String,
        /// Label filter (exact id match).
        labels: Vec<(String, String)>,
    },
    /// A gauge value, e.g. `gauge(dfs_under_replicated_unrecoverable)`.
    GaugeValue {
        /// Gauge name.
        name: String,
        /// Label filter (exact id match).
        labels: Vec<(String, String)>,
    },
    /// A windowed counter ratio, e.g.
    /// `rate(adal_retry_exhausted_total / adal_ops_total)`. Totals are
    /// summed across label sets.
    Rate {
        /// Numerator counter name.
        numerator: String,
        /// Denominator counter name.
        denominator: String,
    },
}

/// Comparison against the threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// Observed strictly below threshold.
    Lt,
    /// Observed at or below threshold.
    Le,
    /// Observed equal to threshold.
    Eq,
}

/// One parsed SLO rule: selector, comparison, threshold.
#[derive(Clone, Debug)]
pub struct SloRule {
    text: String,
    selector: Selector,
    cmp: Cmp,
    threshold: f64,
}

fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    for pair in block.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("label `{pair}` is not `key=value`"))?;
        labels.push((k.trim().to_string(), v.trim().to_string()));
    }
    labels.sort();
    Ok(labels)
}

/// `name` or `name{k=v,...}` → (name, sorted labels).
fn parse_metric_ref(s: &str) -> Result<(String, Vec<(String, String)>), String> {
    let s = s.trim();
    match s.split_once('{') {
        None => Ok((s.to_string(), Vec::new())),
        Some((name, rest)) => {
            let block = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unclosed label block in `{s}`"))?;
            Ok((name.trim().to_string(), parse_labels(block)?))
        }
    }
}

impl SloRule {
    /// Parses one rule from the grammar in the module docs.
    pub fn parse(text: &str) -> Result<SloRule, String> {
        let t = text.trim();
        let open = t
            .find('(')
            .ok_or_else(|| format!("`{t}`: missing `(` after selector"))?;
        let close = t
            .rfind(')')
            .ok_or_else(|| format!("`{t}`: missing `)` closing the selector"))?;
        if close < open {
            return Err(format!("`{t}`: mismatched parentheses"));
        }
        let head = t[..open].trim();
        let arg = &t[open + 1..close];
        let rest = t[close + 1..].trim();
        let (cmp, num) = if let Some(r) = rest.strip_prefix("<=") {
            (Cmp::Le, r)
        } else if let Some(r) = rest.strip_prefix("==") {
            (Cmp::Eq, r)
        } else if let Some(r) = rest.strip_prefix('<') {
            (Cmp::Lt, r)
        } else {
            return Err(format!("`{t}`: expected `<`, `<=`, or `==` after selector"));
        };
        let threshold: f64 = num
            .trim()
            .parse()
            .map_err(|e| format!("`{t}`: bad threshold: {e}"))?;
        let selector = match head {
            "p50" | "p95" | "p99" => {
                let q = match head {
                    "p50" => Quantile::P50,
                    "p95" => Quantile::P95,
                    _ => Quantile::P99,
                };
                let (name, labels) = parse_metric_ref(arg)?;
                Selector::HistQuantile { q, name, labels }
            }
            "gauge" => {
                let (name, labels) = parse_metric_ref(arg)?;
                Selector::GaugeValue { name, labels }
            }
            "rate" => {
                let (numerator, denominator) = arg
                    .split_once('/')
                    .ok_or_else(|| format!("`{t}`: rate needs `numerator / denominator`"))?;
                let (numerator, nl) = parse_metric_ref(numerator)?;
                let (denominator, dl) = parse_metric_ref(denominator)?;
                if !nl.is_empty() || !dl.is_empty() {
                    return Err(format!(
                        "`{t}`: rate counters are summed across labels; no label block allowed"
                    ));
                }
                Selector::Rate {
                    numerator,
                    denominator,
                }
            }
            other => return Err(format!("`{t}`: unknown selector `{other}`")),
        };
        Ok(SloRule {
            text: t.to_string(),
            selector,
            cmp,
            threshold,
        })
    }

    /// The rule's source text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The project this rule is scoped to, when its label filter names
    /// one — used to attribute violations in the per-project accounts.
    pub fn project(&self) -> Option<&str> {
        let labels = match &self.selector {
            Selector::HistQuantile { labels, .. } => labels,
            Selector::GaugeValue { labels, .. } => labels,
            Selector::Rate { .. } => return None,
        };
        labels
            .iter()
            .find(|(k, _)| k == "project")
            .map(|(_, v)| v.as_str())
    }

    fn compare(&self, observed: f64) -> bool {
        match self.cmp {
            Cmp::Lt => observed < self.threshold,
            Cmp::Le => observed <= self.threshold,
            Cmp::Eq => observed == self.threshold,
        }
    }
}

fn metric_id(name: &str, labels: &[(String, String)]) -> MetricId {
    // Labels arrive sorted from `parse_labels`; MetricId sorts again.
    let as_refs: Vec<(&str, &str)> = labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    MetricId::new(name, &as_refs)
}

fn counter_total(snap: &RegistrySnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .filter(|(id, _)| id.name == name)
        .map(|(_, v)| v)
        .sum()
}

/// The outcome of one rule in one evaluation.
#[derive(Clone, Debug)]
pub struct RuleOutcome {
    /// Rule source text.
    pub rule: String,
    /// True when the rule held.
    pub ok: bool,
    /// The value the selector observed.
    pub observed: f64,
    /// The rule's threshold.
    pub threshold: f64,
}

/// What one project did to the facility, per the registry.
#[derive(Clone, Debug)]
pub struct ProjectAccount {
    /// Project name (the ADAL mount / ingest label).
    pub project: String,
    /// ADAL operations served for the project.
    pub ops: u64,
    /// Bytes ingested for the project.
    pub bytes: u64,
    /// Tape movements (demotions + recalls) on the project's HSM store.
    pub tape_mounts: u64,
    /// Rules scoped to this project that failed in this evaluation.
    pub violations: u64,
}

/// One SLO evaluation: overall verdict, per-rule outcomes, per-project
/// accounts.
#[derive(Clone, Debug)]
pub struct FacilityHealth {
    /// Evaluation timestamp (registry clock).
    pub t_ns: u64,
    /// True when every rule held.
    pub healthy: bool,
    /// Per-rule outcomes, in rule order.
    pub rules: Vec<RuleOutcome>,
    /// Per-project accounts, sorted by project name.
    pub projects: Vec<ProjectAccount>,
}

impl FacilityHealth {
    /// Renders the report as a small JSON document (same hand-rolled,
    /// deterministic style as the registry exporter).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\n  \"t_ns\": {},\n  \"healthy\": {},\n  \"rules\": [",
            self.t_ns, self.healthy
        ));
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"ok\": {}, \"observed\": {}, \"threshold\": {}}}",
                escape(&r.rule),
                r.ok,
                fmt_f64(r.observed),
                fmt_f64(r.threshold)
            ));
        }
        if !self.rules.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"projects\": [");
        for (i, p) in self.projects.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"project\": {}, \"ops\": {}, \"bytes\": {}, \
                 \"tape_mounts\": {}, \"violations\": {}}}",
                escape(&p.project),
                p.ops,
                p.bytes,
                p.tape_mounts,
                p.violations
            ));
        }
        if !self.projects.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Evaluates a fixed rule set against registry snapshots, carrying the
/// window state `rate` rules need between evaluations.
pub struct SloMonitor {
    rules: Vec<SloRule>,
    /// Previous (numerator, denominator) totals per rule index; `None`
    /// until the rule's first evaluation.
    windows: OrderedMutex<Vec<Option<(u64, u64)>>>,
}

impl SloMonitor {
    /// A monitor over `rules`.
    pub fn new(rules: Vec<SloRule>) -> Self {
        let windows = OrderedMutex::new(ranks::OBS_SLO_WINDOWS, vec![None; rules.len()]);
        SloMonitor { rules, windows }
    }

    /// The facility's baseline rule set: no block may ever become
    /// unrecoverable.
    pub fn with_defaults() -> Self {
        let rule = format!("gauge({}) == 0", names::DFS_UNDER_REPLICATED_UNRECOVERABLE);
        SloMonitor::new(vec![SloRule::parse(&rule).expect("default rule parses")])
    }

    /// The rules this monitor evaluates.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Evaluates every rule against a fresh snapshot of `registry`,
    /// updating the monitor's own metrics
    /// (`facility_slo_evaluations_total`, `facility_slo_violations_total`,
    /// `facility_slo_healthy`).
    pub fn evaluate(&self, registry: &Registry) -> FacilityHealth {
        let snap = registry.snapshot();
        let t_ns = registry.now_ns();
        let mut windows = self.windows.lock();
        let mut outcomes = Vec::with_capacity(self.rules.len());
        for (i, rule) in self.rules.iter().enumerate() {
            let observed = match &rule.selector {
                Selector::HistQuantile { q, name, labels } => {
                    let id = metric_id(name, labels);
                    snap.histograms
                        .iter()
                        .find(|(hid, _)| *hid == id)
                        .map_or(0.0, |(_, h)| match q {
                            Quantile::P50 => h.p50 as f64,
                            Quantile::P95 => h.p95 as f64,
                            Quantile::P99 => h.p99 as f64,
                        })
                }
                Selector::GaugeValue { name, labels } => {
                    let id = metric_id(name, labels);
                    snap.gauges
                        .iter()
                        .find(|(gid, _)| *gid == id)
                        .map_or(0.0, |(_, v)| *v as f64)
                }
                Selector::Rate {
                    numerator,
                    denominator,
                } => {
                    let num = counter_total(&snap, numerator);
                    let den = counter_total(&snap, denominator);
                    let prev = windows[i].replace((num, den));
                    match prev {
                        Some((pn, pd)) => {
                            let dn = num.saturating_sub(pn);
                            let dd = den.saturating_sub(pd);
                            if dd == 0 {
                                0.0
                            } else {
                                dn as f64 / dd as f64
                            }
                        }
                        None => 0.0,
                    }
                }
            };
            outcomes.push(RuleOutcome {
                rule: rule.text.clone(),
                ok: rule.compare(observed),
                observed,
                threshold: rule.threshold,
            });
        }
        drop(windows);

        let healthy = outcomes.iter().all(|o| o.ok);
        let violations = outcomes.iter().filter(|o| !o.ok).count() as u64;
        registry
            .counter(names::FACILITY_SLO_EVALUATIONS_TOTAL, &[])
            .inc();
        registry
            .counter(names::FACILITY_SLO_VIOLATIONS_TOTAL, &[])
            .add(violations);
        registry
            .gauge(names::FACILITY_SLO_HEALTHY, &[])
            .set(i64::from(healthy));

        FacilityHealth {
            t_ns,
            healthy,
            rules: outcomes,
            projects: project_accounts(&snap, &self.rules),
        }
    }
}

/// Builds per-project accounts from a snapshot: projects are discovered
/// from `adal_project_ops_total` and `facility_ingest_bytes` labels;
/// tape movement is attributed through the facility naming convention
/// that a project's HSM disk tier is called `<project>-disk`.
fn project_accounts(snap: &RegistrySnapshot, rules: &[SloRule]) -> Vec<ProjectAccount> {
    let mut projects = std::collections::BTreeSet::new();
    for (id, _) in &snap.counters {
        if id.name == names::ADAL_PROJECT_OPS_TOTAL {
            if let Some((_, p)) = id.labels.iter().find(|(k, _)| k == "project") {
                projects.insert(p.clone());
            }
        }
    }
    for (id, _) in &snap.histograms {
        if id.name == names::FACILITY_INGEST_BYTES {
            if let Some((_, p)) = id.labels.iter().find(|(k, _)| k == "project") {
                projects.insert(p.clone());
            }
        }
    }
    projects
        .into_iter()
        .map(|project| {
            let ops = snap
                .counters
                .iter()
                .filter(|(id, _)| {
                    id.name == names::ADAL_PROJECT_OPS_TOTAL
                        && id.labels.contains(&("project".to_string(), project.clone()))
                })
                .map(|(_, v)| v)
                .sum();
            let bytes = snap
                .histograms
                .iter()
                .filter(|(id, _)| {
                    id.name == names::FACILITY_INGEST_BYTES
                        && id.labels.contains(&("project".to_string(), project.clone()))
                })
                .map(|(_, h)| h.sum)
                .sum();
            let store = ("store".to_string(), format!("{project}-disk"));
            let tape_mounts = snap
                .counters
                .iter()
                .filter(|(id, _)| {
                    (id.name == names::HSM_DEMOTIONS_TOTAL || id.name == names::HSM_RECALLS_TOTAL)
                        && id.labels.contains(&store)
                })
                .map(|(_, v)| v)
                .sum();
            let violations = rules
                .iter()
                .zip(evaluated_flags(snap, rules))
                .filter(|(r, ok)| !ok && r.project() == Some(project.as_str()))
                .count() as u64;
            ProjectAccount {
                project,
                ops,
                bytes,
                tape_mounts,
                violations,
            }
        })
        .collect()
}

/// Re-derives pass/fail per rule for attribution, without touching the
/// rate windows (rate rules never carry a project label, so attribution
/// only needs the stateless selectors — rate rules report `true` here).
fn evaluated_flags(snap: &RegistrySnapshot, rules: &[SloRule]) -> Vec<bool> {
    rules
        .iter()
        .map(|rule| match &rule.selector {
            Selector::HistQuantile { q, name, labels } => {
                let id = metric_id(name, labels);
                let observed = snap
                    .histograms
                    .iter()
                    .find(|(hid, _)| *hid == id)
                    .map_or(0.0, |(_, h)| match q {
                        Quantile::P50 => h.p50 as f64,
                        Quantile::P95 => h.p95 as f64,
                        Quantile::P99 => h.p99 as f64,
                    });
                rule.compare(observed)
            }
            Selector::GaugeValue { name, labels } => {
                let id = metric_id(name, labels);
                let observed = snap
                    .gauges
                    .iter()
                    .find(|(gid, _)| *gid == id)
                    .map_or(0.0, |(_, v)| *v as f64);
                rule.compare(observed)
            }
            Selector::Rate { .. } => true,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_selector_forms() {
        let q = SloRule::parse("p99(adal_op_latency_ns{op=put}) < 1000000").unwrap();
        assert_eq!(
            q.selector,
            Selector::HistQuantile {
                q: Quantile::P99,
                name: "adal_op_latency_ns".into(),
                labels: vec![("op".into(), "put".into())],
            }
        );
        assert_eq!(q.cmp, Cmp::Lt);
        assert_eq!(q.threshold, 1_000_000.0);

        let g = SloRule::parse("gauge(dfs_under_replicated_unrecoverable) == 0").unwrap();
        assert_eq!(
            g.selector,
            Selector::GaugeValue {
                name: "dfs_under_replicated_unrecoverable".into(),
                labels: vec![],
            }
        );
        assert_eq!(g.cmp, Cmp::Eq);

        let r = SloRule::parse("rate(adal_retry_exhausted_total / adal_ops_total) <= 0.05")
            .unwrap();
        assert_eq!(
            r.selector,
            Selector::Rate {
                numerator: "adal_retry_exhausted_total".into(),
                denominator: "adal_ops_total".into(),
            }
        );
        assert_eq!(r.cmp, Cmp::Le);
    }

    #[test]
    fn rejects_malformed_rules() {
        for bad in [
            "p99 adal_op_latency_ns < 5",
            "p42(x) < 5",
            "gauge(x) > 5",
            "gauge(x{unclosed) == 0",
            "rate(a) < 0.5",
            "rate(a{l=1} / b) < 0.5",
            "gauge(x) == banana",
        ] {
            assert!(SloRule::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn gauge_rule_flips_and_recovers() {
        let r = Registry::new();
        r.set_virtual_time_ns(1);
        let monitor = SloMonitor::with_defaults();
        let report = monitor.evaluate(&r);
        assert!(report.healthy, "vacuously healthy before traffic");
        r.gauge(names::DFS_UNDER_REPLICATED_UNRECOVERABLE, &[]).set(3);
        let report = monitor.evaluate(&r);
        assert!(!report.healthy);
        assert!(!report.rules[0].ok);
        assert_eq!(report.rules[0].observed, 3.0);
        r.gauge(names::DFS_UNDER_REPLICATED_UNRECOVERABLE, &[]).set(0);
        let report = monitor.evaluate(&r);
        assert!(report.healthy, "recovers once the gauge clears");
        assert_eq!(r.counter_value(names::FACILITY_SLO_EVALUATIONS_TOTAL, &[]), 3);
        assert_eq!(r.counter_value(names::FACILITY_SLO_VIOLATIONS_TOTAL, &[]), 1);
        assert_eq!(r.gauge_value(names::FACILITY_SLO_HEALTHY, &[]), 1);
    }

    #[test]
    fn quantile_rule_reads_snapshot_quantiles() {
        let r = Registry::new();
        let h = r.histogram(names::ADAL_OP_LATENCY_NS, &[("op", "put")]);
        for _ in 0..50 {
            h.record(10);
            h.record(1_000_000);
        }
        let tight =
            SloMonitor::new(vec![SloRule::parse(
                &format!("p50({}{{op=put}}) < 100", names::ADAL_OP_LATENCY_NS),
            )
            .unwrap()]);
        assert!(tight.evaluate(&r).healthy);
        let strict =
            SloMonitor::new(vec![SloRule::parse(
                &format!("p99({}{{op=put}}) < 100", names::ADAL_OP_LATENCY_NS),
            )
            .unwrap()]);
        assert!(!strict.evaluate(&r).healthy, "p99 sees the outlier");
    }

    #[test]
    fn rate_rule_is_windowed() {
        let r = Registry::new();
        let errs = r.counter(names::ADAL_RETRY_EXHAUSTED_TOTAL, &[("project", "p")]);
        let ops = r.counter(names::ADAL_OPS_TOTAL, &[("op", "put")]);
        let monitor = SloMonitor::new(vec![SloRule::parse(&format!(
            "rate({} / {}) < 0.5",
            names::ADAL_RETRY_EXHAUSTED_TOTAL,
            names::ADAL_OPS_TOTAL
        ))
        .unwrap()]);
        // First window: no previous totals -> 0.0.
        assert!(monitor.evaluate(&r).healthy);
        ops.add(10);
        errs.add(9);
        let report = monitor.evaluate(&r);
        assert!(!report.healthy);
        assert_eq!(report.rules[0].observed, 0.9);
        // Next window is clean: only deltas count.
        ops.add(10);
        assert!(monitor.evaluate(&r).healthy);
        // Idle window: denominator delta 0 -> vacuously ok.
        assert!(monitor.evaluate(&r).healthy);
    }

    #[test]
    fn project_accounts_aggregate_and_attribute() {
        let r = Registry::new();
        r.counter(
            names::ADAL_PROJECT_OPS_TOTAL,
            &[("project", "screening"), ("backend", "disk"), ("op", "put")],
        )
        .add(7);
        r.counter(
            names::ADAL_PROJECT_OPS_TOTAL,
            &[("project", "screening"), ("backend", "disk"), ("op", "get")],
        )
        .add(3);
        r.counter(
            names::ADAL_PROJECT_OPS_TOTAL,
            &[("project", "katrin"), ("backend", "tape"), ("op", "put")],
        )
        .add(2);
        r.histogram(names::FACILITY_INGEST_BYTES, &[("project", "screening")])
            .record(4096);
        r.counter(names::HSM_RECALLS_TOTAL, &[("store", "katrin-disk")])
            .add(5);
        r.gauge(names::ADAL_BREAKER_STATE, &[("project", "screening")])
            .set(1);
        let monitor = SloMonitor::new(vec![SloRule::parse(&format!(
            "gauge({}{{project=screening}}) == 0",
            names::ADAL_BREAKER_STATE
        ))
        .unwrap()]);
        let report = monitor.evaluate(&r);
        assert!(!report.healthy);
        assert_eq!(report.projects.len(), 2);
        let katrin = &report.projects[0];
        assert_eq!(katrin.project, "katrin");
        assert_eq!(katrin.ops, 2);
        assert_eq!(katrin.tape_mounts, 5);
        assert_eq!(katrin.violations, 0);
        let screening = &report.projects[1];
        assert_eq!(screening.project, "screening");
        assert_eq!(screening.ops, 10);
        assert_eq!(screening.bytes, 4096);
        assert_eq!(screening.violations, 1);
    }

    #[test]
    fn report_json_is_deterministic_and_balanced() {
        let r = Registry::new();
        r.set_virtual_time_ns(42);
        r.counter(
            names::ADAL_PROJECT_OPS_TOTAL,
            &[("project", "p\"q"), ("backend", "b"), ("op", "put")],
        )
        .inc();
        let monitor = SloMonitor::with_defaults();
        let json = monitor.evaluate(&r).to_json();
        assert_eq!(json, monitor.evaluate(&r).to_json());
        assert!(json.contains("\"t_ns\": 42"), "{json}");
        assert!(json.contains("\"healthy\": true"), "{json}");
        assert!(json.contains("p\\\"q"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
