//! SLO monitoring: declarative rules over registry snapshots, producing
//! a [`FacilityHealth`] report with per-project accounting.
//!
//! The LSDF paper's facility is run against advertised operating
//! points, with a project database accounting for what each scientific
//! community consumes. This module is that loop in miniature: a
//! [`SloMonitor`] holds parsed [`SloRule`]s and evaluates them against
//! a [`Registry`] snapshot on demand, yielding a report that says
//! whether the facility currently holds its promises and what each
//! project did to the stack.
//!
//! Rule grammar (one rule per string):
//!
//! ```text
//! p50|p95|p99(<hist>{k=v,...}) <|<= <number>     quantile bound
//! gauge(<gauge>{k=v,...}) ==|<=|< <number>       gauge bound
//! rate(<counter> / <counter>) <|<= <number>      eval-to-eval error rate
//! window(N) p50|p95|p99(<hist>{...}) ...         rolling quantile
//! window(N) rate(<ctr>{...} / <ctr>{...}) ...    windowed error rate
//! window(N) delta(<counter>{...}) ...            rate of change
//! window(N) burn(<ctr>{...} / <ctr>{...}, B) ... burn rate vs budget B
//! ```
//!
//! The label block is optional. `rate` divides the *deltas* of the two
//! counter totals (summed across label sets) since the previous
//! evaluation — the first evaluation and idle windows (denominator
//! delta 0) report 0.0. A metric that does not exist yet evaluates as
//! 0, so rules hold vacuously before traffic arrives. Evaluation is a
//! pure function of the snapshot plus the monitor's window state:
//! deterministic for deterministic runs.
//!
//! `window(N)` aggregations read the [`TelemetryStore`]'s retained
//! history over the last `N` scrape intervals instead of one snapshot,
//! which is what separates a transient spike from sustained
//! degradation: a rolling quantile is the *max* of the quantile samples
//! in the window, a windowed rate divides the delta mass of two
//! counters over the window, `delta` is a counter's windowed increase,
//! and `burn` is the windowed error rate divided by an error *budget*
//! `B` (à la error-budget burn-rate alerting: burn 1.0 consumes the
//! budget exactly; a threshold like `<= 2` alerts on 2x burn).
//! Windowed rate/burn/delta label blocks are allowed — per-project
//! burn-rate rules are how the admission governor attributes sustained
//! degradation. Windowed rules evaluate against an empty history (no
//! telemetry store, or no samples yet) as 0, i.e. vacuously healthy.

use lsdf_sync::{ranks, OrderedMutex};

use crate::json::{escape, fmt_f64};
use crate::names;
use crate::registry::{MetricId, Registry, RegistrySnapshot};
use crate::telemetry::{HistPoint, TelemetryStore};

/// Which quantile a quantile rule reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quantile {
    /// Median.
    P50,
    /// 95th percentile.
    P95,
    /// 99th percentile.
    P99,
}

/// What a rule measures.
#[derive(Clone, Debug, PartialEq)]
pub enum Selector {
    /// A histogram quantile, e.g. `p99(adal_op_latency_ns{op=put})`.
    HistQuantile {
        /// Which quantile.
        q: Quantile,
        /// Histogram name.
        name: String,
        /// Label filter (exact id match).
        labels: Vec<(String, String)>,
    },
    /// A gauge value, e.g. `gauge(dfs_under_replicated_unrecoverable)`.
    GaugeValue {
        /// Gauge name.
        name: String,
        /// Label filter (exact id match).
        labels: Vec<(String, String)>,
    },
    /// An eval-to-eval counter ratio, e.g.
    /// `rate(adal_retry_exhausted_total / adal_ops_total)`. Totals are
    /// summed across label sets.
    Rate {
        /// Numerator counter name.
        numerator: String,
        /// Denominator counter name.
        denominator: String,
    },
    /// A telemetry-windowed counter ratio (requires `window(N)`), e.g.
    /// `window(8) rate(adal_retry_exhausted_total / adal_ops_total)`.
    /// Label blocks are allowed; an empty block sums across label sets.
    WindowedRate {
        /// Numerator counter name.
        numerator: String,
        /// Numerator label filter (empty = sum across label sets).
        num_labels: Vec<(String, String)>,
        /// Denominator counter name.
        denominator: String,
        /// Denominator label filter (empty = sum across label sets).
        den_labels: Vec<(String, String)>,
    },
    /// A counter's increase over the window (requires `window(N)`),
    /// e.g. `window(4) delta(chaos_injected_total) <= 100`.
    Delta {
        /// Counter name.
        name: String,
        /// Label filter (empty = sum across label sets).
        labels: Vec<(String, String)>,
    },
    /// Error-budget burn rate (requires `window(N)`): the windowed
    /// error rate divided by the budget, e.g.
    /// `window(8) burn(err_total / ops_total, 0.01) <= 2`.
    BurnRate {
        /// Numerator (error) counter name.
        numerator: String,
        /// Numerator label filter.
        num_labels: Vec<(String, String)>,
        /// Denominator (traffic) counter name.
        denominator: String,
        /// Denominator label filter.
        den_labels: Vec<(String, String)>,
        /// The error budget the burn is measured against (> 0).
        budget: f64,
    },
}

/// Comparison against the threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// Observed strictly below threshold.
    Lt,
    /// Observed at or below threshold.
    Le,
    /// Observed equal to threshold.
    Eq,
}

/// One parsed SLO rule: optional window, selector, comparison,
/// threshold.
#[derive(Clone, Debug)]
pub struct SloRule {
    text: String,
    window: Option<u64>,
    selector: Selector,
    cmp: Cmp,
    threshold: f64,
}

fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    for pair in block.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("label `{pair}` is not `key=value`"))?;
        labels.push((k.trim().to_string(), v.trim().to_string()));
    }
    labels.sort();
    Ok(labels)
}

/// `name` or `name{k=v,...}` → (name, sorted labels).
fn parse_metric_ref(s: &str) -> Result<(String, Vec<(String, String)>), String> {
    let s = s.trim();
    match s.split_once('{') {
        None => Ok((s.to_string(), Vec::new())),
        Some((name, rest)) => {
            let block = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unclosed label block in `{s}`"))?;
            Ok((name.trim().to_string(), parse_labels(block)?))
        }
    }
}

impl SloRule {
    /// Parses one rule from the grammar in the module docs.
    pub fn parse(text: &str) -> Result<SloRule, String> {
        let t = text.trim();
        let (window, body) = match t.strip_prefix("window(") {
            Some(rest) => {
                let close = rest
                    .find(')')
                    .ok_or_else(|| format!("`{t}`: missing `)` closing the window"))?;
                let n: u64 = rest[..close]
                    .trim()
                    .parse()
                    .map_err(|e| format!("`{t}`: bad window size: {e}"))?;
                if n == 0 {
                    return Err(format!("`{t}`: window size must be >= 1"));
                }
                (Some(n), rest[close + 1..].trim())
            }
            None => (None, t),
        };
        let open = body
            .find('(')
            .ok_or_else(|| format!("`{t}`: missing `(` after selector"))?;
        let close = body
            .rfind(')')
            .ok_or_else(|| format!("`{t}`: missing `)` closing the selector"))?;
        if close < open {
            return Err(format!("`{t}`: mismatched parentheses"));
        }
        let head = body[..open].trim();
        let arg = &body[open + 1..close];
        let rest = body[close + 1..].trim();
        let (cmp, num) = if let Some(r) = rest.strip_prefix("<=") {
            (Cmp::Le, r)
        } else if let Some(r) = rest.strip_prefix("==") {
            (Cmp::Eq, r)
        } else if let Some(r) = rest.strip_prefix('<') {
            (Cmp::Lt, r)
        } else {
            return Err(format!("`{t}`: expected `<`, `<=`, or `==` after selector"));
        };
        let threshold: f64 = num
            .trim()
            .parse()
            .map_err(|e| format!("`{t}`: bad threshold: {e}"))?;
        let selector = match head {
            "p50" | "p95" | "p99" => {
                let q = match head {
                    "p50" => Quantile::P50,
                    "p95" => Quantile::P95,
                    _ => Quantile::P99,
                };
                let (name, labels) = parse_metric_ref(arg)?;
                Selector::HistQuantile { q, name, labels }
            }
            "gauge" => {
                if window.is_some() {
                    return Err(format!(
                        "`{t}`: gauge rules read the current value; `window` does not apply"
                    ));
                }
                let (name, labels) = parse_metric_ref(arg)?;
                Selector::GaugeValue { name, labels }
            }
            "rate" => {
                let (numerator, denominator) = arg
                    .split_once('/')
                    .ok_or_else(|| format!("`{t}`: rate needs `numerator / denominator`"))?;
                let (numerator, nl) = parse_metric_ref(numerator)?;
                let (denominator, dl) = parse_metric_ref(denominator)?;
                if window.is_some() {
                    Selector::WindowedRate {
                        numerator,
                        num_labels: nl,
                        denominator,
                        den_labels: dl,
                    }
                } else {
                    if !nl.is_empty() || !dl.is_empty() {
                        return Err(format!(
                            "`{t}`: rate counters are summed across labels; no label block allowed"
                        ));
                    }
                    Selector::Rate {
                        numerator,
                        denominator,
                    }
                }
            }
            "delta" => {
                if window.is_none() {
                    return Err(format!("`{t}`: delta requires a `window(N)` prefix"));
                }
                let (name, labels) = parse_metric_ref(arg)?;
                Selector::Delta { name, labels }
            }
            "burn" => {
                if window.is_none() {
                    return Err(format!("`{t}`: burn requires a `window(N)` prefix"));
                }
                let (metrics, budget) = arg
                    .rsplit_once(',')
                    .ok_or_else(|| format!("`{t}`: burn needs `num / den, budget`"))?;
                let budget: f64 = budget
                    .trim()
                    .parse()
                    .map_err(|e| format!("`{t}`: bad burn budget: {e}"))?;
                if !budget.is_finite() || budget <= 0.0 {
                    return Err(format!("`{t}`: burn budget must be > 0"));
                }
                let (numerator, denominator) = metrics
                    .split_once('/')
                    .ok_or_else(|| format!("`{t}`: burn needs `numerator / denominator`"))?;
                let (numerator, num_labels) = parse_metric_ref(numerator)?;
                let (denominator, den_labels) = parse_metric_ref(denominator)?;
                Selector::BurnRate {
                    numerator,
                    num_labels,
                    denominator,
                    den_labels,
                    budget,
                }
            }
            other => return Err(format!("`{t}`: unknown selector `{other}`")),
        };
        Ok(SloRule {
            text: t.to_string(),
            window,
            selector,
            cmp,
            threshold,
        })
    }

    /// The rule's source text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The window size in scrape intervals, when the rule is windowed.
    pub fn window(&self) -> Option<u64> {
        self.window
    }

    /// The project this rule is scoped to, when its label filter names
    /// one — used to attribute violations in the per-project accounts.
    /// For the two-counter windowed forms the numerator's label block
    /// decides (errors are what gets attributed).
    pub fn project(&self) -> Option<&str> {
        let labels = match &self.selector {
            Selector::HistQuantile { labels, .. } => labels,
            Selector::GaugeValue { labels, .. } => labels,
            Selector::Delta { labels, .. } => labels,
            Selector::WindowedRate { num_labels, .. } => num_labels,
            Selector::BurnRate { num_labels, .. } => num_labels,
            Selector::Rate { .. } => return None,
        };
        labels
            .iter()
            .find(|(k, _)| k == "project")
            .map(|(_, v)| v.as_str())
    }

    fn compare(&self, observed: f64) -> bool {
        match self.cmp {
            Cmp::Lt => observed < self.threshold,
            Cmp::Le => observed <= self.threshold,
            Cmp::Eq => observed == self.threshold,
        }
    }
}

/// `name` or `name{k=v,...}` with the labels in sorted order.
fn fmt_metric_ref(
    f: &mut std::fmt::Formatter<'_>,
    name: &str,
    labels: &[(String, String)],
) -> std::fmt::Result {
    write!(f, "{name}")?;
    if !labels.is_empty() {
        write!(f, "{{")?;
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")?;
    }
    Ok(())
}

/// Renders the rule in canonical grammar form: sorted labels, single
/// spacing, `{}`-formatted numbers. Parsing the rendering yields an
/// equivalent rule (same window, selector, comparison and threshold) —
/// the round-trip property the grammar proptests pin down.
impl std::fmt::Display for SloRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(w) = self.window {
            write!(f, "window({w}) ")?;
        }
        match &self.selector {
            Selector::HistQuantile { q, name, labels } => {
                let q = match q {
                    Quantile::P50 => "p50",
                    Quantile::P95 => "p95",
                    Quantile::P99 => "p99",
                };
                write!(f, "{q}(")?;
                fmt_metric_ref(f, name, labels)?;
                write!(f, ")")?;
            }
            Selector::GaugeValue { name, labels } => {
                write!(f, "gauge(")?;
                fmt_metric_ref(f, name, labels)?;
                write!(f, ")")?;
            }
            Selector::Rate {
                numerator,
                denominator,
            } => write!(f, "rate({numerator} / {denominator})")?,
            Selector::WindowedRate {
                numerator,
                num_labels,
                denominator,
                den_labels,
            } => {
                write!(f, "rate(")?;
                fmt_metric_ref(f, numerator, num_labels)?;
                write!(f, " / ")?;
                fmt_metric_ref(f, denominator, den_labels)?;
                write!(f, ")")?;
            }
            Selector::Delta { name, labels } => {
                write!(f, "delta(")?;
                fmt_metric_ref(f, name, labels)?;
                write!(f, ")")?;
            }
            Selector::BurnRate {
                numerator,
                num_labels,
                denominator,
                den_labels,
                budget,
            } => {
                write!(f, "burn(")?;
                fmt_metric_ref(f, numerator, num_labels)?;
                write!(f, " / ")?;
                fmt_metric_ref(f, denominator, den_labels)?;
                write!(f, ", {budget})")?;
            }
        }
        let cmp = match self.cmp {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Eq => "==",
        };
        write!(f, " {cmp} {}", self.threshold)
    }
}

fn metric_id(name: &str, labels: &[(String, String)]) -> MetricId {
    // Labels arrive sorted from `parse_labels`; MetricId sorts again.
    let as_refs: Vec<(&str, &str)> = labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    MetricId::new(name, &as_refs)
}

fn counter_total(snap: &RegistrySnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .filter(|(id, _)| id.name == name)
        .map(|(_, v)| v)
        .sum()
}

/// The outcome of one rule in one evaluation.
#[derive(Clone, Debug)]
pub struct RuleOutcome {
    /// Rule source text.
    pub rule: String,
    /// True when the rule held.
    pub ok: bool,
    /// The value the selector observed.
    pub observed: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// True when the rule aggregated telemetry history (`window(N)`).
    pub windowed: bool,
}

/// What one project did to the facility, per the registry.
#[derive(Clone, Debug)]
pub struct ProjectAccount {
    /// Project name (the ADAL mount / ingest label).
    pub project: String,
    /// ADAL operations served for the project.
    pub ops: u64,
    /// Bytes ingested for the project.
    pub bytes: u64,
    /// Tape movements (demotions + recalls) on the project's HSM store.
    pub tape_mounts: u64,
    /// Instantaneous rules scoped to this project that failed in this
    /// evaluation (a spike that may clear by the next pass).
    pub violations: u64,
    /// Windowed rules scoped to this project that failed — sustained
    /// degradation; what the admission governor throttles on when
    /// windowed alerting is configured.
    pub windowed_violations: u64,
}

/// One SLO evaluation: overall verdict, per-rule outcomes, per-project
/// accounts.
#[derive(Clone, Debug)]
pub struct FacilityHealth {
    /// Evaluation timestamp (registry clock).
    pub t_ns: u64,
    /// True when every rule held.
    pub healthy: bool,
    /// Per-rule outcomes, in rule order.
    pub rules: Vec<RuleOutcome>,
    /// Per-project accounts, sorted by project name.
    pub projects: Vec<ProjectAccount>,
}

impl FacilityHealth {
    /// True when this evaluation included at least one `window(N)`
    /// rule — the signal the admission governor switches on: with
    /// windowed alerting configured, throttling follows sustained
    /// burn-rate breaches instead of instantaneous spikes.
    pub fn windowed_alerting(&self) -> bool {
        self.rules.iter().any(|r| r.windowed)
    }

    /// The rules that failed in this evaluation (the operator console's
    /// "active alerts" panel).
    pub fn active_alerts(&self) -> Vec<&RuleOutcome> {
        self.rules.iter().filter(|r| !r.ok).collect()
    }

    /// Renders the report as a small JSON document (same hand-rolled,
    /// deterministic style as the registry exporter).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\n  \"t_ns\": {},\n  \"healthy\": {},\n  \"rules\": [",
            self.t_ns, self.healthy
        ));
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"ok\": {}, \"observed\": {}, \"threshold\": {}, \
                 \"windowed\": {}}}",
                escape(&r.rule),
                r.ok,
                fmt_f64(r.observed),
                fmt_f64(r.threshold),
                r.windowed
            ));
        }
        if !self.rules.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"projects\": [");
        for (i, p) in self.projects.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"project\": {}, \"ops\": {}, \"bytes\": {}, \
                 \"tape_mounts\": {}, \"violations\": {}, \"windowed_violations\": {}}}",
                escape(&p.project),
                p.ops,
                p.bytes,
                p.tape_mounts,
                p.violations,
                p.windowed_violations
            ));
        }
        if !self.projects.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Evaluates a fixed rule set against registry snapshots, carrying the
/// window state `rate` rules need between evaluations.
pub struct SloMonitor {
    rules: Vec<SloRule>,
    /// Previous (numerator, denominator) totals per rule index; `None`
    /// until the rule's first evaluation.
    windows: OrderedMutex<Vec<Option<(u64, u64)>>>,
}

impl SloMonitor {
    /// A monitor over `rules`.
    pub fn new(rules: Vec<SloRule>) -> Self {
        let windows = OrderedMutex::new(ranks::OBS_SLO_WINDOWS, vec![None; rules.len()]);
        SloMonitor { rules, windows }
    }

    /// The facility's baseline rule set: no block may ever become
    /// unrecoverable.
    pub fn with_defaults() -> Self {
        let rule = format!("gauge({}) == 0", names::DFS_UNDER_REPLICATED_UNRECOVERABLE);
        SloMonitor::new(vec![SloRule::parse(&rule).expect("default rule parses")])
    }

    /// The rules this monitor evaluates.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Evaluates every rule against a fresh snapshot of `registry`,
    /// updating the monitor's own metrics
    /// (`facility_slo_evaluations_total`, `facility_slo_violations_total`,
    /// `facility_slo_healthy`). Windowed rules see no history through
    /// this entry point and hold vacuously; pass a telemetry store via
    /// [`SloMonitor::evaluate_with_history`] to arm them.
    pub fn evaluate(&self, registry: &Registry) -> FacilityHealth {
        self.evaluate_with_history(registry, None)
    }

    /// Evaluates every rule; `window(N)` rules aggregate the telemetry
    /// store's retained history over the last `N` scrape intervals
    /// ending at the registry clock's now.
    pub fn evaluate_with_history(
        &self,
        registry: &Registry,
        history: Option<&TelemetryStore>,
    ) -> FacilityHealth {
        let snap = registry.snapshot();
        let t_ns = registry.now_ns();
        // Windowed observations are computed before the monitor's own
        // window lock is taken: the telemetry ring ranks outside it
        // (OBS_TELEMETRY 830 < OBS_SLO_WINDOWS 840) and the two must
        // never nest.
        let windowed_obs: Vec<Option<f64>> = self
            .rules
            .iter()
            .map(|rule| {
                rule.window
                    .map(|w| windowed_observe(rule, w, history, t_ns))
            })
            .collect();
        let mut windows = self.windows.lock();
        let mut outcomes = Vec::with_capacity(self.rules.len());
        for (i, rule) in self.rules.iter().enumerate() {
            let observed = match windowed_obs[i] {
                Some(v) => v,
                None => match &rule.selector {
                    Selector::HistQuantile { q, name, labels } => {
                        let id = metric_id(name, labels);
                        snap.histograms
                            .iter()
                            .find(|(hid, _)| *hid == id)
                            .map_or(0.0, |(_, h)| match q {
                                Quantile::P50 => h.p50 as f64,
                                Quantile::P95 => h.p95 as f64,
                                Quantile::P99 => h.p99 as f64,
                            })
                    }
                    Selector::GaugeValue { name, labels } => {
                        let id = metric_id(name, labels);
                        snap.gauges
                            .iter()
                            .find(|(gid, _)| *gid == id)
                            .map_or(0.0, |(_, v)| *v as f64)
                    }
                    Selector::Rate {
                        numerator,
                        denominator,
                    } => {
                        let num = counter_total(&snap, numerator);
                        let den = counter_total(&snap, denominator);
                        let prev = windows[i].replace((num, den));
                        match prev {
                            Some((pn, pd)) => {
                                let dn = num.saturating_sub(pn);
                                let dd = den.saturating_sub(pd);
                                if dd == 0 {
                                    0.0
                                } else {
                                    dn as f64 / dd as f64
                                }
                            }
                            None => 0.0,
                        }
                    }
                    // The parser only admits these with a window.
                    Selector::WindowedRate { .. }
                    | Selector::Delta { .. }
                    | Selector::BurnRate { .. } => 0.0,
                },
            };
            outcomes.push(RuleOutcome {
                rule: rule.text.clone(),
                ok: rule.compare(observed),
                observed,
                threshold: rule.threshold,
                windowed: rule.window.is_some(),
            });
        }
        drop(windows);

        let healthy = outcomes.iter().all(|o| o.ok);
        let violations = outcomes.iter().filter(|o| !o.ok).count() as u64;
        let windowed_violations =
            outcomes.iter().filter(|o| !o.ok && o.windowed).count() as u64;
        registry
            .counter(names::FACILITY_SLO_EVALUATIONS_TOTAL, &[])
            .inc();
        registry
            .counter(names::FACILITY_SLO_VIOLATIONS_TOTAL, &[])
            .add(violations);
        registry
            .counter(names::FACILITY_SLO_WINDOWED_VIOLATIONS_TOTAL, &[])
            .add(windowed_violations);
        registry
            .gauge(names::FACILITY_SLO_HEALTHY, &[])
            .set(i64::from(healthy));

        FacilityHealth {
            t_ns,
            healthy,
            projects: project_accounts(&snap, &self.rules, &outcomes),
            rules: outcomes,
        }
    }
}

/// Observes one windowed rule against telemetry history; empty history
/// (no store, or no in-window samples) observes 0.
fn windowed_observe(
    rule: &SloRule,
    window: u64,
    history: Option<&TelemetryStore>,
    now_ns: u64,
) -> f64 {
    let Some(store) = history else { return 0.0 };
    let since = now_ns.saturating_sub(window.saturating_mul(store.interval_ns()));
    match &rule.selector {
        Selector::HistQuantile { q, name, labels } => {
            let pick: fn(&HistPoint) -> u64 = match q {
                Quantile::P50 => |h| h.p50,
                Quantile::P95 => |h| h.p95,
                Quantile::P99 => |h| h.p99,
            };
            store
                .hist_window_quantile(name, &label_refs(labels), since, pick)
                .map_or(0.0, |v| v as f64)
        }
        Selector::WindowedRate {
            numerator,
            num_labels,
            denominator,
            den_labels,
        } => {
            let num = windowed_mass(store, numerator, num_labels, since);
            let den = windowed_mass(store, denominator, den_labels, since);
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        }
        Selector::Delta { name, labels } => windowed_mass(store, name, labels, since) as f64,
        Selector::BurnRate {
            numerator,
            num_labels,
            denominator,
            den_labels,
            budget,
        } => {
            let num = windowed_mass(store, numerator, num_labels, since);
            let den = windowed_mass(store, denominator, den_labels, since);
            if den == 0 {
                0.0
            } else {
                (num as f64 / den as f64) / budget
            }
        }
        // The parser rejects windowed gauge rules, and plain rate rules
        // never carry a window.
        Selector::GaugeValue { .. } | Selector::Rate { .. } => 0.0,
    }
}

fn label_refs(labels: &[(String, String)]) -> Vec<(&str, &str)> {
    labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect()
}

/// Windowed delta mass of one counter: label-filtered when the rule
/// names labels, summed across label sets otherwise.
fn windowed_mass(
    store: &TelemetryStore,
    name: &str,
    labels: &[(String, String)],
    since_ns: u64,
) -> u64 {
    if labels.is_empty() {
        store.counter_window_total(name, since_ns)
    } else {
        store.counter_window_sum(name, &label_refs(labels), since_ns)
    }
}

/// Builds per-project accounts from a snapshot: projects are discovered
/// from `adal_project_ops_total` and `facility_ingest_bytes` labels;
/// tape movement is attributed through the facility naming convention
/// that a project's HSM disk tier is called `<project>-disk`.
/// Violations are attributed from the evaluation's actual outcomes,
/// split instantaneous vs windowed.
fn project_accounts(
    snap: &RegistrySnapshot,
    rules: &[SloRule],
    outcomes: &[RuleOutcome],
) -> Vec<ProjectAccount> {
    let mut projects = std::collections::BTreeSet::new();
    for (id, _) in &snap.counters {
        if id.name == names::ADAL_PROJECT_OPS_TOTAL {
            if let Some((_, p)) = id.labels.iter().find(|(k, _)| k == "project") {
                projects.insert(p.clone());
            }
        }
    }
    for (id, _) in &snap.histograms {
        if id.name == names::FACILITY_INGEST_BYTES {
            if let Some((_, p)) = id.labels.iter().find(|(k, _)| k == "project") {
                projects.insert(p.clone());
            }
        }
    }
    projects
        .into_iter()
        .map(|project| {
            let ops = snap
                .counters
                .iter()
                .filter(|(id, _)| {
                    id.name == names::ADAL_PROJECT_OPS_TOTAL
                        && id.labels.contains(&("project".to_string(), project.clone()))
                })
                .map(|(_, v)| v)
                .sum();
            let bytes = snap
                .histograms
                .iter()
                .filter(|(id, _)| {
                    id.name == names::FACILITY_INGEST_BYTES
                        && id.labels.contains(&("project".to_string(), project.clone()))
                })
                .map(|(_, h)| h.sum)
                .sum();
            let store = ("store".to_string(), format!("{project}-disk"));
            let tape_mounts = snap
                .counters
                .iter()
                .filter(|(id, _)| {
                    (id.name == names::HSM_DEMOTIONS_TOTAL || id.name == names::HSM_RECALLS_TOTAL)
                        && id.labels.contains(&store)
                })
                .map(|(_, v)| v)
                .sum();
            let failed_for_project = |windowed: bool| {
                rules
                    .iter()
                    .zip(outcomes)
                    .filter(|(r, o)| {
                        !o.ok && o.windowed == windowed && r.project() == Some(project.as_str())
                    })
                    .count() as u64
            };
            let violations = failed_for_project(false);
            let windowed_violations = failed_for_project(true);
            ProjectAccount {
                project,
                ops,
                bytes,
                tape_mounts,
                violations,
                windowed_violations,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_selector_forms() {
        let q = SloRule::parse("p99(adal_op_latency_ns{op=put}) < 1000000").unwrap();
        assert_eq!(
            q.selector,
            Selector::HistQuantile {
                q: Quantile::P99,
                name: "adal_op_latency_ns".into(),
                labels: vec![("op".into(), "put".into())],
            }
        );
        assert_eq!(q.cmp, Cmp::Lt);
        assert_eq!(q.threshold, 1_000_000.0);

        let g = SloRule::parse("gauge(dfs_under_replicated_unrecoverable) == 0").unwrap();
        assert_eq!(
            g.selector,
            Selector::GaugeValue {
                name: "dfs_under_replicated_unrecoverable".into(),
                labels: vec![],
            }
        );
        assert_eq!(g.cmp, Cmp::Eq);

        let r = SloRule::parse("rate(adal_retry_exhausted_total / adal_ops_total) <= 0.05")
            .unwrap();
        assert_eq!(
            r.selector,
            Selector::Rate {
                numerator: "adal_retry_exhausted_total".into(),
                denominator: "adal_ops_total".into(),
            }
        );
        assert_eq!(r.cmp, Cmp::Le);
    }

    #[test]
    fn rejects_malformed_rules() {
        for bad in [
            "p99 adal_op_latency_ns < 5",
            "p42(x) < 5",
            "gauge(x) > 5",
            "gauge(x{unclosed) == 0",
            "rate(a) < 0.5",
            "rate(a{l=1} / b) < 0.5",
            "gauge(x) == banana",
            "window(0) rate(a / b) < 0.5",
            "window(banana) rate(a / b) < 0.5",
            "window(8 rate(a / b) < 0.5",
            "window(8) gauge(x) == 0",
            "delta(a) < 5",
            "burn(a / b, 0.01) < 2",
            "window(8) burn(a / b) < 2",
            "window(8) burn(a / b, 0) < 2",
            "window(8) burn(a / b, -0.1) < 2",
            "window(8) burn(a, 0.01) < 2",
        ] {
            assert!(SloRule::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn parses_the_windowed_forms() {
        let r = SloRule::parse("window(8) rate(errs_total{project=p} / ops_total) <= 0.15")
            .unwrap();
        assert_eq!(r.window(), Some(8));
        assert_eq!(
            r.selector,
            Selector::WindowedRate {
                numerator: "errs_total".into(),
                num_labels: vec![("project".into(), "p".into())],
                denominator: "ops_total".into(),
                den_labels: vec![],
            }
        );
        assert_eq!(r.project(), Some("p"));

        let q = SloRule::parse("window(4) p99(lat_ns{project=p}) <= 1000").unwrap();
        assert_eq!(q.window(), Some(4));
        assert!(matches!(q.selector, Selector::HistQuantile { .. }));

        let d = SloRule::parse("window(4) delta(chaos_injected_total) <= 100").unwrap();
        assert_eq!(
            d.selector,
            Selector::Delta {
                name: "chaos_injected_total".into(),
                labels: vec![],
            }
        );

        let b = SloRule::parse("window(8) burn(errs_total / ops_total, 0.01) <= 2").unwrap();
        assert_eq!(
            b.selector,
            Selector::BurnRate {
                numerator: "errs_total".into(),
                num_labels: vec![],
                denominator: "ops_total".into(),
                den_labels: vec![],
                budget: 0.01,
            }
        );
        assert_eq!(b.text(), "window(8) burn(errs_total / ops_total, 0.01) <= 2");
    }

    #[test]
    fn windowed_rules_hold_vacuously_without_history() {
        let r = Registry::new();
        r.counter(names::ADAL_RETRY_EXHAUSTED_TOTAL, &[]).add(100);
        r.counter(names::ADAL_OPS_TOTAL, &[]).add(100);
        let monitor = SloMonitor::new(vec![SloRule::parse(&format!(
            "window(8) rate({} / {}) <= 0.1",
            names::ADAL_RETRY_EXHAUSTED_TOTAL,
            names::ADAL_OPS_TOTAL
        ))
        .unwrap()]);
        let report = monitor.evaluate(&r);
        assert!(report.healthy, "no store wired: windowed rules are vacuous");
        assert!(report.windowed_alerting());
        assert_eq!(report.rules[0].observed, 0.0);
        assert!(report.rules[0].windowed);
    }

    #[test]
    fn windowed_burn_catches_what_the_instantaneous_rate_misses() {
        use crate::telemetry::{TelemetryConfig, TelemetryStore};
        const MS: u64 = 1_000_000;
        let r = Registry::new();
        let ts = TelemetryStore::new(TelemetryConfig::default().interval_ns(MS));
        let errs = r.counter(names::ADAL_RETRY_EXHAUSTED_TOTAL, &[]);
        let ops = r.counter(names::ADAL_OPS_TOTAL, &[]);
        // An instantaneous spike rule sized for one bad eval, and a
        // windowed burn rule sized for sustained degradation: 25%
        // errors against a 10% budget is a 2.5x burn.
        let monitor = SloMonitor::new(vec![
            SloRule::parse(&format!(
                "rate({} / {}) <= 0.5",
                names::ADAL_RETRY_EXHAUSTED_TOTAL,
                names::ADAL_OPS_TOTAL
            ))
            .unwrap(),
            SloRule::parse(&format!(
                "window(8) burn({} / {}, 0.1) <= 2",
                names::ADAL_RETRY_EXHAUSTED_TOTAL,
                names::ADAL_OPS_TOTAL
            ))
            .unwrap(),
        ]);
        let mut last = FacilityHealth {
            t_ns: 0,
            healthy: true,
            rules: vec![],
            projects: vec![],
        };
        for k in 1..=8u64 {
            ops.add(20);
            errs.add(5); // sustained 25%: never breaches the 0.5 spike rule
            r.set_virtual_time_ns(k * MS);
            ts.scrape(&r);
            last = monitor.evaluate_with_history(&r, Some(&ts));
        }
        assert!(last.rules[0].ok, "instantaneous rule never fires at 25%");
        assert!(!last.rules[1].ok, "sustained 2.5x burn breaches the windowed rule");
        assert_eq!(last.rules[1].observed, 2.5);
        assert!(!last.healthy);
        assert_eq!(
            r.counter_value(names::FACILITY_SLO_WINDOWED_VIOLATIONS_TOTAL, &[]),
            r.counter_value(names::FACILITY_SLO_VIOLATIONS_TOTAL, &[]),
            "every violation in this run is a windowed one"
        );
    }

    #[test]
    fn rolling_p99_rule_remembers_a_spike_across_evals() {
        use crate::telemetry::{TelemetryConfig, TelemetryStore};
        const MS: u64 = 1_000_000;
        let r = Registry::new();
        let ts = TelemetryStore::new(TelemetryConfig::default().interval_ns(MS));
        let h = r.histogram(names::ADAL_PROJECT_OP_LATENCY_NS, &[("project", "p")]);
        let monitor = SloMonitor::new(vec![SloRule::parse(&format!(
            "window(4) p99({}{{project=p}}) <= 1000",
            names::ADAL_PROJECT_OP_LATENCY_NS
        ))
        .unwrap()]);
        h.record(100_000); // the spike
        r.set_virtual_time_ns(MS);
        ts.scrape(&r);
        for k in 2..=3u64 {
            for _ in 0..200 {
                h.record(10); // drown the spike out of the instantaneous p99
            }
            r.set_virtual_time_ns(k * MS);
            ts.scrape(&r);
        }
        let report = monitor.evaluate_with_history(&r, Some(&ts));
        assert!(
            !report.rules[0].ok,
            "rolling p99 keeps the in-window spike: {}",
            report.rules[0].observed
        );
        // Once the spike sample ages out of the window, the rule clears.
        for k in 4..=7u64 {
            r.set_virtual_time_ns(k * MS);
            ts.scrape(&r);
        }
        let report = monitor.evaluate_with_history(&r, Some(&ts));
        assert!(report.rules[0].ok, "spike aged out of the window");
    }

    #[test]
    fn gauge_rule_flips_and_recovers() {
        let r = Registry::new();
        r.set_virtual_time_ns(1);
        let monitor = SloMonitor::with_defaults();
        let report = monitor.evaluate(&r);
        assert!(report.healthy, "vacuously healthy before traffic");
        r.gauge(names::DFS_UNDER_REPLICATED_UNRECOVERABLE, &[]).set(3);
        let report = monitor.evaluate(&r);
        assert!(!report.healthy);
        assert!(!report.rules[0].ok);
        assert_eq!(report.rules[0].observed, 3.0);
        r.gauge(names::DFS_UNDER_REPLICATED_UNRECOVERABLE, &[]).set(0);
        let report = monitor.evaluate(&r);
        assert!(report.healthy, "recovers once the gauge clears");
        assert_eq!(r.counter_value(names::FACILITY_SLO_EVALUATIONS_TOTAL, &[]), 3);
        assert_eq!(r.counter_value(names::FACILITY_SLO_VIOLATIONS_TOTAL, &[]), 1);
        assert_eq!(r.gauge_value(names::FACILITY_SLO_HEALTHY, &[]), 1);
    }

    #[test]
    fn quantile_rule_reads_snapshot_quantiles() {
        let r = Registry::new();
        let h = r.histogram(names::ADAL_OP_LATENCY_NS, &[("op", "put")]);
        for _ in 0..50 {
            h.record(10);
            h.record(1_000_000);
        }
        let tight =
            SloMonitor::new(vec![SloRule::parse(
                &format!("p50({}{{op=put}}) < 100", names::ADAL_OP_LATENCY_NS),
            )
            .unwrap()]);
        assert!(tight.evaluate(&r).healthy);
        let strict =
            SloMonitor::new(vec![SloRule::parse(
                &format!("p99({}{{op=put}}) < 100", names::ADAL_OP_LATENCY_NS),
            )
            .unwrap()]);
        assert!(!strict.evaluate(&r).healthy, "p99 sees the outlier");
    }

    #[test]
    fn rate_rule_is_windowed() {
        let r = Registry::new();
        let errs = r.counter(names::ADAL_RETRY_EXHAUSTED_TOTAL, &[("project", "p")]);
        let ops = r.counter(names::ADAL_OPS_TOTAL, &[("op", "put")]);
        let monitor = SloMonitor::new(vec![SloRule::parse(&format!(
            "rate({} / {}) < 0.5",
            names::ADAL_RETRY_EXHAUSTED_TOTAL,
            names::ADAL_OPS_TOTAL
        ))
        .unwrap()]);
        // First window: no previous totals -> 0.0.
        assert!(monitor.evaluate(&r).healthy);
        ops.add(10);
        errs.add(9);
        let report = monitor.evaluate(&r);
        assert!(!report.healthy);
        assert_eq!(report.rules[0].observed, 0.9);
        // Next window is clean: only deltas count.
        ops.add(10);
        assert!(monitor.evaluate(&r).healthy);
        // Idle window: denominator delta 0 -> vacuously ok.
        assert!(monitor.evaluate(&r).healthy);
    }

    #[test]
    fn project_accounts_aggregate_and_attribute() {
        let r = Registry::new();
        r.counter(
            names::ADAL_PROJECT_OPS_TOTAL,
            &[("project", "screening"), ("backend", "disk"), ("op", "put")],
        )
        .add(7);
        r.counter(
            names::ADAL_PROJECT_OPS_TOTAL,
            &[("project", "screening"), ("backend", "disk"), ("op", "get")],
        )
        .add(3);
        r.counter(
            names::ADAL_PROJECT_OPS_TOTAL,
            &[("project", "katrin"), ("backend", "tape"), ("op", "put")],
        )
        .add(2);
        r.histogram(names::FACILITY_INGEST_BYTES, &[("project", "screening")])
            .record(4096);
        r.counter(names::HSM_RECALLS_TOTAL, &[("store", "katrin-disk")])
            .add(5);
        r.gauge(names::ADAL_BREAKER_STATE, &[("project", "screening")])
            .set(1);
        let monitor = SloMonitor::new(vec![SloRule::parse(&format!(
            "gauge({}{{project=screening}}) == 0",
            names::ADAL_BREAKER_STATE
        ))
        .unwrap()]);
        let report = monitor.evaluate(&r);
        assert!(!report.healthy);
        assert_eq!(report.projects.len(), 2);
        let katrin = &report.projects[0];
        assert_eq!(katrin.project, "katrin");
        assert_eq!(katrin.ops, 2);
        assert_eq!(katrin.tape_mounts, 5);
        assert_eq!(katrin.violations, 0);
        let screening = &report.projects[1];
        assert_eq!(screening.project, "screening");
        assert_eq!(screening.ops, 10);
        assert_eq!(screening.bytes, 4096);
        assert_eq!(screening.violations, 1);
    }

    #[test]
    fn report_json_is_deterministic_and_balanced() {
        let r = Registry::new();
        r.set_virtual_time_ns(42);
        r.counter(
            names::ADAL_PROJECT_OPS_TOTAL,
            &[("project", "p\"q"), ("backend", "b"), ("op", "put")],
        )
        .inc();
        let monitor = SloMonitor::with_defaults();
        let json = monitor.evaluate(&r).to_json();
        assert_eq!(json, monitor.evaluate(&r).to_json());
        assert!(json.contains("\"t_ns\": 42"), "{json}");
        assert!(json.contains("\"healthy\": true"), "{json}");
        assert!(json.contains("p\\\"q"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
