//! Span-profile aggregation: folding the trace store into per-span-name
//! totals and a flamegraph-compatible collapsed-stack export.
//!
//! A trace tree answers "what happened to *this* operation"; operators
//! also need the aggregate question — "where does the facility spend
//! its time overall". [`SpanProfile`] folds every retained trace into
//! per-span-name rows of call count, total (inclusive) time, self time
//! (total minus the children's totals), child time, and worst case, and
//! exports the `stack;path;leaf <self_ns>` collapsed-stack format that
//! `flamegraph.pl` / speedscope / inferno consume directly.
//!
//! Determinism: trace trees are worker-count-invariant (creation sites
//! are serial), the fold is a pure function of the trees, and both
//! exports sort their lines, so the profile and the collapsed-stack
//! file are byte-identical at any worker count for a given seed.

use std::collections::BTreeMap;

use crate::trace::{SpanRecord, TraceRecord};

/// Aggregated timing for one span name across every folded trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanProfileRow {
    /// Span name (a `lsdf_obs::names` const at record time).
    pub name: String,
    /// Times a span with this name completed.
    pub count: u64,
    /// Σ inclusive durations.
    pub total_ns: u64,
    /// Σ (inclusive − children's inclusive): time spent in the span
    /// itself.
    pub self_ns: u64,
    /// Σ children's inclusive durations.
    pub child_ns: u64,
    /// Largest single inclusive duration.
    pub max_ns: u64,
}

/// A fold of trace trees into per-span-name totals plus collapsed
/// stacks.
#[derive(Clone, Debug, Default)]
pub struct SpanProfile {
    rows: BTreeMap<String, SpanProfileRow>,
    /// `root;child;...;leaf` → Σ self-time of spans at that stack.
    stacks: BTreeMap<String, u64>,
}

impl SpanProfile {
    /// An empty profile.
    pub fn new() -> Self {
        SpanProfile::default()
    }

    /// Folds every trace in `traces` (typically `Tracer::traces()`).
    pub fn from_traces(traces: &[TraceRecord]) -> Self {
        let mut p = SpanProfile::new();
        for t in traces {
            p.fold(&t.root);
        }
        p
    }

    /// Folds one span tree into the profile.
    pub fn fold(&mut self, root: &SpanRecord) {
        self.fold_at(root, String::new());
    }

    fn fold_at(&mut self, span: &SpanRecord, prefix: String) {
        let stack = if prefix.is_empty() {
            span.name.to_string()
        } else {
            format!("{prefix};{}", span.name)
        };
        let total = span.duration_ns();
        let child: u64 = span.children.iter().map(SpanRecord::duration_ns).sum();
        let own = total.saturating_sub(child);
        let row = self.rows.entry(span.name.to_string()).or_default();
        if row.name.is_empty() {
            row.name = span.name.to_string();
        }
        row.count += 1;
        row.total_ns += total;
        row.self_ns += own;
        row.child_ns += child.min(total);
        row.max_ns = row.max_ns.max(total);
        *self.stacks.entry(stack.clone()).or_insert(0) += own;
        for c in &span.children {
            self.fold_at(c, stack.clone());
        }
    }

    /// Rows sorted by descending total time (ties broken by name), the
    /// order the slowest-operations table presents.
    pub fn rows_by_total(&self) -> Vec<&SpanProfileRow> {
        let mut rows: Vec<&SpanProfileRow> = self.rows.values().collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        rows
    }

    /// The row for one span name, if that name ever completed.
    pub fn row(&self, name: &str) -> Option<&SpanProfileRow> {
        self.rows.get(name)
    }

    /// Collapsed-stack export (`stack;path;leaf <self_ns>`, one line
    /// per distinct stack, sorted lexicographically): feed straight to
    /// `flamegraph.pl` or speedscope. Zero-self-time stacks are kept —
    /// they document structure even when the virtual clock stood still.
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::with_capacity(self.stacks.len() * 32);
        for (stack, self_ns) in &self.stacks {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&self_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders the slowest-operations table: top `n` span names by
    /// total time with count / total / self / mean / max columns.
    pub fn render_slowest(&self, n: usize) -> String {
        let rows = self.rows_by_total();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>8} {:>14} {:>14} {:>12} {:>12}\n",
            "span", "count", "total_ns", "self_ns", "mean_ns", "max_ns"
        ));
        for row in rows.iter().take(n) {
            let mean = row.total_ns.checked_div(row.count).unwrap_or(0);
            out.push_str(&format!(
                "{:<28} {:>8} {:>14} {:>14} {:>12} {:>12}\n",
                row.name, row.count, row.total_ns, row.self_ns, mean, row.max_ns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;
    use crate::trace::TraceId;

    fn span(name: &'static str, start: u64, end: u64, children: Vec<SpanRecord>) -> SpanRecord {
        SpanRecord {
            name,
            start_ns: start,
            end_ns: end,
            fields: vec![],
            events: vec![],
            children,
        }
    }

    fn tree() -> TraceRecord {
        // root [0,100]: child A [10,40], child B [40,90] with leaf [50,60].
        TraceRecord {
            trace_id: TraceId(1),
            key: "k".into(),
            root: span(
                names::ADAL_PUT_SPAN,
                0,
                100,
                vec![
                    span(names::ADAL_ATTEMPT_SPAN, 10, 40, vec![]),
                    span(
                        names::ADAL_PRIMARY_PUT_SPAN,
                        40,
                        90,
                        vec![span(names::DFS_WRITE_SPAN, 50, 60, vec![])],
                    ),
                ],
            ),
        }
    }

    #[test]
    fn self_time_is_total_minus_children() {
        let p = SpanProfile::from_traces(&[tree()]);
        let root = p.row(names::ADAL_PUT_SPAN).unwrap();
        assert_eq!(root.count, 1);
        assert_eq!(root.total_ns, 100);
        assert_eq!(root.child_ns, 80);
        assert_eq!(root.self_ns, 20);
        let primary = p.row(names::ADAL_PRIMARY_PUT_SPAN).unwrap();
        assert_eq!(primary.self_ns, 40);
        assert_eq!(primary.child_ns, 10);
        // Self times across all rows sum to the root's wall time.
        let self_sum: u64 = p.rows_by_total().iter().map(|r| r.self_ns).sum();
        assert_eq!(self_sum, 100);
    }

    #[test]
    fn collapsed_stacks_are_sorted_and_flamegraph_shaped() {
        let p = SpanProfile::from_traces(&[tree(), tree()]);
        let out = p.collapsed_stacks();
        let lines: Vec<&str> = out.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "stacks are emitted sorted");
        assert!(out.contains(&format!(
            "{};{};{} 20\n",
            names::ADAL_PUT_SPAN,
            names::ADAL_PRIMARY_PUT_SPAN,
            names::DFS_WRITE_SPAN
        )));
        for line in &lines {
            let (_, n) = line.rsplit_once(' ').unwrap();
            n.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn slowest_table_orders_by_total_time() {
        let p = SpanProfile::from_traces(&[tree()]);
        let table = p.render_slowest(2);
        let mut lines = table.lines();
        assert!(lines.next().unwrap().starts_with("span"));
        assert!(lines.next().unwrap().starts_with(names::ADAL_PUT_SPAN));
        assert!(lines.next().unwrap().starts_with(names::ADAL_PRIMARY_PUT_SPAN));
        assert_eq!(lines.next(), None);
    }
}
