//! The operator console: `facility_status` renders the text report an
//! operator reads — per-tenant traffic with sparklines from the
//! telemetry store, lane queue depths, breaker states, WAL/checkpoint
//! lag, active alerts, and the slowest-operations profile.
//!
//! The renderer returns a `String` (the workspace denies stdout in
//! library code); `Facility::operator_report()` and the `just status`
//! target are the entry points that actually display it. Every section
//! reads sorted data (snapshot tables are BTreeMap-ordered, telemetry
//! series are BTreeMap-keyed, profile rows sort by total time), so the
//! rendered report is byte-identical at any worker count for a given
//! seed.

use crate::names;
use crate::profile::SpanProfile;
use crate::registry::Registry;
use crate::slo::FacilityHealth;
use crate::telemetry::TelemetryStore;

/// Everything `facility_status` reads. `telemetry` and `profile` are
/// optional: sections that need them render a placeholder note when
/// absent.
pub struct ConsoleInputs<'a> {
    /// The registry to snapshot for current values.
    pub registry: &'a Registry,
    /// Telemetry history for sparklines and scrape accounting.
    pub telemetry: Option<&'a TelemetryStore>,
    /// The health evaluation to report (projects, alerts).
    pub health: &'a FacilityHealth,
    /// Span profile for the slowest-operations table.
    pub profile: Option<&'a SpanProfile>,
}

/// Renders a series as a fixed-palette unicode sparkline (`▁▂▃▄▅▆▇█`),
/// scaled to the series max. Empty input renders as `-`.
pub fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return "-".to_string();
    }
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|v| {
            if max == 0 {
                BARS[0]
            } else {
                // Map 0..=max onto the 8 glyphs, top glyph at the max.
                let idx = ((*v as u128 * 7).div_ceil(max as u128)) as usize;
                BARS[idx.min(7)]
            }
        })
        .collect()
}

/// Last `n` values of a series, as the sparkline columns.
fn tail(values: &[u64], n: usize) -> Vec<u64> {
    values[values.len().saturating_sub(n)..].to_vec()
}

const SPARK_WIDTH: usize = 16;

/// Renders the full operator report. See the module docs for the
/// section list and the determinism argument.
pub fn facility_status(inputs: &ConsoleInputs<'_>) -> String {
    let snap = inputs.registry.snapshot();
    let health = inputs.health;
    let mut out = String::with_capacity(2048);

    out.push_str(&format!(
        "== facility status @ t_ns={} ==\nhealthy: {}\n",
        health.t_ns,
        if health.healthy { "yes" } else { "NO" }
    ));

    // --- Tenants: accounts + ops/p99 sparklines from the TSDB --------
    out.push_str(&format!(
        "\n-- tenants --\n{:<16} {:>10} {:>14} {:>10} {:>5} {:>4}  {:<w$} {:<w$}\n",
        "project",
        "ops",
        "bytes",
        "tape",
        "viol",
        "thr",
        "ops/interval",
        "p99_ns",
        w = SPARK_WIDTH
    ));
    for p in &health.projects {
        let throttle = inputs
            .registry
            .gauge_value(names::ADMISSION_THROTTLE_LEVEL, &[("project", &p.project)]);
        let (ops_spark, p99_spark) = match inputs.telemetry {
            Some(ts) => {
                let ops: Vec<u64> = ts
                    .counter_series_filtered(
                        names::ADAL_PROJECT_OPS_TOTAL,
                        ("project", &p.project),
                    )
                    .into_iter()
                    .map(|(_, d)| d)
                    .collect();
                let p99: Vec<u64> = ts
                    .hist_series(
                        names::ADAL_PROJECT_OP_LATENCY_NS,
                        &[("project", &p.project)],
                    )
                    .into_iter()
                    .map(|(_, h)| h.p99)
                    .collect();
                (
                    sparkline(&tail(&ops, SPARK_WIDTH)),
                    sparkline(&tail(&p99, SPARK_WIDTH)),
                )
            }
            None => ("-".to_string(), "-".to_string()),
        };
        out.push_str(&format!(
            "{:<16} {:>10} {:>14} {:>10} {:>5} {:>4}  {:<w$} {:<w$}\n",
            p.project,
            p.ops,
            p.bytes,
            p.tape_mounts,
            p.violations + p.windowed_violations,
            throttle,
            ops_spark,
            p99_spark,
            w = SPARK_WIDTH
        ));
    }
    if health.projects.is_empty() {
        out.push_str("(no tenant traffic yet)\n");
    }

    // --- Admission lanes ----------------------------------------------
    out.push_str("\n-- admission lanes (queue depth) --\n");
    let mut any_lane = false;
    for (id, v) in &snap.gauges {
        if id.name == names::ADMISSION_QUEUE_DEPTH {
            any_lane = true;
            out.push_str(&format!("{:<48} {:>6}\n", id.to_string(), v));
        }
    }
    if !any_lane {
        out.push_str("(no lanes registered)\n");
    }

    // --- Circuit breakers ---------------------------------------------
    out.push_str("\n-- circuit breakers --\n");
    let mut any_breaker = false;
    for (id, v) in &snap.gauges {
        if id.name == names::ADAL_BREAKER_STATE {
            any_breaker = true;
            let state = match v {
                0 => "closed",
                1 => "OPEN",
                2 => "half-open",
                _ => "?",
            };
            out.push_str(&format!("{:<48} {}\n", id.to_string(), state));
        }
    }
    if !any_breaker {
        out.push_str("(no breakers registered)\n");
    }

    // --- Durability: WAL appends/fsyncs + appends since last ckpt -----
    out.push_str(&format!(
        "\n-- durability --\n{:<32} {:>10} {:>8} {:>6} {:>14}\n",
        "wal", "appends", "fsyncs", "ckpts", "lag(appends)"
    ));
    let mut any_wal = false;
    for (id, appends) in &snap.counters {
        if id.name != names::WAL_APPENDS_TOTAL {
            continue;
        }
        any_wal = true;
        let label_refs: Vec<(&str, &str)> = id
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let fsyncs = inputs
            .registry
            .counter_value(names::WAL_FSYNCS_TOTAL, &label_refs);
        let ckpts = inputs
            .registry
            .counter_value(names::CKPT_TAKEN_TOTAL, &label_refs);
        // Lag per the TSDB: appends recorded after the component's last
        // checkpoint sample. Without history (or before the first
        // checkpoint) the whole retained delta mass counts as lag.
        let lag = match inputs.telemetry {
            Some(ts) => {
                let last_ckpt = ts
                    .counter_series(names::CKPT_TAKEN_TOTAL, &label_refs)
                    .last()
                    .map(|(t, _)| *t)
                    .unwrap_or(0);
                ts.counter_window_sum(names::WAL_APPENDS_TOTAL, &label_refs, last_ckpt)
            }
            None => *appends,
        };
        out.push_str(&format!(
            "{:<32} {:>10} {:>8} {:>6} {:>14}\n",
            id.to_string(),
            appends,
            fsyncs,
            ckpts,
            lag
        ));
    }
    if !any_wal {
        out.push_str("(no write-ahead logs active)\n");
    }

    // --- Active alerts -------------------------------------------------
    out.push_str("\n-- active alerts --\n");
    let alerts = health.active_alerts();
    if alerts.is_empty() {
        out.push_str("(none)\n");
    } else {
        for a in alerts {
            out.push_str(&format!(
                "[{}] {} (observed {:.4}, threshold {:.4})\n",
                if a.windowed { "sustained" } else { "spike" },
                a.rule,
                a.observed,
                a.threshold
            ));
        }
    }

    // --- Slowest operations -------------------------------------------
    out.push_str("\n-- slowest operations (span profile) --\n");
    match inputs.profile {
        Some(p) => out.push_str(&p.render_slowest(10)),
        None => out.push_str("(tracing disabled)\n"),
    }

    // --- Telemetry self-accounting ------------------------------------
    out.push_str("\n-- telemetry --\n");
    match inputs.telemetry {
        Some(ts) => {
            out.push_str(&format!(
                "series: {}  points: {}  high_water: {}  scrapes: {}  samples: {}  evictions: {}\n",
                ts.series_count(),
                ts.points_retained(),
                ts.points_high_water(),
                inputs
                    .registry
                    .counter_value(names::TELEMETRY_SCRAPES_TOTAL, &[]),
                inputs
                    .registry
                    .counter_value(names::TELEMETRY_SAMPLES_TOTAL, &[]),
                inputs
                    .registry
                    .counter_value(names::TELEMETRY_EVICTIONS_TOTAL, &[]),
            ));
        }
        None => out.push_str("(telemetry disabled)\n"),
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloMonitor;
    use crate::telemetry::TelemetryConfig;

    const MS: u64 = 1_000_000;

    #[test]
    fn sparkline_scales_to_the_max() {
        assert_eq!(sparkline(&[]), "-");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let s = sparkline(&[1, 4, 8]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'), "{s}");
        assert_eq!(sparkline(&[5]), "█", "a lone value is the max");
    }

    #[test]
    fn report_renders_every_section_and_is_deterministic() {
        let r = Registry::new();
        let ts = TelemetryStore::new(TelemetryConfig::default().interval_ns(MS));
        r.counter(
            names::ADAL_PROJECT_OPS_TOTAL,
            &[("project", "zebrafish"), ("backend", "disk"), ("op", "put")],
        )
        .add(12);
        r.histogram(names::ADAL_PROJECT_OP_LATENCY_NS, &[("project", "zebrafish")])
            .record(500);
        r.gauge(
            names::ADMISSION_QUEUE_DEPTH,
            &[("project", "zebrafish"), ("lane", "bulk")],
        )
        .set(3);
        r.gauge(names::ADAL_BREAKER_STATE, &[("project", "zebrafish")])
            .set(1);
        r.counter(names::WAL_APPENDS_TOTAL, &[("log", "dfs")]).add(7);
        r.set_virtual_time_ns(MS);
        ts.scrape(&r);
        let monitor = SloMonitor::with_defaults();
        let health = monitor.evaluate_with_history(&r, Some(&ts));
        let inputs = ConsoleInputs {
            registry: &r,
            telemetry: Some(&ts),
            health: &health,
            profile: Some(&SpanProfile::new()),
        };
        let report = facility_status(&inputs);
        assert_eq!(report, facility_status(&inputs), "byte-stable render");
        for needle in [
            "== facility status",
            "-- tenants --",
            "zebrafish",
            "-- admission lanes",
            "-- circuit breakers --",
            "OPEN",
            "-- durability --",
            "wal_appends_total{log=dfs}",
            "-- active alerts --",
            "-- slowest operations",
            "-- telemetry --",
        ] {
            assert!(report.contains(needle), "missing `{needle}`:\n{report}");
        }
    }

    #[test]
    fn report_degrades_gracefully_without_history_or_profile() {
        let r = Registry::new();
        let health = SloMonitor::with_defaults().evaluate(&r);
        let report = facility_status(&ConsoleInputs {
            registry: &r,
            telemetry: None,
            health: &health,
            profile: None,
        });
        assert!(report.contains("(telemetry disabled)"));
        assert!(report.contains("(tracing disabled)"));
        assert!(report.contains("(no tenant traffic yet)"));
    }
}
