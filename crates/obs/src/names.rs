//! The facility metric-name registry: every metric name used by a
//! production crate is declared here, once, as a `pub const`.
//!
//! This module is the single source of truth that `lsdf-lint` rule
//! **L3 (metric-names)** enforces: increment sites, compat views, and
//! the E1/E9 bench report must all refer to these consts instead of
//! repeating string literals, so a typo'd name can no longer silently
//! split one metric into two. The lint checks both directions — no
//! string-literal names at call sites outside this crate, and no
//! declared name that is never used.
//!
//! Naming convention (checked by the unit tests below):
//!
//! * `snake_case`, prefixed with the owning subsystem
//!   (`adal_`, `admission_`, `dfs_`, `hsm_`, `tape_`, `cloud_`,
//!   `workflow_`, `facility_`, `chaos_`, `mr_`, `pool_`, `trace_`,
//!   `wal_`, `ckpt_`, `recovery_`, `telemetry_`);
//! * monotonically increasing counters end in `_total`;
//! * nanosecond latency histograms end in `_ns`;
//! * byte-size histograms end in `_bytes`;
//! * everything else is a gauge of current state.

// --- ADAL: operation accounting (E9 overhead) -------------------------

/// Operations served, labelled `op=put|get|stat|list|delete`.
pub const ADAL_OPS_TOTAL: &str = "adal_ops_total";
/// Per-op latency histogram, labelled `op=...`.
pub const ADAL_OP_LATENCY_NS: &str = "adal_op_latency_ns";
/// Per-project operation breakdown, labelled `project=..,backend=..,op=..`.
pub const ADAL_PROJECT_OPS_TOTAL: &str = "adal_project_ops_total";
/// Requests rejected by authentication / ACL checks.
pub const ADAL_DENIED_TOTAL: &str = "adal_denied_total";
/// Payload sizes of accepted `put`s.
pub const ADAL_PUT_BYTES: &str = "adal_put_bytes";
/// Payload sizes of served `get`s.
pub const ADAL_GET_BYTES: &str = "adal_get_bytes";
/// Per-project op latency histogram, labelled `project=...` — the
/// per-tenant view the admission governor's SLO rules read.
pub const ADAL_PROJECT_OP_LATENCY_NS: &str = "adal_project_op_latency_ns";

// --- ADAL: resilience machinery (labelled `project=...`) --------------

/// Circuit-breaker transitions, labelled `project` and `to=open|half_open|closed`.
pub const ADAL_BREAKER_TRANSITIONS_TOTAL: &str = "adal_breaker_transitions_total";
/// Retry attempts issued by the retry policy.
pub const ADAL_RETRIES_TOTAL: &str = "adal_retries_total";
/// Transient backend errors observed (equals retries + exhausted loops).
pub const ADAL_TRANSIENT_OBSERVED_TOTAL: &str = "adal_transient_observed_total";
/// Retry loops that ran out of attempts.
pub const ADAL_RETRY_EXHAUSTED_TOTAL: &str = "adal_retry_exhausted_total";
/// Reads served from a replica after the primary failed.
pub const ADAL_FAILOVER_READS_TOTAL: &str = "adal_failover_reads_total";
/// Writes parked in the redo journal while the breaker was open.
pub const ADAL_JOURNAL_ENQUEUED_TOTAL: &str = "adal_journal_enqueued_total";
/// Journal entries successfully replayed to the primary.
pub const ADAL_JOURNAL_DRAINED_TOTAL: &str = "adal_journal_drained_total";
/// Journal replays that found a newer write and skipped themselves.
pub const ADAL_JOURNAL_CONFLICTS_TOTAL: &str = "adal_journal_conflicts_total";
/// Post-write SHA-256 verification failures.
pub const ADAL_WRITE_VERIFY_FAILURES_TOTAL: &str = "adal_write_verify_failures_total";
/// Replica writes that failed while the primary write succeeded.
pub const ADAL_REPLICA_WRITE_FAILURES_TOTAL: &str = "adal_replica_write_failures_total";
/// Breaker state gauge: 0 closed, 1 open, 2 half-open.
pub const ADAL_BREAKER_STATE: &str = "adal_breaker_state";
/// Entries currently parked in the redo journal.
pub const ADAL_JOURNAL_DEPTH: &str = "adal_journal_depth";
/// Bytes currently parked in the redo journal.
pub const ADAL_JOURNAL_BYTES: &str = "adal_journal_bytes";
/// Backoff sleeps taken between retry attempts.
pub const ADAL_RETRY_BACKOFF_NS: &str = "adal_retry_backoff_ns";

// --- Chaos / fault injection ------------------------------------------

/// Faults injected, labelled `backend` and `fault=transient|torn|latency|outage`.
pub const CHAOS_INJECTED_TOTAL: &str = "chaos_injected_total";
/// Artificial latency added by the fault plan, labelled `backend`.
pub const CHAOS_INJECTED_LATENCY_NS: &str = "chaos_injected_latency_ns";

// --- Cloud (OpenNebula-like IaaS) -------------------------------------

/// VM lifecycle counter, labelled `state=submitted|deployed|failed`.
pub const CLOUD_VMS_TOTAL: &str = "cloud_vms_total";
/// VMs currently running.
pub const CLOUD_VMS_RUNNING: &str = "cloud_vms_running";
/// Submit-to-running deploy latency.
pub const CLOUD_DEPLOY_LATENCY_NS: &str = "cloud_deploy_latency_ns";

// --- DFS (HDFS-like) ---------------------------------------------------

/// Namenode operations, labelled `op=write|read|stat|list|delete`.
pub const DFS_OPS_TOTAL: &str = "dfs_ops_total";
/// Block reads, labelled `locality=node_local|rack_local|remote`.
pub const DFS_BLOCK_READS_TOTAL: &str = "dfs_block_reads_total";
/// Blocks re-replicated after node loss.
pub const DFS_REREPLICATIONS_TOTAL: &str = "dfs_rereplications_total";
/// Re-replication stores that failed on the chosen target and were
/// retried on another node.
pub const DFS_STORE_RETRY_TOTAL: &str = "dfs_store_retry_total";
/// Reads that failed on a flaky datanode before failover.
pub const DFS_FLAKY_FAILURES_TOTAL: &str = "dfs_flaky_failures_total";
/// Blocks that lost every replica and cannot be re-replicated.
pub const DFS_UNDER_REPLICATED_UNRECOVERABLE: &str = "dfs_under_replicated_unrecoverable";
/// File-write payload sizes.
pub const DFS_WRITE_BYTES: &str = "dfs_write_bytes";
/// File-read payload sizes.
pub const DFS_READ_BYTES: &str = "dfs_read_bytes";
/// Per-op latency histogram, labelled `op=write|read`.
pub const DFS_OP_LATENCY_NS: &str = "dfs_op_latency_ns";

// --- Facility ingest pipeline (E1) ------------------------------------

/// Ingest outcomes, labelled `project` and `outcome=registered|stored|rejected`.
pub const FACILITY_INGEST_TOTAL: &str = "facility_ingest_total";
/// Accepted payload sizes, labelled `project`.
pub const FACILITY_INGEST_BYTES: &str = "facility_ingest_bytes";
/// End-to-end ingest latency (checksum + store + catalog).
pub const FACILITY_INGEST_LATENCY_NS: &str = "facility_ingest_latency_ns";

// --- HSM tiering (labelled `store=...`) -------------------------------

/// Objects written into the HSM.
pub const HSM_PUTS_TOTAL: &str = "hsm_puts_total";
/// Objects deleted from the HSM (both tiers).
pub const HSM_DELETES_TOTAL: &str = "hsm_deletes_total";
/// Disk-to-tape demotions performed by the migration policy.
pub const HSM_DEMOTIONS_TOTAL: &str = "hsm_demotions_total";
/// Tape-to-disk recalls triggered by reads.
pub const HSM_RECALLS_TOTAL: &str = "hsm_recalls_total";
/// Bytes demoted to tape.
pub const HSM_DEMOTE_BYTES: &str = "hsm_demote_bytes";
/// Bytes recalled from tape.
pub const HSM_RECALL_BYTES: &str = "hsm_recall_bytes";
/// Recall latency including tape mount and wind time.
pub const HSM_RECALL_LATENCY_NS: &str = "hsm_recall_latency_ns";

// --- Tape library ------------------------------------------------------

/// Cartridge mounts performed by the robot.
pub const TAPE_MOUNTS_TOTAL: &str = "tape_mounts_total";
/// Mounts that wedged and needed operator intervention (chaos hook).
pub const TAPE_STUCK_MOUNTS_TOTAL: &str = "tape_stuck_mounts_total";
/// Tape operations, labelled `op=recall|archive`.
pub const TAPE_OPS_TOTAL: &str = "tape_ops_total";
/// Per-op tape latency, labelled `op=recall|archive`.
pub const TAPE_OP_LATENCY_NS: &str = "tape_op_latency_ns";

// --- Workflow engine (Kepler-like) ------------------------------------

/// Actor firings across all runs.
pub const WORKFLOW_FIRINGS_TOTAL: &str = "workflow_firings_total";
/// Tokens moved along workflow edges.
pub const WORKFLOW_TOKENS_MOVED_TOTAL: &str = "workflow_tokens_moved_total";
/// Completed workflow runs.
pub const WORKFLOW_RUNS_TOTAL: &str = "workflow_runs_total";
/// End-to-end run latency.
pub const WORKFLOW_RUN_LATENCY_NS: &str = "workflow_run_latency_ns";
/// Tag-trigger rule executions, labelled `step`.
pub const WORKFLOW_TRIGGER_RUNS_TOTAL: &str = "workflow_trigger_runs_total";

// --- MapReduce ---------------------------------------------------------

/// Completed MapReduce jobs.
pub const MR_JOBS_TOTAL: &str = "mr_jobs_total";
/// End-to-end job latency per the registry clock (virtual-time safe).
pub const MR_JOB_LATENCY_NS: &str = "mr_job_latency_ns";

// --- Causal tracing: tracer metrics -----------------------------------

/// Trace roots minted (counts even when sampling rejects the root).
pub const TRACE_ROOTS_TOTAL: &str = "trace_roots_total";
/// Trace roots accepted by the sampler.
pub const TRACE_SAMPLED_TOTAL: &str = "trace_sampled_total";
/// Traces currently retained in the bounded store.
pub const TRACE_RETAINED: &str = "trace_retained";

// --- Causal tracing: span names (rule L3 covers `TraceCtx::child` /
// --- `Tracer::root` call sites just like metric calls) -----------------

/// Root span of an ADAL `put`.
pub const ADAL_PUT_SPAN: &str = "adal_put";
/// Root span of an ADAL `get`.
pub const ADAL_GET_SPAN: &str = "adal_get";
/// Root span of an ADAL `stat`.
pub const ADAL_STAT_SPAN: &str = "adal_stat";
/// Root span of an ADAL `list`.
pub const ADAL_LIST_SPAN: &str = "adal_list";
/// Root span of an ADAL `delete`.
pub const ADAL_DELETE_SPAN: &str = "adal_delete";
/// Root span of an explicit journal drain.
pub const ADAL_DRAIN_SPAN: &str = "adal_drain";
/// One attempt inside the retry loop, field `attempt=0..`.
pub const ADAL_ATTEMPT_SPAN: &str = "adal_attempt";
/// Primary-backend leg of a resilient put fan-out.
pub const ADAL_PRIMARY_PUT_SPAN: &str = "adal_primary_put";
/// Replica leg of a resilient put fan-out (bare by design: serial and
/// pooled runs must render it identically).
pub const ADAL_REPLICA_PUT_SPAN: &str = "adal_replica_put";
/// One work item executing on a pool worker.
pub const POOL_TASK_SPAN: &str = "pool_task";
/// Root span over a whole `Facility::ingest_batch` call.
pub const FACILITY_INGEST_BATCH_SPAN: &str = "facility_ingest_batch";
/// DFS file write (chunk + place + store).
pub const DFS_WRITE_SPAN: &str = "dfs_write";
/// DFS file read (locate + fetch blocks).
pub const DFS_READ_SPAN: &str = "dfs_read";
/// DFS re-replication sweep after node loss.
pub const DFS_RE_REPLICATE_SPAN: &str = "dfs_re_replicate";
/// HSM tape-to-disk staging performed inside a `get`.
pub const HSM_STAGE_SPAN: &str = "hsm_stage";
/// Tape-library request from submit to completion.
pub const TAPE_REQUEST_SPAN: &str = "tape_request";
/// Cartridge mount inside a tape request (same name as the registry
/// event the robot already emits).
pub const TAPE_MOUNT_SPAN: &str = "tape_mount";

// --- Causal tracing: trace-event names --------------------------------

/// Retry scheduled after a transient error, field `delay_ns`.
pub const ADAL_RETRY_EVENT: &str = "adal_retry";
/// Retry loop gave up (attempts exhausted or breaker open).
pub const ADAL_RETRY_EXHAUSTED_EVENT: &str = "adal_retry_exhausted";
/// Circuit-breaker state change, fields `project`, `to`.
pub const ADAL_BREAKER_TRANSITION_EVENT: &str = "adal_breaker_transition";
/// Write parked in the redo journal, fields `project`, `key`.
pub const ADAL_JOURNAL_ENQUEUE_EVENT: &str = "adal_journal_enqueue";
/// Read served from the replica after the primary failed.
pub const ADAL_FAILOVER_READ_EVENT: &str = "adal_failover_read";
/// Fault injected by a chaos plan, fields `backend`, `fault`.
pub const CHAOS_FAULT_EVENT: &str = "chaos_fault";
/// DFS block placed on its replica set, fields `block`, `replicas`.
pub const DFS_BLOCK_PLACED_EVENT: &str = "dfs_block_placed";
/// DFS block copied to a fresh node during re-replication.
pub const DFS_BLOCK_REREPLICATED_EVENT: &str = "dfs_block_rereplicated";

// --- Registry event log: structured event names -----------------------

/// Circuit-breaker state change in the registry event log.
pub const ADAL_BREAKER_LOG_EVENT: &str = "adal_breaker";
/// Backend mounted (or remounted) under a project prefix.
pub const ADAL_MOUNT_LOG_EVENT: &str = "adal_mount";
/// Journal entry replayed against the recovered primary.
pub const ADAL_JOURNAL_DRAIN_LOG_EVENT: &str = "adal_journal_drain";
/// Journal replay found the key already written; entry dropped.
pub const ADAL_JOURNAL_CONFLICT_LOG_EVENT: &str = "adal_journal_conflict";
/// HSM object deleted from disk + catalog.
pub const HSM_DELETE_LOG_EVENT: &str = "hsm_delete";
/// HSM object demoted disk → tape.
pub const HSM_DEMOTE_LOG_EVENT: &str = "hsm_demote";
/// HSM object recalled tape → disk.
pub const HSM_RECALL_LOG_EVENT: &str = "hsm_recall";

// --- Admission control (multi-tenant front door) ----------------------

/// Requests admitted past the front door, labelled `project`, `lane`.
pub const ADMISSION_ADMITTED_TOTAL: &str = "admission_admitted_total";
/// Requests shed at the front door, labelled `project`, `lane`.
pub const ADMISSION_SHED_TOTAL: &str = "admission_shed_total";
/// Requests currently borrowing ahead of their token budget (the
/// virtual queue depth), labelled `project`, `lane`.
pub const ADMISSION_QUEUE_DEPTH: &str = "admission_queue_depth";
/// Simulated wait before an admitted request may proceed, labelled
/// `project`, `lane`.
pub const ADMISSION_WAIT_NS: &str = "admission_wait_ns";
/// Current governor throttle level for a project (0 = full rate,
/// each level halves the refill rate), labelled `project`.
pub const ADMISSION_THROTTLE_LEVEL: &str = "admission_throttle_level";
/// Governor state transitions, labelled `project`, `to=throttled|cleared`.
pub const ADMISSION_GOVERNOR_TRANSITIONS_TOTAL: &str = "admission_governor_transitions_total";
/// Span recording the simulated admission wait under the op root.
pub const ADMISSION_WAIT_SPAN: &str = "admission_wait";
/// Governor decision in the registry event log.
pub const ADMISSION_GOVERNOR_LOG_EVENT: &str = "admission_governor";

// --- Durability: write-ahead log (labelled `log=<component>`) ---------

/// Records appended (and synced) to a component's WAL.
pub const WAL_APPENDS_TOTAL: &str = "wal_appends_total";
/// Framed record sizes written to the WAL.
pub const WAL_APPEND_BYTES: &str = "wal_append_bytes";
/// Accounted device fsyncs (one per `group_commit` records).
pub const WAL_FSYNCS_TOTAL: &str = "wal_fsyncs_total";
/// Modeled latency charged per accounted fsync.
pub const WAL_FSYNC_LATENCY_NS: &str = "wal_fsync_latency_ns";
/// Segments found ending in a torn (partial/corrupt) frame at replay.
pub const WAL_TORN_TAIL_TOTAL: &str = "wal_torn_tail_total";

// --- Durability: checkpoints ------------------------------------------

/// Checkpoints taken by the reconciler.
pub const CKPT_TAKEN_TOTAL: &str = "ckpt_taken_total";
/// Checkpoint snapshot sizes.
pub const CKPT_BYTES: &str = "ckpt_bytes";
/// WAL segments truncated after a checkpoint landed.
pub const CKPT_SEGMENTS_TRUNCATED_TOTAL: &str = "ckpt_segments_truncated_total";

// --- Durability: recovery ---------------------------------------------

/// Recovery passes performed (initial open + every crash-restart).
pub const RECOVERY_RUNS_TOTAL: &str = "recovery_runs_total";
/// WAL records replayed over checkpoints during recovery.
pub const RECOVERY_REPLAYED_RECORDS_TOTAL: &str = "recovery_replayed_records_total";
/// Replayed records skipped because their effect was already present.
pub const RECOVERY_SKIPPED_RECORDS_TOTAL: &str = "recovery_skipped_records_total";
/// Modeled recovery latency (manifest load + replay).
pub const RECOVERY_LATENCY_NS: &str = "recovery_latency_ns";
/// Root span over a full facility crash-restart.
pub const RECOVERY_REPLAY_SPAN: &str = "recovery_replay";
/// Per-component recovery leg under the restart root.
pub const RECOVERY_COMPONENT_SPAN: &str = "recovery_component";
/// Component crash injected by the chaos crash schedule, in the
/// registry event log.
pub const CHAOS_CRASH_LOG_EVENT: &str = "chaos_crash";

// --- SLO monitor -------------------------------------------------------

/// SLO evaluation passes performed by the monitor.
pub const FACILITY_SLO_EVALUATIONS_TOTAL: &str = "facility_slo_evaluations_total";
/// Individual rule violations observed across all evaluations.
pub const FACILITY_SLO_VIOLATIONS_TOTAL: &str = "facility_slo_violations_total";
/// 1 while the latest evaluation passed every rule, else 0.
pub const FACILITY_SLO_HEALTHY: &str = "facility_slo_healthy";
/// Windowed-rule violations observed across all evaluations (counted
/// separately from instantaneous breaches so burn-rate alerting is
/// auditable on its own).
pub const FACILITY_SLO_WINDOWED_VIOLATIONS_TOTAL: &str = "facility_slo_windowed_violations_total";

// --- Telemetry store (the TSDB observing the registry) ----------------

/// Scrape passes the telemetry store performed against the registry.
pub const TELEMETRY_SCRAPES_TOTAL: &str = "telemetry_scrapes_total";
/// Individual samples (counter deltas, gauge points, histogram
/// quantile points) appended to telemetry series.
pub const TELEMETRY_SAMPLES_TOTAL: &str = "telemetry_samples_total";
/// Points evicted from series rings by capacity or age bounds.
pub const TELEMETRY_EVICTIONS_TOTAL: &str = "telemetry_evictions_total";
/// High-water mark of points retained across all series at once.
pub const TELEMETRY_POINTS_HIGH_WATER: &str = "telemetry_points_high_water";
/// Series currently tracked by the store.
pub const TELEMETRY_SERIES: &str = "telemetry_series";

/// Every declared metric name, for exhaustiveness checks and the
/// `lsdf-lint` unused-name rule's own tests.
pub const ALL: &[&str] = &[
    ADAL_OPS_TOTAL,
    ADAL_OP_LATENCY_NS,
    ADAL_PROJECT_OPS_TOTAL,
    ADAL_DENIED_TOTAL,
    ADAL_PUT_BYTES,
    ADAL_GET_BYTES,
    ADAL_PROJECT_OP_LATENCY_NS,
    ADAL_BREAKER_TRANSITIONS_TOTAL,
    ADAL_RETRIES_TOTAL,
    ADAL_TRANSIENT_OBSERVED_TOTAL,
    ADAL_RETRY_EXHAUSTED_TOTAL,
    ADAL_FAILOVER_READS_TOTAL,
    ADAL_JOURNAL_ENQUEUED_TOTAL,
    ADAL_JOURNAL_DRAINED_TOTAL,
    ADAL_JOURNAL_CONFLICTS_TOTAL,
    ADAL_WRITE_VERIFY_FAILURES_TOTAL,
    ADAL_REPLICA_WRITE_FAILURES_TOTAL,
    ADAL_BREAKER_STATE,
    ADAL_JOURNAL_DEPTH,
    ADAL_JOURNAL_BYTES,
    ADAL_RETRY_BACKOFF_NS,
    CHAOS_INJECTED_TOTAL,
    CHAOS_INJECTED_LATENCY_NS,
    CLOUD_VMS_TOTAL,
    CLOUD_VMS_RUNNING,
    CLOUD_DEPLOY_LATENCY_NS,
    DFS_OPS_TOTAL,
    DFS_BLOCK_READS_TOTAL,
    DFS_REREPLICATIONS_TOTAL,
    DFS_STORE_RETRY_TOTAL,
    DFS_FLAKY_FAILURES_TOTAL,
    DFS_UNDER_REPLICATED_UNRECOVERABLE,
    DFS_WRITE_BYTES,
    DFS_READ_BYTES,
    DFS_OP_LATENCY_NS,
    FACILITY_INGEST_TOTAL,
    FACILITY_INGEST_BYTES,
    FACILITY_INGEST_LATENCY_NS,
    HSM_PUTS_TOTAL,
    HSM_DELETES_TOTAL,
    HSM_DEMOTIONS_TOTAL,
    HSM_RECALLS_TOTAL,
    HSM_DEMOTE_BYTES,
    HSM_RECALL_BYTES,
    HSM_RECALL_LATENCY_NS,
    TAPE_MOUNTS_TOTAL,
    TAPE_STUCK_MOUNTS_TOTAL,
    TAPE_OPS_TOTAL,
    TAPE_OP_LATENCY_NS,
    WORKFLOW_FIRINGS_TOTAL,
    WORKFLOW_TOKENS_MOVED_TOTAL,
    WORKFLOW_RUNS_TOTAL,
    WORKFLOW_RUN_LATENCY_NS,
    WORKFLOW_TRIGGER_RUNS_TOTAL,
    MR_JOBS_TOTAL,
    MR_JOB_LATENCY_NS,
    TRACE_ROOTS_TOTAL,
    TRACE_SAMPLED_TOTAL,
    TRACE_RETAINED,
    ADAL_PUT_SPAN,
    ADAL_GET_SPAN,
    ADAL_STAT_SPAN,
    ADAL_LIST_SPAN,
    ADAL_DELETE_SPAN,
    ADAL_DRAIN_SPAN,
    ADAL_ATTEMPT_SPAN,
    ADAL_PRIMARY_PUT_SPAN,
    ADAL_REPLICA_PUT_SPAN,
    POOL_TASK_SPAN,
    FACILITY_INGEST_BATCH_SPAN,
    DFS_WRITE_SPAN,
    DFS_READ_SPAN,
    DFS_RE_REPLICATE_SPAN,
    HSM_STAGE_SPAN,
    TAPE_REQUEST_SPAN,
    TAPE_MOUNT_SPAN,
    ADAL_RETRY_EVENT,
    ADAL_RETRY_EXHAUSTED_EVENT,
    ADAL_BREAKER_TRANSITION_EVENT,
    ADAL_JOURNAL_ENQUEUE_EVENT,
    ADAL_FAILOVER_READ_EVENT,
    CHAOS_FAULT_EVENT,
    DFS_BLOCK_PLACED_EVENT,
    DFS_BLOCK_REREPLICATED_EVENT,
    ADAL_BREAKER_LOG_EVENT,
    ADAL_MOUNT_LOG_EVENT,
    ADAL_JOURNAL_DRAIN_LOG_EVENT,
    ADAL_JOURNAL_CONFLICT_LOG_EVENT,
    HSM_DELETE_LOG_EVENT,
    HSM_DEMOTE_LOG_EVENT,
    HSM_RECALL_LOG_EVENT,
    ADMISSION_ADMITTED_TOTAL,
    ADMISSION_SHED_TOTAL,
    ADMISSION_QUEUE_DEPTH,
    ADMISSION_WAIT_NS,
    ADMISSION_THROTTLE_LEVEL,
    ADMISSION_GOVERNOR_TRANSITIONS_TOTAL,
    ADMISSION_WAIT_SPAN,
    ADMISSION_GOVERNOR_LOG_EVENT,
    WAL_APPENDS_TOTAL,
    WAL_APPEND_BYTES,
    WAL_FSYNCS_TOTAL,
    WAL_FSYNC_LATENCY_NS,
    WAL_TORN_TAIL_TOTAL,
    CKPT_TAKEN_TOTAL,
    CKPT_BYTES,
    CKPT_SEGMENTS_TRUNCATED_TOTAL,
    RECOVERY_RUNS_TOTAL,
    RECOVERY_REPLAYED_RECORDS_TOTAL,
    RECOVERY_SKIPPED_RECORDS_TOTAL,
    RECOVERY_LATENCY_NS,
    RECOVERY_REPLAY_SPAN,
    RECOVERY_COMPONENT_SPAN,
    CHAOS_CRASH_LOG_EVENT,
    FACILITY_SLO_EVALUATIONS_TOTAL,
    FACILITY_SLO_VIOLATIONS_TOTAL,
    FACILITY_SLO_HEALTHY,
    FACILITY_SLO_WINDOWED_VIOLATIONS_TOTAL,
    TELEMETRY_SCRAPES_TOTAL,
    TELEMETRY_SAMPLES_TOTAL,
    TELEMETRY_EVICTIONS_TOTAL,
    TELEMETRY_POINTS_HIGH_WATER,
    TELEMETRY_SERIES,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for n in ALL {
            assert!(seen.insert(n), "duplicate metric name: {n}");
        }
    }

    #[test]
    fn names_follow_the_convention() {
        const PREFIXES: &[&str] = &[
            "adal_",
            "admission_",
            "chaos_",
            "cloud_",
            "dfs_",
            "facility_",
            "hsm_",
            "tape_",
            "workflow_",
            "mr_",
            "pool_",
            "trace_",
            "wal_",
            "ckpt_",
            "recovery_",
            "telemetry_",
        ];
        for n in ALL {
            assert!(
                PREFIXES.iter().any(|p| n.starts_with(p)),
                "{n} lacks a subsystem prefix"
            );
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()),
                "{n} is not snake_case"
            );
        }
    }
}
