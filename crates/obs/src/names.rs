//! The facility metric-name registry: every metric name used by a
//! production crate is declared here, once, as a `pub const`.
//!
//! This module is the single source of truth that `lsdf-lint` rule
//! **L3 (metric-names)** enforces: increment sites, compat views, and
//! the E1/E9 bench report must all refer to these consts instead of
//! repeating string literals, so a typo'd name can no longer silently
//! split one metric into two. The lint checks both directions — no
//! string-literal names at call sites outside this crate, and no
//! declared name that is never used.
//!
//! Naming convention (checked by the unit tests below):
//!
//! * `snake_case`, prefixed with the owning subsystem
//!   (`adal_`, `dfs_`, `hsm_`, `tape_`, `cloud_`, `workflow_`,
//!   `facility_`, `chaos_`, `mr_`);
//! * monotonically increasing counters end in `_total`;
//! * nanosecond latency histograms end in `_ns`;
//! * byte-size histograms end in `_bytes`;
//! * everything else is a gauge of current state.

// --- ADAL: operation accounting (E9 overhead) -------------------------

/// Operations served, labelled `op=put|get|stat|list|delete`.
pub const ADAL_OPS_TOTAL: &str = "adal_ops_total";
/// Per-op latency histogram, labelled `op=...`.
pub const ADAL_OP_LATENCY_NS: &str = "adal_op_latency_ns";
/// Per-project operation breakdown, labelled `project=..,backend=..,op=..`.
pub const ADAL_PROJECT_OPS_TOTAL: &str = "adal_project_ops_total";
/// Requests rejected by authentication / ACL checks.
pub const ADAL_DENIED_TOTAL: &str = "adal_denied_total";
/// Payload sizes of accepted `put`s.
pub const ADAL_PUT_BYTES: &str = "adal_put_bytes";
/// Payload sizes of served `get`s.
pub const ADAL_GET_BYTES: &str = "adal_get_bytes";

// --- ADAL: resilience machinery (labelled `project=...`) --------------

/// Circuit-breaker transitions, labelled `project` and `to=open|half_open|closed`.
pub const ADAL_BREAKER_TRANSITIONS_TOTAL: &str = "adal_breaker_transitions_total";
/// Retry attempts issued by the retry policy.
pub const ADAL_RETRIES_TOTAL: &str = "adal_retries_total";
/// Transient backend errors observed (equals retries + exhausted loops).
pub const ADAL_TRANSIENT_OBSERVED_TOTAL: &str = "adal_transient_observed_total";
/// Retry loops that ran out of attempts.
pub const ADAL_RETRY_EXHAUSTED_TOTAL: &str = "adal_retry_exhausted_total";
/// Reads served from a replica after the primary failed.
pub const ADAL_FAILOVER_READS_TOTAL: &str = "adal_failover_reads_total";
/// Writes parked in the redo journal while the breaker was open.
pub const ADAL_JOURNAL_ENQUEUED_TOTAL: &str = "adal_journal_enqueued_total";
/// Journal entries successfully replayed to the primary.
pub const ADAL_JOURNAL_DRAINED_TOTAL: &str = "adal_journal_drained_total";
/// Journal replays that found a newer write and skipped themselves.
pub const ADAL_JOURNAL_CONFLICTS_TOTAL: &str = "adal_journal_conflicts_total";
/// Post-write SHA-256 verification failures.
pub const ADAL_WRITE_VERIFY_FAILURES_TOTAL: &str = "adal_write_verify_failures_total";
/// Replica writes that failed while the primary write succeeded.
pub const ADAL_REPLICA_WRITE_FAILURES_TOTAL: &str = "adal_replica_write_failures_total";
/// Breaker state gauge: 0 closed, 1 open, 2 half-open.
pub const ADAL_BREAKER_STATE: &str = "adal_breaker_state";
/// Entries currently parked in the redo journal.
pub const ADAL_JOURNAL_DEPTH: &str = "adal_journal_depth";
/// Bytes currently parked in the redo journal.
pub const ADAL_JOURNAL_BYTES: &str = "adal_journal_bytes";
/// Backoff sleeps taken between retry attempts.
pub const ADAL_RETRY_BACKOFF_NS: &str = "adal_retry_backoff_ns";

// --- Chaos / fault injection ------------------------------------------

/// Faults injected, labelled `backend` and `fault=transient|torn|latency|outage`.
pub const CHAOS_INJECTED_TOTAL: &str = "chaos_injected_total";
/// Artificial latency added by the fault plan, labelled `backend`.
pub const CHAOS_INJECTED_LATENCY_NS: &str = "chaos_injected_latency_ns";

// --- Cloud (OpenNebula-like IaaS) -------------------------------------

/// VM lifecycle counter, labelled `state=submitted|deployed|failed`.
pub const CLOUD_VMS_TOTAL: &str = "cloud_vms_total";
/// VMs currently running.
pub const CLOUD_VMS_RUNNING: &str = "cloud_vms_running";
/// Submit-to-running deploy latency.
pub const CLOUD_DEPLOY_LATENCY_NS: &str = "cloud_deploy_latency_ns";

// --- DFS (HDFS-like) ---------------------------------------------------

/// Namenode operations, labelled `op=write|read|stat|list|delete`.
pub const DFS_OPS_TOTAL: &str = "dfs_ops_total";
/// Block reads, labelled `locality=node_local|rack_local|remote`.
pub const DFS_BLOCK_READS_TOTAL: &str = "dfs_block_reads_total";
/// Blocks re-replicated after node loss.
pub const DFS_REREPLICATIONS_TOTAL: &str = "dfs_rereplications_total";
/// Re-replication stores that failed on the chosen target and were
/// retried on another node.
pub const DFS_STORE_RETRY_TOTAL: &str = "dfs_store_retry_total";
/// Reads that failed on a flaky datanode before failover.
pub const DFS_FLAKY_FAILURES_TOTAL: &str = "dfs_flaky_failures_total";
/// Blocks that lost every replica and cannot be re-replicated.
pub const DFS_UNDER_REPLICATED_UNRECOVERABLE: &str = "dfs_under_replicated_unrecoverable";
/// File-write payload sizes.
pub const DFS_WRITE_BYTES: &str = "dfs_write_bytes";
/// File-read payload sizes.
pub const DFS_READ_BYTES: &str = "dfs_read_bytes";
/// Per-op latency histogram, labelled `op=write|read`.
pub const DFS_OP_LATENCY_NS: &str = "dfs_op_latency_ns";

// --- Facility ingest pipeline (E1) ------------------------------------

/// Ingest outcomes, labelled `project` and `outcome=registered|stored|rejected`.
pub const FACILITY_INGEST_TOTAL: &str = "facility_ingest_total";
/// Accepted payload sizes, labelled `project`.
pub const FACILITY_INGEST_BYTES: &str = "facility_ingest_bytes";
/// End-to-end ingest latency (checksum + store + catalog).
pub const FACILITY_INGEST_LATENCY_NS: &str = "facility_ingest_latency_ns";

// --- HSM tiering (labelled `store=...`) -------------------------------

/// Objects written into the HSM.
pub const HSM_PUTS_TOTAL: &str = "hsm_puts_total";
/// Objects deleted from the HSM (both tiers).
pub const HSM_DELETES_TOTAL: &str = "hsm_deletes_total";
/// Disk-to-tape demotions performed by the migration policy.
pub const HSM_DEMOTIONS_TOTAL: &str = "hsm_demotions_total";
/// Tape-to-disk recalls triggered by reads.
pub const HSM_RECALLS_TOTAL: &str = "hsm_recalls_total";
/// Bytes demoted to tape.
pub const HSM_DEMOTE_BYTES: &str = "hsm_demote_bytes";
/// Bytes recalled from tape.
pub const HSM_RECALL_BYTES: &str = "hsm_recall_bytes";
/// Recall latency including tape mount and wind time.
pub const HSM_RECALL_LATENCY_NS: &str = "hsm_recall_latency_ns";

// --- Tape library ------------------------------------------------------

/// Cartridge mounts performed by the robot.
pub const TAPE_MOUNTS_TOTAL: &str = "tape_mounts_total";
/// Mounts that wedged and needed operator intervention (chaos hook).
pub const TAPE_STUCK_MOUNTS_TOTAL: &str = "tape_stuck_mounts_total";
/// Tape operations, labelled `op=recall|archive`.
pub const TAPE_OPS_TOTAL: &str = "tape_ops_total";
/// Per-op tape latency, labelled `op=recall|archive`.
pub const TAPE_OP_LATENCY_NS: &str = "tape_op_latency_ns";

// --- Workflow engine (Kepler-like) ------------------------------------

/// Actor firings across all runs.
pub const WORKFLOW_FIRINGS_TOTAL: &str = "workflow_firings_total";
/// Tokens moved along workflow edges.
pub const WORKFLOW_TOKENS_MOVED_TOTAL: &str = "workflow_tokens_moved_total";
/// Completed workflow runs.
pub const WORKFLOW_RUNS_TOTAL: &str = "workflow_runs_total";
/// End-to-end run latency.
pub const WORKFLOW_RUN_LATENCY_NS: &str = "workflow_run_latency_ns";
/// Tag-trigger rule executions, labelled `step`.
pub const WORKFLOW_TRIGGER_RUNS_TOTAL: &str = "workflow_trigger_runs_total";

// --- MapReduce ---------------------------------------------------------

/// Completed MapReduce jobs.
pub const MR_JOBS_TOTAL: &str = "mr_jobs_total";
/// End-to-end job latency per the registry clock (virtual-time safe).
pub const MR_JOB_LATENCY_NS: &str = "mr_job_latency_ns";

/// Every declared metric name, for exhaustiveness checks and the
/// `lsdf-lint` unused-name rule's own tests.
pub const ALL: &[&str] = &[
    ADAL_OPS_TOTAL,
    ADAL_OP_LATENCY_NS,
    ADAL_PROJECT_OPS_TOTAL,
    ADAL_DENIED_TOTAL,
    ADAL_PUT_BYTES,
    ADAL_GET_BYTES,
    ADAL_BREAKER_TRANSITIONS_TOTAL,
    ADAL_RETRIES_TOTAL,
    ADAL_TRANSIENT_OBSERVED_TOTAL,
    ADAL_RETRY_EXHAUSTED_TOTAL,
    ADAL_FAILOVER_READS_TOTAL,
    ADAL_JOURNAL_ENQUEUED_TOTAL,
    ADAL_JOURNAL_DRAINED_TOTAL,
    ADAL_JOURNAL_CONFLICTS_TOTAL,
    ADAL_WRITE_VERIFY_FAILURES_TOTAL,
    ADAL_REPLICA_WRITE_FAILURES_TOTAL,
    ADAL_BREAKER_STATE,
    ADAL_JOURNAL_DEPTH,
    ADAL_JOURNAL_BYTES,
    ADAL_RETRY_BACKOFF_NS,
    CHAOS_INJECTED_TOTAL,
    CHAOS_INJECTED_LATENCY_NS,
    CLOUD_VMS_TOTAL,
    CLOUD_VMS_RUNNING,
    CLOUD_DEPLOY_LATENCY_NS,
    DFS_OPS_TOTAL,
    DFS_BLOCK_READS_TOTAL,
    DFS_REREPLICATIONS_TOTAL,
    DFS_STORE_RETRY_TOTAL,
    DFS_FLAKY_FAILURES_TOTAL,
    DFS_UNDER_REPLICATED_UNRECOVERABLE,
    DFS_WRITE_BYTES,
    DFS_READ_BYTES,
    DFS_OP_LATENCY_NS,
    FACILITY_INGEST_TOTAL,
    FACILITY_INGEST_BYTES,
    FACILITY_INGEST_LATENCY_NS,
    HSM_PUTS_TOTAL,
    HSM_DELETES_TOTAL,
    HSM_DEMOTIONS_TOTAL,
    HSM_RECALLS_TOTAL,
    HSM_DEMOTE_BYTES,
    HSM_RECALL_BYTES,
    HSM_RECALL_LATENCY_NS,
    TAPE_MOUNTS_TOTAL,
    TAPE_STUCK_MOUNTS_TOTAL,
    TAPE_OPS_TOTAL,
    TAPE_OP_LATENCY_NS,
    WORKFLOW_FIRINGS_TOTAL,
    WORKFLOW_TOKENS_MOVED_TOTAL,
    WORKFLOW_RUNS_TOTAL,
    WORKFLOW_RUN_LATENCY_NS,
    WORKFLOW_TRIGGER_RUNS_TOTAL,
    MR_JOBS_TOTAL,
    MR_JOB_LATENCY_NS,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for n in ALL {
            assert!(seen.insert(n), "duplicate metric name: {n}");
        }
    }

    #[test]
    fn names_follow_the_convention() {
        const PREFIXES: &[&str] = &[
            "adal_",
            "chaos_",
            "cloud_",
            "dfs_",
            "facility_",
            "hsm_",
            "tape_",
            "workflow_",
            "mr_",
        ];
        for n in ALL {
            assert!(
                PREFIXES.iter().any(|p| n.starts_with(p)),
                "{n} lacks a subsystem prefix"
            );
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()),
                "{n} is not snake_case"
            );
        }
    }
}
