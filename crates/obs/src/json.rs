//! Hand-rolled JSON rendering for registry snapshots.
//!
//! The workspace deliberately has no `serde_json`; the exporter emits a
//! small, fixed schema, so rendering by hand keeps the crate
//! dependency-free and the output deterministic (metrics are sorted by
//! id in the snapshot).

use crate::metric::HistogramSnapshot;
use crate::registry::{Event, MetricId, RegistrySnapshot};

/// Renders a snapshot as a JSON document:
///
/// ```json
/// {
///   "counters":   [{"name": "...", "labels": {...}, "value": 1}],
///   "gauges":     [{"name": "...", "labels": {...}, "value": -1}],
///   "histograms": [{"name": "...", "labels": {...}, "count": 3,
///                   "sum": 9, "mean": 3.0, "min": 1, "max": 5,
///                   "p50": 3, "p95": 5, "p99": 5}],
///   "events":     [{"t_ns": 0, "name": "...", "fields": {...}}]
/// }
/// ```
pub fn render(snap: &RegistrySnapshot) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"counters\": [");
    join(&mut out, &snap.counters, |out, (id, v)| {
        metric_head(out, id);
        out.push_str(&format!("\"value\": {v}}}"));
    });
    out.push_str("],\n  \"gauges\": [");
    join(&mut out, &snap.gauges, |out, (id, v)| {
        metric_head(out, id);
        out.push_str(&format!("\"value\": {v}}}"));
    });
    out.push_str("],\n  \"histograms\": [");
    join(&mut out, &snap.histograms, |out, (id, h)| {
        metric_head(out, id);
        out.push_str(&histogram_body(h));
    });
    out.push_str("],\n  \"events\": [");
    join(&mut out, &snap.events, |out, ev| {
        out.push_str(&event_body(ev));
    });
    out.push_str("]\n}");
    out
}

fn join<T>(out: &mut String, items: &[T], mut f: impl FnMut(&mut String, &T)) {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        f(out, item);
    }
    if !items.is_empty() {
        out.push_str("\n  ");
    }
}

fn metric_head(out: &mut String, id: &MetricId) {
    out.push_str("{\"name\": ");
    out.push_str(&escape(&id.name));
    out.push_str(", \"labels\": ");
    push_map(out, &id.labels);
    out.push_str(", ");
}

fn histogram_body(h: &HistogramSnapshot) -> String {
    format!(
        "\"count\": {}, \"sum\": {}, \"mean\": {}, \"min\": {}, \"max\": {}, \
         \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
        h.count,
        h.sum,
        fmt_f64(h.mean),
        h.min,
        h.max,
        h.p50,
        h.p95,
        h.p99
    )
}

fn event_body(ev: &Event) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"t_ns\": {}, \"name\": ", ev.t_ns));
    out.push_str(&escape(&ev.name));
    out.push_str(", \"fields\": ");
    push_map(&mut out, &ev.fields);
    out.push('}');
    out
}

fn push_map(out: &mut String, pairs: &[(String, String)]) {
    out.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&escape(k));
        out.push_str(": ");
        out.push_str(&escape(v));
    }
    out.push('}');
}

/// Formats an `f64` as a JSON number (never NaN/Inf in practice — means
/// of empty histograms are 0.0 — but guard anyway).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` renders integral floats without a decimal point; keep the
        // value unambiguously a float.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

/// JSON string literal with escaping for quotes, backslashes, and
/// control characters.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn renders_all_sections() {
        let r = Registry::new();
        r.counter("ops", &[("op", "put"), ("project", "alice")]).add(3);
        r.gauge("depth", &[]).set(-2);
        let h = r.histogram("lat_ns", &[]);
        for v in [1u64, 10, 100] {
            h.record(v);
        }
        r.event_at(42, "tape_mount", &[("drive", "d0")]);
        let json = r.to_json();
        assert!(json.contains("\"name\": \"ops\""), "{json}");
        assert!(json.contains("\"op\": \"put\""), "{json}");
        assert!(json.contains("\"value\": 3"), "{json}");
        assert!(json.contains("\"value\": -2"), "{json}");
        assert!(json.contains("\"p99\": "), "{json}");
        assert!(json.contains("\"mean\": 37.0"), "{json}");
        assert!(json.contains("\"t_ns\": 42"), "{json}");
        // Deterministic: same recorded state renders identically.
        assert_eq!(json, r.to_json());
    }

    #[test]
    fn escapes_special_characters() {
        let r = Registry::new();
        r.counter("weird\"name", &[("k\\", "v\n")]).inc();
        let json = r.to_json();
        assert!(json.contains("weird\\\"name"), "{json}");
        assert!(json.contains("k\\\\"), "{json}");
        assert!(json.contains("v\\n"), "{json}");
    }

    #[test]
    fn empty_registry_is_valid() {
        let r = Registry::new();
        assert_eq!(
            r.to_json(),
            "{\n  \"counters\": [],\n  \"gauges\": [],\n  \"histograms\": [],\n  \"events\": []\n}"
        );
    }
}
