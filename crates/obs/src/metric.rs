//! Metric primitives: counters, gauges, and log-bucketed histograms.
//!
//! Every handle is a cheap `Arc` clone around atomic cells; recording is
//! lock-free and wait-free, so these can sit on put/get hot paths.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a value that goes up and down (queue depth, VMs
/// running, bytes resident on the disk tier).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` (negative to decrement).
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i`
/// (1..=64) holds values in `[2^(i-1), 2^i - 1]`.
const BUCKETS: usize = 65;

/// Bucket index for a recorded value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (the quantile estimate returned
/// for ranks landing in that bucket).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        u64::MAX >> (64 - i)
    }
}

struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A log2-bucketed histogram for latencies (nanoseconds) and sizes
/// (bytes). Recording is lock-free: one `fetch_add` per atomic cell.
///
/// Quantiles are nearest-rank over the bucket counts and return the
/// bucket's upper bound (clamped to the observed maximum), so for any
/// value `v >= 1` the estimate `e` satisfies `v <= e < 2v` — a bounded
/// relative error of at most 2x, which is the property the proptest
/// suite pins down.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let inner = &self.inner;
        inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        let m = self.inner.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`; 0 when empty.
    ///
    /// The estimate is the upper bound of the bucket containing the
    /// rank, clamped to the observed maximum: it is always `>=` the true
    /// quantile and `< 2x` the true quantile for true values `>= 1`.
    pub fn quantile(&self, q: f64) -> u64 {
        self.try_quantile(q).unwrap_or(0)
    }

    /// Nearest-rank quantile estimate, or `None` for an empty histogram.
    ///
    /// The edge cases are pinned down explicitly: an empty histogram has
    /// no quantiles (`None`, which [`Histogram::quantile`] renders as 0),
    /// and a single-sample histogram answers every quantile with that
    /// sample's bucket estimate clamped to the sample itself — never a
    /// stray bucket bound above it.
    pub fn try_quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, b) in self.inner.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return Some(bucket_upper(i).min(self.max()));
            }
        }
        Some(self.max())
    }

    /// A point-in-time copy of the summary statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.p50)
            .field("p95", &s.p95)
            .field("p99", &s.p99)
            .finish()
    }
}

/// Summary statistics for a [`Histogram`] at one instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Mean observation (0.0 when empty).
    pub mean: f64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        for i in 1..=64usize {
            // Each bucket's upper bound maps back into that bucket.
            assert_eq!(bucket_of(bucket_upper(i)), i);
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.add(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_summary() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        // True p50 is 3; estimate must be in [3, 6).
        let p50 = h.quantile(0.5);
        assert!((3..6).contains(&p50), "p50 was {p50}");
        // p99 rank is 5 -> value 1000; clamped to max.
        assert_eq!(h.quantile(0.99), 1000);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.try_quantile(q), None, "q={q}");
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        let s = h.snapshot();
        assert_eq!((s.count, s.p50, s.p95, s.p99, s.min, s.max), (0, 0, 0, 0, 0, 0));
    }

    #[test]
    fn single_sample_histogram_answers_every_quantile_with_the_sample() {
        for v in [0u64, 1, 7, 1000, u64::MAX] {
            let h = Histogram::new();
            h.record(v);
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                // One sample: every rank lands in its bucket, and the
                // max-clamp collapses the bucket bound to the sample.
                assert_eq!(h.try_quantile(q), Some(v), "v={v} q={q}");
                assert_eq!(h.quantile(q), v, "v={v} q={q}");
            }
        }
    }

    #[test]
    fn handles_share_state() {
        let h = Histogram::new();
        let h2 = h.clone();
        h.record(10);
        assert_eq!(h2.count(), 1);
    }
}
