//! Wall-clock / virtual-time source shared by spans and events.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct ClockInner {
    /// Wall-clock origin; `now_ns` in wall mode is nanoseconds since this.
    origin: Instant,
    /// When true, `now_ns` reads `virtual_ns` instead of the wall clock.
    use_virtual: AtomicBool,
    /// Current virtual time in nanoseconds (e.g. `SimTime::as_nanos()`).
    virtual_ns: AtomicU64,
}

/// A monotonic time source that reads either the process wall clock or a
/// caller-advanced virtual clock (for discrete-event simulations driven
/// by `lsdf-sim`).
///
/// Clones share the same underlying state, so a clock handed to a span
/// sees later `set_virtual_ns` updates.
#[derive(Clone)]
pub struct Clock {
    inner: Arc<ClockInner>,
}

impl Clock {
    /// A clock in wall mode, with its origin at the moment of creation.
    pub fn new() -> Self {
        Clock {
            inner: Arc::new(ClockInner {
                origin: Instant::now(),
                use_virtual: AtomicBool::new(false),
                virtual_ns: AtomicU64::new(0),
            }),
        }
    }

    /// Current time in nanoseconds: since the origin in wall mode, or the
    /// last value passed to [`Clock::set_virtual_ns`] in virtual mode.
    pub fn now_ns(&self) -> u64 {
        if self.inner.use_virtual.load(Ordering::Relaxed) {
            self.inner.virtual_ns.load(Ordering::Relaxed)
        } else {
            self.inner.origin.elapsed().as_nanos() as u64
        }
    }

    /// Switches the clock to virtual mode and advances it to `ns`
    /// (monotonically — a smaller value than the current virtual time is
    /// ignored, so concurrent advancers cannot move time backwards).
    pub fn set_virtual_ns(&self, ns: u64) {
        self.inner.virtual_ns.fetch_max(ns, Ordering::Relaxed);
        self.inner.use_virtual.store(true, Ordering::Relaxed);
    }

    /// Returns the clock to wall mode.
    pub fn clear_virtual(&self) {
        self.inner.use_virtual.store(false, Ordering::Relaxed);
    }

    /// True when the clock reads virtual time.
    pub fn is_virtual(&self) -> bool {
        self.inner.use_virtual.load(Ordering::Relaxed)
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Clock")
            .field("virtual", &self.is_virtual())
            .field("now_ns", &self.now_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_mode_advances() {
        let c = Clock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert!(!c.is_virtual());
    }

    #[test]
    fn virtual_mode_is_explicit_and_monotonic() {
        let c = Clock::new();
        c.set_virtual_ns(1_000);
        assert!(c.is_virtual());
        assert_eq!(c.now_ns(), 1_000);
        c.set_virtual_ns(500); // ignored: time never moves backwards
        assert_eq!(c.now_ns(), 1_000);
        c.set_virtual_ns(2_000);
        assert_eq!(c.now_ns(), 2_000);
        c.clear_virtual();
        assert!(!c.is_virtual());
    }

    #[test]
    fn clones_share_state() {
        let c = Clock::new();
        let d = c.clone();
        c.set_virtual_ns(42);
        assert_eq!(d.now_ns(), 42);
    }
}
