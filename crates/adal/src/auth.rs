//! Authentication and per-project authorization.
//!
//! The ADAL is "extensible to support new backends, **authentication
//! mechanisms**" (paper, slide 9). We provide token credentials validated
//! by a pluggable [`AuthProvider`], and per-project ACLs with read/write
//! permission bits.

use std::collections::HashMap;

use parking_lot::RwLock;

/// A presented credential.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Credential {
    /// An opaque API token.
    Token(String),
    /// The anonymous principal.
    Anonymous,
}

/// A resolved identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Principal {
    /// User name.
    pub user: String,
}

/// Requested access level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read objects and metadata.
    Read,
    /// Ingest new objects.
    Write,
}

/// Authentication / authorization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// Credential not recognised.
    InvalidCredential,
    /// Principal lacks the permission on the project.
    Denied {
        /// The user.
        user: String,
        /// The project.
        project: String,
        /// What was requested.
        access: Access,
    },
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthError::InvalidCredential => write!(f, "invalid credential"),
            AuthError::Denied {
                user,
                project,
                access,
            } => write!(f, "user '{user}' denied {access:?} on '{project}'"),
        }
    }
}

impl std::error::Error for AuthError {}

/// Resolves credentials to principals. Implementations can wrap whatever
/// mechanism a site uses (static tokens here; X.509 or LDAP in a real
/// deployment).
pub trait AuthProvider: Send + Sync {
    /// Authenticates a credential.
    fn authenticate(&self, cred: &Credential) -> Result<Principal, AuthError>;
}

/// A static token registry.
#[derive(Default)]
pub struct TokenAuth {
    tokens: RwLock<HashMap<String, String>>,
    /// Whether anonymous access resolves to a `guest` principal.
    allow_anonymous: bool,
}

impl TokenAuth {
    /// An empty registry denying anonymous access.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allows anonymous access as user `guest`.
    pub fn with_anonymous(mut self) -> Self {
        self.allow_anonymous = true;
        self
    }

    /// Registers a token for a user.
    pub fn register(&self, token: &str, user: &str) {
        self.tokens
            .write()
            .insert(token.to_string(), user.to_string());
    }
}

impl AuthProvider for TokenAuth {
    fn authenticate(&self, cred: &Credential) -> Result<Principal, AuthError> {
        match cred {
            Credential::Token(t) => self
                .tokens
                .read()
                .get(t)
                .map(|u| Principal { user: u.clone() })
                .ok_or(AuthError::InvalidCredential),
            Credential::Anonymous => {
                if self.allow_anonymous {
                    Ok(Principal {
                        user: "guest".to_string(),
                    })
                } else {
                    Err(AuthError::InvalidCredential)
                }
            }
        }
    }
}

/// Per-project access-control lists.
#[derive(Default)]
pub struct Acl {
    /// (user, project) → (read, write).
    grants: RwLock<HashMap<(String, String), (bool, bool)>>,
}

impl Acl {
    /// An empty ACL (denies everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants read (and optionally write) on `project` to `user`.
    pub fn grant(&self, user: &str, project: &str, write: bool) {
        self.grants
            .write()
            .insert((user.to_string(), project.to_string()), (true, write));
    }

    /// Revokes all access on `project` from `user`.
    pub fn revoke(&self, user: &str, project: &str) {
        self.grants
            .write()
            .remove(&(user.to_string(), project.to_string()));
    }

    /// Checks an access request.
    pub fn check(
        &self,
        principal: &Principal,
        project: &str,
        access: Access,
    ) -> Result<(), AuthError> {
        let grants = self.grants.read();
        let ok = grants
            .get(&(principal.user.clone(), project.to_string()))
            .map(|&(r, w)| match access {
                Access::Read => r,
                Access::Write => w,
            })
            .unwrap_or(false);
        if ok {
            Ok(())
        } else {
            Err(AuthError::Denied {
                user: principal.user.clone(),
                project: project.to_string(),
                access,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_auth_resolves_known_tokens() {
        let auth = TokenAuth::new();
        auth.register("s3cret", "garcia");
        let p = auth
            .authenticate(&Credential::Token("s3cret".into()))
            .unwrap();
        assert_eq!(p.user, "garcia");
        assert_eq!(
            auth.authenticate(&Credential::Token("wrong".into())),
            Err(AuthError::InvalidCredential)
        );
    }

    #[test]
    fn anonymous_configurable() {
        let strict = TokenAuth::new();
        assert!(strict.authenticate(&Credential::Anonymous).is_err());
        let open = TokenAuth::new().with_anonymous();
        assert_eq!(
            open.authenticate(&Credential::Anonymous).unwrap().user,
            "guest"
        );
    }

    #[test]
    fn acl_read_write_separation() {
        let acl = Acl::new();
        let alice = Principal {
            user: "alice".into(),
        };
        acl.grant("alice", "zebrafish", false); // read-only
        assert!(acl.check(&alice, "zebrafish", Access::Read).is_ok());
        assert!(matches!(
            acl.check(&alice, "zebrafish", Access::Write),
            Err(AuthError::Denied { .. })
        ));
        acl.grant("alice", "zebrafish", true);
        assert!(acl.check(&alice, "zebrafish", Access::Write).is_ok());
        // Other projects still denied.
        assert!(acl.check(&alice, "katrin", Access::Read).is_err());
        acl.revoke("alice", "zebrafish");
        assert!(acl.check(&alice, "zebrafish", Access::Read).is_err());
    }
}
