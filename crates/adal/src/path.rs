//! The unified `lsdf://project/path` namespace.

use std::fmt;

/// A parsed LSDF path: `lsdf://<project>/<key>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LsdfPath {
    /// Project (mount) name.
    pub project: String,
    /// Key within the project's backend.
    pub key: String,
}

/// Path parsing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// Missing the `lsdf://` scheme prefix.
    BadScheme(String),
    /// Empty project component.
    EmptyProject(String),
    /// Empty key component.
    EmptyKey(String),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::BadScheme(p) => write!(f, "'{p}': expected lsdf:// scheme"),
            PathError::EmptyProject(p) => write!(f, "'{p}': empty project"),
            PathError::EmptyKey(p) => write!(f, "'{p}': empty key"),
        }
    }
}

impl std::error::Error for PathError {}

impl LsdfPath {
    /// Builds a path from components.
    pub fn new(project: &str, key: &str) -> Self {
        LsdfPath {
            project: project.to_string(),
            key: key.trim_start_matches('/').to_string(),
        }
    }

    /// Parses a listing prefix: like [`LsdfPath::parse`] but the key may
    /// be empty (`lsdf://project/` lists a whole project).
    pub fn parse_prefix(s: &str) -> Result<Self, PathError> {
        let rest = s
            .strip_prefix("lsdf://")
            .ok_or_else(|| PathError::BadScheme(s.to_string()))?;
        let (project, key) = rest.split_once('/').unwrap_or((rest, ""));
        if project.is_empty() {
            return Err(PathError::EmptyProject(s.to_string()));
        }
        Ok(LsdfPath {
            project: project.to_string(),
            key: key.to_string(),
        })
    }

    /// Parses `lsdf://project/key/with/slashes`.
    pub fn parse(s: &str) -> Result<Self, PathError> {
        let rest = s
            .strip_prefix("lsdf://")
            .ok_or_else(|| PathError::BadScheme(s.to_string()))?;
        let (project, key) = rest
            .split_once('/')
            .ok_or_else(|| PathError::EmptyKey(s.to_string()))?;
        if project.is_empty() {
            return Err(PathError::EmptyProject(s.to_string()));
        }
        if key.is_empty() {
            return Err(PathError::EmptyKey(s.to_string()));
        }
        Ok(LsdfPath {
            project: project.to_string(),
            key: key.to_string(),
        })
    }
}

impl fmt::Display for LsdfPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsdf://{}/{}", self.project, self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let p = LsdfPath::parse("lsdf://zebrafish/raw/day1/img-001.raw").unwrap();
        assert_eq!(p.project, "zebrafish");
        assert_eq!(p.key, "raw/day1/img-001.raw");
        assert_eq!(p.to_string(), "lsdf://zebrafish/raw/day1/img-001.raw");
        assert_eq!(LsdfPath::parse(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn bad_paths_rejected() {
        assert!(matches!(
            LsdfPath::parse("http://x/y"),
            Err(PathError::BadScheme(_))
        ));
        assert!(matches!(
            LsdfPath::parse("lsdf:///key"),
            Err(PathError::EmptyProject(_))
        ));
        assert!(matches!(
            LsdfPath::parse("lsdf://proj/"),
            Err(PathError::EmptyKey(_))
        ));
        assert!(matches!(
            LsdfPath::parse("lsdf://proj"),
            Err(PathError::EmptyKey(_))
        ));
    }

    #[test]
    fn parse_prefix_allows_empty_key() {
        let p = LsdfPath::parse_prefix("lsdf://proj/").unwrap();
        assert_eq!((p.project.as_str(), p.key.as_str()), ("proj", ""));
        let p = LsdfPath::parse_prefix("lsdf://proj").unwrap();
        assert_eq!(p.key, "");
        let p = LsdfPath::parse_prefix("lsdf://proj/sub/").unwrap();
        assert_eq!(p.key, "sub/");
        assert!(LsdfPath::parse_prefix("lsdf:///x").is_err());
    }

    #[test]
    fn new_trims_leading_slash() {
        assert_eq!(LsdfPath::new("p", "/a/b").key, "a/b");
    }
}
