//! # lsdf-adal — the Abstract Data Access Layer
//!
//! "Hardware and software choices limit the access protocols and APIs ⇒
//! need a unified access layer. Abstract Data Access Layer, low-level
//! interface to LSDF ⇒ extensible to support new backends, authentication
//! mechanisms" (paper, slide 9).
//!
//! * [`LsdfPath`] — the unified `lsdf://project/key` namespace;
//! * [`StorageBackend`] — the backend trait, with adapters for the object
//!   store, the DFS, and the HSM;
//! * [`TokenAuth`] / [`Acl`] — pluggable authentication and per-project
//!   authorization;
//! * [`Adal`] — the mount registry tying it together, with operation
//!   counters used by the overhead experiment (E9);
//! * [`RetryPolicy`] / [`CircuitBreaker`] / [`RedoJournal`] — the
//!   resilience machinery behind [`Adal::mount_resilient`]: bounded
//!   retries for transient faults, a per-backend breaker, replica
//!   failover reads and journaled degraded writes.

#![warn(missing_docs)]

mod auth;
mod backend;
mod layer;
mod path;
mod resilience;

pub use auth::{Access, Acl, AuthError, AuthProvider, Credential, Principal, TokenAuth};
pub use backend::{
    BackendError, DfsBackend, EntryMeta, HsmBackend, ObjectStoreBackend, StagedPut,
    StorageBackend,
};
pub use layer::{Adal, AdalBuilder, AdalCounters, AdalError, OpKind, PendingPut, RequestClass};
pub use path::{LsdfPath, PathError};
pub use resilience::{
    BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker, HealthReport,
    RedoJournal, ResilienceConfig, RetryPolicy,
};
