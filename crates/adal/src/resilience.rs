//! Resilience machinery for the ADAL: bounded-backoff retries, a
//! per-backend circuit breaker, and the redo journal behind degraded
//! writes.
//!
//! The facility ingests around the clock (zebrafish screens, sequencers,
//! KATRIN), so a disk array rebooting or a DFS datanode flapping must be
//! a survivable event, not a crash propagated to the beamline. The
//! pieces here are deliberately deterministic: backoff jitter draws from
//! a named [`SimRng`] stream and the breaker cool-down runs on the obs
//! registry clock, so a chaos run with a fixed seed (and a virtual
//! clock) is bit-identical across executions.

use std::collections::VecDeque;

use lsdf_storage::Payload;
use lsdf_sync::{ranks, OrderedMutex};

use lsdf_sim::SimRng;

/// Retry policy: bounded exponential backoff with additive jitter.
///
/// Attempt `k` (zero-based retry index) waits
/// `min(base_delay_ns << k, max_delay_ns)` plus a uniform jitter draw in
/// `[0, jitter_ns]`, the sum again capped at `max_delay_ns`. Because the
/// jitter bound never exceeds the base delay (the constructor clamps
/// it), the schedule is monotone non-decreasing — the property the
/// resilience proptests pin down. Delays are *recorded*, not slept: the
/// layer runs on simulated time and reports what it would have waited
/// through `adal_retry_backoff_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first (>= 1).
    pub max_attempts: u32,
    /// First retry delay in nanoseconds (>= 1).
    pub base_delay_ns: u64,
    /// Upper bound for any single delay.
    pub max_delay_ns: u64,
    /// Jitter bound, clamped to `base_delay_ns` at construction.
    pub jitter_ns: u64,
}

impl RetryPolicy {
    /// Builds a policy.
    ///
    /// # Panics
    /// Panics if `max_attempts == 0`, `base_delay_ns == 0`, or
    /// `max_delay_ns < base_delay_ns`.
    pub fn new(max_attempts: u32, base_delay_ns: u64, max_delay_ns: u64, jitter_ns: u64) -> Self {
        assert!(max_attempts >= 1, "retry policy needs at least one attempt");
        assert!(base_delay_ns >= 1, "base delay must be positive");
        assert!(
            max_delay_ns >= base_delay_ns,
            "max delay must be >= base delay"
        );
        RetryPolicy {
            max_attempts,
            base_delay_ns,
            max_delay_ns,
            // Monotonicity of the schedule depends on jitter <= base.
            jitter_ns: jitter_ns.min(base_delay_ns),
        }
    }

    /// Delay before retry `retry_index` (0 = delay after the first
    /// failed attempt), with jitter drawn from `rng`.
    pub fn delay_ns(&self, retry_index: u32, rng: &mut SimRng) -> u64 {
        let raw = self
            .base_delay_ns
            .checked_shl(retry_index)
            .unwrap_or(self.max_delay_ns)
            .min(self.max_delay_ns);
        let jitter = rng.range_u64(0, self.jitter_ns.saturating_add(1));
        raw.saturating_add(jitter).min(self.max_delay_ns)
    }

    /// The full backoff schedule (`max_attempts - 1` delays) for a
    /// master seed, via the `"retry-backoff"` named stream. Used by the
    /// determinism proptests and by reports.
    pub fn schedule(&self, seed: u64) -> Vec<u64> {
        let mut rng = SimRng::seed_from_u64(seed).stream("retry-backoff");
        (0..self.max_attempts.saturating_sub(1))
            .map(|k| self.delay_ns(k, &mut rng))
            .collect()
    }
}

impl Default for RetryPolicy {
    /// 5 attempts, 1 ms base, 100 ms cap, 0.5 ms jitter.
    fn default() -> Self {
        RetryPolicy::new(5, 1_000_000, 100_000_000, 500_000)
    }
}

/// Circuit-breaker states, in the classic closed → open → half-open
/// cycle. The only path back to [`BreakerState::Closed`] runs through
/// [`BreakerState::HalfOpen`] probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally; outcomes feed the failure-rate window.
    Closed,
    /// Calls are rejected until the cool-down elapses.
    Open,
    /// Trial calls allowed; successes close, any failure re-opens.
    HalfOpen,
}

impl BreakerState {
    /// Metric label (`adal_breaker_transitions_total{to=..}`).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Gauge encoding for `adal_breaker_state`: 0 closed, 1 half-open,
    /// 2 open.
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Sliding outcome window evaluated while closed.
    pub window: usize,
    /// Minimum outcomes in the window before the rate is evaluated.
    pub min_calls: usize,
    /// Failure rate (in `[0, 1]`) at which the breaker opens.
    pub failure_rate: f64,
    /// Nanoseconds (registry clock) the breaker stays open before
    /// half-opening.
    pub cooldown_ns: u64,
    /// Consecutive half-open successes required to close.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    /// Window 16, min 8 calls, 50 % failure rate, 50 ms cool-down,
    /// 2 probes.
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            min_calls: 8,
            failure_rate: 0.5,
            cooldown_ns: 50_000_000,
            half_open_probes: 2,
        }
    }
}

/// A state transition observed by the breaker; the layer turns these
/// into `adal_breaker_transitions_total` counters and events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    /// Previous state.
    pub from: BreakerState,
    /// New state.
    pub to: BreakerState,
}

struct BreakerInner {
    state: BreakerState,
    window: VecDeque<bool>,
    opened_at_ns: u64,
    probe_successes: u32,
}

/// Per-backend circuit breaker (closed / open / half-open).
///
/// Time comes in as explicit `now_ns` arguments so the breaker follows
/// whatever clock the caller runs on — wall time in production, virtual
/// time in deterministic chaos runs.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    breaker: OrderedMutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    ///
    /// # Panics
    /// Panics if `window == 0`, `min_calls == 0`, `half_open_probes == 0`
    /// or `failure_rate` is outside `[0, 1]`.
    pub fn new(cfg: BreakerConfig) -> Self {
        assert!(cfg.window >= 1, "breaker window must be positive");
        assert!(cfg.min_calls >= 1, "breaker min_calls must be positive");
        assert!(cfg.half_open_probes >= 1, "breaker needs >= 1 probe");
        assert!(
            (0.0..=1.0).contains(&cfg.failure_rate),
            "failure_rate must be in [0, 1]"
        );
        CircuitBreaker {
            cfg,
            breaker: OrderedMutex::new(ranks::ADAL_BREAKER, BreakerInner {
                state: BreakerState::Closed,
                window: VecDeque::new(),
                opened_at_ns: 0,
                probe_successes: 0,
            }),
        }
    }

    /// Current state (may lag `try_acquire`'s cool-down check).
    pub fn state(&self) -> BreakerState {
        self.breaker.lock().state
    }

    /// Failure rate over the current closed-state window (0 when empty).
    pub fn failure_rate(&self) -> f64 {
        let inner = self.breaker.lock();
        if inner.window.is_empty() {
            return 0.0;
        }
        let failures = inner.window.iter().filter(|ok| !**ok).count();
        failures as f64 / inner.window.len() as f64
    }

    /// Asks permission for a call at `now_ns`. An open breaker whose
    /// cool-down has elapsed transitions to half-open (reported in the
    /// returned transition) and the call is allowed as a probe.
    pub fn try_acquire(&self, now_ns: u64) -> (bool, Option<BreakerTransition>) {
        let mut inner = self.breaker.lock();
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => (true, None),
            BreakerState::Open => {
                if now_ns.saturating_sub(inner.opened_at_ns) >= self.cfg.cooldown_ns {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_successes = 0;
                    (
                        true,
                        Some(BreakerTransition {
                            from: BreakerState::Open,
                            to: BreakerState::HalfOpen,
                        }),
                    )
                } else {
                    (false, None)
                }
            }
        }
    }

    /// Records the outcome of a permitted call at `now_ns`.
    pub fn record(&self, now_ns: u64, success: bool) -> Option<BreakerTransition> {
        let mut inner = self.breaker.lock();
        match inner.state {
            BreakerState::Closed => {
                if inner.window.len() == self.cfg.window {
                    inner.window.pop_front();
                }
                inner.window.push_back(success);
                if inner.window.len() >= self.cfg.min_calls {
                    let failures = inner.window.iter().filter(|ok| !**ok).count();
                    let rate = failures as f64 / inner.window.len() as f64;
                    if rate >= self.cfg.failure_rate {
                        inner.state = BreakerState::Open;
                        inner.opened_at_ns = now_ns;
                        inner.window.clear();
                        return Some(BreakerTransition {
                            from: BreakerState::Closed,
                            to: BreakerState::Open,
                        });
                    }
                }
                None
            }
            BreakerState::HalfOpen => {
                if success {
                    inner.probe_successes += 1;
                    if inner.probe_successes >= self.cfg.half_open_probes {
                        inner.state = BreakerState::Closed;
                        inner.window.clear();
                        return Some(BreakerTransition {
                            from: BreakerState::HalfOpen,
                            to: BreakerState::Closed,
                        });
                    }
                    None
                } else {
                    inner.state = BreakerState::Open;
                    inner.opened_at_ns = now_ns;
                    Some(BreakerTransition {
                        from: BreakerState::HalfOpen,
                        to: BreakerState::Open,
                    })
                }
            }
            // A late record against an open breaker (e.g. the breaker
            // opened from another thread mid-call) is dropped.
            BreakerState::Open => None,
        }
    }
}

struct JournalInner {
    entries: VecDeque<(String, Payload)>,
    bytes: u64,
}

/// Bounded redo journal: writes accepted while a backend's breaker is
/// open (or after retry exhaustion) queue here and drain on recovery.
/// Acknowledged journal entries are readable through the layer
/// (read-your-writes) until the drain lands them on the backend.
pub struct RedoJournal {
    cap_entries: usize,
    cap_bytes: u64,
    journal: OrderedMutex<JournalInner>,
}

impl RedoJournal {
    /// An empty journal bounded by entry count and total payload bytes.
    ///
    /// # Panics
    /// Panics if either bound is zero.
    pub fn new(cap_entries: usize, cap_bytes: u64) -> Self {
        assert!(cap_entries >= 1, "journal needs capacity for an entry");
        assert!(cap_bytes >= 1, "journal byte bound must be positive");
        RedoJournal {
            cap_entries,
            cap_bytes,
            journal: OrderedMutex::new(ranks::ADAL_JOURNAL, JournalInner {
                entries: VecDeque::new(),
                bytes: 0,
            }),
        }
    }

    /// Queues a write. `false` means the journal is full (the write must
    /// NOT be acknowledged) or the key is already queued.
    pub fn push(&self, key: &str, data: Payload) -> bool {
        let mut inner = self.journal.lock();
        if inner.entries.len() >= self.cap_entries
            || inner.bytes.saturating_add(data.len() as u64) > self.cap_bytes
            || inner.entries.iter().any(|(k, _)| k == key)
        {
            return false;
        }
        inner.bytes += data.len() as u64;
        inner.entries.push_back((key.to_string(), data));
        true
    }

    /// The queued payload for `key`, if any (read-your-writes).
    pub fn lookup(&self, key: &str) -> Option<Payload> {
        self.journal
            .lock()
            .entries
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, d)| d.clone())
    }

    /// Removes a queued write for `key` (a delete overtaking the redo).
    pub fn remove(&self, key: &str) -> Option<Payload> {
        let mut inner = self.journal.lock();
        let pos = inner.entries.iter().position(|(k, _)| k == key)?;
        let (_, data) = inner.entries.remove(pos)?;
        inner.bytes -= data.len() as u64;
        Some(data)
    }

    /// Pops the oldest queued write for draining.
    pub fn pop(&self) -> Option<(String, Payload)> {
        let mut inner = self.journal.lock();
        let (key, data) = inner.entries.pop_front()?;
        inner.bytes -= data.len() as u64;
        Some((key, data))
    }

    /// Puts a popped entry back at the front (drain hit a failure).
    pub fn requeue_front(&self, key: String, data: Payload) {
        let mut inner = self.journal.lock();
        inner.bytes += data.len() as u64;
        inner.entries.push_front((key, data));
    }

    /// Queued entry count.
    pub fn depth(&self) -> usize {
        self.journal.lock().entries.len()
    }

    /// Queued payload bytes.
    pub fn bytes(&self) -> u64 {
        self.journal.lock().bytes
    }

    /// Queued keys under `prefix`, with payload sizes (for degraded
    /// listings).
    pub fn entries_under(&self, prefix: &str) -> Vec<(String, u64)> {
        self.journal
            .lock()
            .entries
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, d)| (k.clone(), d.len() as u64))
            .collect()
    }
}

/// Configuration for a resilient mount
/// ([`crate::Adal::mount_resilient`]).
#[derive(Clone)]
pub struct ResilienceConfig {
    /// Retry policy for transient backend errors.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Redo-journal entry bound.
    pub journal_entries: usize,
    /// Redo-journal byte bound.
    pub journal_bytes: u64,
    /// Read every put back and compare digests (torn-write detection).
    pub verify_writes: bool,
    /// Master seed for the jitter stream (stream name = project).
    pub seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            journal_entries: 1024,
            journal_bytes: 64 * 1024 * 1024,
            verify_writes: true,
            seed: 42,
        }
    }
}

/// Point-in-time health of one project's backend, assembled by
/// [`crate::Adal::health`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Project name.
    pub project: String,
    /// Backend kind label.
    pub backend: &'static str,
    /// Breaker state (always `Closed` for plain mounts).
    pub breaker: BreakerState,
    /// Failure rate over the breaker's current window.
    pub failure_rate: f64,
    /// Whether a failover replica is mounted.
    pub has_replica: bool,
    /// Queued redo-journal writes.
    pub journal_depth: usize,
    /// Queued redo-journal bytes.
    pub journal_bytes: u64,
    /// Retries performed for this project so far.
    pub retries: u64,
    /// Reads served from the replica so far.
    pub failover_reads: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pay(b: &'static [u8]) -> Payload {
        Payload::new(bytes::Bytes::from_static(b))
    }

    #[test]
    fn backoff_doubles_until_capped() {
        let p = RetryPolicy::new(6, 100, 1_000, 0);
        let mut rng = SimRng::seed_from_u64(1);
        let delays: Vec<u64> = (0..5).map(|k| p.delay_ns(k, &mut rng)).collect();
        assert_eq!(delays, vec![100, 200, 400, 800, 1_000]);
    }

    #[test]
    fn backoff_schedule_is_monotone_and_deterministic() {
        let p = RetryPolicy::new(8, 1_000, 50_000, 900);
        let a = p.schedule(7);
        let b = p.schedule(7);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0] <= w[1], "schedule must be non-decreasing: {a:?}");
        }
        assert!(a.iter().all(|d| *d <= 50_000));
    }

    #[test]
    fn jitter_is_clamped_to_base() {
        let p = RetryPolicy::new(3, 10, 1_000, 999);
        assert_eq!(p.jitter_ns, 10);
    }

    #[test]
    fn breaker_full_cycle() {
        let cb = CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_calls: 2,
            failure_rate: 0.5,
            cooldown_ns: 100,
            half_open_probes: 2,
        });
        assert_eq!(cb.state(), BreakerState::Closed);
        assert!(cb.record(0, false).is_none(), "below min_calls");
        let t = cb.record(1, false).expect("opens at 2/2 failures");
        assert_eq!(t.to, BreakerState::Open);
        // Rejected during cool-down.
        let (ok, t) = cb.try_acquire(50);
        assert!(!ok);
        assert!(t.is_none());
        // Half-opens after cool-down.
        let (ok, t) = cb.try_acquire(101);
        assert!(ok);
        assert_eq!(t.unwrap().to, BreakerState::HalfOpen);
        // One success is not enough; the second closes.
        assert!(cb.record(102, true).is_none());
        let t = cb.record(103, true).expect("closes after probes");
        assert_eq!(t.from, BreakerState::HalfOpen);
        assert_eq!(t.to, BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens() {
        let cb = CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_calls: 1,
            failure_rate: 0.5,
            cooldown_ns: 10,
            half_open_probes: 1,
        });
        cb.record(0, false);
        assert_eq!(cb.state(), BreakerState::Open);
        let (ok, _) = cb.try_acquire(20);
        assert!(ok);
        let t = cb.record(21, false).expect("probe failure reopens");
        assert_eq!(t.to, BreakerState::Open);
        // New cool-down runs from the reopen time.
        assert!(!cb.try_acquire(25).0);
        assert!(cb.try_acquire(31).0);
    }

    #[test]
    fn journal_bounds_and_read_your_writes() {
        let j = RedoJournal::new(2, 100);
        assert!(j.push("a", pay(b"xx")));
        assert!(!j.push("a", pay(b"yy")), "duplicate key");
        assert!(j.push("b", pay(b"zz")));
        assert!(!j.push("c", pay(b"ww")), "entry bound");
        assert_eq!(j.lookup("a").unwrap(), pay(b"xx"));
        assert_eq!(j.depth(), 2);
        assert_eq!(j.bytes(), 4);
        assert_eq!(j.remove("a").unwrap(), pay(b"xx"));
        assert_eq!(j.depth(), 1);
        let (k, d) = j.pop().unwrap();
        assert_eq!(k, "b");
        j.requeue_front(k, d);
        assert_eq!(j.depth(), 1);
        assert_eq!(j.bytes(), 2);
    }

    #[test]
    fn journal_byte_bound_enforced() {
        let j = RedoJournal::new(100, 3);
        assert!(j.push("a", pay(b"ab")));
        assert!(!j.push("b", pay(b"cd")), "byte bound");
        assert!(j.push("c", pay(b"e")));
    }
}
