//! The storage-backend abstraction and its adapters.
//!
//! "Hardware and software choices limit the access protocols and APIs ⇒
//! not all components accessible through all methods ⇒ need a unified
//! access layer" (paper, slide 9). [`StorageBackend`] is that low-level
//! interface; adapters wrap the object store (disk arrays), the DFS
//! (Hadoop filesystem) and the HSM (disk+tape) so every component is
//! reachable through one API — and the layer is "extensible to support
//! new backends".

use std::sync::Arc;

use lsdf_dfs::{Dfs, DfsError, StagedFile};
use lsdf_obs::TraceCtx;
use lsdf_storage::{Hsm, HsmError, ObjectStore, Payload, StoreError};

/// Metadata returned by `stat`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryMeta {
    /// Key within the backend.
    pub key: String,
    /// Payload size, bytes.
    pub size: u64,
}

/// Unified backend error.
///
/// Every failure mode of the wrapped subsystems maps to a typed variant
/// here; [`BackendError::Other`] exists only for out-of-tree backends
/// and carries no in-tree conversions.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// Key not found.
    NotFound(String),
    /// Key already exists (all LSDF backends are write-once).
    AlreadyExists(String),
    /// Out of capacity.
    NoSpace(String),
    /// Data integrity violation (checksum mismatch on read-back or
    /// during a tier move).
    Integrity(String),
    /// The data exists but cannot currently be served (e.g. every
    /// replica of a DFS block is on a dead datanode).
    Unavailable(String),
    /// The backend does not support this operation by design.
    Unsupported(String),
    /// A transient I/O fault (flaky datanode, injected fault, dropped
    /// connection): retrying the same call may succeed.
    TransientIo(String),
    /// Anything else, with context (reserved for external backends).
    Other(String),
}

impl BackendError {
    /// True when retrying the same operation may succeed — the
    /// classification the ADAL [`crate::RetryPolicy`] honours.
    ///
    /// Transient: [`BackendError::TransientIo`] (flaky hardware),
    /// [`BackendError::Unavailable`] (replicas may re-replicate, an
    /// outage may end) and [`BackendError::Integrity`] (a torn write or
    /// corrupted read-back is repairable by redoing the transfer).
    /// Everything else — `NotFound`, `AlreadyExists`, `NoSpace`,
    /// `Unsupported`, `Other` — is deterministic and retrying is wasted
    /// work.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            BackendError::TransientIo(_)
                | BackendError::Unavailable(_)
                | BackendError::Integrity(_)
        )
    }
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::NotFound(k) => write!(f, "'{k}' not found"),
            BackendError::AlreadyExists(k) => write!(f, "'{k}' already exists"),
            BackendError::NoSpace(m) => write!(f, "no space: {m}"),
            BackendError::Integrity(m) => write!(f, "integrity violation: {m}"),
            BackendError::Unavailable(m) => write!(f, "unavailable: {m}"),
            BackendError::Unsupported(m) => write!(f, "unsupported: {m}"),
            BackendError::TransientIo(m) => write!(f, "transient i/o fault: {m}"),
            BackendError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<StoreError> for BackendError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::NotFound(k) => BackendError::NotFound(k),
            StoreError::AlreadyExists(k) => BackendError::AlreadyExists(k),
            StoreError::CapacityExceeded { requested, free } => {
                BackendError::NoSpace(format!("need {requested}, free {free}"))
            }
            StoreError::ChecksumMismatch(k) => {
                BackendError::Integrity(format!("checksum mismatch on '{k}'"))
            }
        }
    }
}

impl From<DfsError> for BackendError {
    fn from(e: DfsError) -> Self {
        match e {
            DfsError::FileNotFound(p) => BackendError::NotFound(p),
            DfsError::FileExists(p) => BackendError::AlreadyExists(p),
            DfsError::NoSpace => BackendError::NoSpace("dfs".into()),
            DfsError::BlockUnavailable(b) => {
                BackendError::Unavailable(format!("no live replica of {b:?}"))
            }
            // A flaky datanode dropping one I/O is retryable in place;
            // other datanode-level failures mean the data cannot be
            // served right now.
            DfsError::DataNode(lsdf_dfs::DataNodeError::TransientIo(n)) => {
                BackendError::TransientIo(format!("datanode {n:?} dropped the i/o"))
            }
            DfsError::DataNode(e) => BackendError::Unavailable(format!("datanode: {e}")),
        }
    }
}

impl From<HsmError> for BackendError {
    fn from(e: HsmError) -> Self {
        match e {
            HsmError::NotFound(k) => BackendError::NotFound(k),
            HsmError::Store(s) => s.into(),
            HsmError::IntegrityViolation(k) => {
                BackendError::Integrity(format!("tier move verification failed for '{k}'"))
            }
        }
    }
}

/// The low-level unified interface to any LSDF storage component.
///
/// Every operation — including `list`, which historically returned a
/// plain `Vec` — is fallible and returns a typed [`BackendError`], so
/// the resilience layer can classify failures (see
/// [`BackendError::is_transient`]) instead of guessing from sentinel
/// values. Implementations must be `Send + Sync`: the ADAL shares one
/// backend handle across mounts and sim callbacks.
pub trait StorageBackend: Send + Sync {
    /// Backend kind label (for reporting).
    fn kind(&self) -> &'static str;
    /// Stores `data` under `key` (write-once). The payload handle is a
    /// refcounted view — implementations must not copy the bytes on the
    /// success path, and a memoized digest travels with the handle.
    fn put(&self, key: &str, data: Payload) -> Result<(), BackendError>;
    /// Fetches the payload under `key`.
    fn get(&self, key: &str) -> Result<Payload, BackendError>;
    /// Metadata for `key`.
    fn stat(&self, key: &str) -> Result<EntryMeta, BackendError>;
    /// Deletes `key` (lifecycle management).
    fn delete(&self, key: &str) -> Result<(), BackendError>;
    /// Keys under `prefix`, sorted. Backend failures surface as errors
    /// rather than being swallowed into an empty listing.
    fn list(&self, prefix: &str) -> Result<Vec<EntryMeta>, BackendError>;
    /// True when `key` exists.
    fn exists(&self, key: &str) -> bool {
        self.stat(key).is_ok()
    }

    // --- traced variants ------------------------------------------------
    //
    // Backends that can attribute internal work to a causal trace (DFS
    // block placement, HSM tape staging, chaos fault injection)
    // override these to attach child spans/events to `ctx`. The
    // defaults ignore the ctx and delegate, so plain backends keep
    // working and untraced call paths (a disabled ctx) cost nothing.

    /// Traced [`StorageBackend::put`].
    fn put_traced(&self, ctx: &TraceCtx, key: &str, data: Payload) -> Result<(), BackendError> {
        let _ = ctx;
        self.put(key, data)
    }
    /// Traced [`StorageBackend::get`].
    fn get_traced(&self, ctx: &TraceCtx, key: &str) -> Result<Payload, BackendError> {
        let _ = ctx;
        self.get(key)
    }
    /// Traced [`StorageBackend::stat`].
    fn stat_traced(&self, ctx: &TraceCtx, key: &str) -> Result<EntryMeta, BackendError> {
        let _ = ctx;
        self.stat(key)
    }
    /// Traced [`StorageBackend::delete`].
    fn delete_traced(&self, ctx: &TraceCtx, key: &str) -> Result<(), BackendError> {
        let _ = ctx;
        self.delete(key)
    }
    /// Traced [`StorageBackend::list`].
    fn list_traced(&self, ctx: &TraceCtx, prefix: &str) -> Result<Vec<EntryMeta>, BackendError> {
        let _ = ctx;
        self.list(prefix)
    }

    // --- batched staged puts --------------------------------------------
    //
    // Backends whose commit step serialises on shared metadata (the DFS
    // namenode) override these so a batch of N puts pays one metadata
    // lock and one WAL group commit instead of N. Backends without a
    // staged protocol just commit immediately; the defaults make
    // `stage + commit` exactly equivalent to `put`.

    /// Stages a put, deferring any commit step that serialises on
    /// shared metadata. Default: commits immediately via
    /// [`StorageBackend::put_traced`].
    fn stage_put_traced(
        &self,
        ctx: &TraceCtx,
        key: &str,
        data: Payload,
    ) -> Result<StagedPut, BackendError> {
        self.put_traced(ctx, key, data).map(|()| StagedPut::Committed)
    }

    /// Commits a batch of staged puts; results are in batch order. A
    /// staged put is only durable/acknowledgeable once this returns Ok
    /// for it. Default: everything was already committed at stage time.
    fn commit_staged_traced(&self, staged: Vec<StagedPut>) -> Vec<Result<(), BackendError>> {
        staged.into_iter().map(|_| Ok(())).collect()
    }
}

/// A put staged by [`StorageBackend::stage_put_traced`], awaiting
/// [`StorageBackend::commit_staged_traced`].
pub enum StagedPut {
    /// The backend has no staged protocol; the put already committed.
    Committed,
    /// A DFS file with blocks placed, awaiting its batched namespace
    /// commit.
    Dfs(StagedFile),
}

/// Adapter: the in-memory object store (stand-in for the GPFS arrays).
pub struct ObjectStoreBackend {
    store: Arc<ObjectStore>,
}

impl ObjectStoreBackend {
    /// Wraps an object store.
    pub fn new(store: Arc<ObjectStore>) -> Self {
        ObjectStoreBackend { store }
    }
}

impl StorageBackend for ObjectStoreBackend {
    fn kind(&self) -> &'static str {
        "object-store"
    }
    fn put(&self, key: &str, data: Payload) -> Result<(), BackendError> {
        self.store.put(key, data)?;
        Ok(())
    }
    fn get(&self, key: &str) -> Result<Payload, BackendError> {
        Ok(self.store.get(key)?)
    }
    fn stat(&self, key: &str) -> Result<EntryMeta, BackendError> {
        let m = self.store.stat(key)?;
        Ok(EntryMeta {
            key: m.key,
            size: m.size,
        })
    }
    fn delete(&self, key: &str) -> Result<(), BackendError> {
        self.store.delete(key)?;
        Ok(())
    }
    fn list(&self, prefix: &str) -> Result<Vec<EntryMeta>, BackendError> {
        Ok(self
            .store
            .list(prefix)
            .into_iter()
            .map(|m| EntryMeta {
                key: m.key,
                size: m.size,
            })
            .collect())
    }
}

/// Adapter: the distributed filesystem (Hadoop-style).
pub struct DfsBackend {
    dfs: Arc<Dfs>,
}

impl DfsBackend {
    /// Wraps a DFS.
    pub fn new(dfs: Arc<Dfs>) -> Self {
        DfsBackend { dfs }
    }
}

impl StorageBackend for DfsBackend {
    fn kind(&self) -> &'static str {
        "dfs"
    }
    fn put(&self, key: &str, data: Payload) -> Result<(), BackendError> {
        self.dfs
            .write_payload_traced(key, &data, None, &TraceCtx::disabled())?;
        Ok(())
    }
    fn get(&self, key: &str) -> Result<Payload, BackendError> {
        Ok(Payload::new(self.dfs.read(key, None)?))
    }
    fn stat(&self, key: &str) -> Result<EntryMeta, BackendError> {
        let m = self.dfs.stat(key)?;
        Ok(EntryMeta {
            key: m.path,
            size: m.size,
        })
    }
    fn delete(&self, key: &str) -> Result<(), BackendError> {
        self.dfs.delete(key)?;
        Ok(())
    }
    fn list(&self, prefix: &str) -> Result<Vec<EntryMeta>, BackendError> {
        Ok(self
            .dfs
            .list(prefix)
            .into_iter()
            .map(|m| EntryMeta {
                key: m.path,
                size: m.size,
            })
            .collect())
    }
    fn put_traced(&self, ctx: &TraceCtx, key: &str, data: Payload) -> Result<(), BackendError> {
        self.dfs.write_payload_traced(key, &data, None, ctx)?;
        Ok(())
    }
    fn get_traced(&self, ctx: &TraceCtx, key: &str) -> Result<Payload, BackendError> {
        Ok(Payload::new(self.dfs.read_traced(key, None, ctx)?))
    }
    fn stage_put_traced(
        &self,
        ctx: &TraceCtx,
        key: &str,
        data: Payload,
    ) -> Result<StagedPut, BackendError> {
        Ok(StagedPut::Dfs(
            self.dfs.stage_write_traced(key, &data, None, ctx)?,
        ))
    }
    fn commit_staged_traced(&self, staged: Vec<StagedPut>) -> Vec<Result<(), BackendError>> {
        // Batch every DFS staged file into one namenode commit,
        // preserving batch order in the results.
        let mut results: Vec<Option<Result<(), BackendError>>> =
            staged.iter().map(|_| None).collect();
        let mut files = Vec::new();
        let mut slots = Vec::new();
        for (i, s) in staged.into_iter().enumerate() {
            match s {
                StagedPut::Committed => results[i] = Some(Ok(())),
                StagedPut::Dfs(f) => {
                    files.push(f);
                    slots.push(i);
                }
            }
        }
        for (i, r) in slots.into_iter().zip(self.dfs.commit_files_batch(files)) {
            results[i] = Some(r.map(|_| ()).map_err(BackendError::from));
        }
        results.into_iter().map(|r| r.unwrap_or(Ok(()))).collect()
    }
}

/// Adapter: the HSM (disk + tape tiering).
pub struct HsmBackend {
    hsm: Arc<Hsm>,
}

impl HsmBackend {
    /// Wraps an HSM.
    pub fn new(hsm: Arc<Hsm>) -> Self {
        HsmBackend { hsm }
    }
}

impl StorageBackend for HsmBackend {
    fn kind(&self) -> &'static str {
        "hsm"
    }
    fn put(&self, key: &str, data: Payload) -> Result<(), BackendError> {
        self.hsm.put(key, data)?;
        Ok(())
    }
    fn get(&self, key: &str) -> Result<Payload, BackendError> {
        Ok(self.hsm.get(key)?)
    }
    fn stat(&self, key: &str) -> Result<EntryMeta, BackendError> {
        let entries = self.hsm.catalog();
        entries
            .iter()
            .find(|e| e.key == key)
            .map(|e| EntryMeta {
                key: e.key.clone(),
                size: e.size,
            })
            .ok_or_else(|| BackendError::NotFound(key.to_string()))
    }
    fn delete(&self, key: &str) -> Result<(), BackendError> {
        self.hsm.delete(key)?;
        Ok(())
    }
    fn list(&self, prefix: &str) -> Result<Vec<EntryMeta>, BackendError> {
        let mut out: Vec<EntryMeta> = self
            .hsm
            .catalog()
            .into_iter()
            .filter(|e| e.key.starts_with(prefix))
            .map(|e| EntryMeta {
                key: e.key,
                size: e.size,
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(out)
    }
    fn get_traced(&self, ctx: &TraceCtx, key: &str) -> Result<Payload, BackendError> {
        Ok(self.hsm.get_traced(key, ctx)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lsdf_dfs::{ClusterTopology, DfsConfig};
    use lsdf_storage::MigrationPolicy;

    fn payload(s: &str) -> Payload {
        Payload::new(Bytes::copy_from_slice(s.as_bytes()))
    }

    fn backends() -> Vec<Box<dyn StorageBackend>> {
        let obj = Arc::new(ObjectStore::new("obj", u64::MAX));
        let dfs = Arc::new(Dfs::new(
            ClusterTopology::new(1, 3),
            DfsConfig {
                block_size: 64,
                replication: 2,
                ..DfsConfig::default()
            },
        ));
        let disk = Arc::new(ObjectStore::new("disk", u64::MAX));
        let tape = Arc::new(ObjectStore::new("tape", u64::MAX));
        let hsm = Arc::new(Hsm::new(disk, tape, 0.5, 0.8, MigrationPolicy::OldestFirst));
        vec![
            Box::new(ObjectStoreBackend::new(obj)),
            Box::new(DfsBackend::new(dfs)),
            Box::new(HsmBackend::new(hsm)),
        ]
    }

    #[test]
    fn all_backends_satisfy_the_contract() {
        for b in backends() {
            let kind = b.kind();
            // put / exists / get / stat
            b.put("a/x", payload("hello")).unwrap();
            assert!(b.exists("a/x"), "{kind}");
            assert_eq!(b.get("a/x").unwrap(), payload("hello"), "{kind}");
            let m = b.stat("a/x").unwrap();
            assert_eq!(m.size, 5, "{kind}");
            // write-once
            assert!(
                matches!(b.put("a/x", payload("v2")), Err(BackendError::AlreadyExists(_))),
                "{kind} must be write-once"
            );
            // list
            b.put("a/y", payload("1")).unwrap();
            b.put("b/z", payload("2")).unwrap();
            let keys: Vec<String> = b
                .list("a/")
                .unwrap()
                .into_iter()
                .map(|m| m.key)
                .collect();
            assert_eq!(keys, vec!["a/x", "a/y"], "{kind}");
            // missing keys
            assert!(matches!(b.get("nope"), Err(BackendError::NotFound(_))), "{kind}");
            assert!(!b.exists("nope"), "{kind}");
        }
    }

    #[test]
    fn every_backend_supports_delete() {
        for b in backends() {
            b.put("k", payload("v")).unwrap();
            b.delete("k").unwrap();
            assert!(!b.exists("k"), "{}", b.kind());
            assert!(
                matches!(b.delete("k"), Err(BackendError::NotFound(_))),
                "{} double delete",
                b.kind()
            );
        }
    }

    #[test]
    fn staged_puts_commit_in_one_batch_on_every_backend() {
        let ctx = TraceCtx::disabled();
        for b in backends() {
            let s1 = b.stage_put_traced(&ctx, "s/1", payload("a")).unwrap();
            let s2 = b.stage_put_traced(&ctx, "s/2", payload("b")).unwrap();
            let results = b.commit_staged_traced(vec![s1, s2]);
            assert!(results.iter().all(|r| r.is_ok()), "{}", b.kind());
            assert_eq!(b.get("s/1").unwrap(), payload("a"), "{}", b.kind());
            assert_eq!(b.get("s/2").unwrap(), payload("b"), "{}", b.kind());
        }
    }

    #[test]
    fn dfs_batch_commit_detects_conflicts_at_commit_time() {
        let dfs = Arc::new(Dfs::new(
            ClusterTopology::new(1, 3),
            DfsConfig {
                block_size: 64,
                replication: 2,
                ..DfsConfig::default()
            },
        ));
        let b = DfsBackend::new(dfs);
        let ctx = TraceCtx::disabled();
        // Both stages pass the optimistic namespace check; the batched
        // commit's re-check under the write lock catches the duplicate
        // and rolls back the loser's blocks.
        let s1 = b.stage_put_traced(&ctx, "dup", payload("one")).unwrap();
        let s2 = b.stage_put_traced(&ctx, "dup", payload("two")).unwrap();
        let r = b.commit_staged_traced(vec![s1, s2]);
        assert!(r[0].is_ok());
        assert!(matches!(&r[1], Err(BackendError::AlreadyExists(_))));
        assert_eq!(b.get("dup").unwrap(), payload("one"));
    }

    #[test]
    fn transient_classification() {
        assert!(BackendError::TransientIo("x".into()).is_transient());
        assert!(BackendError::Unavailable("x".into()).is_transient());
        assert!(BackendError::Integrity("x".into()).is_transient());
        assert!(!BackendError::NotFound("x".into()).is_transient());
        assert!(!BackendError::AlreadyExists("x".into()).is_transient());
        assert!(!BackendError::NoSpace("x".into()).is_transient());
        assert!(!BackendError::Unsupported("x".into()).is_transient());
        assert!(!BackendError::Other("x".into()).is_transient());
        // The flaky-datanode error maps to the transient variant.
        let e = BackendError::from(DfsError::DataNode(
            lsdf_dfs::DataNodeError::TransientIo(lsdf_dfs::DfsNodeId(3)),
        ));
        assert!(matches!(e, BackendError::TransientIo(_)));
    }

    #[test]
    fn subsystem_errors_map_to_typed_variants() {
        assert!(matches!(
            BackendError::from(StoreError::ChecksumMismatch("k".into())),
            BackendError::Integrity(_)
        ));
        assert!(matches!(
            BackendError::from(DfsError::NoSpace),
            BackendError::NoSpace(_)
        ));
        assert!(matches!(
            BackendError::from(HsmError::IntegrityViolation("k".into())),
            BackendError::Integrity(_)
        ));
    }
}
