//! The ADAL itself: a registry mapping project mounts to backends, with
//! authentication, authorization and operation accounting on every call.
//!
//! Accounting goes through the `lsdf-obs` registry: each operation
//! bumps `adal_ops_total{op=..}` (plus a per-project
//! `adal_project_ops_total{project=..,op=..}` breakdown) and records
//! its latency into `adal_op_latency_ns{op=..}`. The historical
//! [`AdalCounters`] struct remains as a compatibility view computed
//! from the registry counters.
//!
//! Projects mounted with [`Adal::mount_resilient`] additionally get the
//! failure handling a 24/7 ingest facility needs:
//!
//! * transient backend errors are retried under a [`RetryPolicy`]
//!   (bounded exponential backoff, jitter from a deterministic stream);
//! * a per-project [`CircuitBreaker`] stops hammering a failing
//!   backend and probes it half-open after a cool-down;
//! * while the breaker is open, reads fail over to an optional replica
//!   backend and writes are acknowledged into a bounded [`RedoJournal`]
//!   that drains back to the primary on recovery;
//! * every put can be read back and checksum-verified (torn-write
//!   detection via `lsdf_storage::checksum`).
//!
//! All of it is observable: `adal_retries_total`,
//! `adal_breaker_transitions_total{to=..}`, `adal_failover_reads_total`,
//! `adal_journal_depth` and friends land in the shared registry, and
//! [`Adal::health`] assembles a per-project [`HealthReport`].

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use lsdf_obs::{Counter, Gauge, Histogram, Registry, Span, TraceCtx, Tracer};
use lsdf_pool::WorkerPool;
use lsdf_sim::SimRng;
use lsdf_storage::Payload;

use crate::auth::{Access, Acl, AuthError, AuthProvider, Credential, TokenAuth};
use crate::backend::{BackendError, EntryMeta, StagedPut, StorageBackend};
use crate::path::{LsdfPath, PathError};
use lsdf_obs::names;

use crate::resilience::{
    BreakerState, BreakerTransition, CircuitBreaker, HealthReport, RedoJournal,
    ResilienceConfig, RetryPolicy,
};

/// Errors surfaced by ADAL operations.
#[derive(Debug, Clone, PartialEq)]
pub enum AdalError {
    /// Malformed path.
    Path(PathError),
    /// Authentication / authorization failure.
    Auth(AuthError),
    /// No backend mounted for the project.
    NoMount(String),
    /// Backend-level failure.
    Backend(BackendError),
}

impl std::fmt::Display for AdalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdalError::Path(e) => write!(f, "path: {e}"),
            AdalError::Auth(e) => write!(f, "auth: {e}"),
            AdalError::NoMount(p) => write!(f, "no backend mounted for project '{p}'"),
            AdalError::Backend(e) => write!(f, "backend: {e}"),
        }
    }
}

impl std::error::Error for AdalError {}

impl From<PathError> for AdalError {
    fn from(e: PathError) -> Self {
        AdalError::Path(e)
    }
}
impl From<AuthError> for AdalError {
    fn from(e: AuthError) -> Self {
        AdalError::Auth(e)
    }
}
impl From<BackendError> for AdalError {
    fn from(e: BackendError) -> Self {
        AdalError::Backend(e)
    }
}

/// Operation counters (the E9 overhead accounting).
///
/// Compatibility view over the obs registry: `puts`/`gets` mirror
/// `adal_ops_total{op=put|get}`, `metas` is the sum of the `stat` and
/// `list` ops, `denied` mirrors `adal_denied_total`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdalCounters {
    /// `put` calls served.
    pub puts: u64,
    /// `get` calls served.
    pub gets: u64,
    /// `stat`/`list`/`exists` calls served.
    pub metas: u64,
    /// Requests rejected by auth.
    pub denied: u64,
}

/// The operation kinds [`Adal::classify`] understands — the same set
/// the per-op counters track, as a type instead of a string.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `put` — store an object.
    Put,
    /// `get` — fetch an object.
    Get,
    /// `stat` — metadata for one object.
    Stat,
    /// `list` — enumerate a prefix.
    List,
    /// `delete` — remove an object.
    Delete,
}

/// How the multi-tenant front door should treat a request, derived
/// from the operation and the backend serving the project. The
/// admission layer maps each class onto a QoS lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Latency-sensitive read-side traffic (`get`/`stat`/`list`).
    InteractiveRead,
    /// Throughput-bound write-side traffic (`put`/`delete`).
    BulkWrite,
    /// Read-side traffic on an HSM mount, where a cold read winds tape.
    TapeRecall,
}

/// Cached registry handles for the hot path — resolved once at
/// construction so operations only touch atomics.
struct OpMetrics {
    puts: Counter,
    gets: Counter,
    stats: Counter,
    lists: Counter,
    deletes: Counter,
    denied: Counter,
    put_latency: Histogram,
    get_latency: Histogram,
    stat_latency: Histogram,
    list_latency: Histogram,
    put_bytes: Histogram,
    get_bytes: Histogram,
}

impl OpMetrics {
    fn new(reg: &Registry) -> Self {
        let op_counter = |op| reg.counter(names::ADAL_OPS_TOTAL, &[("op", op)]);
        let op_latency = |op| reg.histogram(names::ADAL_OP_LATENCY_NS, &[("op", op)]);
        OpMetrics {
            puts: op_counter("put"),
            gets: op_counter("get"),
            stats: op_counter("stat"),
            lists: op_counter("list"),
            deletes: op_counter("delete"),
            denied: reg.counter(names::ADAL_DENIED_TOTAL, &[]),
            put_latency: op_latency("put"),
            get_latency: op_latency("get"),
            stat_latency: op_latency("stat"),
            list_latency: op_latency("list"),
            put_bytes: reg.histogram(names::ADAL_PUT_BYTES, &[]),
            get_bytes: reg.histogram(names::ADAL_GET_BYTES, &[]),
        }
    }
}

/// Cached per-project registry handles for the resilience machinery.
struct ResilienceMetrics {
    retries: Counter,
    transient_observed: Counter,
    retry_exhausted: Counter,
    failover_reads: Counter,
    journal_enqueued: Counter,
    journal_drained: Counter,
    journal_conflicts: Counter,
    verify_failures: Counter,
    replica_write_failures: Counter,
    breaker_to_open: Counter,
    breaker_to_half_open: Counter,
    breaker_to_closed: Counter,
    breaker_state: Gauge,
    journal_depth: Gauge,
    journal_bytes: Gauge,
    backoff_ns: Histogram,
}

impl ResilienceMetrics {
    fn new(reg: &Registry, project: &str) -> Self {
        let labels: [(&str, &str); 1] = [("project", project)];
        let transition =
            |to| reg.counter(names::ADAL_BREAKER_TRANSITIONS_TOTAL, &[("project", project), ("to", to)]);
        ResilienceMetrics {
            retries: reg.counter(names::ADAL_RETRIES_TOTAL, &labels),
            transient_observed: reg.counter(names::ADAL_TRANSIENT_OBSERVED_TOTAL, &labels),
            retry_exhausted: reg.counter(names::ADAL_RETRY_EXHAUSTED_TOTAL, &labels),
            failover_reads: reg.counter(names::ADAL_FAILOVER_READS_TOTAL, &labels),
            journal_enqueued: reg.counter(names::ADAL_JOURNAL_ENQUEUED_TOTAL, &labels),
            journal_drained: reg.counter(names::ADAL_JOURNAL_DRAINED_TOTAL, &labels),
            journal_conflicts: reg.counter(names::ADAL_JOURNAL_CONFLICTS_TOTAL, &labels),
            verify_failures: reg.counter(names::ADAL_WRITE_VERIFY_FAILURES_TOTAL, &labels),
            replica_write_failures: reg.counter(names::ADAL_REPLICA_WRITE_FAILURES_TOTAL, &labels),
            breaker_to_open: transition("open"),
            breaker_to_half_open: transition("half_open"),
            breaker_to_closed: transition("closed"),
            breaker_state: reg.gauge(names::ADAL_BREAKER_STATE, &labels),
            journal_depth: reg.gauge(names::ADAL_JOURNAL_DEPTH, &labels),
            journal_bytes: reg.gauge(names::ADAL_JOURNAL_BYTES, &labels),
            backoff_ns: reg.histogram(names::ADAL_RETRY_BACKOFF_NS, &labels),
        }
    }
}

/// Resilience state attached to a mount by [`Adal::mount_resilient`].
struct ResilientState {
    replica: Option<Arc<dyn StorageBackend>>,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    journal: RedoJournal,
    verify_writes: bool,
    rng: Mutex<SimRng>,
    metrics: ResilienceMetrics,
}

impl ResilientState {
    /// Publishes a breaker transition to counters, the state gauge, the
    /// event ring, and — when a trace is live — the causal trace.
    fn note_transition(&self, obs: &Registry, ctx: &TraceCtx, project: &str, t: BreakerTransition) {
        match t.to {
            BreakerState::Open => self.metrics.breaker_to_open.inc(),
            BreakerState::HalfOpen => self.metrics.breaker_to_half_open.inc(),
            BreakerState::Closed => self.metrics.breaker_to_closed.inc(),
        }
        self.metrics.breaker_state.set(t.to.as_gauge());
        ctx.event(
            names::ADAL_BREAKER_TRANSITION_EVENT,
            &[("project", project), ("from", t.from.name()), ("to", t.to.name())],
        );
        obs.event(
            names::ADAL_BREAKER_LOG_EVENT,
            &[("project", project), ("from", t.from.name()), ("to", t.to.name())],
        );
    }

    /// Asks the breaker for permission to call the primary.
    fn acquire(&self, obs: &Registry, ctx: &TraceCtx, project: &str) -> bool {
        let (ok, t) = self.breaker.try_acquire(obs.now_ns());
        if let Some(t) = t {
            self.note_transition(obs, ctx, project, t);
        }
        ok
    }

    /// Records a call outcome in the breaker.
    fn record(&self, obs: &Registry, ctx: &TraceCtx, project: &str, success: bool) {
        if let Some(t) = self.breaker.record(obs.now_ns(), success) {
            self.note_transition(obs, ctx, project, t);
        }
    }

    /// Mirrors the journal bounds into the depth/bytes gauges.
    fn sync_journal_gauges(&self) {
        self.metrics.journal_depth.set(self.journal.depth() as i64);
        self.metrics.journal_bytes.set(self.journal.bytes() as i64);
    }

    /// Runs `call` under the retry policy: transient errors are retried
    /// with recorded (not slept) backoff until the attempt budget is
    /// spent or the breaker leaves the closed state; deterministic
    /// errors return immediately and count as backend-healthy.
    ///
    /// Each attempt runs inside its own `adal_attempt` child span of
    /// `ctx`; retries and exhaustion are mirrored onto the trace as
    /// events next to their counters.
    ///
    /// Counter identity, asserted by the chaos soak:
    /// `adal_transient_observed_total ==
    ///  adal_retries_total + adal_retry_exhausted_total`.
    fn with_retries<T>(
        &self,
        obs: &Registry,
        ctx: &TraceCtx,
        project: &str,
        mut call: impl FnMut(&TraceCtx) -> Result<T, BackendError>,
    ) -> Result<T, BackendError> {
        let mut attempt: u32 = 0;
        loop {
            let attempt_span = ctx.child(names::ADAL_ATTEMPT_SPAN);
            if attempt_span.is_enabled() {
                attempt_span.add_field("attempt", &attempt.to_string());
            }
            let out = call(&attempt_span);
            attempt_span.finish();
            match out {
                Ok(v) => {
                    self.record(obs, ctx, project, true);
                    return Ok(v);
                }
                Err(e) if e.is_transient() => {
                    self.metrics.transient_observed.inc();
                    self.record(obs, ctx, project, false);
                    let out_of_attempts = attempt + 1 >= self.policy.max_attempts;
                    // A breaker our own failures just opened must not be
                    // hammered by the rest of the retry budget.
                    if out_of_attempts || self.breaker.state() == BreakerState::Open {
                        self.metrics.retry_exhausted.inc();
                        ctx.event(names::ADAL_RETRY_EXHAUSTED_EVENT, &[("project", project)]);
                        return Err(e);
                    }
                    let delay = self.policy.delay_ns(attempt, &mut self.rng.lock());
                    self.metrics.backoff_ns.record(delay);
                    self.metrics.retries.inc();
                    if ctx.is_enabled() {
                        ctx.event(
                            names::ADAL_RETRY_EVENT,
                            &[("project", project), ("delay_ns", &delay.to_string())],
                        );
                    }
                    attempt += 1;
                }
                Err(e) => {
                    // The backend answered authoritatively: it is healthy,
                    // the request is just wrong (NotFound, AlreadyExists…).
                    self.record(obs, ctx, project, true);
                    return Err(e);
                }
            }
        }
    }

    /// One put attempt with optional read-back verification. The
    /// read-back is compared against the source payload with
    /// [`Payload::content_eq`] — an identical shared buffer verifies in
    /// O(1), a substituted (torn) buffer fails the byte comparison, and
    /// neither side is hashed. A mismatch removes the bad copy and
    /// reports [`BackendError::Integrity`] so the retry loop redoes the
    /// transfer.
    fn put_verified(
        &self,
        ctx: &TraceCtx,
        backend: &Arc<dyn StorageBackend>,
        key: &str,
        data: &Payload,
    ) -> Result<(), BackendError> {
        // lint: allow(payload_copy) -- Payload handle clone: refcount bump
        backend.put_traced(ctx, key, data.clone())?;
        if !self.verify_writes {
            return Ok(());
        }
        match backend.get_traced(ctx, key) {
            Ok(back) if back.content_eq(data) => Ok(()),
            Ok(_) => {
                self.metrics.verify_failures.inc();
                let _ = backend.delete_traced(ctx, key);
                Err(BackendError::Integrity(format!(
                    "write verification failed for '{key}'"
                )))
            }
            Err(e) => {
                // Could not read our own write back: clean up and let the
                // retry loop redo the transfer.
                let _ = backend.delete_traced(ctx, key);
                if e.is_transient() {
                    Err(e)
                } else {
                    Err(BackendError::Integrity(format!(
                        "write verification read-back failed for '{key}': {e}"
                    )))
                }
            }
        }
    }

    /// Best-effort copy of a successful write onto the replica. The
    /// clone is a refcount bump sharing one payload handle (and its
    /// memoized digest) with the primary copy.
    fn replicate(&self, key: &str, data: &Payload) {
        if let Some(rep) = &self.replica {
            // lint: allow(payload_copy) -- Payload handle clone: refcount bump
            if rep.put(key, data.clone()).is_err() {
                self.metrics.replica_write_failures.inc();
            }
        }
    }
}

/// One project mount: the primary backend plus optional resilience.
#[derive(Clone)]
struct Mount {
    backend: Arc<dyn StorageBackend>,
    resilience: Option<Arc<ResilientState>>,
}

/// A put staged by [`Adal::put_stage_traced`], carrying everything
/// needed to finalize it — the deferred backend commit (if any) plus
/// the latency span and per-project accounting that
/// [`Adal::commit_staged`] completes in batch order. The trace span
/// closes at stage time, while its parent (e.g. a pool task span) is
/// still open — a trace child finishing after its parent is dropped.
pub struct PendingPut {
    backend: Arc<dyn StorageBackend>,
    staged: Option<StagedPut>,
    project: String,
    kind: &'static str,
    len: u64,
    span: Span,
}

/// The Abstract Data Access Layer.
pub struct Adal {
    auth: Arc<dyn AuthProvider>,
    acl: Arc<Acl>,
    mounts: RwLock<HashMap<String, Mount>>,
    obs: Arc<Registry>,
    ops: OpMetrics,
    pool: WorkerPool,
    tracer: Option<Tracer>,
}

impl Adal {
    /// Creates an ADAL with the given authentication provider and ACL,
    /// recording into a private obs registry. Use
    /// [`Adal::with_registry`] (or [`Adal::builder`]) to share a
    /// facility-wide registry.
    pub fn new(auth: Arc<dyn AuthProvider>, acl: Arc<Acl>) -> Self {
        Self::with_registry(auth, acl, Arc::new(Registry::new()))
    }

    /// Creates an ADAL recording into `registry`, with the serial
    /// (single-worker) pool; use [`Adal::builder`] to enable parallel
    /// replica fan-out.
    pub fn with_registry(
        auth: Arc<dyn AuthProvider>,
        acl: Arc<Acl>,
        registry: Arc<Registry>,
    ) -> Self {
        Self::with_pool(auth, acl, registry, WorkerPool::serial())
    }

    /// Creates an ADAL recording into `registry` whose resilient writes
    /// fan primary and replica puts out over `pool`. Results are
    /// identical for every worker count; only wall-clock time changes.
    pub fn with_pool(
        auth: Arc<dyn AuthProvider>,
        acl: Arc<Acl>,
        registry: Arc<Registry>,
        pool: WorkerPool,
    ) -> Self {
        let ops = OpMetrics::new(&registry);
        Adal {
            auth,
            acl,
            mounts: RwLock::new(HashMap::new()),
            obs: registry,
            ops,
            pool,
            tracer: None,
        }
    }

    /// Starts a fluent [`AdalBuilder`].
    pub fn builder() -> AdalBuilder {
        AdalBuilder::new()
    }

    /// The obs registry this layer records into.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The worker pool used for resilient replica fan-out.
    pub fn pool(&self) -> WorkerPool {
        self.pool
    }

    /// The causal tracer, if one is attached.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Attaches a causal tracer: from here on every operation mints a
    /// root trace (subject to the tracer's sampling mode).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Mints the root trace context for one operation, or a disabled
    /// context when no tracer is attached.
    fn trace_root(&self, name: &'static str, key: &str) -> TraceCtx {
        match &self.tracer {
            Some(t) => t.root(name, key),
            None => TraceCtx::disabled(),
        }
    }

    /// Mounts a backend under a project name. Remounting replaces the
    /// previous backend (used for transparent technology migrations —
    /// slide 6: "transparent access over background storage and
    /// technology changes").
    pub fn mount(&self, project: &str, backend: Arc<dyn StorageBackend>) {
        self.obs.event(
            names::ADAL_MOUNT_LOG_EVENT,
            &[("project", project), ("backend", backend.kind())],
        );
        self.mounts.write().insert(
            project.to_string(),
            Mount {
                backend,
                resilience: None,
            },
        );
    }

    /// Mounts a backend with the full resilience stack: retries for
    /// transient errors, a circuit breaker, optional replica failover
    /// for reads, and a redo journal for degraded writes. Successful
    /// writes are also copied to `replica` (best effort), so the
    /// replica can serve reads while the primary's breaker is open.
    ///
    /// Remounting replaces any previous mount for the project; the
    /// resilience state (breaker, journal) starts fresh.
    pub fn mount_resilient(
        &self,
        project: &str,
        primary: Arc<dyn StorageBackend>,
        replica: Option<Arc<dyn StorageBackend>>,
        cfg: ResilienceConfig,
    ) {
        let metrics = ResilienceMetrics::new(&self.obs, project);
        metrics.breaker_state.set(BreakerState::Closed.as_gauge());
        let state = ResilientState {
            replica,
            breaker: CircuitBreaker::new(cfg.breaker),
            journal: RedoJournal::new(cfg.journal_entries, cfg.journal_bytes),
            verify_writes: cfg.verify_writes,
            rng: Mutex::new(SimRng::seed_from_u64(cfg.seed).stream(project)),
            policy: cfg.retry,
            metrics,
        };
        self.obs.event(
            names::ADAL_MOUNT_LOG_EVENT,
            &[
                ("project", project),
                ("backend", primary.kind()),
                ("mode", "resilient"),
            ],
        );
        self.mounts.write().insert(
            project.to_string(),
            Mount {
                backend: primary,
                resilience: Some(Arc::new(state)),
            },
        );
    }

    /// The backend kind currently serving a project.
    pub fn backend_kind(&self, project: &str) -> Option<&'static str> {
        self.mounts.read().get(project).map(|m| m.backend.kind())
    }

    /// Mounted project names, sorted.
    pub fn projects(&self) -> Vec<String> {
        let mut v: Vec<String> = self.mounts.read().keys().cloned().collect();
        v.sort_unstable();
        v
    }

    fn resolve(
        &self,
        cred: &Credential,
        path: &str,
        access: Access,
    ) -> Result<(Mount, LsdfPath), AdalError> {
        self.resolve_parsed(cred, LsdfPath::parse(path)?, access)
    }

    fn resolve_parsed(
        &self,
        cred: &Credential,
        parsed: LsdfPath,
        access: Access,
    ) -> Result<(Mount, LsdfPath), AdalError> {
        let principal = self.auth.authenticate(cred).inspect_err(|_| {
            self.ops.denied.inc();
        })?;
        self.acl
            .check(&principal, &parsed.project, access)
            .inspect_err(|_| {
                self.ops.denied.inc();
            })?;
        let mount = self
            .mounts
            .read()
            .get(&parsed.project)
            .cloned()
            .ok_or_else(|| AdalError::NoMount(parsed.project.clone()))?;
        Ok((mount, parsed))
    }

    /// Per-project operation breakdown, labelled by backend kind.
    fn project_op(&self, project: &str, backend: &str, op: &str) {
        self.obs
            .counter(
                names::ADAL_PROJECT_OPS_TOTAL,
                &[("project", project), ("backend", backend), ("op", op)],
            )
            .inc();
    }

    /// Per-project latency view — the per-tenant histogram the admission
    /// governor's SLO rules read to find the project breaching its p99.
    fn project_op_latency(&self, project: &str, dt_ns: u64) {
        self.obs
            .histogram(names::ADAL_PROJECT_OP_LATENCY_NS, &[("project", project)])
            .record(dt_ns);
    }

    /// Classifies an operation into the admission lane it should ride:
    /// read-side ops are interactive unless the project sits on an HSM
    /// mount (where a read may wind tape); write-side ops are bulk.
    pub fn classify(&self, op: OpKind, project: &str) -> RequestClass {
        match op {
            OpKind::Put | OpKind::Delete => RequestClass::BulkWrite,
            OpKind::Get | OpKind::Stat | OpKind::List => {
                if self.backend_kind(project) == Some("hsm") {
                    RequestClass::TapeRecall
                } else {
                    RequestClass::InteractiveRead
                }
            }
        }
    }

    /// Stores an object at `lsdf://project/key`. On a resilient mount
    /// the write is retried through transient faults, verified against
    /// torn writes, and — when the backend is down — acknowledged into
    /// the redo journal for later draining.
    pub fn put(
        &self,
        cred: &Credential,
        path: &str,
        data: impl Into<Payload>,
    ) -> Result<(), AdalError> {
        let trace = self.trace_root(names::ADAL_PUT_SPAN, path);
        self.put_with_trace(trace, cred, path, data.into())
    }

    /// [`Adal::put`] attached to a live parent trace (e.g. a pool task
    /// inside a batch ingest): the operation becomes a child span of
    /// `parent` instead of minting a new root. With a disabled parent
    /// this behaves exactly like [`Adal::put`].
    pub fn put_traced(
        &self,
        parent: &TraceCtx,
        cred: &Credential,
        path: &str,
        data: impl Into<Payload>,
    ) -> Result<(), AdalError> {
        let trace = if parent.is_enabled() {
            let t = parent.child(names::ADAL_PUT_SPAN);
            t.add_field("path", path);
            t
        } else {
            self.trace_root(names::ADAL_PUT_SPAN, path)
        };
        self.put_with_trace(trace, cred, path, data.into())
    }

    fn put_with_trace(
        &self,
        trace: TraceCtx,
        cred: &Credential,
        path: &str,
        data: Payload,
    ) -> Result<(), AdalError> {
        let span = self.obs.span(&self.ops.put_latency);
        let (mount, parsed) = self.resolve(cred, path, Access::Write)?;
        let len = data.len() as u64;
        match &mount.resilience {
            Some(st) => self.resilient_put(
                &trace,
                st,
                &mount.backend,
                &parsed.project,
                &parsed.key,
                data,
            )?,
            None => mount.backend.put_traced(&trace, &parsed.key, data)?,
        }
        self.ops.puts.inc();
        self.ops.put_bytes.record(len);
        self.project_op(&parsed.project, mount.backend.kind(), "put");
        let dt = span.finish();
        self.project_op_latency(&parsed.project, dt);
        trace.finish();
        Ok(())
    }

    /// Stages a put for a later batched commit: resolution, admission
    /// of resilient writes, and block placement happen now (safely in a
    /// pool worker); the metadata commit that serialises on shared
    /// state is deferred to [`Adal::commit_staged`]. A write staged
    /// here is **not** acknowledgeable until its commit returns Ok.
    pub fn put_stage_traced(
        &self,
        parent: &TraceCtx,
        cred: &Credential,
        path: &str,
        data: impl Into<Payload>,
    ) -> Result<PendingPut, AdalError> {
        let trace = if parent.is_enabled() {
            let t = parent.child(names::ADAL_PUT_SPAN);
            t.add_field("path", path);
            t
        } else {
            self.trace_root(names::ADAL_PUT_SPAN, path)
        };
        let span = self.obs.span(&self.ops.put_latency);
        let (mount, parsed) = self.resolve(cred, path, Access::Write)?;
        let data = data.into();
        let len = data.len() as u64;
        let staged = match &mount.resilience {
            // The resilient path commits (or journals) eagerly: its
            // fan-out, retries, and journaling are self-contained and
            // its ack point is unchanged.
            Some(st) => {
                self.resilient_put(
                    &trace,
                    st,
                    &mount.backend,
                    &parsed.project,
                    &parsed.key,
                    data,
                )?;
                None
            }
            None => Some(mount.backend.stage_put_traced(&trace, &parsed.key, data)?),
        };
        trace.finish();
        Ok(PendingPut {
            backend: mount.backend.clone(),
            staged,
            project: parsed.project,
            kind: mount.backend.kind(),
            len,
            span,
        })
    }

    /// Commits a batch of staged puts, grouping them per backend so a
    /// whole N-file batch pays one namenode lock and one WAL group
    /// commit. Results are in batch order; per-put success metrics and
    /// spans are finalized here, serially, in batch order.
    pub fn commit_staged(&self, pending: Vec<PendingPut>) -> Vec<Result<(), AdalError>> {
        let mut outcomes: Vec<Option<Result<(), BackendError>>> =
            pending.iter().map(|_| None).collect();
        let mut finalize = Vec::with_capacity(pending.len());
        // Group deferred commits by backend instance, preserving order.
        type CommitGroup = (Arc<dyn StorageBackend>, Vec<usize>, Vec<StagedPut>);
        let mut groups: Vec<CommitGroup> = Vec::new();
        for (i, p) in pending.into_iter().enumerate() {
            match p.staged {
                None => outcomes[i] = Some(Ok(())),
                Some(s) => {
                    if let Some((_, idxs, batch)) = groups
                        .iter_mut()
                        .find(|(b, _, _)| Arc::ptr_eq(b, &p.backend))
                    {
                        idxs.push(i);
                        batch.push(s);
                    } else {
                        groups.push((p.backend.clone(), vec![i], vec![s]));
                    }
                }
            }
            finalize.push((p.project, p.kind, p.len, p.span));
        }
        for (backend, idxs, batch) in groups {
            for (i, r) in idxs.into_iter().zip(backend.commit_staged_traced(batch)) {
                outcomes[i] = Some(r);
            }
        }
        outcomes
            .into_iter()
            .zip(finalize)
            .map(|(outcome, (project, kind, len, span))| {
                match outcome.unwrap_or(Ok(())) {
                    Ok(()) => {
                        self.ops.puts.inc();
                        self.ops.put_bytes.record(len);
                        self.project_op(&project, kind, "put");
                        let dt = span.finish();
                        self.project_op_latency(&project, dt);
                        Ok(())
                    }
                    Err(e) => Err(AdalError::Backend(e)),
                }
            })
            .collect()
    }

    /// Fetches an object. On a resilient mount, journaled writes are
    /// readable immediately (read-your-writes), transient faults are
    /// retried, and an open breaker fails the read over to the replica.
    pub fn get(&self, cred: &Credential, path: &str) -> Result<Bytes, AdalError> {
        let trace = self.trace_root(names::ADAL_GET_SPAN, path);
        self.get_with_trace(trace, cred, path)
    }

    /// [`Adal::get`] attached to a live parent trace; see
    /// [`Adal::put_traced`] for the nesting rules.
    pub fn get_traced(
        &self,
        parent: &TraceCtx,
        cred: &Credential,
        path: &str,
    ) -> Result<Bytes, AdalError> {
        let trace = if parent.is_enabled() {
            let t = parent.child(names::ADAL_GET_SPAN);
            t.add_field("path", path);
            t
        } else {
            self.trace_root(names::ADAL_GET_SPAN, path)
        };
        self.get_with_trace(trace, cred, path)
    }

    fn get_with_trace(
        &self,
        trace: TraceCtx,
        cred: &Credential,
        path: &str,
    ) -> Result<Bytes, AdalError> {
        let span = self.obs.span(&self.ops.get_latency);
        let (mount, parsed) = self.resolve(cred, path, Access::Read)?;
        let data = match &mount.resilience {
            Some(st) => self.resilient_get(
                &trace,
                st,
                &mount.backend,
                &parsed.project,
                &parsed.key,
            )?,
            None => mount.backend.get_traced(&trace, &parsed.key)?,
        }
        .into_bytes();
        self.ops.gets.inc();
        self.ops.get_bytes.record(data.len() as u64);
        self.project_op(&parsed.project, mount.backend.kind(), "get");
        let dt = span.finish();
        self.project_op_latency(&parsed.project, dt);
        trace.finish();
        Ok(data)
    }

    /// Metadata for an object (degrades like [`Adal::get`]).
    pub fn stat(&self, cred: &Credential, path: &str) -> Result<EntryMeta, AdalError> {
        let trace = self.trace_root(names::ADAL_STAT_SPAN, path);
        let span = self.obs.span(&self.ops.stat_latency);
        let (mount, parsed) = self.resolve(cred, path, Access::Read)?;
        let meta = match &mount.resilience {
            Some(st) => self.resilient_stat(
                &trace,
                st,
                &mount.backend,
                &parsed.project,
                &parsed.key,
            )?,
            None => mount.backend.stat_traced(&trace, &parsed.key)?,
        };
        self.ops.stats.inc();
        self.project_op(&parsed.project, mount.backend.kind(), "stat");
        let dt = span.finish();
        self.project_op_latency(&parsed.project, dt);
        trace.finish();
        Ok(meta)
    }

    /// Lists keys under `lsdf://project/prefix` (the prefix may be empty
    /// to list a whole project). Backend listing failures surface as
    /// [`AdalError::Backend`]. On a resilient mount the listing merges
    /// journaled (acknowledged but not yet landed) writes.
    pub fn list(&self, cred: &Credential, path: &str) -> Result<Vec<EntryMeta>, AdalError> {
        let trace = self.trace_root(names::ADAL_LIST_SPAN, path);
        let span = self.obs.span(&self.ops.list_latency);
        let (mount, parsed) =
            self.resolve_parsed(cred, LsdfPath::parse_prefix(path)?, Access::Read)?;
        let entries = match &mount.resilience {
            Some(st) => self.resilient_list(
                &trace,
                st,
                &mount.backend,
                &parsed.project,
                &parsed.key,
            )?,
            None => mount.backend.list_traced(&trace, &parsed.key)?,
        };
        self.ops.lists.inc();
        self.project_op(&parsed.project, mount.backend.kind(), "list");
        let dt = span.finish();
        self.project_op_latency(&parsed.project, dt);
        trace.finish();
        Ok(entries)
    }

    /// Deletes an object (requires write access). On a resilient mount a
    /// delete first cancels any journaled write for the key.
    pub fn delete(&self, cred: &Credential, path: &str) -> Result<(), AdalError> {
        let trace = self.trace_root(names::ADAL_DELETE_SPAN, path);
        let (mount, parsed) = self.resolve(cred, path, Access::Write)?;
        match &mount.resilience {
            Some(st) => self.resilient_delete(
                &trace,
                st,
                &mount.backend,
                &parsed.project,
                &parsed.key,
            )?,
            None => mount.backend.delete_traced(&trace, &parsed.key)?,
        }
        self.ops.deletes.inc();
        self.project_op(&parsed.project, mount.backend.kind(), "delete");
        trace.finish();
        Ok(())
    }

    // ----- resilient operation paths -------------------------------------

    fn resilient_put(
        &self,
        ctx: &TraceCtx,
        st: &ResilientState,
        backend: &Arc<dyn StorageBackend>,
        project: &str,
        key: &str,
        data: Payload,
    ) -> Result<(), BackendError> {
        // Write-once applies to acknowledged-but-unlanded writes too.
        if st.journal.lookup(key).is_some() {
            return Err(BackendError::AlreadyExists(key.to_string()));
        }
        if !st.acquire(&self.obs, ctx, project) {
            return self.journal_put(ctx, st, project, key, data);
        }
        // No hashing here: read-back verification compares payload
        // content directly, and the catalog/object-store digest is
        // memoized on the shared handle.
        // Both legs' child spans are reserved here, serially and in a
        // fixed order, BEFORE any parallel hand-off: the trace tree is
        // therefore identical at every worker count.
        let primary_ctx = ctx.child(names::ADAL_PRIMARY_PUT_SPAN);
        let replica_ctx = if st.replica.is_some() {
            ctx.child(names::ADAL_REPLICA_PUT_SPAN)
        } else {
            TraceCtx::disabled()
        };
        let primary = match (&st.replica, self.pool.is_parallel()) {
            // Parallel fan-out: the replica leg shares the payload
            // handle (refcount bump, shared digest cell) and streams
            // concurrently with the primary's verified write.
            (Some(rep), true) => {
                let (primary, replica) = self.pool.join(
                    || {
                        let out = st.with_retries(&self.obs, &primary_ctx, project, |actx| {
                            st.put_verified(actx, backend, key, &data)
                        });
                        primary_ctx.finish();
                        out
                    },
                    || {
                        // lint: allow(payload_copy) -- Payload handle clone: refcount bump
                        let out = rep.put(key, data.clone());
                        replica_ctx.finish();
                        out
                    },
                );
                match (&primary, replica) {
                    // Same best-effort accounting as the serial
                    // replicate() path.
                    (Ok(()), Err(_)) => st.metrics.replica_write_failures.inc(),
                    // The primary write failed: withdraw the speculative
                    // replica copy so failover reads and the journal's
                    // replica-side write-once check cannot observe an
                    // unacknowledged write.
                    (Err(_), Ok(())) => {
                        let _ = rep.delete(key);
                    }
                    _ => {}
                }
                primary
            }
            _ => {
                let out = st.with_retries(&self.obs, &primary_ctx, project, |actx| {
                    st.put_verified(actx, backend, key, &data)
                });
                primary_ctx.finish();
                if out.is_ok() {
                    st.replicate(key, &data);
                }
                replica_ctx.finish();
                out
            }
        };
        match primary {
            Ok(()) => {
                self.drain_step(ctx, st, backend, project);
                Ok(())
            }
            // Retry budget spent on transient faults (or the breaker
            // opened): degrade to the journal rather than bounce the
            // experiment's data.
            Err(e) if e.is_transient() => self.journal_put(ctx, st, project, key, data),
            Err(e) => Err(e),
        }
    }

    /// Acknowledges a write into the redo journal (degraded-write path).
    fn journal_put(
        &self,
        ctx: &TraceCtx,
        st: &ResilientState,
        project: &str,
        key: &str,
        data: Payload,
    ) -> Result<(), BackendError> {
        // The primary cannot be asked whether the key exists, but the
        // replica holds a copy of every landed write: honour write-once
        // as far as it can be checked.
        if let Some(rep) = &st.replica {
            if rep.exists(key) {
                return Err(BackendError::AlreadyExists(key.to_string()));
            }
        }
        if st.journal.push(key, data) {
            st.metrics.journal_enqueued.inc();
            st.sync_journal_gauges();
            ctx.event(
                names::ADAL_JOURNAL_ENQUEUE_EVENT,
                &[("project", project), ("key", key)],
            );
            self.obs
                .event(names::ADAL_JOURNAL_ENQUEUE_EVENT, &[("project", project), ("key", key)]);
            Ok(())
        } else {
            // A full journal must NOT acknowledge: that would risk data
            // loss the caller never hears about.
            Err(BackendError::NoSpace(format!(
                "redo journal for '{project}' is full"
            )))
        }
    }

    fn resilient_get(
        &self,
        ctx: &TraceCtx,
        st: &ResilientState,
        backend: &Arc<dyn StorageBackend>,
        project: &str,
        key: &str,
    ) -> Result<Payload, BackendError> {
        // Read-your-writes for journaled, acknowledged writes.
        if let Some(data) = st.journal.lookup(key) {
            return Ok(data);
        }
        if st.acquire(&self.obs, ctx, project) {
            match st.with_retries(&self.obs, ctx, project, |actx| backend.get_traced(actx, key)) {
                Ok(data) => {
                    self.drain_step(ctx, st, backend, project);
                    return Ok(data);
                }
                Err(e) if e.is_transient() => { /* fall over to the replica */ }
                Err(e) => return Err(e),
            }
        }
        self.failover_read(ctx, st, project, key, |rep| rep.get(key))
    }

    fn resilient_stat(
        &self,
        ctx: &TraceCtx,
        st: &ResilientState,
        backend: &Arc<dyn StorageBackend>,
        project: &str,
        key: &str,
    ) -> Result<EntryMeta, BackendError> {
        if let Some(data) = st.journal.lookup(key) {
            return Ok(EntryMeta {
                key: key.to_string(),
                size: data.len() as u64,
            });
        }
        if st.acquire(&self.obs, ctx, project) {
            match st.with_retries(&self.obs, ctx, project, |actx| backend.stat_traced(actx, key)) {
                Ok(meta) => return Ok(meta),
                Err(e) if e.is_transient() => {}
                Err(e) => return Err(e),
            }
        }
        self.failover_read(ctx, st, project, key, |rep| rep.stat(key))
    }

    fn resilient_list(
        &self,
        ctx: &TraceCtx,
        st: &ResilientState,
        backend: &Arc<dyn StorageBackend>,
        project: &str,
        prefix: &str,
    ) -> Result<Vec<EntryMeta>, BackendError> {
        let landed = if st.acquire(&self.obs, ctx, project) {
            match st.with_retries(&self.obs, ctx, project, |actx| {
                backend.list_traced(actx, prefix)
            }) {
                Ok(entries) => Ok(entries),
                Err(e) if e.is_transient() => {
                    self.failover_read(ctx, st, project, prefix, |rep| rep.list(prefix))
                }
                Err(e) => Err(e),
            }
        } else {
            self.failover_read(ctx, st, project, prefix, |rep| rep.list(prefix))
        }?;
        // Merge acknowledged journal entries; the journal wins on key
        // collisions (it is the newer acknowledged state).
        let mut out: Vec<EntryMeta> = st
            .journal
            .entries_under(prefix)
            .into_iter()
            .map(|(key, size)| EntryMeta { key, size })
            .collect();
        let journaled: std::collections::HashSet<String> =
            out.iter().map(|e| e.key.clone()).collect();
        out.extend(landed.into_iter().filter(|e| !journaled.contains(&e.key)));
        out.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(out)
    }

    fn resilient_delete(
        &self,
        ctx: &TraceCtx,
        st: &ResilientState,
        backend: &Arc<dyn StorageBackend>,
        project: &str,
        key: &str,
    ) -> Result<(), BackendError> {
        // A journaled write never reached the primary or the replica:
        // cancelling it completes the delete.
        if st.journal.remove(key).is_some() {
            st.sync_journal_gauges();
            return Ok(());
        }
        if !st.acquire(&self.obs, ctx, project) {
            return Err(BackendError::Unavailable(format!(
                "backend for '{project}' is cooling down (breaker open)"
            )));
        }
        st.with_retries(&self.obs, ctx, project, |actx| {
            backend.delete_traced(actx, key)
        })?;
        if let Some(rep) = &st.replica {
            // Best effort: the replica copy may or may not exist.
            let _ = rep.delete(key);
        }
        self.drain_step(ctx, st, backend, project);
        Ok(())
    }

    /// Serves a read from the replica, counting the failover.
    fn failover_read<T>(
        &self,
        ctx: &TraceCtx,
        st: &ResilientState,
        project: &str,
        key: &str,
        read: impl FnOnce(&Arc<dyn StorageBackend>) -> Result<T, BackendError>,
    ) -> Result<T, BackendError> {
        let Some(rep) = &st.replica else {
            return Err(BackendError::Unavailable(format!(
                "backend for '{project}' is unavailable and no replica is mounted"
            )));
        };
        let out = read(rep)?;
        st.metrics.failover_reads.inc();
        ctx.event(
            names::ADAL_FAILOVER_READ_EVENT,
            &[("project", project), ("key", key)],
        );
        self.obs
            .event(names::ADAL_FAILOVER_READ_EVENT, &[("project", project), ("key", key)]);
        Ok(out)
    }

    /// Drains the redo journal while the breaker allows it. Called after
    /// successful operations and by [`Adal::drain_journal`]; each landed
    /// entry is verified and replicated like a live put.
    fn drain_step(
        &self,
        ctx: &TraceCtx,
        st: &ResilientState,
        backend: &Arc<dyn StorageBackend>,
        project: &str,
    ) -> usize {
        let mut drained = 0;
        loop {
            if st.journal.depth() == 0 || !st.acquire(&self.obs, ctx, project) {
                break;
            }
            let Some((key, data)) = st.journal.pop() else { break };
            // Zero hashes per journal entry: the landing attempt, the
            // conflict comparison, and the repair re-put all compare
            // payload content directly.
            match st.with_retries(&self.obs, ctx, project, |actx| {
                st.put_verified(actx, backend, &key, &data)
            }) {
                Ok(()) => {
                    drained += 1;
                    st.metrics.journal_drained.inc();
                    st.replicate(&key, &data);
                    self.obs
                        .event(names::ADAL_JOURNAL_DRAIN_LOG_EVENT, &[("project", project), ("key", &key)]);
                }
                Err(BackendError::AlreadyExists(_)) => {
                    // The key landed before the outage. Equal payload:
                    // the drain is a no-op. Different payload: the
                    // journal holds the acknowledged write — repair the
                    // primary (covers torn residue left by a failed
                    // verify cleanup).
                    match backend.get_traced(ctx, &key) {
                        Ok(existing) if existing.content_eq(&data) => {
                            drained += 1;
                            st.metrics.journal_drained.inc();
                        }
                        _ => {
                            st.metrics.journal_conflicts.inc();
                            self.obs.event(
                                names::ADAL_JOURNAL_CONFLICT_LOG_EVENT,
                                &[("project", project), ("key", &key)],
                            );
                            let _ = backend.delete_traced(ctx, &key);
                            match st.with_retries(&self.obs, ctx, project, |actx| {
                                st.put_verified(actx, backend, &key, &data)
                            }) {
                                Ok(()) => {
                                    drained += 1;
                                    st.metrics.journal_drained.inc();
                                    st.replicate(&key, &data);
                                }
                                Err(_) => {
                                    st.journal.requeue_front(key, data);
                                    st.sync_journal_gauges();
                                    break;
                                }
                            }
                        }
                    }
                }
                // Transient exhaustion or the disk filling up: keep the
                // entry and stop this pass.
                Err(e) if e.is_transient() || matches!(e, BackendError::NoSpace(_)) => {
                    st.journal.requeue_front(key, data);
                    st.sync_journal_gauges();
                    break;
                }
                Err(_) => {
                    // Deterministic refusal (e.g. Unsupported): the entry
                    // can never land — drop it as a conflict rather than
                    // wedge the journal forever.
                    st.metrics.journal_conflicts.inc();
                    self.obs.event(
                        names::ADAL_JOURNAL_CONFLICT_LOG_EVENT,
                        &[("project", project), ("key", &key)],
                    );
                }
            }
        }
        if drained > 0 {
            st.sync_journal_gauges();
        }
        drained
    }

    /// Explicitly drains a project's redo journal (e.g. from a recovery
    /// loop after an outage ends). Returns entries landed. Plain mounts
    /// and unknown projects drain nothing.
    pub fn drain_journal(&self, project: &str) -> usize {
        let mount = { self.mounts.read().get(project).cloned() };
        match mount {
            Some(Mount {
                backend,
                resilience: Some(st),
            }) => {
                let trace = self.trace_root(names::ADAL_DRAIN_SPAN, project);
                let drained = self.drain_step(&trace, &st, &backend, project);
                if trace.is_enabled() {
                    trace.add_field("drained", &drained.to_string());
                }
                trace.finish();
                drained
            }
            _ => 0,
        }
    }

    /// Point-in-time health of one project's mount. Plain mounts report
    /// a closed breaker and an empty journal.
    pub fn health(&self, project: &str) -> Option<HealthReport> {
        let mount = { self.mounts.read().get(project).cloned() }?;
        Some(match &mount.resilience {
            Some(st) => HealthReport {
                project: project.to_string(),
                backend: mount.backend.kind(),
                breaker: st.breaker.state(),
                failure_rate: st.breaker.failure_rate(),
                has_replica: st.replica.is_some(),
                journal_depth: st.journal.depth(),
                journal_bytes: st.journal.bytes(),
                retries: st.metrics.retries.get(),
                failover_reads: st.metrics.failover_reads.get(),
            },
            None => HealthReport {
                project: project.to_string(),
                backend: mount.backend.kind(),
                breaker: BreakerState::Closed,
                failure_rate: 0.0,
                has_replica: false,
                journal_depth: 0,
                journal_bytes: 0,
                retries: 0,
                failover_reads: 0,
            },
        })
    }

    /// Health of every mounted project, sorted by project name.
    pub fn health_report(&self) -> Vec<HealthReport> {
        self.projects()
            .into_iter()
            .filter_map(|p| self.health(&p))
            .collect()
    }

    /// Counter snapshot (compatibility view over the obs registry).
    pub fn counters(&self) -> AdalCounters {
        AdalCounters {
            puts: self.ops.puts.get(),
            gets: self.ops.gets.get(),
            metas: self.ops.stats.get() + self.ops.lists.get(),
            denied: self.ops.denied.get(),
        }
    }
}

/// Fluent construction for [`Adal`]: auth provider, ACL, initial
/// mounts, and the obs registry in one chain.
///
/// ```
/// use std::sync::Arc;
/// use lsdf_adal::{Adal, Acl, TokenAuth};
///
/// let auth = Arc::new(TokenAuth::new());
/// auth.register("tok", "alice");
/// let acl = Arc::new(Acl::new());
/// acl.grant("alice", "proj", true);
/// let adal = Adal::builder().auth(auth).acl(acl).build();
/// assert!(adal.projects().is_empty());
/// ```
#[derive(Default)]
pub struct AdalBuilder {
    auth: Option<Arc<dyn AuthProvider>>,
    acl: Option<Arc<Acl>>,
    mounts: Vec<(String, Arc<dyn StorageBackend>)>,
    registry: Option<Arc<Registry>>,
    workers: Option<usize>,
    tracer: Option<Tracer>,
}

impl AdalBuilder {
    /// An empty builder. Defaults: a fresh [`TokenAuth`] with no
    /// tokens, an empty [`Acl`], no mounts, a private registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the authentication provider.
    pub fn auth(mut self, auth: Arc<dyn AuthProvider>) -> Self {
        self.auth = Some(auth);
        self
    }

    /// Sets the ACL.
    pub fn acl(mut self, acl: Arc<Acl>) -> Self {
        self.acl = Some(acl);
        self
    }

    /// Adds an initial project mount.
    pub fn mount(mut self, project: &str, backend: Arc<dyn StorageBackend>) -> Self {
        self.mounts.push((project.to_string(), backend));
        self
    }

    /// Records into a shared obs registry instead of a private one.
    pub fn registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Sets the worker-pool width for resilient replica fan-out.
    /// Defaults to the `LSDF_WORKERS` environment variable (unset =
    /// serial). Results are identical for every worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Attaches a causal tracer: every operation mints a root trace,
    /// subject to the tracer's sampling mode.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Builds the layer and applies the mounts.
    pub fn build(self) -> Adal {
        let auth = self
            .auth
            .unwrap_or_else(|| Arc::new(TokenAuth::new()) as Arc<dyn AuthProvider>);
        let acl = self.acl.unwrap_or_else(|| Arc::new(Acl::new()));
        let registry = self.registry.unwrap_or_default();
        let pool = self
            .workers
            .map(WorkerPool::new)
            .unwrap_or_else(WorkerPool::from_env);
        let mut adal = Adal::with_pool(auth, acl, registry, pool);
        adal.tracer = self.tracer;
        for (project, backend) in self.mounts {
            adal.mount(&project, backend);
        }
        adal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ObjectStoreBackend;
    use lsdf_storage::ObjectStore;

    fn setup() -> (Adal, Credential) {
        let auth = Arc::new(TokenAuth::new());
        auth.register("tok", "garcia");
        let acl = Arc::new(Acl::new());
        acl.grant("garcia", "zebrafish", true);
        acl.grant("garcia", "katrin", false); // read-only
        let adal = Adal::new(auth, acl);
        adal.mount(
            "zebrafish",
            Arc::new(ObjectStoreBackend::new(Arc::new(ObjectStore::new(
                "z",
                u64::MAX,
            )))),
        );
        adal.mount(
            "katrin",
            Arc::new(ObjectStoreBackend::new(Arc::new(ObjectStore::new(
                "k",
                u64::MAX,
            )))),
        );
        (adal, Credential::Token("tok".into()))
    }

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_through_the_layer() {
        let (adal, cred) = setup();
        adal.put(&cred, "lsdf://zebrafish/raw/i1", b("px")).unwrap();
        assert_eq!(adal.get(&cred, "lsdf://zebrafish/raw/i1").unwrap(), b("px"));
        let meta = adal.stat(&cred, "lsdf://zebrafish/raw/i1").unwrap();
        assert_eq!(meta.size, 2);
        let listed = adal.list(&cred, "lsdf://zebrafish/raw/").unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(
            adal.counters(),
            AdalCounters {
                puts: 1,
                gets: 1,
                metas: 2,
                denied: 0
            }
        );
    }

    #[test]
    fn registry_mirrors_the_compat_counters() {
        let (adal, cred) = setup();
        adal.put(&cred, "lsdf://zebrafish/raw/i1", b("px")).unwrap();
        adal.get(&cred, "lsdf://zebrafish/raw/i1").unwrap();
        adal.stat(&cred, "lsdf://zebrafish/raw/i1").unwrap();
        let reg = adal.obs();
        assert_eq!(reg.counter_value(names::ADAL_OPS_TOTAL, &[("op", "put")]), 1);
        assert_eq!(reg.counter_value(names::ADAL_OPS_TOTAL, &[("op", "get")]), 1);
        assert_eq!(reg.counter_value(names::ADAL_OPS_TOTAL, &[("op", "stat")]), 1);
        // Per-project breakdown carries the backend label.
        assert_eq!(
            reg.counter_value(
                names::ADAL_PROJECT_OPS_TOTAL,
                &[("project", "zebrafish"), ("backend", "object-store"), ("op", "put")],
            ),
            1
        );
        // Latency recorded per op.
        let lat = reg.histogram(names::ADAL_OP_LATENCY_NS, &[("op", "put")]);
        assert_eq!(lat.count(), 1);
        // Payload sizes recorded.
        assert_eq!(reg.histogram(names::ADAL_PUT_BYTES, &[]).sum(), 2);
    }

    #[test]
    fn builder_chain_builds_a_working_layer() {
        let auth = Arc::new(TokenAuth::new());
        auth.register("tok", "garcia");
        let acl = Arc::new(Acl::new());
        acl.grant("garcia", "zebrafish", true);
        let reg = Arc::new(Registry::new());
        let adal = Adal::builder()
            .auth(auth)
            .acl(acl)
            .registry(reg.clone())
            .mount(
                "zebrafish",
                Arc::new(ObjectStoreBackend::new(Arc::new(ObjectStore::new(
                    "z",
                    u64::MAX,
                )))),
            )
            .build();
        let cred = Credential::Token("tok".into());
        adal.put(&cred, "lsdf://zebrafish/a", b("1")).unwrap();
        assert_eq!(adal.projects(), vec!["zebrafish"]);
        // The shared registry saw the op.
        assert_eq!(reg.counter_value(names::ADAL_OPS_TOTAL, &[("op", "put")]), 1);
    }

    #[test]
    fn builder_defaults_deny_everything() {
        let adal = Adal::builder().build();
        let r = adal.get(&Credential::Token("any".into()), "lsdf://p/x");
        assert!(matches!(r, Err(AdalError::Auth(_))));
        assert_eq!(adal.counters().denied, 1);
    }

    #[test]
    fn write_denied_on_readonly_project() {
        let (adal, cred) = setup();
        let r = adal.put(&cred, "lsdf://katrin/run1", b("ev"));
        assert!(matches!(r, Err(AdalError::Auth(AuthError::Denied { .. }))));
        assert_eq!(adal.counters().denied, 1);
    }

    #[test]
    fn unknown_project_and_bad_paths() {
        let (adal, cred) = setup();
        // ACL denies before mount resolution for unknown projects.
        assert!(matches!(
            adal.get(&cred, "lsdf://mystery/x"),
            Err(AdalError::Auth(_))
        ));
        assert!(matches!(
            adal.get(&cred, "file:///etc/passwd"),
            Err(AdalError::Path(_))
        ));
    }

    #[test]
    fn bad_credential_rejected() {
        let (adal, _) = setup();
        let r = adal.get(&Credential::Token("nope".into()), "lsdf://zebrafish/x");
        assert!(matches!(
            r,
            Err(AdalError::Auth(AuthError::InvalidCredential))
        ));
    }

    #[test]
    fn remount_swaps_backend_transparently() {
        let (adal, cred) = setup();
        adal.put(&cred, "lsdf://zebrafish/a", b("1")).unwrap();
        assert_eq!(adal.backend_kind("zebrafish"), Some("object-store"));
        // Technology change: remount the project onto a fresh backend
        // (clients keep using the same paths).
        let new_store = Arc::new(ObjectStore::new("z2", u64::MAX));
        new_store.put("a", b("1")).unwrap(); // migrated content
        adal.mount(
            "zebrafish",
            Arc::new(ObjectStoreBackend::new(new_store)),
        );
        assert_eq!(adal.get(&cred, "lsdf://zebrafish/a").unwrap(), b("1"));
    }

    #[test]
    fn projects_enumerated() {
        let (adal, _) = setup();
        assert_eq!(adal.projects(), vec!["katrin", "zebrafish"]);
    }

    // ----- resilience ----------------------------------------------------

    use crate::resilience::BreakerConfig;

    /// Test double: an object store whose next N primary calls fail with
    /// a transient error, and whose next M puts are torn (stored
    /// corrupted while still acknowledged).
    struct ScriptedBackend {
        inner: ObjectStoreBackend,
        fail_budget: Mutex<u64>,
        tear_budget: Mutex<u64>,
    }

    impl ScriptedBackend {
        fn new(name: &str) -> Arc<Self> {
            Arc::new(ScriptedBackend {
                inner: ObjectStoreBackend::new(Arc::new(ObjectStore::new(name, u64::MAX))),
                fail_budget: Mutex::new(0),
                tear_budget: Mutex::new(0),
            })
        }
        fn fail_next(&self, n: u64) {
            *self.fail_budget.lock() = n;
        }
        fn tear_next(&self, n: u64) {
            *self.tear_budget.lock() = n;
        }
        fn trip(&self, budget: &Mutex<u64>) -> bool {
            let mut b = budget.lock();
            if *b > 0 {
                *b -= 1;
                true
            } else {
                false
            }
        }
    }

    impl StorageBackend for ScriptedBackend {
        fn kind(&self) -> &'static str {
            "scripted"
        }
        fn put(&self, key: &str, data: Payload) -> Result<(), BackendError> {
            if self.trip(&self.fail_budget) {
                return Err(BackendError::TransientIo(format!("scripted put '{key}'")));
            }
            if self.trip(&self.tear_budget) {
                // Torn write: mutate a private copy — the shared buffer
                // is immutable — and store it as a fresh payload with a
                // fresh digest cell.
                let mut torn = data.to_vec();
                torn[0] ^= 0xff;
                return self.inner.put(key, Payload::from(torn));
            }
            self.inner.put(key, data)
        }
        fn get(&self, key: &str) -> Result<Payload, BackendError> {
            if self.trip(&self.fail_budget) {
                return Err(BackendError::TransientIo(format!("scripted get '{key}'")));
            }
            self.inner.get(key)
        }
        fn stat(&self, key: &str) -> Result<EntryMeta, BackendError> {
            if self.trip(&self.fail_budget) {
                return Err(BackendError::TransientIo(format!("scripted stat '{key}'")));
            }
            self.inner.stat(key)
        }
        fn delete(&self, key: &str) -> Result<(), BackendError> {
            if self.trip(&self.fail_budget) {
                return Err(BackendError::TransientIo(format!(
                    "scripted delete '{key}'"
                )));
            }
            self.inner.delete(key)
        }
        fn list(&self, prefix: &str) -> Result<Vec<EntryMeta>, BackendError> {
            if self.trip(&self.fail_budget) {
                return Err(BackendError::TransientIo(format!(
                    "scripted list '{prefix}'"
                )));
            }
            self.inner.list(prefix)
        }
    }

    /// Resilient ADAL over a scripted primary + plain replica, with a
    /// small breaker window and the registry pinned to virtual time so
    /// cool-downs are test-controlled.
    fn resilient_setup(
        name: &str,
    ) -> (Adal, Credential, Arc<ScriptedBackend>, Arc<dyn StorageBackend>) {
        let auth = Arc::new(TokenAuth::new());
        auth.register("tok", "garcia");
        let acl = Arc::new(Acl::new());
        acl.grant("garcia", "anka", true);
        let reg = Arc::new(Registry::new());
        reg.set_virtual_time_ns(1);
        let adal = Adal::with_registry(auth, acl, reg);
        let primary = ScriptedBackend::new(name);
        let replica: Arc<dyn StorageBackend> = Arc::new(ObjectStoreBackend::new(Arc::new(
            ObjectStore::new("replica", u64::MAX),
        )));
        let cfg = ResilienceConfig {
            retry: RetryPolicy::new(2, 100, 1_000, 0),
            breaker: BreakerConfig {
                window: 4,
                min_calls: 2,
                failure_rate: 0.5,
                cooldown_ns: 1_000,
                half_open_probes: 1,
            },
            journal_entries: 2,
            ..ResilienceConfig::default()
        };
        adal.mount_resilient("anka", primary.clone(), Some(replica.clone()), cfg);
        (adal, Credential::Token("tok".into()), primary, replica)
    }

    #[test]
    fn resilient_put_retries_through_transient_faults() {
        let (adal, cred, primary, _) = resilient_setup("p1");
        primary.fail_next(1);
        adal.put(&cred, "lsdf://anka/run/f1", b("data")).unwrap();
        assert_eq!(adal.get(&cred, "lsdf://anka/run/f1").unwrap(), b("data"));
        let reg = adal.obs();
        let p = [("project", "anka")];
        assert_eq!(reg.counter_value(names::ADAL_RETRIES_TOTAL, &p), 1);
        assert_eq!(reg.counter_value(names::ADAL_TRANSIENT_OBSERVED_TOTAL, &p), 1);
        assert_eq!(reg.counter_value(names::ADAL_RETRY_EXHAUSTED_TOTAL, &p), 0);
        // The retry schedule was recorded, not slept.
        assert_eq!(reg.histogram(names::ADAL_RETRY_BACKOFF_NS, &p).count(), 1);
    }

    #[test]
    fn torn_write_detected_cleaned_and_retried() {
        let (adal, cred, primary, _) = resilient_setup("p2");
        primary.tear_next(1);
        adal.put(&cred, "lsdf://anka/run/f1", b("payload")).unwrap();
        // The torn first copy was detected via read-back checksum,
        // deleted, and the retry landed the intact payload.
        assert_eq!(adal.get(&cred, "lsdf://anka/run/f1").unwrap(), b("payload"));
        let reg = adal.obs();
        let p = [("project", "anka")];
        assert_eq!(reg.counter_value(names::ADAL_WRITE_VERIFY_FAILURES_TOTAL, &p), 1);
        assert_eq!(reg.counter_value(names::ADAL_RETRIES_TOTAL, &p), 1);
    }

    #[test]
    fn breaker_opens_degrades_and_recovers() {
        let (adal, cred, primary, _) = resilient_setup("p3");
        let reg = adal.obs().clone();
        let p = [("project", "anka")];

        // A healthy write lands on primary and replica.
        adal.put(&cred, "lsdf://anka/a", b("aa")).unwrap();

        // Persistent failure: the retry budget (2 attempts) is spent,
        // the breaker opens, and the acked write degrades to the journal.
        primary.fail_next(u64::MAX / 2);
        adal.put(&cred, "lsdf://anka/b", b("bb")).unwrap();
        assert_eq!(reg.counter_value(names::ADAL_BREAKER_TRANSITIONS_TOTAL, &[("project", "anka"), ("to", "open")]), 1);
        assert_eq!(reg.counter_value(names::ADAL_JOURNAL_ENQUEUED_TOTAL, &p), 1);
        assert_eq!(reg.gauge_value(names::ADAL_JOURNAL_DEPTH, &p), 1);
        let h = adal.health("anka").unwrap();
        assert_eq!(h.breaker, BreakerState::Open);
        assert_eq!(h.journal_depth, 1);
        assert!(h.has_replica);

        // Counter identity: every observed transient is either retried
        // or ends a retry loop.
        assert_eq!(
            reg.counter_value(names::ADAL_TRANSIENT_OBSERVED_TOTAL, &p),
            reg.counter_value(names::ADAL_RETRIES_TOTAL, &p)
                + reg.counter_value(names::ADAL_RETRY_EXHAUSTED_TOTAL, &p)
        );

        // Degraded reads: 'a' fails over to the replica, 'b' is served
        // from the journal (read-your-writes), the listing merges both.
        assert_eq!(adal.get(&cred, "lsdf://anka/a").unwrap(), b("aa"));
        assert_eq!(reg.counter_value(names::ADAL_FAILOVER_READS_TOTAL, &p), 1);
        assert_eq!(adal.get(&cred, "lsdf://anka/b").unwrap(), b("bb"));
        assert_eq!(adal.stat(&cred, "lsdf://anka/b").unwrap().size, 2);
        let listed = adal.list(&cred, "lsdf://anka/").unwrap();
        assert_eq!(
            listed.iter().map(|e| e.key.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );

        // Write-once holds for journaled keys and for replica-landed keys.
        assert!(matches!(
            adal.put(&cred, "lsdf://anka/b", b("x")),
            Err(AdalError::Backend(BackendError::AlreadyExists(_)))
        ));
        assert!(matches!(
            adal.put(&cred, "lsdf://anka/a", b("x")),
            Err(AdalError::Backend(BackendError::AlreadyExists(_)))
        ));

        // The journal is bounded (2 entries): one more degraded write
        // fits, the next is refused rather than silently acked.
        adal.put(&cred, "lsdf://anka/c", b("cc")).unwrap();
        assert!(matches!(
            adal.put(&cred, "lsdf://anka/d", b("dd")),
            Err(AdalError::Backend(BackendError::NoSpace(_)))
        ));

        // Recovery: heal the backend, let the cool-down elapse, drain.
        primary.fail_next(0);
        reg.set_virtual_time_ns(10_000);
        assert_eq!(adal.drain_journal("anka"), 2);
        assert_eq!(reg.counter_value(names::ADAL_BREAKER_TRANSITIONS_TOTAL, &[("project", "anka"), ("to", "half_open")]), 1);
        assert_eq!(reg.counter_value(names::ADAL_BREAKER_TRANSITIONS_TOTAL, &[("project", "anka"), ("to", "closed")]), 1);
        assert_eq!(reg.gauge_value(names::ADAL_JOURNAL_DEPTH, &p), 0);
        let h = adal.health("anka").unwrap();
        assert_eq!(h.breaker, BreakerState::Closed);
        assert_eq!(h.journal_depth, 0);
        // Journaled writes landed on the primary itself.
        assert!(primary.inner.exists("b"));
        assert!(primary.inner.exists("c"));
        assert_eq!(adal.get(&cred, "lsdf://anka/b").unwrap(), b("bb"));
    }

    #[test]
    fn open_breaker_read_without_replica_is_unavailable() {
        let auth = Arc::new(TokenAuth::new());
        auth.register("tok", "garcia");
        let acl = Arc::new(Acl::new());
        acl.grant("garcia", "anka", true);
        let reg = Arc::new(Registry::new());
        reg.set_virtual_time_ns(1);
        let adal = Adal::with_registry(auth, acl, reg);
        let primary = ScriptedBackend::new("p4");
        let cfg = ResilienceConfig {
            retry: RetryPolicy::new(2, 100, 1_000, 0),
            breaker: BreakerConfig {
                window: 4,
                min_calls: 2,
                failure_rate: 0.5,
                cooldown_ns: 1_000,
                half_open_probes: 1,
            },
            ..ResilienceConfig::default()
        };
        adal.mount_resilient("anka", primary.clone(), None, cfg);
        let cred = Credential::Token("tok".into());
        primary.fail_next(u64::MAX / 2);
        // Acked into the journal even with no replica.
        adal.put(&cred, "lsdf://anka/k", b("v")).unwrap();
        // Journaled key still readable; anything else is honestly down.
        assert_eq!(adal.get(&cred, "lsdf://anka/k").unwrap(), b("v"));
        assert!(matches!(
            adal.get(&cred, "lsdf://anka/other"),
            Err(AdalError::Backend(BackendError::Unavailable(_)))
        ));
    }

    #[test]
    fn delete_cancels_journaled_write() {
        let (adal, cred, primary, _) = resilient_setup("p5");
        primary.fail_next(u64::MAX / 2);
        adal.put(&cred, "lsdf://anka/tmp", b("t")).unwrap();
        assert_eq!(adal.health("anka").unwrap().journal_depth, 1);
        adal.delete(&cred, "lsdf://anka/tmp").unwrap();
        assert_eq!(adal.health("anka").unwrap().journal_depth, 0);
        // Nothing to drain once healed.
        primary.fail_next(0);
        adal.obs().set_virtual_time_ns(10_000);
        assert_eq!(adal.drain_journal("anka"), 0);
        assert!(!primary.inner.exists("tmp"));
    }

    #[test]
    fn traced_put_records_attempts_and_retry_events() {
        use lsdf_obs::{TraceConfig, Tracer};
        let auth = Arc::new(TokenAuth::new());
        auth.register("tok", "garcia");
        let acl = Arc::new(Acl::new());
        acl.grant("garcia", "anka", true);
        let reg = Arc::new(Registry::new());
        reg.set_virtual_time_ns(1);
        let tracer = Tracer::new(&reg, TraceConfig::full());
        let adal = Adal::builder()
            .auth(auth)
            .acl(acl)
            .registry(reg.clone())
            .tracer(tracer.clone())
            .build();
        let primary = ScriptedBackend::new("tp");
        let replica: Arc<dyn StorageBackend> = Arc::new(ObjectStoreBackend::new(Arc::new(
            ObjectStore::new("replica-t", u64::MAX),
        )));
        let cfg = ResilienceConfig {
            retry: RetryPolicy::new(3, 100, 1_000, 0),
            ..ResilienceConfig::default()
        };
        adal.mount_resilient("anka", primary.clone(), Some(replica), cfg);
        let cred = Credential::Token("tok".into());
        primary.fail_next(1);
        adal.put(&cred, "lsdf://anka/k1", b("payload")).unwrap();
        let traces = tracer.traces();
        assert_eq!(traces.len(), 1);
        let root = &traces[0].root;
        assert_eq!(root.name, names::ADAL_PUT_SPAN);
        // Both fan-out legs were reserved serially, in a fixed order.
        assert_eq!(root.children[0].name, names::ADAL_PRIMARY_PUT_SPAN);
        assert_eq!(root.children[1].name, names::ADAL_REPLICA_PUT_SPAN);
        // The transient fault cost one extra attempt and one retry event.
        let attempts = root.children[0]
            .children
            .iter()
            .filter(|c| c.name == names::ADAL_ATTEMPT_SPAN)
            .count();
        assert_eq!(attempts, 2);
        let mut retries = 0;
        root.for_each_event(&mut |_, e| {
            if e.name == names::ADAL_RETRY_EVENT {
                retries += 1;
            }
        });
        assert_eq!(retries, 1);
        assert_eq!(
            reg.counter_value(names::ADAL_RETRIES_TOTAL, &[("project", "anka")]),
            1
        );
    }

    #[test]
    fn health_covers_plain_mounts_too() {
        let (adal, _) = setup();
        let h = adal.health("zebrafish").unwrap();
        assert_eq!(h.breaker, BreakerState::Closed);
        assert_eq!(h.journal_depth, 0);
        assert!(!h.has_replica);
        assert!(adal.health("nope").is_none());
        assert_eq!(adal.health_report().len(), 2);
    }
}
