//! The ADAL itself: a registry mapping project mounts to backends, with
//! authentication, authorization and operation accounting on every call.
//!
//! Accounting goes through the `lsdf-obs` registry: each operation
//! bumps `adal_ops_total{op=..}` (plus a per-project
//! `adal_project_ops_total{project=..,op=..}` breakdown) and records
//! its latency into `adal_op_latency_ns{op=..}`. The historical
//! [`AdalCounters`] struct remains as a compatibility view computed
//! from the registry counters.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use lsdf_obs::{Counter, Histogram, Registry};

use crate::auth::{Access, Acl, AuthError, AuthProvider, Credential, TokenAuth};
use crate::backend::{BackendError, EntryMeta, StorageBackend};
use crate::path::{LsdfPath, PathError};

/// Errors surfaced by ADAL operations.
#[derive(Debug, Clone, PartialEq)]
pub enum AdalError {
    /// Malformed path.
    Path(PathError),
    /// Authentication / authorization failure.
    Auth(AuthError),
    /// No backend mounted for the project.
    NoMount(String),
    /// Backend-level failure.
    Backend(BackendError),
}

impl std::fmt::Display for AdalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdalError::Path(e) => write!(f, "path: {e}"),
            AdalError::Auth(e) => write!(f, "auth: {e}"),
            AdalError::NoMount(p) => write!(f, "no backend mounted for project '{p}'"),
            AdalError::Backend(e) => write!(f, "backend: {e}"),
        }
    }
}

impl std::error::Error for AdalError {}

impl From<PathError> for AdalError {
    fn from(e: PathError) -> Self {
        AdalError::Path(e)
    }
}
impl From<AuthError> for AdalError {
    fn from(e: AuthError) -> Self {
        AdalError::Auth(e)
    }
}
impl From<BackendError> for AdalError {
    fn from(e: BackendError) -> Self {
        AdalError::Backend(e)
    }
}

/// Operation counters (the E9 overhead accounting).
///
/// Compatibility view over the obs registry: `puts`/`gets` mirror
/// `adal_ops_total{op=put|get}`, `metas` is the sum of the `stat` and
/// `list` ops, `denied` mirrors `adal_denied_total`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdalCounters {
    /// `put` calls served.
    pub puts: u64,
    /// `get` calls served.
    pub gets: u64,
    /// `stat`/`list`/`exists` calls served.
    pub metas: u64,
    /// Requests rejected by auth.
    pub denied: u64,
}

/// Cached registry handles for the hot path — resolved once at
/// construction so operations only touch atomics.
struct OpMetrics {
    puts: Counter,
    gets: Counter,
    stats: Counter,
    lists: Counter,
    deletes: Counter,
    denied: Counter,
    put_latency: Histogram,
    get_latency: Histogram,
    stat_latency: Histogram,
    list_latency: Histogram,
    put_bytes: Histogram,
    get_bytes: Histogram,
}

impl OpMetrics {
    fn new(reg: &Registry) -> Self {
        let op_counter = |op| reg.counter("adal_ops_total", &[("op", op)]);
        let op_latency = |op| reg.histogram("adal_op_latency_ns", &[("op", op)]);
        OpMetrics {
            puts: op_counter("put"),
            gets: op_counter("get"),
            stats: op_counter("stat"),
            lists: op_counter("list"),
            deletes: op_counter("delete"),
            denied: reg.counter("adal_denied_total", &[]),
            put_latency: op_latency("put"),
            get_latency: op_latency("get"),
            stat_latency: op_latency("stat"),
            list_latency: op_latency("list"),
            put_bytes: reg.histogram("adal_put_bytes", &[]),
            get_bytes: reg.histogram("adal_get_bytes", &[]),
        }
    }
}

/// The Abstract Data Access Layer.
pub struct Adal {
    auth: Arc<dyn AuthProvider>,
    acl: Arc<Acl>,
    mounts: RwLock<HashMap<String, Arc<dyn StorageBackend>>>,
    obs: Arc<Registry>,
    ops: OpMetrics,
}

impl Adal {
    /// Creates an ADAL with the given authentication provider and ACL,
    /// recording into a private obs registry. Use
    /// [`Adal::with_registry`] (or [`Adal::builder`]) to share a
    /// facility-wide registry.
    pub fn new(auth: Arc<dyn AuthProvider>, acl: Arc<Acl>) -> Self {
        Self::with_registry(auth, acl, Arc::new(Registry::new()))
    }

    /// Creates an ADAL recording into `registry`.
    pub fn with_registry(
        auth: Arc<dyn AuthProvider>,
        acl: Arc<Acl>,
        registry: Arc<Registry>,
    ) -> Self {
        let ops = OpMetrics::new(&registry);
        Adal {
            auth,
            acl,
            mounts: RwLock::new(HashMap::new()),
            obs: registry,
            ops,
        }
    }

    /// Starts a fluent [`AdalBuilder`].
    pub fn builder() -> AdalBuilder {
        AdalBuilder::new()
    }

    /// The obs registry this layer records into.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// Mounts a backend under a project name. Remounting replaces the
    /// previous backend (used for transparent technology migrations —
    /// slide 6: "transparent access over background storage and
    /// technology changes").
    pub fn mount(&self, project: &str, backend: Arc<dyn StorageBackend>) {
        self.obs.event(
            "adal_mount",
            &[("project", project), ("backend", backend.kind())],
        );
        self.mounts.write().insert(project.to_string(), backend);
    }

    /// The backend kind currently serving a project.
    pub fn backend_kind(&self, project: &str) -> Option<&'static str> {
        self.mounts.read().get(project).map(|b| b.kind())
    }

    /// Mounted project names, sorted.
    pub fn projects(&self) -> Vec<String> {
        let mut v: Vec<String> = self.mounts.read().keys().cloned().collect();
        v.sort_unstable();
        v
    }

    fn resolve(
        &self,
        cred: &Credential,
        path: &str,
        access: Access,
    ) -> Result<(Arc<dyn StorageBackend>, LsdfPath), AdalError> {
        self.resolve_parsed(cred, LsdfPath::parse(path)?, access)
    }

    fn resolve_parsed(
        &self,
        cred: &Credential,
        parsed: LsdfPath,
        access: Access,
    ) -> Result<(Arc<dyn StorageBackend>, LsdfPath), AdalError> {
        let principal = self.auth.authenticate(cred).inspect_err(|_| {
            self.ops.denied.inc();
        })?;
        self.acl
            .check(&principal, &parsed.project, access)
            .inspect_err(|_| {
                self.ops.denied.inc();
            })?;
        let backend = self
            .mounts
            .read()
            .get(&parsed.project)
            .cloned()
            .ok_or_else(|| AdalError::NoMount(parsed.project.clone()))?;
        Ok((backend, parsed))
    }

    /// Per-project operation breakdown, labelled by backend kind.
    fn project_op(&self, project: &str, backend: &str, op: &str) {
        self.obs
            .counter(
                "adal_project_ops_total",
                &[("project", project), ("backend", backend), ("op", op)],
            )
            .inc();
    }

    /// Stores an object at `lsdf://project/key`.
    pub fn put(&self, cred: &Credential, path: &str, data: Bytes) -> Result<(), AdalError> {
        let span = self.obs.span(&self.ops.put_latency);
        let (backend, parsed) = self.resolve(cred, path, Access::Write)?;
        let len = data.len() as u64;
        backend.put(&parsed.key, data)?;
        self.ops.puts.inc();
        self.ops.put_bytes.record(len);
        self.project_op(&parsed.project, backend.kind(), "put");
        span.finish();
        Ok(())
    }

    /// Fetches an object.
    pub fn get(&self, cred: &Credential, path: &str) -> Result<Bytes, AdalError> {
        let span = self.obs.span(&self.ops.get_latency);
        let (backend, parsed) = self.resolve(cred, path, Access::Read)?;
        let data = backend.get(&parsed.key)?;
        self.ops.gets.inc();
        self.ops.get_bytes.record(data.len() as u64);
        self.project_op(&parsed.project, backend.kind(), "get");
        span.finish();
        Ok(data)
    }

    /// Metadata for an object.
    pub fn stat(&self, cred: &Credential, path: &str) -> Result<EntryMeta, AdalError> {
        let span = self.obs.span(&self.ops.stat_latency);
        let (backend, parsed) = self.resolve(cred, path, Access::Read)?;
        let meta = backend.stat(&parsed.key)?;
        self.ops.stats.inc();
        self.project_op(&parsed.project, backend.kind(), "stat");
        span.finish();
        Ok(meta)
    }

    /// Lists keys under `lsdf://project/prefix` (the prefix may be empty
    /// to list a whole project). Backend listing failures surface as
    /// [`AdalError::Backend`].
    pub fn list(&self, cred: &Credential, path: &str) -> Result<Vec<EntryMeta>, AdalError> {
        let span = self.obs.span(&self.ops.list_latency);
        let (backend, parsed) =
            self.resolve_parsed(cred, LsdfPath::parse_prefix(path)?, Access::Read)?;
        let entries = backend.list(&parsed.key)?;
        self.ops.lists.inc();
        self.project_op(&parsed.project, backend.kind(), "list");
        span.finish();
        Ok(entries)
    }

    /// Deletes an object (requires write access).
    pub fn delete(&self, cred: &Credential, path: &str) -> Result<(), AdalError> {
        let (backend, parsed) = self.resolve(cred, path, Access::Write)?;
        backend.delete(&parsed.key)?;
        self.ops.deletes.inc();
        self.project_op(&parsed.project, backend.kind(), "delete");
        Ok(())
    }

    /// Counter snapshot (compatibility view over the obs registry).
    pub fn counters(&self) -> AdalCounters {
        AdalCounters {
            puts: self.ops.puts.get(),
            gets: self.ops.gets.get(),
            metas: self.ops.stats.get() + self.ops.lists.get(),
            denied: self.ops.denied.get(),
        }
    }
}

/// Fluent construction for [`Adal`]: auth provider, ACL, initial
/// mounts, and the obs registry in one chain.
///
/// ```
/// use std::sync::Arc;
/// use lsdf_adal::{Adal, Acl, TokenAuth};
///
/// let auth = Arc::new(TokenAuth::new());
/// auth.register("tok", "alice");
/// let acl = Arc::new(Acl::new());
/// acl.grant("alice", "proj", true);
/// let adal = Adal::builder().auth(auth).acl(acl).build();
/// assert!(adal.projects().is_empty());
/// ```
#[derive(Default)]
pub struct AdalBuilder {
    auth: Option<Arc<dyn AuthProvider>>,
    acl: Option<Arc<Acl>>,
    mounts: Vec<(String, Arc<dyn StorageBackend>)>,
    registry: Option<Arc<Registry>>,
}

impl AdalBuilder {
    /// An empty builder. Defaults: a fresh [`TokenAuth`] with no
    /// tokens, an empty [`Acl`], no mounts, a private registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the authentication provider.
    pub fn auth(mut self, auth: Arc<dyn AuthProvider>) -> Self {
        self.auth = Some(auth);
        self
    }

    /// Sets the ACL.
    pub fn acl(mut self, acl: Arc<Acl>) -> Self {
        self.acl = Some(acl);
        self
    }

    /// Adds an initial project mount.
    pub fn mount(mut self, project: &str, backend: Arc<dyn StorageBackend>) -> Self {
        self.mounts.push((project.to_string(), backend));
        self
    }

    /// Records into a shared obs registry instead of a private one.
    pub fn registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Builds the layer and applies the mounts.
    pub fn build(self) -> Adal {
        let auth = self
            .auth
            .unwrap_or_else(|| Arc::new(TokenAuth::new()) as Arc<dyn AuthProvider>);
        let acl = self.acl.unwrap_or_else(|| Arc::new(Acl::new()));
        let registry = self.registry.unwrap_or_default();
        let adal = Adal::with_registry(auth, acl, registry);
        for (project, backend) in self.mounts {
            adal.mount(&project, backend);
        }
        adal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ObjectStoreBackend;
    use lsdf_storage::ObjectStore;

    fn setup() -> (Adal, Credential) {
        let auth = Arc::new(TokenAuth::new());
        auth.register("tok", "garcia");
        let acl = Arc::new(Acl::new());
        acl.grant("garcia", "zebrafish", true);
        acl.grant("garcia", "katrin", false); // read-only
        let adal = Adal::new(auth, acl);
        adal.mount(
            "zebrafish",
            Arc::new(ObjectStoreBackend::new(Arc::new(ObjectStore::new(
                "z",
                u64::MAX,
            )))),
        );
        adal.mount(
            "katrin",
            Arc::new(ObjectStoreBackend::new(Arc::new(ObjectStore::new(
                "k",
                u64::MAX,
            )))),
        );
        (adal, Credential::Token("tok".into()))
    }

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_through_the_layer() {
        let (adal, cred) = setup();
        adal.put(&cred, "lsdf://zebrafish/raw/i1", b("px")).unwrap();
        assert_eq!(adal.get(&cred, "lsdf://zebrafish/raw/i1").unwrap(), b("px"));
        let meta = adal.stat(&cred, "lsdf://zebrafish/raw/i1").unwrap();
        assert_eq!(meta.size, 2);
        let listed = adal.list(&cred, "lsdf://zebrafish/raw/").unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(
            adal.counters(),
            AdalCounters {
                puts: 1,
                gets: 1,
                metas: 2,
                denied: 0
            }
        );
    }

    #[test]
    fn registry_mirrors_the_compat_counters() {
        let (adal, cred) = setup();
        adal.put(&cred, "lsdf://zebrafish/raw/i1", b("px")).unwrap();
        adal.get(&cred, "lsdf://zebrafish/raw/i1").unwrap();
        adal.stat(&cred, "lsdf://zebrafish/raw/i1").unwrap();
        let reg = adal.obs();
        assert_eq!(reg.counter_value("adal_ops_total", &[("op", "put")]), 1);
        assert_eq!(reg.counter_value("adal_ops_total", &[("op", "get")]), 1);
        assert_eq!(reg.counter_value("adal_ops_total", &[("op", "stat")]), 1);
        // Per-project breakdown carries the backend label.
        assert_eq!(
            reg.counter_value(
                "adal_project_ops_total",
                &[("project", "zebrafish"), ("backend", "object-store"), ("op", "put")],
            ),
            1
        );
        // Latency recorded per op.
        let lat = reg.histogram("adal_op_latency_ns", &[("op", "put")]);
        assert_eq!(lat.count(), 1);
        // Payload sizes recorded.
        assert_eq!(reg.histogram("adal_put_bytes", &[]).sum(), 2);
    }

    #[test]
    fn builder_chain_builds_a_working_layer() {
        let auth = Arc::new(TokenAuth::new());
        auth.register("tok", "garcia");
        let acl = Arc::new(Acl::new());
        acl.grant("garcia", "zebrafish", true);
        let reg = Arc::new(Registry::new());
        let adal = Adal::builder()
            .auth(auth)
            .acl(acl)
            .registry(reg.clone())
            .mount(
                "zebrafish",
                Arc::new(ObjectStoreBackend::new(Arc::new(ObjectStore::new(
                    "z",
                    u64::MAX,
                )))),
            )
            .build();
        let cred = Credential::Token("tok".into());
        adal.put(&cred, "lsdf://zebrafish/a", b("1")).unwrap();
        assert_eq!(adal.projects(), vec!["zebrafish"]);
        // The shared registry saw the op.
        assert_eq!(reg.counter_value("adal_ops_total", &[("op", "put")]), 1);
    }

    #[test]
    fn builder_defaults_deny_everything() {
        let adal = Adal::builder().build();
        let r = adal.get(&Credential::Token("any".into()), "lsdf://p/x");
        assert!(matches!(r, Err(AdalError::Auth(_))));
        assert_eq!(adal.counters().denied, 1);
    }

    #[test]
    fn write_denied_on_readonly_project() {
        let (adal, cred) = setup();
        let r = adal.put(&cred, "lsdf://katrin/run1", b("ev"));
        assert!(matches!(r, Err(AdalError::Auth(AuthError::Denied { .. }))));
        assert_eq!(adal.counters().denied, 1);
    }

    #[test]
    fn unknown_project_and_bad_paths() {
        let (adal, cred) = setup();
        // ACL denies before mount resolution for unknown projects.
        assert!(matches!(
            adal.get(&cred, "lsdf://mystery/x"),
            Err(AdalError::Auth(_))
        ));
        assert!(matches!(
            adal.get(&cred, "file:///etc/passwd"),
            Err(AdalError::Path(_))
        ));
    }

    #[test]
    fn bad_credential_rejected() {
        let (adal, _) = setup();
        let r = adal.get(&Credential::Token("nope".into()), "lsdf://zebrafish/x");
        assert!(matches!(
            r,
            Err(AdalError::Auth(AuthError::InvalidCredential))
        ));
    }

    #[test]
    fn remount_swaps_backend_transparently() {
        let (adal, cred) = setup();
        adal.put(&cred, "lsdf://zebrafish/a", b("1")).unwrap();
        assert_eq!(adal.backend_kind("zebrafish"), Some("object-store"));
        // Technology change: remount the project onto a fresh backend
        // (clients keep using the same paths).
        let new_store = Arc::new(ObjectStore::new("z2", u64::MAX));
        new_store.put("a", b("1")).unwrap(); // migrated content
        adal.mount(
            "zebrafish",
            Arc::new(ObjectStoreBackend::new(new_store)),
        );
        assert_eq!(adal.get(&cred, "lsdf://zebrafish/a").unwrap(), b("1"));
    }

    #[test]
    fn projects_enumerated() {
        let (adal, _) = setup();
        assert_eq!(adal.projects(), vec!["katrin", "zebrafish"]);
    }
}
