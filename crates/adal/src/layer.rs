//! The ADAL itself: a registry mapping project mounts to backends, with
//! authentication, authorization and operation accounting on every call.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::auth::{Access, Acl, AuthError, AuthProvider, Credential};
use crate::backend::{BackendError, EntryMeta, StorageBackend};
use crate::path::{LsdfPath, PathError};

/// Errors surfaced by ADAL operations.
#[derive(Debug, Clone, PartialEq)]
pub enum AdalError {
    /// Malformed path.
    Path(PathError),
    /// Authentication / authorization failure.
    Auth(AuthError),
    /// No backend mounted for the project.
    NoMount(String),
    /// Backend-level failure.
    Backend(BackendError),
}

impl std::fmt::Display for AdalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdalError::Path(e) => write!(f, "path: {e}"),
            AdalError::Auth(e) => write!(f, "auth: {e}"),
            AdalError::NoMount(p) => write!(f, "no backend mounted for project '{p}'"),
            AdalError::Backend(e) => write!(f, "backend: {e}"),
        }
    }
}

impl std::error::Error for AdalError {}

impl From<PathError> for AdalError {
    fn from(e: PathError) -> Self {
        AdalError::Path(e)
    }
}
impl From<AuthError> for AdalError {
    fn from(e: AuthError) -> Self {
        AdalError::Auth(e)
    }
}
impl From<BackendError> for AdalError {
    fn from(e: BackendError) -> Self {
        AdalError::Backend(e)
    }
}

/// Operation counters (the E9 overhead accounting).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdalCounters {
    /// `put` calls served.
    pub puts: u64,
    /// `get` calls served.
    pub gets: u64,
    /// `stat`/`list`/`exists` calls served.
    pub metas: u64,
    /// Requests rejected by auth.
    pub denied: u64,
}

/// The Abstract Data Access Layer.
pub struct Adal {
    auth: Arc<dyn AuthProvider>,
    acl: Arc<Acl>,
    mounts: RwLock<HashMap<String, Arc<dyn StorageBackend>>>,
    puts: AtomicU64,
    gets: AtomicU64,
    metas: AtomicU64,
    denied: AtomicU64,
}

impl Adal {
    /// Creates an ADAL with the given authentication provider and ACL.
    pub fn new(auth: Arc<dyn AuthProvider>, acl: Arc<Acl>) -> Self {
        Adal {
            auth,
            acl,
            mounts: RwLock::new(HashMap::new()),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            metas: AtomicU64::new(0),
            denied: AtomicU64::new(0),
        }
    }

    /// Mounts a backend under a project name. Remounting replaces the
    /// previous backend (used for transparent technology migrations —
    /// slide 6: "transparent access over background storage and
    /// technology changes").
    pub fn mount(&self, project: &str, backend: Arc<dyn StorageBackend>) {
        self.mounts.write().insert(project.to_string(), backend);
    }

    /// The backend kind currently serving a project.
    pub fn backend_kind(&self, project: &str) -> Option<&'static str> {
        self.mounts.read().get(project).map(|b| b.kind())
    }

    /// Mounted project names, sorted.
    pub fn projects(&self) -> Vec<String> {
        let mut v: Vec<String> = self.mounts.read().keys().cloned().collect();
        v.sort_unstable();
        v
    }

    fn resolve(
        &self,
        cred: &Credential,
        path: &str,
        access: Access,
    ) -> Result<(Arc<dyn StorageBackend>, LsdfPath), AdalError> {
        self.resolve_parsed(cred, LsdfPath::parse(path)?, access)
    }

    fn resolve_parsed(
        &self,
        cred: &Credential,
        parsed: LsdfPath,
        access: Access,
    ) -> Result<(Arc<dyn StorageBackend>, LsdfPath), AdalError> {
        let principal = self.auth.authenticate(cred).inspect_err(|_| {
            self.denied.fetch_add(1, Ordering::Relaxed);
        })?;
        self.acl
            .check(&principal, &parsed.project, access)
            .inspect_err(|_| {
                self.denied.fetch_add(1, Ordering::Relaxed);
            })?;
        let backend = self
            .mounts
            .read()
            .get(&parsed.project)
            .cloned()
            .ok_or_else(|| AdalError::NoMount(parsed.project.clone()))?;
        Ok((backend, parsed))
    }

    /// Stores an object at `lsdf://project/key`.
    pub fn put(&self, cred: &Credential, path: &str, data: Bytes) -> Result<(), AdalError> {
        let (backend, parsed) = self.resolve(cred, path, Access::Write)?;
        backend.put(&parsed.key, data)?;
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Fetches an object.
    pub fn get(&self, cred: &Credential, path: &str) -> Result<Bytes, AdalError> {
        let (backend, parsed) = self.resolve(cred, path, Access::Read)?;
        let data = backend.get(&parsed.key)?;
        self.gets.fetch_add(1, Ordering::Relaxed);
        Ok(data)
    }

    /// Metadata for an object.
    pub fn stat(&self, cred: &Credential, path: &str) -> Result<EntryMeta, AdalError> {
        let (backend, parsed) = self.resolve(cred, path, Access::Read)?;
        let meta = backend.stat(&parsed.key)?;
        self.metas.fetch_add(1, Ordering::Relaxed);
        Ok(meta)
    }

    /// Lists keys under `lsdf://project/prefix` (the prefix may be empty
    /// to list a whole project).
    pub fn list(&self, cred: &Credential, path: &str) -> Result<Vec<EntryMeta>, AdalError> {
        let (backend, parsed) =
            self.resolve_parsed(cred, LsdfPath::parse_prefix(path)?, Access::Read)?;
        self.metas.fetch_add(1, Ordering::Relaxed);
        Ok(backend.list(&parsed.key))
    }

    /// Deletes an object (requires write access).
    pub fn delete(&self, cred: &Credential, path: &str) -> Result<(), AdalError> {
        let (backend, parsed) = self.resolve(cred, path, Access::Write)?;
        backend.delete(&parsed.key)?;
        Ok(())
    }

    /// Counter snapshot.
    pub fn counters(&self) -> AdalCounters {
        AdalCounters {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            metas: self.metas.load(Ordering::Relaxed),
            denied: self.denied.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::TokenAuth;
    use crate::backend::ObjectStoreBackend;
    use lsdf_storage::ObjectStore;

    fn setup() -> (Adal, Credential) {
        let auth = Arc::new(TokenAuth::new());
        auth.register("tok", "garcia");
        let acl = Arc::new(Acl::new());
        acl.grant("garcia", "zebrafish", true);
        acl.grant("garcia", "katrin", false); // read-only
        let adal = Adal::new(auth, acl);
        adal.mount(
            "zebrafish",
            Arc::new(ObjectStoreBackend::new(Arc::new(ObjectStore::new(
                "z",
                u64::MAX,
            )))),
        );
        adal.mount(
            "katrin",
            Arc::new(ObjectStoreBackend::new(Arc::new(ObjectStore::new(
                "k",
                u64::MAX,
            )))),
        );
        (adal, Credential::Token("tok".into()))
    }

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_through_the_layer() {
        let (adal, cred) = setup();
        adal.put(&cred, "lsdf://zebrafish/raw/i1", b("px")).unwrap();
        assert_eq!(adal.get(&cred, "lsdf://zebrafish/raw/i1").unwrap(), b("px"));
        let meta = adal.stat(&cred, "lsdf://zebrafish/raw/i1").unwrap();
        assert_eq!(meta.size, 2);
        let listed = adal.list(&cred, "lsdf://zebrafish/raw/").unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(
            adal.counters(),
            AdalCounters {
                puts: 1,
                gets: 1,
                metas: 2,
                denied: 0
            }
        );
    }

    #[test]
    fn write_denied_on_readonly_project() {
        let (adal, cred) = setup();
        let r = adal.put(&cred, "lsdf://katrin/run1", b("ev"));
        assert!(matches!(r, Err(AdalError::Auth(AuthError::Denied { .. }))));
        assert_eq!(adal.counters().denied, 1);
    }

    #[test]
    fn unknown_project_and_bad_paths() {
        let (adal, cred) = setup();
        // ACL denies before mount resolution for unknown projects.
        assert!(matches!(
            adal.get(&cred, "lsdf://mystery/x"),
            Err(AdalError::Auth(_))
        ));
        assert!(matches!(
            adal.get(&cred, "file:///etc/passwd"),
            Err(AdalError::Path(_))
        ));
    }

    #[test]
    fn bad_credential_rejected() {
        let (adal, _) = setup();
        let r = adal.get(&Credential::Token("nope".into()), "lsdf://zebrafish/x");
        assert!(matches!(
            r,
            Err(AdalError::Auth(AuthError::InvalidCredential))
        ));
    }

    #[test]
    fn remount_swaps_backend_transparently() {
        let (adal, cred) = setup();
        adal.put(&cred, "lsdf://zebrafish/a", b("1")).unwrap();
        assert_eq!(adal.backend_kind("zebrafish"), Some("object-store"));
        // Technology change: remount the project onto a fresh backend
        // (clients keep using the same paths).
        let new_store = Arc::new(ObjectStore::new("z2", u64::MAX));
        new_store.put("a", b("1")).unwrap(); // migrated content
        adal.mount(
            "zebrafish",
            Arc::new(ObjectStoreBackend::new(new_store)),
        );
        assert_eq!(adal.get(&cred, "lsdf://zebrafish/a").unwrap(), b("1"));
    }

    #[test]
    fn projects_enumerated() {
        let (adal, _) = setup();
        assert_eq!(adal.projects(), vec!["katrin", "zebrafish"]);
    }
}
