//! Property tests for the ADAL resilience primitives.
//!
//! Pinned invariants:
//! * a retry backoff schedule is monotone non-decreasing, bounded by
//!   `max_delay_ns`, and bit-identical for a fixed seed;
//! * the circuit breaker never jumps open → closed without passing
//!   through half-open, regardless of the call/outcome sequence.

use lsdf_adal::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
use proptest::prelude::*;

proptest! {
    /// Backoff delays never shrink, never exceed the cap, and replay
    /// exactly for the same seed.
    #[test]
    fn backoff_monotone_bounded_deterministic(
        max_attempts in 1u32..=24,
        base in 1u64..=1_000_000,
        cap_factor in 1u64..=10_000,
        jitter in 0u64..=2_000_000,
        seed in any::<u64>(),
    ) {
        let max_delay = base.saturating_mul(cap_factor);
        let policy = RetryPolicy::new(max_attempts, base, max_delay, jitter);
        let schedule = policy.schedule(seed);
        prop_assert_eq!(schedule.len(), (max_attempts - 1) as usize);
        for pair in schedule.windows(2) {
            prop_assert!(pair[0] <= pair[1], "schedule must be monotone: {:?}", schedule);
        }
        for &d in &schedule {
            prop_assert!(d <= max_delay, "delay {d} exceeds cap {max_delay}");
            prop_assert!(d >= base.min(max_delay), "delay {d} below base");
        }
        prop_assert_eq!(schedule, policy.schedule(seed));
    }

    /// Different seeds are allowed to differ (and with jitter usually
    /// do), but every seed respects the same bounds — this guards the
    /// jitter draw itself against escaping `[0, jitter]`.
    #[test]
    fn backoff_jitter_stays_within_one_base_delay(
        base in 1u64..=1_000_000,
        seed in any::<u64>(),
    ) {
        let cap = base.saturating_mul(1 << 10);
        let policy = RetryPolicy::new(8, base, cap, u64::MAX);
        for (k, d) in policy.schedule(seed).into_iter().enumerate() {
            let raw = base.checked_shl(k as u32).unwrap_or(cap).min(cap);
            // Jitter is clamped to base at construction.
            prop_assert!(d >= raw && d <= raw.saturating_add(base).min(cap));
        }
    }

    /// Drive a breaker with an arbitrary interleaving of acquire/record
    /// events and random clock jumps: the open → closed edge must always
    /// pass through half-open, and closed is only reached from half-open
    /// by completing the probe quota.
    #[test]
    fn breaker_never_closes_without_half_open(
        ops in proptest::collection::vec((any::<bool>(), any::<bool>(), 0u64..5_000), 1..200),
        window in 2usize..=16,
        min_calls in 1usize..=8,
        probes in 1u32..=4,
    ) {
        let breaker = CircuitBreaker::new(BreakerConfig {
            window,
            min_calls: min_calls.min(window),
            failure_rate: 0.5,
            cooldown_ns: 1_000,
            half_open_probes: probes,
        });
        let mut now = 0u64;
        let mut transitions = Vec::new();
        for (do_acquire, success, dt) in ops {
            now += dt;
            if do_acquire {
                let (_, t) = breaker.try_acquire(now);
                if let Some(t) = t {
                    transitions.push(t);
                }
            } else if let Some(t) = breaker.record(now, success) {
                transitions.push(t);
            }
        }
        for t in &transitions {
            prop_assert_ne!(
                (t.from, t.to),
                (BreakerState::Open, BreakerState::Closed),
                "open must never close directly"
            );
            if t.to == BreakerState::Closed {
                prop_assert_eq!(t.from, BreakerState::HalfOpen);
            }
            if t.to == BreakerState::HalfOpen {
                prop_assert_eq!(t.from, BreakerState::Open);
            }
        }
        // Transitions chain: each one starts where the previous ended.
        for pair in transitions.windows(2) {
            prop_assert_eq!(pair[0].to, pair[1].from);
        }
    }
}
