//! Property tests for the shared [`Payload`] handle: the memoized
//! digest is indistinguishable from a fresh hash no matter how the
//! handle is cloned and sliced, and slices are true zero-copy views of
//! the same buffer.

use lsdf_storage::{sha256, Payload};
use proptest::prelude::*;

proptest! {
    /// After any interleaving of clones and zero-copy slices, every
    /// surviving handle reports the digest of the original bytes —
    /// whether the digest was memoized before, between, or after the
    /// clones. This is the soundness condition for hashing once per
    /// acked payload and letting replicas reuse the cell.
    #[test]
    fn memoized_digest_equals_fresh_hash_after_any_clone_slice_sequence(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        picks in proptest::collection::vec(any::<usize>(), 0..8),
        memoize_early in any::<bool>(),
    ) {
        let expected = sha256(&data);
        let root = Payload::new(bytes::Bytes::from(data.clone()));
        if memoize_early {
            prop_assert_eq!(root.digest(), expected);
        }
        let mut handles = vec![root];
        for pick in &picks {
            let src = handles[pick % handles.len()].clone();
            // A zero-copy view of a prefix: same buffer, own range.
            let mid = src.len() / 2;
            let view = src.slice_bytes(0..mid);
            prop_assert_eq!(&view[..], &data[..mid]);
            handles.push(src);
        }
        for h in &handles {
            prop_assert_eq!(h.len(), data.len());
            prop_assert_eq!(h.digest(), expected);
        }
    }

    /// `content_eq` agrees with byte equality for every pair of
    /// payloads, including the pointer-equality fast path hit by
    /// handle clones.
    #[test]
    fn content_eq_agrees_with_byte_equality(
        a in proptest::collection::vec(any::<u8>(), 0..128),
        b in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let pa = Payload::new(bytes::Bytes::from(a.clone()));
        let pb = Payload::new(bytes::Bytes::from(b.clone()));
        prop_assert_eq!(pa.content_eq(&pb), a == b);
        prop_assert!(pa.content_eq(&pa.clone()));
    }
}
