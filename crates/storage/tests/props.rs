//! Property tests: checksum correctness under chunking, object-store byte
//! accounting, and the HSM "never loses an object" invariant.

use std::sync::Arc;

use bytes::Bytes;
use lsdf_storage::{sha256, Hsm, MigrationPolicy, ObjectStore, Sha256, Tier};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing over arbitrary chunkings equals one-shot.
    #[test]
    fn sha256_chunking_invariance(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        cuts in prop::collection::vec(0usize..2048, 0..8),
    ) {
        let whole = sha256(&data);
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c.min(data.len())).collect();
        cuts.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for c in cuts {
            h.update(&data[prev..c]);
            prev = c;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), whole);
    }

    /// used() always equals the sum of live object sizes, across an
    /// arbitrary interleaving of puts and deletes.
    #[test]
    fn store_accounting_is_exact(ops in prop::collection::vec((0u8..2, 0usize..30, 1usize..200), 1..120)) {
        let store = ObjectStore::new("t", u64::MAX);
        let mut live: std::collections::HashMap<String, u64> = Default::default();
        for (op, keyi, size) in ops {
            let key = format!("k{keyi}");
            if op == 0 {
                let res = store.put(&key, Bytes::from(vec![1u8; size]));
                match live.entry(key.clone()) {
                    std::collections::hash_map::Entry::Occupied(_) => {
                        prop_assert!(res.is_err(), "WORM violated for {key}");
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        prop_assert!(res.is_ok());
                        v.insert(size as u64);
                    }
                }
            } else {
                let res = store.delete(&key);
                if live.remove(&key).is_some() {
                    prop_assert!(res.is_ok());
                } else {
                    prop_assert!(res.is_err());
                }
            }
        }
        prop_assert_eq!(store.used(), live.values().sum::<u64>());
        prop_assert_eq!(store.len(), live.len());
    }

    /// After arbitrary put/read/migrate sequences, every ingested object is
    /// still readable with its original content, and tier states match the
    /// two stores' contents.
    #[test]
    fn hsm_never_loses_objects(
        sizes in prop::collection::vec(1usize..120, 1..40),
        reads in prop::collection::vec(0usize..40, 0..40),
        policy_idx in 0usize..3,
        migrate_every in 1usize..10,
    ) {
        let policy = [
            MigrationPolicy::OldestFirst,
            MigrationPolicy::LeastRecentlyUsed,
            MigrationPolicy::LargestFirst,
        ][policy_idx];
        let disk = Arc::new(ObjectStore::new("disk", 2_000));
        let tape = Arc::new(ObjectStore::new("tape", u64::MAX));
        let hsm = Hsm::new(disk.clone(), tape.clone(), 0.4, 0.7, policy);

        for (i, &sz) in sizes.iter().enumerate() {
            hsm.put(&format!("o{i}"), Bytes::from(vec![(i % 251) as u8; sz])).unwrap();
            if i % migrate_every == 0 {
                hsm.run_migration().unwrap();
            }
            if let Some(&r) = reads.get(i) {
                let key = format!("o{}", r % (i + 1));
                let data = hsm.get(&key).unwrap();
                prop_assert_eq!(data.len(), sizes[r % (i + 1)]);
            }
        }
        hsm.run_migration().unwrap();
        // Full audit: content intact, tier bookkeeping consistent.
        for (i, &sz) in sizes.iter().enumerate() {
            let key = format!("o{i}");
            let tier = hsm.tier_of(&key).unwrap();
            match tier {
                Tier::Disk => prop_assert!(disk.contains(&key) && !tape.contains(&key)),
                Tier::Tape => prop_assert!(tape.contains(&key) && !disk.contains(&key)),
            }
            let data = hsm.get(&key).unwrap();
            prop_assert_eq!(data, Bytes::from(vec![(i % 251) as u8; sz]));
        }
    }
}
