//! [`Payload`] — the shared, immutable byte buffer the whole write path
//! hands around instead of copying.
//!
//! A payload wraps a [`Bytes`] buffer (refcounted, immutable) together
//! with a lazily-memoized SHA-256 digest. Cloning a payload is a
//! refcount bump that *shares* the digest cell, so however many layers
//! touch one acked write — admission, the ADAL fan-out, a replica, the
//! object store's catalog — the digest is computed at most once and the
//! bytes are copied exactly zero times.
//!
//! ## Ownership rules
//!
//! * The buffer is immutable for the payload's whole life. Anything that
//!   needs to mutate bytes (e.g. torn-write fault injection) must build
//!   a **new** payload from a private copy; the fresh payload gets a
//!   fresh digest cell, so a substituted buffer can never inherit the
//!   original's memoized digest and dodge verification.
//! * [`Payload::slice_bytes`] shares the parent buffer (a DFS block is a
//!   view into the file payload, not a copy).
//! * Deep copies and digest computations are counted in process-global
//!   counters ([`payload_deep_copies`], [`payload_digests_computed`]) so
//!   tests can assert the zero-copy / hash-once contract end to end.

use std::ops::{Deref, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;

use crate::checksum::{sha256, Digest};

/// Process-global count of SHA-256 digests actually computed (cache
/// misses). Memoized hits do not count.
static DIGESTS_COMPUTED: AtomicU64 = AtomicU64::new(0);
/// Process-global count of deep byte copies made while constructing
/// payloads (e.g. [`Payload::from`] on a borrowed slice).
static DEEP_COPIES: AtomicU64 = AtomicU64::new(0);

/// Digests computed so far, process-wide. Tests diff this around an
/// ingest to prove "exactly one SHA-256 per acked payload".
pub fn payload_digests_computed() -> u64 {
    DIGESTS_COMPUTED.load(Ordering::Relaxed)
}

/// Deep copies made so far, process-wide. Tests diff this around an
/// ingest to prove "zero payload copies on the success path".
pub fn payload_deep_copies() -> u64 {
    DEEP_COPIES.load(Ordering::Relaxed)
}

/// A shared, immutable byte buffer with a memoized SHA-256 digest.
///
/// ```
/// use lsdf_storage::Payload;
/// use bytes::Bytes;
///
/// let p = Payload::from(Bytes::from_static(b"pixels"));
/// let q = p.clone();              // refcount bump, shares the digest cell
/// assert_eq!(p.digest(), q.digest()); // hashed once, memoized
/// assert_eq!(&p[..], b"pixels");
/// ```
#[derive(Clone)]
pub struct Payload {
    bytes: Bytes,
    digest: Arc<OnceLock<Digest>>,
}

impl Payload {
    /// Wraps an owned buffer; zero-copy.
    pub fn new(bytes: Bytes) -> Self {
        Payload {
            bytes,
            digest: Arc::new(OnceLock::new()),
        }
    }

    /// The SHA-256 digest, computed on first call and memoized; clones
    /// made before or after share the cell, so a payload family is
    /// hashed at most once.
    pub fn digest(&self) -> Digest {
        *self.digest.get_or_init(|| {
            DIGESTS_COMPUTED.fetch_add(1, Ordering::Relaxed);
            sha256(&self.bytes)
        })
    }

    /// The memoized digest if it has already been computed.
    pub fn digest_if_computed(&self) -> Option<Digest> {
        self.digest.get().copied()
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Borrow the underlying buffer.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Unwraps into the underlying buffer (zero-copy; the digest cell is
    /// dropped with the last clone).
    pub fn into_bytes(self) -> Bytes {
        self.bytes
    }

    /// A zero-copy view of `range` sharing the parent buffer — how DFS
    /// block chunks reference the file payload without copying. The view
    /// is plain [`Bytes`]: its content differs from the parent's, so it
    /// carries no digest cell.
    pub fn slice_bytes(&self, range: impl RangeBounds<usize>) -> Bytes {
        self.bytes.slice(range)
    }

    /// Cheap content equality: identical buffers (same pointer and
    /// length) compare equal in O(1); distinct buffers fall back to a
    /// byte comparison. This is how write verification compares a
    /// read-back against the source without hashing either side.
    pub fn content_eq(&self, other: &Payload) -> bool {
        let (a, b) = (&self.bytes, &other.bytes);
        (a.as_ptr() == b.as_ptr() && a.len() == b.len()) || a == b
    }
}

impl From<Bytes> for Payload {
    fn from(bytes: Bytes) -> Self {
        Payload::new(bytes)
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::new(Bytes::from(v))
    }
}

impl From<&[u8]> for Payload {
    /// Copies the borrowed slice into an owned buffer — the one counted
    /// deep copy, reserved for legacy `&[u8]` entry points.
    fn from(slice: &[u8]) -> Self {
        DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
        Payload::new(Bytes::copy_from_slice(slice)) // lint: allow(payload_copy) -- the counted legacy entry point
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.bytes
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.content_eq(other)
    }
}

impl Eq for Payload {}

impl PartialEq<Bytes> for Payload {
    fn eq(&self, other: &Bytes) -> bool {
        &self.bytes == other
    }
}

impl PartialEq<Payload> for Bytes {
    fn eq(&self, other: &Payload) -> bool {
        self == &other.bytes
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.bytes.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.bytes.as_ref() == *other
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Payload")
            .field("len", &self.bytes.len())
            .field("digest", &self.digest.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Payload {
        Payload::new(Bytes::copy_from_slice(s.as_bytes()))
    }

    #[test]
    fn digest_is_memoized_across_clones() {
        let a = p("zebrafish");
        let before = payload_digests_computed();
        let b = a.clone();
        let d1 = a.digest();
        let d2 = b.digest();
        assert_eq!(d1, d2);
        assert_eq!(d1, sha256(b"zebrafish"));
        // Clones share the cell in both directions: the second call is
        // a cache hit no matter which clone computed first.
        assert!(payload_digests_computed() - before <= 1);
        assert_eq!(b.digest_if_computed(), Some(d1));
    }

    #[test]
    fn clone_shares_the_buffer() {
        let a = p("shared");
        let b = a.clone();
        assert_eq!(a.bytes().as_ptr(), b.bytes().as_ptr());
        assert!(a.content_eq(&b));
    }

    #[test]
    fn slice_is_a_view_into_the_parent() {
        let a = p("0123456789");
        let s = a.slice_bytes(2..6);
        assert_eq!(&s[..], b"2345");
        // Same allocation: the view's pointer sits inside the parent's.
        let base = a.bytes().as_ptr() as usize;
        let view = s.as_ptr() as usize;
        assert_eq!(view, base + 2);
    }

    #[test]
    fn equality_covers_bytes_and_slices() {
        let a = p("abc");
        assert_eq!(a, Bytes::from_static(b"abc"));
        assert_eq!(Bytes::from_static(b"abc"), a);
        assert_eq!(a, b"abc"[..]);
        assert_ne!(a, p("abd"));
        assert_eq!(a, a.clone());
    }

    #[test]
    fn borrowed_slice_entry_point_counts_a_deep_copy() {
        let before = payload_deep_copies();
        let a = Payload::from(&b"legacy"[..]);
        assert_eq!(a, b"legacy"[..]);
        assert_eq!(payload_deep_copies() - before, 1);
    }

    #[test]
    fn into_bytes_round_trips_without_copy() {
        let a = p("buffer");
        let ptr = a.bytes().as_ptr();
        let b = a.into_bytes();
        assert_eq!(b.as_ptr(), ptr);
    }
}
