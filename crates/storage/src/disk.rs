//! Disk and storage-array performance models.
//!
//! The LSDF's two disk systems (IBM 1.4 PB, DDN 0.5 PB — paper slide 7)
//! are modelled at the level that matters for facility-scale questions:
//! seek/settle overhead per request plus sustained streaming bandwidth,
//! aggregated across array spindles with a RAID efficiency factor.

use lsdf_sim::SimDuration;

/// A single-spindle disk model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Average positioning (seek + rotational) time per request.
    pub seek: SimDuration,
    /// Sustained transfer rate in bytes per second.
    pub stream_bps: f64,
}

impl DiskModel {
    /// A nearline 7.2k SATA disk typical of 2010-era archive arrays.
    pub fn nearline_sata() -> Self {
        DiskModel {
            seek: SimDuration::from_millis(12),
            stream_bps: 120e6,
        }
    }

    /// A 15k SAS disk typical of 2010-era performance tiers.
    pub fn performance_sas() -> Self {
        DiskModel {
            seek: SimDuration::from_millis(5),
            stream_bps: 180e6,
        }
    }

    /// Service time for one contiguous request of `bytes`.
    pub fn service_time(&self, bytes: u64) -> SimDuration {
        self.seek + SimDuration::from_secs_f64(bytes as f64 / self.stream_bps)
    }

    /// Effective throughput (bytes/s) for a stream of `request_bytes`-sized
    /// requests, including per-request seek overhead.
    pub fn effective_bps(&self, request_bytes: u64) -> f64 {
        let t = self.service_time(request_bytes).as_secs_f64();
        if t == 0.0 {
            f64::INFINITY
        } else {
            request_bytes as f64 / t
        }
    }
}

/// An array of identical disks behind a RAID controller.
#[derive(Debug, Clone, Copy)]
pub struct ArrayModel {
    /// Per-spindle model.
    pub disk: DiskModel,
    /// Number of data-bearing spindles.
    pub spindles: u32,
    /// Fraction of aggregate raw bandwidth delivered after RAID and
    /// controller overheads, in `(0, 1]`.
    pub raid_efficiency: f64,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
}

impl ArrayModel {
    /// The paper's IBM system: 1.4 PB usable, modelled as 700 nearline
    /// spindles behind RAID-6.
    pub fn lsdf_ibm() -> Self {
        ArrayModel {
            disk: DiskModel::nearline_sata(),
            spindles: 700,
            raid_efficiency: 0.75,
            capacity_bytes: 1_400 * 1_000_000_000_000,
        }
    }

    /// The paper's DDN system: 0.5 PB usable, 250 spindles.
    pub fn lsdf_ddn() -> Self {
        ArrayModel {
            disk: DiskModel::nearline_sata(),
            spindles: 250,
            raid_efficiency: 0.75,
            capacity_bytes: 500 * 1_000_000_000_000,
        }
    }

    /// Aggregate sustained streaming bandwidth, bytes/s.
    pub fn aggregate_bps(&self) -> f64 {
        self.disk.stream_bps * f64::from(self.spindles) * self.raid_efficiency
    }

    /// Time to write `bytes` as a large sequential stream spread over the
    /// array.
    pub fn stream_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.aggregate_bps())
    }

    /// Effective random-access throughput when the workload issues
    /// `concurrent` parallel requests of `request_bytes` each (bounded by
    /// spindle count).
    pub fn random_bps(&self, request_bytes: u64, concurrent: u32) -> f64 {
        let lanes = concurrent.min(self.spindles);
        self.disk.effective_bps(request_bytes) * f64::from(lanes) * self.raid_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_combines_seek_and_stream() {
        let d = DiskModel {
            seek: SimDuration::from_millis(10),
            stream_bps: 100e6,
        };
        // 100 MB at 100 MB/s = 1 s + 10 ms seek.
        let t = d.service_time(100_000_000);
        assert!((t.as_secs_f64() - 1.01).abs() < 1e-9);
    }

    #[test]
    fn small_requests_are_seek_bound() {
        let d = DiskModel::nearline_sata();
        // 4 KB requests: effective rate collapses to ~4KB/12ms ≈ 0.33 MB/s.
        let eff = d.effective_bps(4096);
        assert!(eff < 1e6, "effective {eff} B/s should be seek-bound");
        // 256 MB requests approach the streaming rate.
        let big = d.effective_bps(256_000_000);
        assert!(big > 0.9 * d.stream_bps);
    }

    #[test]
    fn lsdf_arrays_have_paper_capacities() {
        assert_eq!(ArrayModel::lsdf_ibm().capacity_bytes, 1_400_000_000_000_000);
        assert_eq!(ArrayModel::lsdf_ddn().capacity_bytes, 500_000_000_000_000);
    }

    #[test]
    fn array_aggregates_spindles() {
        let a = ArrayModel::lsdf_ibm();
        // 700 * 120 MB/s * 0.75 = 63 GB/s aggregate.
        assert!((a.aggregate_bps() - 63e9).abs() < 1e6);
        // Writing a day's microscopy output (2 TB) takes about 32 s of pure
        // array time — the array is never the ingest bottleneck; the
        // network is (10 GE ≈ 1.25 GB/s).
        let t = a.stream_time(2_000_000_000_000);
        assert!(t.as_secs_f64() < 60.0);
    }

    #[test]
    fn random_bps_bounded_by_spindles() {
        let a = ArrayModel::lsdf_ddn();
        let few = a.random_bps(1_000_000, 10);
        let many = a.random_bps(1_000_000, 10_000);
        assert!(many > few);
        // Beyond spindle count, no further scaling.
        assert_eq!(a.random_bps(1_000_000, 250), a.random_bps(1_000_000, 10_000));
    }
}
