//! The object store: named, checksummed, write-once objects holding real
//! bytes.
//!
//! This is the in-memory stand-in for the LSDF's GPFS-backed disk systems.
//! Objects are write-once (matching the paper's "data: write once, read
//! many — persistent" model on slide 8); deletion exists for lifecycle
//! management but overwriting does not. Every object carries its SHA-256
//! digest, captured at ingest and re-verifiable on read.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use crate::checksum::Digest;
use crate::payload::Payload;

/// Identifies an object within a store (monotonically assigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

/// Immutable metadata kept per object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// The object's id.
    pub id: ObjectId,
    /// Full key (path-like name) of the object.
    pub key: String,
    /// Payload size in bytes.
    pub size: u64,
    /// SHA-256 of the payload, computed at put time.
    pub digest: Digest,
}

/// Errors from object-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The key already holds an object (objects are write-once).
    AlreadyExists(String),
    /// No object under the key.
    NotFound(String),
    /// The store's byte capacity would be exceeded.
    CapacityExceeded {
        /// Requested payload size.
        requested: u64,
        /// Remaining free bytes.
        free: u64,
    },
    /// Read-back digest did not match the ingest digest.
    ChecksumMismatch(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::AlreadyExists(k) => write!(f, "object '{k}' already exists (WORM)"),
            StoreError::NotFound(k) => write!(f, "object '{k}' not found"),
            StoreError::CapacityExceeded { requested, free } => {
                write!(f, "capacity exceeded: need {requested} bytes, {free} free")
            }
            StoreError::ChecksumMismatch(k) => write!(f, "checksum mismatch reading '{k}'"),
        }
    }
}

impl std::error::Error for StoreError {}

struct Stored {
    meta: ObjectMeta,
    data: Payload,
}

struct StoreInner {
    by_key: BTreeMap<String, Stored>,
    used: u64,
    next_id: u64,
    puts: u64,
    gets: u64,
}

/// A thread-safe, capacity-bounded, write-once object store.
pub struct ObjectStore {
    name: String,
    capacity: u64,
    inner: RwLock<StoreInner>,
}

impl ObjectStore {
    /// Creates a store with a byte capacity (use `u64::MAX` for unbounded).
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        ObjectStore {
            name: name.into(),
            capacity,
            inner: RwLock::new(StoreInner {
                by_key: BTreeMap::new(),
                used: 0,
                next_id: 0,
                puts: 0,
                gets: 0,
            }),
        }
    }

    /// The store's configured name (e.g. `"storage-ibm"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn used(&self) -> u64 {
        self.inner.read().used
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.inner.read().by_key.len()
    }

    /// True when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stores `data` under `key`; write-once semantics. The ingest
    /// digest is the payload's memoized SHA-256 — if an upstream layer
    /// (ADAL verification, the metadata catalog) already hashed this
    /// payload family, no second hash happens here.
    pub fn put(&self, key: &str, data: impl Into<Payload>) -> Result<ObjectMeta, StoreError> {
        let data = data.into();
        // Hash (or hit the memo) outside the write lock.
        let digest = data.digest();
        let size = data.len() as u64;
        let mut inner = self.inner.write();
        if inner.by_key.contains_key(key) {
            return Err(StoreError::AlreadyExists(key.to_string()));
        }
        let free = self.capacity - inner.used;
        if size > free {
            return Err(StoreError::CapacityExceeded {
                requested: size,
                free,
            });
        }
        let id = ObjectId(inner.next_id);
        inner.next_id += 1;
        let meta = ObjectMeta {
            id,
            key: key.to_string(),
            size,
            digest,
        };
        inner.by_key.insert(
            key.to_string(),
            Stored {
                meta: meta.clone(),
                data,
            },
        );
        inner.used += size;
        inner.puts += 1;
        Ok(meta)
    }

    /// Fetches the payload, verifying its checksum. Payload buffers are
    /// immutable, so corruption in this model is always a *substituted*
    /// buffer (e.g. a torn write) whose fresh digest cell re-hashes on
    /// first use — the memoized comparison here stays sound while an
    /// untorn read-back costs zero hashes.
    pub fn get(&self, key: &str) -> Result<Payload, StoreError> {
        let mut inner = self.inner.write();
        inner.gets += 1;
        let stored = inner
            .by_key
            .get(key)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
        if stored.data.digest() != stored.meta.digest {
            return Err(StoreError::ChecksumMismatch(key.to_string()));
        }
        // lint: allow(payload_copy) -- Payload handle clone: refcount bump
        Ok(stored.data.clone())
    }

    /// Fetches metadata only (no checksum verification).
    pub fn stat(&self, key: &str) -> Result<ObjectMeta, StoreError> {
        self.inner
            .read()
            .by_key
            .get(key)
            .map(|s| s.meta.clone())
            .ok_or_else(|| StoreError::NotFound(key.to_string()))
    }

    /// True if the key exists.
    pub fn contains(&self, key: &str) -> bool {
        self.inner.read().by_key.contains_key(key)
    }

    /// Removes an object, freeing its capacity. Part of lifecycle
    /// management (HSM migration), not of the user-facing WORM contract.
    pub fn delete(&self, key: &str) -> Result<ObjectMeta, StoreError> {
        let mut inner = self.inner.write();
        let stored = inner
            .by_key
            .remove(key)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
        inner.used -= stored.meta.size;
        Ok(stored.meta)
    }

    /// Lists keys beginning with `prefix`, in lexicographic order.
    pub fn list(&self, prefix: &str) -> Vec<ObjectMeta> {
        let inner = self.inner.read();
        inner
            .by_key
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, s)| s.meta.clone())
            .collect()
    }

    /// `(puts, gets)` counters — cheap instrumentation for the ADAL
    /// overhead experiment (E9).
    pub fn op_counts(&self) -> (u64, u64) {
        let inner = self.inner.read();
        (inner.puts, inner.gets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::sha256;
    use bytes::Bytes;

    fn payload(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_roundtrip_with_checksum() {
        let store = ObjectStore::new("t", u64::MAX);
        let meta = store.put("proj/a.img", payload("pixels")).unwrap();
        assert_eq!(meta.size, 6);
        assert_eq!(meta.digest, sha256(b"pixels"));
        assert_eq!(store.get("proj/a.img").unwrap(), payload("pixels"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.used(), 6);
    }

    #[test]
    fn worm_overwrite_rejected() {
        let store = ObjectStore::new("t", u64::MAX);
        store.put("k", payload("v1")).unwrap();
        assert_eq!(
            store.put("k", payload("v2")),
            Err(StoreError::AlreadyExists("k".into()))
        );
        assert_eq!(store.get("k").unwrap(), payload("v1"));
    }

    #[test]
    fn capacity_enforced_and_freed_by_delete() {
        let store = ObjectStore::new("t", 10);
        store.put("a", payload("12345")).unwrap();
        assert!(matches!(
            store.put("b", payload("1234567")),
            Err(StoreError::CapacityExceeded { requested: 7, free: 5 })
        ));
        store.delete("a").unwrap();
        assert_eq!(store.used(), 0);
        store.put("b", payload("1234567890")).unwrap();
        assert_eq!(store.used(), 10);
    }

    #[test]
    fn missing_key_errors() {
        let store = ObjectStore::new("t", u64::MAX);
        assert_eq!(store.get("x"), Err(StoreError::NotFound("x".into())));
        assert_eq!(store.stat("x"), Err(StoreError::NotFound("x".into())));
        assert_eq!(store.delete("x"), Err(StoreError::NotFound("x".into())));
        assert!(!store.contains("x"));
    }

    #[test]
    fn list_by_prefix_is_sorted() {
        let store = ObjectStore::new("t", u64::MAX);
        for k in ["p1/b", "p1/a", "p2/z", "p1/c"] {
            store.put(k, payload("x")).unwrap();
        }
        let keys: Vec<String> = store.list("p1/").into_iter().map(|m| m.key).collect();
        assert_eq!(keys, vec!["p1/a", "p1/b", "p1/c"]);
        assert_eq!(store.list("p3/").len(), 0);
        assert_eq!(store.list("").len(), 4);
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let store = ObjectStore::new("t", u64::MAX);
        let a = store.put("a", payload("x")).unwrap();
        let b = store.put("b", payload("y")).unwrap();
        assert!(b.id > a.id);
    }

    #[test]
    fn op_counters_track() {
        let store = ObjectStore::new("t", u64::MAX);
        store.put("a", payload("x")).unwrap();
        let _ = store.get("a");
        let _ = store.get("a");
        assert_eq!(store.op_counts(), (1, 2));
    }

    #[test]
    fn concurrent_puts_are_safe() {
        let store = std::sync::Arc::new(ObjectStore::new("t", u64::MAX));
        std::thread::scope(|s| {
            for t in 0..8 {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        store
                            .put(&format!("t{t}/obj{i}"), payload("data"))
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(store.len(), 400);
        assert_eq!(store.used(), 1600);
    }
}
