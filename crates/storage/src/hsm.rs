//! Hierarchical storage management: the disk ↔ tape tiering layer.
//!
//! The paper's facility keeps hot data on the disk arrays and uses the tape
//! library for "archive and backup" (slide 7); climate data arrives with
//! "archival quality" requirements (slide 14). The [`Hsm`] catalog tracks
//! where every object lives, migration policies choose what to demote when
//! the disk tier crosses a high watermark, and recalls promote objects back
//! to disk. The object's bytes really move between two [`ObjectStore`]s, so
//! integrity (checksums) is preserved across tier changes.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use lsdf_obs::{Counter, Histogram, Registry, TraceCtx};

use crate::checksum::Digest;
use crate::object::{ObjectStore, StoreError};
use crate::payload::Payload;
use lsdf_obs::names;

/// Which tier currently holds an object's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// On the disk arrays — immediately readable.
    Disk,
    /// On tape — reading requires a recall.
    Tape,
}

/// Per-object catalog entry.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Object key.
    pub key: String,
    /// Current tier.
    pub tier: Tier,
    /// Payload size, bytes.
    pub size: u64,
    /// Ingest digest — must match on every tier move.
    pub digest: Digest,
    /// Logical ingest sequence number (stands in for ingest time).
    pub ingested_seq: u64,
    /// Logical sequence of the last read (for LRU policies).
    pub last_access_seq: u64,
}

/// Strategy for picking demotion victims when disk usage crosses the
/// high watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPolicy {
    /// Demote the oldest-ingested objects first (age-based; archival
    /// streams like climate data).
    OldestFirst,
    /// Demote the least-recently-accessed objects first.
    LeastRecentlyUsed,
    /// Demote the largest objects first (frees space fastest, fewest
    /// tape mounts).
    LargestFirst,
}

/// Result of a watermark-driven migration pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Keys demoted to tape, in demotion order.
    pub demoted: Vec<String>,
    /// Total bytes moved to tape.
    pub bytes: u64,
}

/// Errors from HSM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HsmError {
    /// Unknown object key.
    NotFound(String),
    /// Underlying store failure.
    Store(StoreError),
    /// Integrity check failed during a tier move.
    IntegrityViolation(String),
}

impl std::fmt::Display for HsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HsmError::NotFound(k) => write!(f, "HSM: object '{k}' not found"),
            HsmError::Store(e) => write!(f, "HSM store error: {e}"),
            HsmError::IntegrityViolation(k) => {
                write!(f, "HSM: integrity violation migrating '{k}'")
            }
        }
    }
}

impl std::error::Error for HsmError {}

impl From<StoreError> for HsmError {
    fn from(e: StoreError) -> Self {
        HsmError::Store(e)
    }
}

struct HsmInner {
    catalog: HashMap<String, CatalogEntry>,
    seq: u64,
}

/// Registry handles for tier-transition accounting, labelled by the
/// disk store's name so multi-HSM facilities stay distinguishable.
struct HsmObs {
    registry: Arc<Registry>,
    puts: Counter,
    deletes: Counter,
    demotions: Counter,
    recalls: Counter,
    demote_bytes: Histogram,
    recall_bytes: Histogram,
    recall_latency: Histogram,
}

impl HsmObs {
    fn new(registry: Arc<Registry>, store: &str) -> Self {
        let labels: [(&str, &str); 1] = [("store", store)];
        HsmObs {
            puts: registry.counter(names::HSM_PUTS_TOTAL, &labels),
            deletes: registry.counter(names::HSM_DELETES_TOTAL, &labels),
            demotions: registry.counter(names::HSM_DEMOTIONS_TOTAL, &labels),
            recalls: registry.counter(names::HSM_RECALLS_TOTAL, &labels),
            demote_bytes: registry.histogram(names::HSM_DEMOTE_BYTES, &labels),
            recall_bytes: registry.histogram(names::HSM_RECALL_BYTES, &labels),
            recall_latency: registry.histogram(names::HSM_RECALL_LATENCY_NS, &labels),
            registry,
        }
    }
}

/// The tiering manager over a disk store and a tape store.
pub struct Hsm {
    disk: Arc<ObjectStore>,
    tape: Arc<ObjectStore>,
    /// Demote until disk usage falls to this fraction of capacity.
    low_watermark: f64,
    /// Start demoting when disk usage exceeds this fraction.
    high_watermark: f64,
    policy: MigrationPolicy,
    obs: HsmObs,
    inner: Mutex<HsmInner>,
}

impl Hsm {
    /// Creates a tiering manager recording into a private obs registry.
    ///
    /// # Panics
    /// Panics unless `0 < low <= high <= 1`.
    pub fn new(
        disk: Arc<ObjectStore>,
        tape: Arc<ObjectStore>,
        low_watermark: f64,
        high_watermark: f64,
        policy: MigrationPolicy,
    ) -> Self {
        Self::with_registry(
            disk,
            tape,
            low_watermark,
            high_watermark,
            policy,
            Arc::new(Registry::new()),
        )
    }

    /// Creates a tiering manager recording tier transitions into a
    /// shared obs registry (metrics labelled with the disk store name).
    ///
    /// # Panics
    /// Panics unless `0 < low <= high <= 1`.
    pub fn with_registry(
        disk: Arc<ObjectStore>,
        tape: Arc<ObjectStore>,
        low_watermark: f64,
        high_watermark: f64,
        policy: MigrationPolicy,
        registry: Arc<Registry>,
    ) -> Self {
        assert!(
            0.0 < low_watermark && low_watermark <= high_watermark && high_watermark <= 1.0,
            "watermarks must satisfy 0 < low <= high <= 1"
        );
        let obs = HsmObs::new(registry, disk.name());
        Hsm {
            disk,
            tape,
            low_watermark,
            high_watermark,
            policy,
            obs,
            inner: Mutex::new(HsmInner {
                catalog: HashMap::new(),
                seq: 0,
            }),
        }
    }

    /// The obs registry this HSM records into.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs.registry
    }

    /// Ingests a new object onto the disk tier. If the tier is full,
    /// policy-chosen victims are demoted first — ingest pressure must
    /// never bounce experiment data while tape capacity remains.
    pub fn put(&self, key: &str, data: impl Into<Payload>) -> Result<(), HsmError> {
        let data = data.into();
        self.make_room(data.len() as u64)?;
        let meta = self.disk.put(key, data)?;
        self.obs.puts.inc();
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let seq = inner.seq;
        inner.catalog.insert(
            key.to_string(),
            CatalogEntry {
                key: key.to_string(),
                tier: Tier::Disk,
                size: meta.size,
                digest: meta.digest,
                ingested_seq: seq,
                last_access_seq: seq,
            },
        );
        Ok(())
    }

    /// Reads an object; a tape-resident object is transparently recalled
    /// to disk first (and stays there — recall implies promotion).
    pub fn get(&self, key: &str) -> Result<Payload, HsmError> {
        self.get_traced(key, &TraceCtx::disabled())
    }

    /// [`Hsm::get`] with causal tracing: when the object is tape-resident
    /// the staging (recall) leg is recorded as a child span so a slow read
    /// is attributable to the tape tier rather than the disk array.
    pub fn get_traced(&self, key: &str, ctx: &TraceCtx) -> Result<Payload, HsmError> {
        let tier = {
            let mut inner = self.inner.lock();
            let entry = inner
                .catalog
                .get_mut(key)
                .ok_or_else(|| HsmError::NotFound(key.to_string()))?;
            entry.tier
        };
        if tier == Tier::Tape {
            let stage = ctx.child(names::HSM_STAGE_SPAN);
            stage.add_field("key", key);
            stage.add_field("store", self.disk.name());
            self.recall(key)?;
            stage.finish();
        }
        let data = self.disk.get(key)?;
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let seq = inner.seq;
        if let Some(e) = inner.catalog.get_mut(key) {
            e.last_access_seq = seq;
        }
        Ok(data)
    }

    /// Deletes an object through the catalog, whichever tier holds it
    /// (lifecycle curation: retention windows expiring, projects being
    /// decommissioned). The catalog entry is removed only after the
    /// owning store confirms the payload is gone.
    pub fn delete(&self, key: &str) -> Result<(), HsmError> {
        let tier = {
            let inner = self.inner.lock();
            inner
                .catalog
                .get(key)
                .ok_or_else(|| HsmError::NotFound(key.to_string()))?
                .tier
        };
        match tier {
            Tier::Disk => self.disk.delete(key)?,
            Tier::Tape => self.tape.delete(key)?,
        };
        self.inner.lock().catalog.remove(key);
        self.obs.deletes.inc();
        self.obs.registry.event(names::HSM_DELETE_LOG_EVENT, &[("key", key)]);
        Ok(())
    }

    /// Where the object currently lives.
    pub fn tier_of(&self, key: &str) -> Result<Tier, HsmError> {
        self.inner
            .lock()
            .catalog
            .get(key)
            .map(|e| e.tier)
            .ok_or_else(|| HsmError::NotFound(key.to_string()))
    }

    /// Full catalog snapshot.
    pub fn catalog(&self) -> Vec<CatalogEntry> {
        self.inner.lock().catalog.values().cloned().collect()
    }

    /// `(demotions, recalls)` performed so far (compatibility view over
    /// the obs registry counters).
    pub fn counters(&self) -> (u64, u64) {
        (self.obs.demotions.get(), self.obs.recalls.get())
    }

    /// Disk usage as a fraction of capacity.
    pub fn disk_usage(&self) -> f64 {
        self.disk.used() as f64 / self.disk.capacity() as f64
    }

    /// Runs one migration pass: if disk usage exceeds the high watermark,
    /// demotes policy-chosen victims until usage drops below the low
    /// watermark (or nothing demotable remains).
    pub fn run_migration(&self) -> Result<MigrationReport, HsmError> {
        let mut report = MigrationReport::default();
        if self.disk_usage() <= self.high_watermark {
            return Ok(report);
        }
        let target = (self.low_watermark * self.disk.capacity() as f64) as u64;
        // Victim order by policy, computed from a catalog snapshot.
        let mut candidates: Vec<CatalogEntry> = {
            let inner = self.inner.lock();
            inner
                .catalog
                .values()
                .filter(|e| e.tier == Tier::Disk)
                .cloned()
                .collect()
        };
        match self.policy {
            MigrationPolicy::OldestFirst => {
                candidates.sort_by_key(|e| e.ingested_seq);
            }
            MigrationPolicy::LeastRecentlyUsed => {
                candidates.sort_by_key(|e| e.last_access_seq);
            }
            MigrationPolicy::LargestFirst => {
                candidates.sort_by(|a, b| b.size.cmp(&a.size).then(a.key.cmp(&b.key)));
            }
        }
        for victim in candidates {
            if self.disk.used() <= target {
                break;
            }
            self.demote(&victim.key)?;
            report.bytes += victim.size;
            report.demoted.push(victim.key);
        }
        Ok(report)
    }

    /// Demotes policy-chosen victims until the disk tier has at least
    /// `bytes` free. A no-op when enough space already exists. Errors if
    /// the request can never fit (larger than total capacity).
    fn make_room(&self, bytes: u64) -> Result<(), HsmError> {
        let free = self.disk.capacity() - self.disk.used();
        if bytes <= free {
            return Ok(());
        }
        let mut victims: Vec<CatalogEntry> = {
            let inner = self.inner.lock();
            inner
                .catalog
                .values()
                .filter(|e| e.tier == Tier::Disk)
                .cloned()
                .collect()
        };
        match self.policy {
            MigrationPolicy::OldestFirst => victims.sort_by_key(|e| e.ingested_seq),
            MigrationPolicy::LeastRecentlyUsed => victims.sort_by_key(|e| e.last_access_seq),
            MigrationPolicy::LargestFirst => {
                victims.sort_by(|a, b| b.size.cmp(&a.size).then(a.key.cmp(&b.key)))
            }
        }
        for v in victims {
            if self.disk.capacity() - self.disk.used() >= bytes {
                return Ok(());
            }
            self.demote(&v.key)?;
        }
        if self.disk.capacity() - self.disk.used() >= bytes {
            Ok(())
        } else {
            Err(HsmError::Store(StoreError::CapacityExceeded {
                requested: bytes,
                free: self.disk.capacity() - self.disk.used(),
            }))
        }
    }

    /// Moves one object disk → tape, verifying integrity.
    pub fn demote(&self, key: &str) -> Result<(), HsmError> {
        let expected = {
            let inner = self.inner.lock();
            inner
                .catalog
                .get(key)
                .ok_or_else(|| HsmError::NotFound(key.to_string()))?
                .digest
        };
        let data = self.disk.get(key)?;
        let size = data.len() as u64;
        let meta = self.tape.put(key, data)?;
        if meta.digest != expected {
            // Roll back the copy rather than lose the good replica.
            let _ = self.tape.delete(key);
            return Err(HsmError::IntegrityViolation(key.to_string()));
        }
        self.disk.delete(key)?;
        self.obs.demotions.inc();
        self.obs.demote_bytes.record(size);
        self.obs.registry.event(names::HSM_DEMOTE_LOG_EVENT, &[("key", key)]);
        let mut inner = self.inner.lock();
        if let Some(e) = inner.catalog.get_mut(key) {
            e.tier = Tier::Tape;
        }
        Ok(())
    }

    /// Moves one object tape → disk, verifying integrity. If the disk tier
    /// is full, policy-chosen victims are demoted first to make room (the
    /// standard HSM space-management reaction to a promote).
    pub fn recall(&self, key: &str) -> Result<(), HsmError> {
        let span = self.obs.registry.span(&self.obs.recall_latency);
        let expected = {
            let inner = self.inner.lock();
            inner
                .catalog
                .get(key)
                .ok_or_else(|| HsmError::NotFound(key.to_string()))?
                .digest
        };
        let data = self.tape.get(key)?;
        let size = data.len() as u64;
        self.make_room(size)?;
        let meta = self.disk.put(key, data)?;
        if meta.digest != expected {
            let _ = self.disk.delete(key);
            return Err(HsmError::IntegrityViolation(key.to_string()));
        }
        self.tape.delete(key)?;
        self.obs.recalls.inc();
        self.obs.recall_bytes.record(size);
        self.obs.registry.event(names::HSM_RECALL_LOG_EVENT, &[("key", key)]);
        {
            let mut inner = self.inner.lock();
            if let Some(e) = inner.catalog.get_mut(key) {
                e.tier = Tier::Disk;
            }
        }
        span.finish();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn setup(disk_cap: u64, policy: MigrationPolicy) -> Hsm {
        let disk = Arc::new(ObjectStore::new("disk", disk_cap));
        let tape = Arc::new(ObjectStore::new("tape", u64::MAX));
        Hsm::new(disk, tape, 0.5, 0.8, policy)
    }

    fn blob(n: usize) -> Bytes {
        Bytes::from(vec![7u8; n])
    }

    #[test]
    fn put_lands_on_disk() {
        let hsm = setup(1000, MigrationPolicy::OldestFirst);
        hsm.put("a", blob(100)).unwrap();
        assert_eq!(hsm.tier_of("a").unwrap(), Tier::Disk);
        assert_eq!(hsm.get("a").unwrap(), blob(100));
        assert_eq!(hsm.counters(), (0, 0));
    }

    #[test]
    fn migration_respects_watermarks() {
        let hsm = setup(1000, MigrationPolicy::OldestFirst);
        for i in 0..9 {
            hsm.put(&format!("o{i}"), blob(100)).unwrap();
        }
        // 900/1000 = 0.9 > 0.8 high watermark; demote until <= 500.
        let report = hsm.run_migration().unwrap();
        assert_eq!(report.demoted.len(), 4);
        assert_eq!(report.bytes, 400);
        assert!(hsm.disk_usage() <= 0.5 + 1e-12);
        // Oldest first: o0..o3 demoted.
        assert_eq!(report.demoted, vec!["o0", "o1", "o2", "o3"]);
        assert_eq!(hsm.tier_of("o0").unwrap(), Tier::Tape);
        assert_eq!(hsm.tier_of("o4").unwrap(), Tier::Disk);
    }

    #[test]
    fn migration_is_noop_below_watermark() {
        let hsm = setup(1000, MigrationPolicy::OldestFirst);
        hsm.put("a", blob(100)).unwrap();
        assert_eq!(hsm.run_migration().unwrap(), MigrationReport::default());
    }

    #[test]
    fn lru_policy_keeps_recently_read_objects() {
        let hsm = setup(1000, MigrationPolicy::LeastRecentlyUsed);
        for i in 0..9 {
            hsm.put(&format!("o{i}"), blob(100)).unwrap();
        }
        // Touch the oldest objects so LRU protects them.
        hsm.get("o0").unwrap();
        hsm.get("o1").unwrap();
        let report = hsm.run_migration().unwrap();
        assert!(!report.demoted.contains(&"o0".to_string()));
        assert!(!report.demoted.contains(&"o1".to_string()));
        assert!(report.demoted.contains(&"o2".to_string()));
    }

    #[test]
    fn largest_first_minimizes_demotions() {
        let hsm = setup(1000, MigrationPolicy::LargestFirst);
        hsm.put("small1", blob(50)).unwrap();
        hsm.put("big", blob(600)).unwrap();
        hsm.put("small2", blob(200)).unwrap();
        // 850/1000 > 0.8 → demote 'big' alone reaches 250 <= 500.
        let report = hsm.run_migration().unwrap();
        assert_eq!(report.demoted, vec!["big"]);
    }

    #[test]
    fn get_transparently_recalls_from_tape() {
        let hsm = setup(1000, MigrationPolicy::OldestFirst);
        for i in 0..9 {
            hsm.put(&format!("o{i}"), blob(100)).unwrap();
        }
        hsm.run_migration().unwrap();
        assert_eq!(hsm.tier_of("o0").unwrap(), Tier::Tape);
        let data = hsm.get("o0").unwrap();
        assert_eq!(data, blob(100));
        assert_eq!(hsm.tier_of("o0").unwrap(), Tier::Disk, "recall promotes");
        let (demotions, recalls) = hsm.counters();
        assert_eq!(demotions, 4);
        assert_eq!(recalls, 1);
    }

    #[test]
    fn no_object_is_ever_lost() {
        let hsm = setup(2_000, MigrationPolicy::LeastRecentlyUsed);
        for i in 0..20 {
            hsm.put(&format!("o{i}"), blob(90)).unwrap();
        }
        hsm.run_migration().unwrap();
        for i in 0..20 {
            // Every object readable regardless of tier.
            assert_eq!(hsm.get(&format!("o{i}")).unwrap(), blob(90));
        }
    }

    #[test]
    fn unknown_keys_error() {
        let hsm = setup(1000, MigrationPolicy::OldestFirst);
        assert!(matches!(hsm.get("nope"), Err(HsmError::NotFound(_))));
        assert!(matches!(hsm.tier_of("nope"), Err(HsmError::NotFound(_))));
        assert!(matches!(hsm.demote("nope"), Err(HsmError::NotFound(_))));
        assert!(matches!(hsm.delete("nope"), Err(HsmError::NotFound(_))));
    }

    #[test]
    fn delete_works_on_both_tiers() {
        let hsm = setup(1000, MigrationPolicy::OldestFirst);
        hsm.put("disk-res", blob(100)).unwrap();
        hsm.put("tape-res", blob(100)).unwrap();
        hsm.demote("tape-res").unwrap();
        hsm.delete("disk-res").unwrap();
        hsm.delete("tape-res").unwrap();
        assert!(matches!(hsm.get("disk-res"), Err(HsmError::NotFound(_))));
        assert!(matches!(hsm.get("tape-res"), Err(HsmError::NotFound(_))));
        assert!(hsm.catalog().is_empty());
        assert_eq!(
            hsm.obs()
                .counter_value(names::HSM_DELETES_TOTAL, &[("store", "disk")]),
            2
        );
        // The key is reusable after deletion (write-once applies to live
        // objects only).
        hsm.put("disk-res", blob(10)).unwrap();
        assert_eq!(hsm.get("disk-res").unwrap(), blob(10));
    }

    #[test]
    fn registry_sees_tier_transitions() {
        let disk = Arc::new(ObjectStore::new("disk", 1000));
        let tape = Arc::new(ObjectStore::new("tape", u64::MAX));
        let reg = Arc::new(Registry::new());
        let hsm = Hsm::with_registry(
            disk,
            tape,
            0.5,
            0.8,
            MigrationPolicy::OldestFirst,
            reg.clone(),
        );
        for i in 0..9 {
            hsm.put(&format!("o{i}"), blob(100)).unwrap();
        }
        hsm.run_migration().unwrap();
        hsm.get("o0").unwrap(); // transparent recall
        let labels: [(&str, &str); 1] = [("store", "disk")];
        assert_eq!(reg.counter_value(names::HSM_DEMOTIONS_TOTAL, &labels), 4);
        assert_eq!(reg.counter_value(names::HSM_RECALLS_TOTAL, &labels), 1);
        assert_eq!(reg.counter_value(names::HSM_PUTS_TOTAL, &labels), 9);
        assert_eq!(reg.histogram(names::HSM_DEMOTE_BYTES, &labels).sum(), 400);
        assert_eq!(reg.histogram(names::HSM_RECALL_LATENCY_NS, &labels).count(), 1);
        // The compat view and the registry agree.
        assert_eq!(hsm.counters(), (4, 1));
        assert!(reg.events().iter().any(|e| e.name == "hsm_recall"));
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn bad_watermarks_panic() {
        let disk = Arc::new(ObjectStore::new("d", 10));
        let tape = Arc::new(ObjectStore::new("t", 10));
        let _ = Hsm::new(disk, tape, 0.9, 0.5, MigrationPolicy::OldestFirst);
    }
}
