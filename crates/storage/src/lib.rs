//! # lsdf-storage — storage substrates of the LSDF facility
//!
//! Implements the storage layer the paper describes on slide 7:
//!
//! * [`ObjectStore`] — a thread-safe, capacity-bounded, **write-once** object
//!   store holding real bytes with SHA-256 ingest checksums (the stand-in for
//!   the GPFS-backed IBM/DDN disk systems).
//! * [`DiskModel`] / [`ArrayModel`] — performance models of the spindle
//!   arrays, used by facility-scale extrapolations.
//! * [`TapeLibrary`] — a discrete-event tape library (robot, drives, mounts)
//!   for archive/backup and the recall-latency experiment (E13).
//! * [`Hsm`] — hierarchical storage management tying the two tiers together
//!   with watermark-driven migration policies.
//! * [`checksum`] — SHA-256 (FIPS 180-4, implemented from scratch) and
//!   FNV-1a.
//! * [`Payload`] — the shared, immutable byte buffer with a memoized
//!   SHA-256 digest that the whole write path hands around instead of
//!   copying (see the zero-copy rules in its docs).

#![warn(missing_docs)]

pub mod checksum;
mod disk;
mod hsm;
mod object;
mod payload;
mod tape;

pub use checksum::{fnv1a64, sha256, Digest, Sha256};
pub use payload::{payload_deep_copies, payload_digests_computed, Payload};
pub use disk::{ArrayModel, DiskModel};
pub use hsm::{CatalogEntry, Hsm, HsmError, MigrationPolicy, MigrationReport, Tier};
pub use object::{ObjectId, ObjectMeta, ObjectStore, StoreError};
pub use tape::{TapeCompletion, TapeLibrary, TapeOp, TapeParams};
