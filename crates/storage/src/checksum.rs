//! Content checksums for ingest integrity and content addressing.
//!
//! The LSDF ingest pipeline checksums every incoming object so that later
//! reads (including tape recalls years later) can verify integrity. We
//! implement SHA-256 from scratch (FIPS 180-4) — the workspace's offline
//! dependency set has no crypto crate — plus FNV-1a for cheap non-crypto
//! hashing of keys.

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Hex rendering of the digest.
    pub fn to_hex(&self) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(HEX[(b >> 4) as usize] as char);
            s.push(HEX[(b & 0xf) as usize] as char);
        }
        s
    }

    /// Parses a 64-char hex string.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", &self.to_hex()[..12])
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher (FIPS 180-4).
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self
            .total_len
            .checked_add(data.len() as u64)
            // lint: allow(no_panic) -- FIPS 180-4 caps messages below 2^64 bits; wrapping here would silently corrupt digests
            .expect("SHA-256 input exceeds 2^64 bits");
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update_padding(&[0x80]);
        while self.buf_len != 56 {
            self.update_padding(&[0]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Digest(out)
    }

    /// update() without length accounting, for padding bytes.
    fn update_padding(&mut self, data: &[u8]) {
        for &b in data {
            self.buf[self.buf_len] = b;
            self.buf_len += 1;
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256 of a byte slice.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// FNV-1a 64-bit hash — fast, non-cryptographic; used for partitioning.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST / well-known vectors.
    #[test]
    fn sha256_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_message() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot_at_odd_boundaries() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let whole = sha256(&data);
        for split in [1usize, 63, 64, 65, 127, 500, 999] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"0".repeat(63)), None);
    }

    #[test]
    fn fnv_known_values() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_content_distinct_digest() {
        assert_ne!(sha256(b"zebrafish-1"), sha256(b"zebrafish-2"));
    }
}
