//! Discrete-event model of the LSDF tape library (archive & backup
//! backend, paper slide 7).
//!
//! A library has a robot arm and a set of tape drives. An archive or recall
//! request must (1) win a drive, (2) have the robot fetch and mount the
//! cartridge, (3) seek to position, (4) stream, then (5) unmount. The robot
//! is a single shared resource; drives are a counted pool. Recall latency
//! under contention — the figure behind experiment E13 — is dominated by
//! mount waits, exactly as in the real facility.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use lsdf_obs::{Counter, Histogram, Registry, TraceCtx};
use lsdf_sim::{Resource, SimDuration, SimRng, SimTime, Simulation, Tally};
use lsdf_obs::names;

/// Direction of a tape request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeOp {
    /// Disk → tape (archive / backup).
    Archive,
    /// Tape → disk (recall).
    Recall,
}

impl TapeOp {
    /// Lowercase label used in metrics and events.
    pub fn name(self) -> &'static str {
        match self {
            TapeOp::Archive => "archive",
            TapeOp::Recall => "recall",
        }
    }
}

/// Timing parameters of the library hardware.
#[derive(Debug, Clone, Copy)]
pub struct TapeParams {
    /// Number of drives.
    pub drives: usize,
    /// Robot exchange time (fetch cartridge, load drive).
    pub mount: SimDuration,
    /// Average seek-to-position time once mounted.
    pub seek: SimDuration,
    /// Streaming rate, bytes per second.
    pub stream_bps: f64,
    /// Unload + return-to-slot time.
    pub unmount: SimDuration,
}

impl TapeParams {
    /// LTO-5-era parameters matching a 2011 facility library.
    pub fn lto5(drives: usize) -> Self {
        TapeParams {
            drives,
            mount: SimDuration::from_secs(90),
            seek: SimDuration::from_secs(45),
            stream_bps: 140e6,
            unmount: SimDuration::from_secs(30),
        }
    }
}

/// Completion record for a tape request.
#[derive(Debug, Clone)]
pub struct TapeCompletion {
    /// Operation kind.
    pub op: TapeOp,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time.
    pub finished: SimTime,
    /// Time spent waiting for a drive before service began.
    pub queued_for: SimDuration,
}

/// Stuck-mount fault injection: with probability `rate`, a mount takes
/// `extra` longer (the robot fumbling a cartridge exchange).
struct StuckMounts {
    rate: f64,
    extra: SimDuration,
    rng: SimRng,
    count: u64,
}

struct TapeInner {
    params: TapeParams,
    drives: Resource,
    robot: Resource,
    completed: Vec<TapeCompletion>,
    recall_latency: Tally,
    archive_latency: Tally,
    bytes_archived: u128,
    bytes_recalled: u128,
    stuck: Option<StuckMounts>,
    obs: Option<TapeObs>,
}

/// Registry handles for tape accounting. Latencies are recorded in
/// *virtual* nanoseconds (the library runs on `lsdf-sim` time), and
/// events carry explicit sim timestamps so the shared clock is never
/// flipped into virtual mode behind other subsystems' backs.
#[derive(Clone)]
struct TapeObs {
    registry: Arc<Registry>,
    mounts: Counter,
    stuck_mounts: Counter,
    recall_ops: Counter,
    archive_ops: Counter,
    recall_latency_ns: Histogram,
    archive_latency_ns: Histogram,
}

impl TapeObs {
    fn new(registry: Arc<Registry>) -> Self {
        TapeObs {
            mounts: registry.counter(names::TAPE_MOUNTS_TOTAL, &[]),
            stuck_mounts: registry.counter(names::TAPE_STUCK_MOUNTS_TOTAL, &[]),
            recall_ops: registry.counter(names::TAPE_OPS_TOTAL, &[("op", "recall")]),
            archive_ops: registry.counter(names::TAPE_OPS_TOTAL, &[("op", "archive")]),
            recall_latency_ns: registry
                .histogram(names::TAPE_OP_LATENCY_NS, &[("op", "recall")]),
            archive_latency_ns: registry
                .histogram(names::TAPE_OP_LATENCY_NS, &[("op", "archive")]),
            registry,
        }
    }
}

/// Handle to a simulated tape library (cheaply cloneable).
#[derive(Clone)]
pub struct TapeLibrary {
    inner: Rc<RefCell<TapeInner>>,
}

impl TapeLibrary {
    /// Creates a library with the given hardware parameters.
    pub fn new(params: TapeParams) -> Self {
        assert!(params.drives > 0, "tape library needs at least one drive");
        assert!(params.stream_bps > 0.0, "stream rate must be positive");
        TapeLibrary {
            inner: Rc::new(RefCell::new(TapeInner {
                drives: Resource::new("tape-drives", params.drives),
                robot: Resource::new("tape-robot", 1),
                params,
                completed: Vec::new(),
                recall_latency: Tally::new(),
                archive_latency: Tally::new(),
                bytes_archived: 0,
                bytes_recalled: 0,
                stuck: None,
                obs: None,
            })),
        }
    }

    /// Creates a library that additionally records mounts, op counts,
    /// and sim-time latencies into a shared obs registry.
    pub fn with_registry(params: TapeParams, registry: Arc<Registry>) -> Self {
        let lib = Self::new(params);
        lib.inner.borrow_mut().obs = Some(TapeObs::new(registry));
        lib
    }

    /// Arms stuck-mount injection: each subsequent mount independently
    /// takes `extra` longer with probability `rate` (clamped to
    /// `[0, 1]`), drawn from `rng` — pass a named stream
    /// (e.g. `master.stream("tape-stuck")`) for reproducible chaos runs.
    pub fn inject_stuck_mounts(&self, rate: f64, extra: SimDuration, rng: SimRng) {
        self.inner.borrow_mut().stuck = Some(StuckMounts {
            rate: rate.clamp(0.0, 1.0),
            extra,
            rng,
            count: 0,
        });
    }

    /// Disarms stuck-mount injection.
    pub fn clear_stuck_mounts(&self) {
        self.inner.borrow_mut().stuck = None;
    }

    /// Stuck mounts injected so far (also in `tape_stuck_mounts_total`).
    pub fn stuck_mount_count(&self) -> u64 {
        self.inner.borrow().stuck.as_ref().map_or(0, |s| s.count)
    }

    /// Submits a request; `on_done` runs at completion inside the sim.
    pub fn submit(
        &self,
        sim: &mut Simulation,
        op: TapeOp,
        bytes: u64,
        on_done: impl FnOnce(&mut Simulation, TapeCompletion) + 'static,
    ) {
        self.submit_traced(sim, op, bytes, &TraceCtx::disabled(), on_done);
    }

    /// [`TapeLibrary::submit`] with causal tracing: the whole request
    /// (queue wait included) becomes a `tape_request` child span and the
    /// robot's cartridge exchange a nested `tape_mount` span, both
    /// timestamped in sim time so a recall trace shows exactly where the
    /// minutes went.
    pub fn submit_traced(
        &self,
        sim: &mut Simulation,
        op: TapeOp,
        bytes: u64,
        ctx: &TraceCtx,
        on_done: impl FnOnce(&mut Simulation, TapeCompletion) + 'static,
    ) {
        let submitted = sim.now();
        let req_span = ctx.child_at(names::TAPE_REQUEST_SPAN, submitted.as_nanos());
        req_span.add_field("op", op.name());
        req_span.add_field("bytes", &bytes.to_string());
        let this = self.clone();
        let drives = self.inner.borrow().drives.clone();
        drives.acquire(sim, move |sim| {
            let granted = sim.now();
            let queued_for = granted.since(submitted);
            // Robot mounts the cartridge (serialized across drives).
            let robot = this.inner.borrow().robot.clone();
            let this2 = this.clone();
            robot.acquire(sim, move |sim| {
                // The robot has the cartridge: this is a physical mount.
                if let Some(obs) = this2.inner.borrow().obs.clone() {
                    obs.mounts.inc();
                    obs.registry.event_at(
                        sim.now().as_nanos(),
                        "tape_mount",
                        &[("op", op.name())],
                    );
                }
                let mount_span = req_span.child_at(names::TAPE_MOUNT_SPAN, sim.now().as_nanos());
                mount_span.add_field("op", op.name());
                let mount = {
                    let mut inner = this2.inner.borrow_mut();
                    let base = inner.params.mount;
                    // Stuck-mount fault: the robot fumbles the exchange
                    // and holds the arm for the extra delay.
                    let stuck_extra = inner.stuck.as_mut().and_then(|s| {
                        if s.rng.chance(s.rate) {
                            s.count += 1;
                            Some(s.extra)
                        } else {
                            None
                        }
                    });
                    match stuck_extra {
                        Some(extra) => {
                            if let Some(obs) = &inner.obs {
                                obs.stuck_mounts.inc();
                                obs.registry.event_at(
                                    sim.now().as_nanos(),
                                    "tape_stuck_mount",
                                    &[("op", op.name())],
                                );
                            }
                            mount_span.add_field("stuck", "true");
                            base + extra
                        }
                        None => base,
                    }
                };
                let this3 = this2.clone();
                sim.schedule_in(mount, move |sim| {
                    mount_span.finish_at(sim.now().as_nanos());
                    // Robot freed after the exchange completes (clone the
                    // handle out so no RefCell borrow spans the release).
                    let robot = this3.inner.borrow().robot.clone();
                    robot.release(sim);
                    let (seek, stream_bps, unmount) = {
                        let p = this3.inner.borrow().params;
                        (p.seek, p.stream_bps, p.unmount)
                    };
                    let xfer = SimDuration::from_secs_f64(bytes as f64 / stream_bps);
                    let this4 = this3.clone();
                    sim.schedule_in(seek + xfer + unmount, move |sim| {
                        let finished = sim.now();
                        let completion = TapeCompletion {
                            op,
                            bytes,
                            submitted,
                            finished,
                            queued_for,
                        };
                        // Record stats, then drop the borrow before
                        // releasing the drive: release may synchronously run
                        // the next waiter's continuation, which borrows
                        // `inner` again.
                        let drives = {
                            let mut inner = this4.inner.borrow_mut();
                            let latency = finished.since(submitted).as_secs_f64();
                            match op {
                                TapeOp::Recall => {
                                    inner.recall_latency.record(latency);
                                    inner.bytes_recalled += u128::from(bytes);
                                }
                                TapeOp::Archive => {
                                    inner.archive_latency.record(latency);
                                    inner.bytes_archived += u128::from(bytes);
                                }
                            }
                            if let Some(obs) = &inner.obs {
                                let lat_ns = finished.since(submitted).as_nanos();
                                match op {
                                    TapeOp::Recall => {
                                        obs.recall_ops.inc();
                                        obs.recall_latency_ns.record(lat_ns);
                                    }
                                    TapeOp::Archive => {
                                        obs.archive_ops.inc();
                                        obs.archive_latency_ns.record(lat_ns);
                                    }
                                }
                            }
                            inner.completed.push(completion.clone());
                            inner.drives.clone()
                        };
                        drives.release(sim);
                        req_span.finish_at(finished.as_nanos());
                        on_done(sim, completion);
                    });
                });
            });
        });
    }

    /// Recall-latency statistics (seconds, submission → completion).
    pub fn recall_latency(&self) -> Tally {
        self.inner.borrow().recall_latency.clone()
    }

    /// Archive-latency statistics (seconds).
    pub fn archive_latency(&self) -> Tally {
        self.inner.borrow().archive_latency.clone()
    }

    /// `(bytes archived, bytes recalled)` so far.
    pub fn bytes_moved(&self) -> (u128, u128) {
        let i = self.inner.borrow();
        (i.bytes_archived, i.bytes_recalled)
    }

    /// All completions, in completion order.
    pub fn completions(&self) -> Vec<TapeCompletion> {
        self.inner.borrow().completed.clone()
    }

    /// Minimum possible latency for a request of `bytes` on an idle
    /// library (no queueing): mount + seek + stream + unmount.
    pub fn unloaded_latency(&self, bytes: u64) -> SimDuration {
        let p = self.inner.borrow().params;
        p.mount + p.seek + SimDuration::from_secs_f64(bytes as f64 / p.stream_bps) + p.unmount
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn params() -> TapeParams {
        TapeParams {
            drives: 2,
            mount: SimDuration::from_secs(60),
            seek: SimDuration::from_secs(30),
            stream_bps: 100e6,
            unmount: SimDuration::from_secs(10),
        }
    }

    #[test]
    fn unloaded_recall_matches_component_sum() {
        let lib = TapeLibrary::new(params());
        let mut sim = Simulation::new();
        let done = Rc::new(RefCell::new(None));
        {
            let done = done.clone();
            lib.submit(&mut sim, TapeOp::Recall, 10_000_000_000, move |_, c| {
                *done.borrow_mut() = Some(c);
            });
        }
        sim.run();
        let c = done.borrow().clone().expect("completes");
        // 60 mount + 30 seek + 100 s stream + 10 unmount = 200 s.
        assert!((c.finished.as_secs_f64() - 200.0).abs() < 1e-9);
        assert_eq!(c.queued_for, SimDuration::ZERO);
        assert_eq!(
            lib.unloaded_latency(10_000_000_000),
            SimDuration::from_secs(200)
        );
    }

    #[test]
    fn third_request_waits_for_a_drive() {
        let lib = TapeLibrary::new(params());
        let mut sim = Simulation::new();
        let finishes: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let finishes = finishes.clone();
            lib.submit(&mut sim, TapeOp::Recall, 10_000_000_000, move |s, _| {
                finishes.borrow_mut().push(s.now().as_secs_f64());
            });
        }
        sim.run();
        let f = finishes.borrow().clone();
        // Robot serializes the two concurrent mounts: req1 finishes at 200,
        // req2 mounts 60s later -> 260. Req3 gets the drive at t=200 and
        // finishes at 400.
        assert!((f[0] - 200.0).abs() < 1e-9, "{f:?}");
        assert!((f[1] - 260.0).abs() < 1e-9, "{f:?}");
        assert!((f[2] - 400.0).abs() < 1e-9, "{f:?}");
        let lat = lib.recall_latency();
        assert_eq!(lat.count(), 3);
        assert!(lat.max() >= 400.0 - 1e-9);
    }

    #[test]
    fn robot_serializes_simultaneous_mounts() {
        let mut p = params();
        p.drives = 4;
        let lib = TapeLibrary::new(p);
        let mut sim = Simulation::new();
        let finishes: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..4 {
            let finishes = finishes.clone();
            lib.submit(&mut sim, TapeOp::Archive, 0, move |s, _| {
                finishes.borrow_mut().push(s.now().as_secs_f64());
            });
        }
        sim.run();
        let f = finishes.borrow().clone();
        // All four have drives, but mounts go 60,120,180,240 + 40 s tail.
        assert_eq!(f.len(), 4);
        assert!((f[0] - 100.0).abs() < 1e-9, "{f:?}");
        assert!((f[3] - 280.0).abs() < 1e-9, "{f:?}");
    }

    #[test]
    fn registry_records_mounts_and_sim_time_latency() {
        let reg = Arc::new(Registry::new());
        let lib = TapeLibrary::with_registry(params(), reg.clone());
        let mut sim = Simulation::new();
        lib.submit(&mut sim, TapeOp::Recall, 10_000_000_000, |_, _| {});
        lib.submit(&mut sim, TapeOp::Archive, 0, |_, _| {});
        sim.run();
        assert_eq!(reg.counter_value(names::TAPE_MOUNTS_TOTAL, &[]), 2);
        assert_eq!(reg.counter_value(names::TAPE_OPS_TOTAL, &[("op", "recall")]), 1);
        assert_eq!(reg.counter_value(names::TAPE_OPS_TOTAL, &[("op", "archive")]), 1);
        // Latency is recorded in virtual (sim) nanoseconds: the unloaded
        // recall takes exactly 200 simulated seconds.
        let h = reg.histogram(names::TAPE_OP_LATENCY_NS, &[("op", "recall")]);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), SimDuration::from_secs(200).as_nanos());
        let mounts: Vec<_> = reg
            .events()
            .into_iter()
            .filter(|e| e.name == "tape_mount")
            .collect();
        assert_eq!(mounts.len(), 2);
    }

    #[test]
    fn stuck_mounts_delay_completions_deterministically() {
        let run = |inject: bool| -> f64 {
            let lib = TapeLibrary::new(params());
            if inject {
                lib.inject_stuck_mounts(
                    1.0,
                    SimDuration::from_secs(300),
                    lsdf_sim::SimRng::seed_from_u64(11).stream("tape-stuck"),
                );
            }
            let mut sim = Simulation::new();
            let finish = Rc::new(RefCell::new(0.0));
            {
                let finish = finish.clone();
                lib.submit(&mut sim, TapeOp::Recall, 0, move |s, _| {
                    *finish.borrow_mut() = s.now().as_secs_f64();
                });
            }
            sim.run();
            let out = *finish.borrow();
            if inject {
                assert_eq!(lib.stuck_mount_count(), 1);
            }
            out
        };
        // 60 mount + 30 seek + 10 unmount = 100 s; stuck adds 300.
        assert!((run(false) - 100.0).abs() < 1e-9);
        assert!((run(true) - 400.0).abs() < 1e-9);
        assert!((run(true) - 400.0).abs() < 1e-9, "same seed, same delay");
    }

    #[test]
    fn byte_accounting_by_direction() {
        let lib = TapeLibrary::new(params());
        let mut sim = Simulation::new();
        lib.submit(&mut sim, TapeOp::Archive, 500, |_, _| {});
        lib.submit(&mut sim, TapeOp::Recall, 300, |_, _| {});
        sim.run();
        assert_eq!(lib.bytes_moved(), (500, 300));
        assert_eq!(lib.archive_latency().count(), 1);
        assert_eq!(lib.recall_latency().count(), 1);
        assert_eq!(lib.completions().len(), 2);
    }

    #[test]
    fn traced_recall_records_request_and_mount_spans() {
        use lsdf_obs::{TraceConfig, Tracer};
        let reg = Arc::new(Registry::new());
        let tracer = Tracer::new(&reg, TraceConfig::full());
        let lib = TapeLibrary::new(params());
        let mut sim = Simulation::new();
        let root = tracer.root(names::HSM_STAGE_SPAN, "recall-test");
        lib.submit_traced(&mut sim, TapeOp::Recall, 0, &root, |_, _| {});
        sim.run();
        root.finish();
        let traces = tracer.traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].root.children.len(), 1);
        let req = &traces[0].root.children[0];
        assert_eq!(req.name, names::TAPE_REQUEST_SPAN);
        // 60 mount + 30 seek + 0 stream + 10 unmount = 100 sim-seconds.
        assert_eq!(req.duration_ns(), SimDuration::from_secs(100).as_nanos());
        assert_eq!(req.children.len(), 1);
        let mount = &req.children[0];
        assert_eq!(mount.name, names::TAPE_MOUNT_SPAN);
        assert_eq!(mount.duration_ns(), SimDuration::from_secs(60).as_nanos());
        assert_eq!(mount.start_ns, req.start_ns, "mount starts when the drive is granted");
    }

    #[test]
    #[should_panic(expected = "at least one drive")]
    fn zero_drives_rejected() {
        let mut p = params();
        p.drives = 0;
        let _ = TapeLibrary::new(p);
    }
}
