//! # lsdf-admission — the multi-tenant front door
//!
//! The facility serves "many experiments with very different data
//! rates" (paper, slide 4): a flood from one project must not starve
//! the others. This crate implements the admission layer that sits
//! ahead of ADAL:
//!
//! * [`QuotaSpec`] — per-project token-bucket quotas (operations per
//!   second and bytes per second) with bounded bursts and a bounded
//!   virtual queue;
//! * [`Lane`] — QoS lanes (interactive reads > bulk ingest > tape
//!   recalls) sharing a project's operation rate by weighted
//!   fair-share partition;
//! * [`AdmissionController`] — the decision point: admit with a
//!   simulated wait, or shed with a typed
//!   [`AdmissionError::Rejected`] carrying `retry_after_ns`;
//! * the adaptive governor ([`AdmissionController::observe`]) that
//!   reads a [`FacilityHealth`] report and halves the refill rate of
//!   the project breaching its SLO until it is healthy again.
//!
//! ## Determinism
//!
//! Every quantity is integer arithmetic on the registry's virtual
//! clock: refills carry the sub-token remainder exactly, so the same
//! sequence of `admit` calls at the same virtual times produces
//! bit-identical decisions regardless of wall-clock speed or worker
//! count. Waits are *simulated* — recorded in metrics and traces,
//! never slept.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Arc;

use lsdf_obs::{names, Counter, FacilityHealth, Gauge, Histogram, Registry};
use lsdf_sync::{ranks, OrderedMutex, OrderedRwLock};

/// Nanoseconds per second — the token-bucket refill denominator.
const NANOS_PER_SEC: u128 = 1_000_000_000;

/// Deepest governor throttle: rates are shifted right by the level,
/// so level 3 runs a project at 1/8th of its contracted rate.
const MAX_THROTTLE: u8 = 3;

/// Number of QoS lanes.
pub const LANES: usize = 3;

/// Default fair-share weights, indexed like [`Lane::ALL`]:
/// interactive reads 4, bulk ingest 2, tape recalls 1.
pub const DEFAULT_LANE_WEIGHTS: [u32; LANES] = [4, 2, 1];

/// A QoS lane. Each project's operation rate is partitioned across
/// the lanes by [`QuotaSpec::lane_weights`], so a burst of tape
/// recalls cannot consume the tokens reserved for interactive reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Latency-sensitive read-side traffic.
    Interactive,
    /// Throughput-bound ingest / write-side traffic.
    Bulk,
    /// Reads that wind tape on an HSM-backed project.
    TapeRecall,
}

impl Lane {
    /// Every lane, in weight order.
    pub const ALL: [Lane; LANES] = [Lane::Interactive, Lane::Bulk, Lane::TapeRecall];

    /// Stable label value for metrics (`lane=...`).
    pub fn name(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Bulk => "bulk",
            Lane::TapeRecall => "tape_recall",
        }
    }

    fn idx(self) -> usize {
        match self {
            Lane::Interactive => 0,
            Lane::Bulk => 1,
            Lane::TapeRecall => 2,
        }
    }
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-project admission contract: token-bucket rates, burst caps,
/// the virtual queue bound, and the lane fair-share weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuotaSpec {
    /// Operations refilled per second, shared across lanes by weight.
    pub ops_per_sec: u64,
    /// Maximum operation tokens a lane bucket can hold (burst size).
    pub ops_burst: u64,
    /// Bytes refilled per second (project-wide, all lanes).
    pub bytes_per_sec: u64,
    /// Maximum byte tokens the project bucket can hold; also bounds
    /// how far the byte account may run into debt before shedding.
    pub bytes_burst: u64,
    /// How many operations may borrow ahead of their tokens (the
    /// virtual queue depth) before the front door sheds.
    pub queue_depth: u64,
    /// Fair-share weights, indexed like [`Lane::ALL`].
    pub lane_weights: [u32; LANES],
}

impl QuotaSpec {
    /// A quota so large it never sheds — the contract legacy
    /// (pre-admission) projects run under.
    pub fn unlimited() -> QuotaSpec {
        QuotaSpec {
            ops_per_sec: 1_000_000_000,
            ops_burst: 1_000_000_000,
            bytes_per_sec: 1 << 40,
            bytes_burst: 1 << 40,
            queue_depth: 1_000_000,
            lane_weights: DEFAULT_LANE_WEIGHTS,
        }
    }

    /// A contract of `ops` operations and `bytes` bytes per second,
    /// with one second of burst and a queue half the burst deep.
    pub fn per_second(ops: u64, bytes: u64) -> QuotaSpec {
        QuotaSpec {
            ops_per_sec: ops,
            ops_burst: ops,
            bytes_per_sec: bytes,
            bytes_burst: bytes,
            queue_depth: (ops / 2).max(1),
            lane_weights: DEFAULT_LANE_WEIGHTS,
        }
    }

    /// Overrides the operation burst size.
    pub fn ops_burst(mut self, burst: u64) -> QuotaSpec {
        self.ops_burst = burst;
        self
    }

    /// Overrides the byte burst size.
    pub fn bytes_burst(mut self, burst: u64) -> QuotaSpec {
        self.bytes_burst = burst;
        self
    }

    /// Overrides the virtual queue depth.
    pub fn queue_depth(mut self, depth: u64) -> QuotaSpec {
        self.queue_depth = depth;
        self
    }

    /// Overrides the lane fair-share weights (indexed like
    /// [`Lane::ALL`]).
    pub fn lane_weights(mut self, weights: [u32; LANES]) -> QuotaSpec {
        self.lane_weights = weights;
        self
    }

    /// The operation rate carved out for `lane` at throttle level
    /// `throttle`: weighted share of the project rate, halved per
    /// throttle level, never rounded to zero while the project has
    /// any rate at all (so a throttled tenant still drains).
    fn lane_rate(&self, lane: Lane, throttle: u8) -> u64 {
        if self.ops_per_sec == 0 {
            return 0;
        }
        let sum: u64 = self.lane_weights.iter().map(|w| u64::from(*w)).sum();
        // All-zero weights degenerate to an unpartitioned rate.
        let share = (self.ops_per_sec * u64::from(self.lane_weights[lane.idx()]))
            .checked_div(sum)
            .unwrap_or(self.ops_per_sec);
        (share >> throttle).max(1)
    }

    /// The byte refill rate at throttle level `throttle`.
    fn byte_rate(&self, throttle: u8) -> u64 {
        if self.bytes_per_sec == 0 {
            return 0;
        }
        (self.bytes_per_sec >> throttle).max(1)
    }
}

/// A granted admission: how long the request would wait for its
/// tokens (simulated, never slept) and how deep the lane's virtual
/// queue is after this grant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ticket {
    /// Simulated wait before the request's tokens exist, in
    /// nanoseconds of registry-clock time.
    pub wait_ns: u64,
    /// Operations borrowing ahead of their tokens in this lane after
    /// the grant (0 when the bucket still held a token).
    pub queue_depth: u64,
}

/// Why the front door refused a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The lane's virtual queue (or the byte account) is exhausted;
    /// retry after the given registry-clock delay. `u64::MAX` means
    /// the quota can never satisfy the request (zero refill rate).
    Rejected {
        /// Project that was shed.
        project: String,
        /// Lane the request rode.
        lane: Lane,
        /// Registry-clock nanoseconds until a retry can be admitted.
        retry_after_ns: u64,
    },
    /// The project was never registered with the controller.
    UnknownProject(String),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Rejected {
                project,
                lane,
                retry_after_ns,
            } => write!(
                f,
                "admission shed {project}/{lane}: retry after {retry_after_ns}ns"
            ),
            AdmissionError::UnknownProject(p) => {
                write!(f, "project {p} not registered for admission")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A project's front-door account, for `ProjectSession::usage`-style
/// reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProjectUsage {
    /// Requests admitted (across all lanes).
    pub admitted: u64,
    /// Requests shed (across all lanes).
    pub shed: u64,
    /// Bytes admitted.
    pub bytes: u64,
    /// Current governor throttle level (0 = full rate).
    pub throttle_level: u8,
}

/// One token bucket: a signed level (negative = requests borrowing
/// ahead, i.e. the virtual queue) plus the exact sub-token remainder
/// so refills lose nothing to integer division.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    level: i128,
    carry: u128,
    last_ns: u64,
}

impl Bucket {
    fn full(cap: u64, now_ns: u64) -> Bucket {
        Bucket {
            level: i128::from(cap),
            carry: 0,
            last_ns: now_ns,
        }
    }

    /// Advances the bucket to `now_ns` at `rate` tokens/second,
    /// carrying the division remainder, capping at `cap`.
    fn refill(&mut self, now_ns: u64, rate: u64, cap: u64) {
        let dt = now_ns.saturating_sub(self.last_ns);
        self.last_ns = now_ns.max(self.last_ns);
        if dt == 0 || rate == 0 {
            return;
        }
        let product = u128::from(rate) * u128::from(dt) + self.carry;
        let tokens = product / NANOS_PER_SEC;
        self.carry = product % NANOS_PER_SEC;
        self.level = (self.level + tokens as i128).min(i128::from(cap));
        if self.level == i128::from(cap) {
            // A full bucket holds no partial token either.
            self.carry = 0;
        }
    }
}

/// Nanoseconds until `tokens` tokens exist at `rate` tokens/second
/// (`None` when the rate is zero and they never will).
fn ns_for(tokens: u128, rate: u64) -> Option<u64> {
    if rate == 0 {
        return None;
    }
    let ns = (tokens * NANOS_PER_SEC).div_ceil(u128::from(rate));
    Some(u64::try_from(ns).unwrap_or(u64::MAX))
}

/// Mutable per-project state, guarded by one mutex: the lane buckets,
/// the project-wide byte bucket, the governor level, and the usage
/// account.
struct ProjectState {
    quota: QuotaSpec,
    lanes: [Bucket; LANES],
    bytes: Bucket,
    throttle: u8,
    usage: ProjectUsage,
}

/// Registry handles cached at registration so the admit hot path
/// never takes the registry's name-interning locks.
struct LaneMetrics {
    admitted: Counter,
    shed: Counter,
    queue: Gauge,
    wait: Histogram,
}

struct ProjectMetrics {
    lanes: [LaneMetrics; LANES],
    throttle: Gauge,
    throttled: Counter,
    cleared: Counter,
}

impl ProjectMetrics {
    fn new(reg: &Registry, project: &str) -> ProjectMetrics {
        let lane_metrics = |lane: Lane| {
            let labels: [(&str, &str); 2] = [("project", project), ("lane", lane.name())];
            LaneMetrics {
                admitted: reg.counter(names::ADMISSION_ADMITTED_TOTAL, &labels),
                shed: reg.counter(names::ADMISSION_SHED_TOTAL, &labels),
                queue: reg.gauge(names::ADMISSION_QUEUE_DEPTH, &labels),
                wait: reg.histogram(names::ADMISSION_WAIT_NS, &labels),
            }
        };
        let labels: [(&str, &str); 1] = [("project", project)];
        ProjectMetrics {
            lanes: [
                lane_metrics(Lane::Interactive),
                lane_metrics(Lane::Bulk),
                lane_metrics(Lane::TapeRecall),
            ],
            throttle: reg.gauge(names::ADMISSION_THROTTLE_LEVEL, &labels),
            throttled: reg.counter(
                names::ADMISSION_GOVERNOR_TRANSITIONS_TOTAL,
                &[("project", project), ("to", "throttled")],
            ),
            cleared: reg.counter(
                names::ADMISSION_GOVERNOR_TRANSITIONS_TOTAL,
                &[("project", project), ("to", "cleared")],
            ),
        }
    }
}

struct ProjectEntry {
    state: OrderedMutex<ProjectState>,
    metrics: ProjectMetrics,
}

/// The admission decision point. One controller fronts a facility;
/// projects register a [`QuotaSpec`] at mount time and every request
/// passes [`AdmissionController::admit`] before touching ADAL.
pub struct AdmissionController {
    obs: Arc<Registry>,
    projects: OrderedRwLock<HashMap<String, Arc<ProjectEntry>>>,
}

impl AdmissionController {
    /// A controller publishing into `obs` and refilling on its clock.
    pub fn new(obs: Arc<Registry>) -> AdmissionController {
        AdmissionController {
            obs,
            projects: OrderedRwLock::new(ranks::ADMISSION_PROJECTS, HashMap::new()),
        }
    }

    /// Registers (or re-registers) a project under `quota`. Buckets
    /// start full so a tenant can burst immediately after mount.
    pub fn register(&self, project: &str, quota: QuotaSpec) {
        let now = self.obs.now_ns();
        let state = ProjectState {
            quota,
            lanes: [Bucket::full(quota.ops_burst, now); LANES],
            bytes: Bucket::full(quota.bytes_burst, now),
            throttle: 0,
            usage: ProjectUsage::default(),
        };
        let entry = Arc::new(ProjectEntry {
            state: OrderedMutex::new(ranks::ADMISSION_PROJECT_STATE, state),
            metrics: ProjectMetrics::new(&self.obs, project),
        });
        self.projects.write().insert(project.to_string(), entry);
    }

    /// Registered project names, sorted.
    pub fn projects(&self) -> Vec<String> {
        let mut v: Vec<String> = self.projects.read().keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// The quota a project registered under.
    pub fn quota(&self, project: &str) -> Option<QuotaSpec> {
        self.projects
            .read()
            .get(project)
            .map(|e| e.state.lock().quota)
    }

    /// The project's front-door account so far.
    pub fn usage(&self, project: &str) -> Option<ProjectUsage> {
        self.projects.read().get(project).map(|e| {
            let st = e.state.lock();
            ProjectUsage {
                throttle_level: st.throttle,
                ..st.usage
            }
        })
    }

    /// Current governor throttle level for a project.
    pub fn throttle_level(&self, project: &str) -> Option<u8> {
        self.projects
            .read()
            .get(project)
            .map(|e| e.state.lock().throttle)
    }

    /// Decides one request of `bytes` payload riding `lane`.
    ///
    /// Callers MUST invoke this serially in submission order (the
    /// facility does so on the caller thread before any pool fan-out):
    /// the decision depends on every prior decision, and serial
    /// admission is what makes shed sets and `retry_after_ns` values
    /// identical at any worker count.
    pub fn admit(
        &self,
        project: &str,
        lane: Lane,
        bytes: u64,
    ) -> Result<Ticket, AdmissionError> {
        let entry = self
            .projects
            .read()
            .get(project)
            .cloned()
            .ok_or_else(|| AdmissionError::UnknownProject(project.to_string()))?;
        let now = self.obs.now_ns();
        let mut st = entry.state.lock();
        let lane_rate = st.quota.lane_rate(lane, st.throttle);
        let byte_rate = st.quota.byte_rate(st.throttle);
        let (ops_burst, bytes_burst, queue_depth) =
            (st.quota.ops_burst, st.quota.bytes_burst, st.quota.queue_depth);
        st.lanes[lane.idx()].refill(now, lane_rate, ops_burst);
        st.bytes.refill(now, byte_rate, bytes_burst);

        let lm = &entry.metrics.lanes[lane.idx()];
        let shed = |st: &mut ProjectState, retry_after_ns: u64| {
            st.usage.shed += 1;
            lm.shed.inc();
            Err(AdmissionError::Rejected {
                project: project.to_string(),
                lane,
                retry_after_ns,
            })
        };

        // Operation account: borrow ahead up to `queue_depth`, then shed.
        let ops_after = st.lanes[lane.idx()].level - 1;
        if ops_after < -i128::from(queue_depth) {
            let need = (-i128::from(queue_depth) - ops_after) as u128;
            let retry = ns_for(need, lane_rate).unwrap_or(u64::MAX);
            return shed(&mut st, retry);
        }
        // Byte account: debt bounded by the burst window.
        let bytes_after = st.bytes.level - i128::from(bytes);
        if bytes_after < -i128::from(bytes_burst) {
            let need = (-i128::from(bytes_burst) - bytes_after) as u128;
            let retry = ns_for(need, byte_rate).unwrap_or(u64::MAX);
            return shed(&mut st, retry);
        }
        // The wait until the borrowed tokens actually exist.
        let ops_wait = if ops_after >= 0 {
            Some(0)
        } else {
            ns_for((-ops_after) as u128, lane_rate)
        };
        let bytes_wait = if bytes_after >= 0 {
            Some(0)
        } else {
            ns_for((-bytes_after) as u128, byte_rate)
        };
        let (Some(ops_wait), Some(bytes_wait)) = (ops_wait, bytes_wait) else {
            // Zero refill rate can never produce the borrowed tokens.
            return shed(&mut st, u64::MAX);
        };

        st.lanes[lane.idx()].level = ops_after;
        st.bytes.level = bytes_after;
        st.usage.admitted += 1;
        st.usage.bytes += bytes;
        let depth = u64::try_from(-ops_after.min(0)).unwrap_or(u64::MAX);
        let wait_ns = ops_wait.max(bytes_wait);
        lm.admitted.inc();
        lm.wait.record(wait_ns);
        lm.queue.set(i64::try_from(depth).unwrap_or(i64::MAX));
        Ok(Ticket {
            wait_ns,
            queue_depth: depth,
        })
    }

    /// The adaptive governor: reads a [`FacilityHealth`] report and
    /// throttles each project attributed an SLO violation (halving
    /// its refill rate per level, up to 1/8th), clearing the throttle
    /// the first report the project is violation-free.
    ///
    /// When the rule set includes `window(N)` rules, the governor
    /// follows the *windowed* per-project violations only — a
    /// transient spike that an instantaneous rule catches does not move
    /// the throttle; sustained burn-rate breaches do, and the throttle
    /// clears only once the window itself is clean. Rule sets without
    /// windowed rules keep the legacy instantaneous behavior.
    pub fn observe(&self, health: &FacilityHealth) {
        let windowed = health.windowed_alerting();
        for acct in &health.projects {
            let breaches = if windowed {
                acct.windowed_violations
            } else {
                acct.violations
            };
            let Some(entry) = self.projects.read().get(&acct.project).cloned() else {
                continue;
            };
            let mut st = entry.state.lock();
            // Settle the buckets at the old rate before changing it, so
            // the rate switch takes effect exactly at `health.t_ns`.
            let now = self.obs.now_ns();
            for lane in Lane::ALL {
                let rate = st.quota.lane_rate(lane, st.throttle);
                let cap = st.quota.ops_burst;
                st.lanes[lane.idx()].refill(now, rate, cap);
            }
            let byte_rate = st.quota.byte_rate(st.throttle);
            let bytes_burst = st.quota.bytes_burst;
            st.bytes.refill(now, byte_rate, bytes_burst);

            let to = if breaches > 0 && st.throttle < MAX_THROTTLE {
                st.throttle += 1;
                Some("throttled")
            } else if breaches == 0 && st.throttle > 0 {
                st.throttle = 0;
                Some("cleared")
            } else {
                None
            };
            entry.metrics.throttle.set(i64::from(st.throttle));
            if let Some(to) = to {
                match to {
                    "throttled" => entry.metrics.throttled.inc(),
                    _ => entry.metrics.cleared.inc(),
                }
                let level = st.throttle.to_string();
                self.obs.event(
                    names::ADMISSION_GOVERNOR_LOG_EVENT,
                    &[
                        ("project", acct.project.as_str()),
                        ("to", to),
                        ("level", level.as_str()),
                    ],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Arc<Registry> {
        let reg = Arc::new(Registry::new());
        reg.set_virtual_time_ns(0);
        reg
    }

    fn controller(reg: &Arc<Registry>) -> AdmissionController {
        AdmissionController::new(Arc::clone(reg))
    }

    #[test]
    fn burst_exactly_at_capacity_then_borrows() {
        let reg = registry();
        let ctl = controller(&reg);
        ctl.register("katrin", QuotaSpec::per_second(7, 1 << 20).queue_depth(2));
        // Interactive share of 7 ops/s at weights 4/2/1 is 4 → burst
        // capacity is still the full bucket (7 tokens at mount).
        for _ in 0..7 {
            let t = ctl.admit("katrin", Lane::Interactive, 0).expect("in burst");
            assert_eq!(t.wait_ns, 0, "tokens in the bucket admit immediately");
        }
        // Borrowing ahead: queue_depth 2 admits two more, with waits.
        let t8 = ctl.admit("katrin", Lane::Interactive, 0).expect("queued");
        assert!(t8.wait_ns > 0);
        assert_eq!(t8.queue_depth, 1);
        let t9 = ctl.admit("katrin", Lane::Interactive, 0).expect("queued");
        assert!(t9.wait_ns > t8.wait_ns);
        assert_eq!(t9.queue_depth, 2);
        // The tenth is shed with a finite, exact retry hint.
        match ctl.admit("katrin", Lane::Interactive, 0) {
            Err(AdmissionError::Rejected { retry_after_ns, .. }) => {
                assert!(retry_after_ns > 0 && retry_after_ns < u64::MAX);
            }
            other => panic!("expected shed, got {other:?}"),
        }
    }

    #[test]
    fn zero_byte_quota_sheds_forever() {
        let reg = registry();
        let ctl = controller(&reg);
        ctl.register(
            "cold",
            QuotaSpec {
                ops_per_sec: 100,
                ops_burst: 100,
                bytes_per_sec: 0,
                bytes_burst: 0,
                queue_depth: 10,
                lane_weights: DEFAULT_LANE_WEIGHTS,
            },
        );
        match ctl.admit("cold", Lane::Bulk, 1) {
            Err(AdmissionError::Rejected { retry_after_ns, .. }) => {
                assert_eq!(retry_after_ns, u64::MAX, "no refill rate → never");
            }
            other => panic!("expected shed, got {other:?}"),
        }
        // Zero-byte requests still pass: the op account has tokens.
        assert!(ctl.admit("cold", Lane::Bulk, 0).is_ok());
    }

    #[test]
    fn refill_carries_remainders_across_clock_jumps() {
        let reg = registry();
        let ctl = controller(&reg);
        // 21 ops/s → interactive lane rate 21·4/7 = 12/s. A one-token
        // bucket and no queue: only a refilled token admits.
        ctl.register(
            "jump",
            QuotaSpec::per_second(21, 1 << 20).ops_burst(1).queue_depth(0),
        );
        // Spend the single burst token, emptying the bucket.
        let t = ctl.admit("jump", Lane::Interactive, 0).expect("burst token");
        assert_eq!(t.wait_ns, 0);
        // One token at 12/s takes ceil(1e9/12) = 83_333_334ns.
        match ctl.admit("jump", Lane::Interactive, 0) {
            Err(AdmissionError::Rejected { retry_after_ns, .. }) => {
                assert_eq!(retry_after_ns, 83_333_334);
            }
            other => panic!("expected shed, got {other:?}"),
        }
        // Jump the clock by thirds of a token. Each refill yields
        // 12/s × 27_777_778ns = 0.333… tokens; without the exact
        // carry every jump would round to zero and no request would
        // ever be admitted again.
        for i in 1..=2u64 {
            reg.set_virtual_time_ns(i * 27_777_778);
            assert!(
                ctl.admit("jump", Lane::Interactive, 0).is_err(),
                "jump {i}: still a fraction of a token short"
            );
        }
        reg.set_virtual_time_ns(3 * 27_777_778);
        let t = ctl.admit("jump", Lane::Interactive, 0).expect("carried token");
        assert_eq!(t.wait_ns, 0, "the third jump completes one whole token");
    }

    #[test]
    fn lane_partition_isolates_interactive_from_bulk() {
        let reg = registry();
        let ctl = controller(&reg);
        ctl.register("mix", QuotaSpec::per_second(70, 1 << 20).queue_depth(0));
        // Drain the bulk lane completely.
        let mut bulk_shed = 0;
        for _ in 0..200 {
            if ctl.admit("mix", Lane::Bulk, 0).is_err() {
                bulk_shed += 1;
            }
        }
        assert!(bulk_shed > 0, "bulk lane must exhaust");
        // Interactive still has its own full bucket.
        assert!(ctl.admit("mix", Lane::Interactive, 0).is_ok());
    }

    #[test]
    fn governor_throttles_and_clears() {
        let reg = registry();
        let ctl = controller(&reg);
        ctl.register("flood", QuotaSpec::per_second(1000, 1 << 20));
        let health = |violations| FacilityHealth {
            t_ns: reg.now_ns(),
            healthy: violations == 0,
            rules: Vec::new(),
            projects: vec![lsdf_obs::ProjectAccount {
                project: "flood".into(),
                ops: 0,
                bytes: 0,
                tape_mounts: 0,
                violations,
                windowed_violations: 0,
            }],
        };
        ctl.observe(&health(1));
        assert_eq!(ctl.throttle_level("flood"), Some(1));
        ctl.observe(&health(1));
        ctl.observe(&health(1));
        ctl.observe(&health(1));
        assert_eq!(ctl.throttle_level("flood"), Some(3), "capped at 3");
        ctl.observe(&health(0));
        assert_eq!(ctl.throttle_level("flood"), Some(0), "cleared when healthy");
        let snap = reg.snapshot();
        let transitions: u64 = snap
            .counters
            .iter()
            .filter(|(id, _)| id.name == names::ADMISSION_GOVERNOR_TRANSITIONS_TOTAL)
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(transitions, 4, "3 throttles + 1 clear");
    }

    #[test]
    fn governor_follows_the_windowed_signal_when_windowed_rules_exist() {
        let reg = registry();
        let ctl = controller(&reg);
        ctl.register("burst", QuotaSpec::per_second(1000, 1 << 20));
        let health = |violations, windowed_violations| FacilityHealth {
            t_ns: reg.now_ns(),
            healthy: false,
            rules: vec![lsdf_obs::RuleOutcome {
                rule: "window(8) burn(a / b, 0.01) <= 2".into(),
                ok: windowed_violations == 0,
                observed: 0.0,
                threshold: 2.0,
                windowed: true,
            }],
            projects: vec![lsdf_obs::ProjectAccount {
                project: "burst".into(),
                ops: 0,
                bytes: 0,
                tape_mounts: 0,
                violations,
                windowed_violations,
            }],
        };
        // A transient spike (instantaneous violation only) does not
        // move the throttle while windowed alerting is configured.
        ctl.observe(&health(1, 0));
        assert_eq!(ctl.throttle_level("burst"), Some(0));
        // Sustained degradation does.
        ctl.observe(&health(0, 1));
        assert_eq!(ctl.throttle_level("burst"), Some(1));
        // And the throttle clears only when the window is clean, even
        // if a fresh spike is in flight.
        ctl.observe(&health(1, 0));
        assert_eq!(ctl.throttle_level("burst"), Some(0));
    }

    #[test]
    fn throttling_halves_the_refill_rate() {
        let reg = registry();
        let ctl = controller(&reg);
        ctl.register("slow", QuotaSpec::per_second(700, 1 << 30).ops_burst(0));
        // Full rate: interactive lane refills at 400/s.
        let t = ctl.admit("slow", Lane::Interactive, 0).expect("borrow");
        assert_eq!(t.wait_ns, 2_500_000);
        let health = FacilityHealth {
            t_ns: reg.now_ns(),
            healthy: false,
            rules: Vec::new(),
            projects: vec![lsdf_obs::ProjectAccount {
                project: "slow".into(),
                ops: 0,
                bytes: 0,
                tape_mounts: 0,
                violations: 1,
                windowed_violations: 0,
            }],
        };
        ctl.observe(&health);
        // Level 1: 200/s, so the next borrowed token is twice as far
        // out (two tokens deep at 5ms each).
        let t = ctl.admit("slow", Lane::Interactive, 0).expect("borrow");
        assert_eq!(t.wait_ns, 10_000_000);
    }

    #[test]
    fn decisions_are_deterministic_for_a_fixed_schedule() {
        let run = || {
            let reg = registry();
            let ctl = controller(&reg);
            ctl.register("det", QuotaSpec::per_second(5, 4096).queue_depth(3));
            let mut log = Vec::new();
            for step in 0..40u64 {
                reg.set_virtual_time_ns(step * 37_000_000);
                let lane = Lane::ALL[(step % 3) as usize];
                match ctl.admit("det", lane, (step % 7) * 100) {
                    Ok(t) => log.push(format!("ok {} {}", t.wait_ns, t.queue_depth)),
                    Err(AdmissionError::Rejected { retry_after_ns, .. }) => {
                        log.push(format!("shed {retry_after_ns}"))
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            log
        };
        assert_eq!(run(), run(), "same schedule → bit-identical decisions");
    }

    #[test]
    fn unknown_project_is_typed() {
        let reg = registry();
        let ctl = controller(&reg);
        assert_eq!(
            ctl.admit("ghost", Lane::Bulk, 0),
            Err(AdmissionError::UnknownProject("ghost".into()))
        );
    }

    #[test]
    fn unlimited_quota_never_waits() {
        let reg = registry();
        let ctl = controller(&reg);
        ctl.register("legacy", QuotaSpec::unlimited());
        for _ in 0..10_000 {
            let t = ctl.admit("legacy", Lane::Bulk, 1 << 20).expect("unlimited");
            assert_eq!(t.wait_ns, 0);
            assert_eq!(t.queue_depth, 0);
        }
        assert_eq!(ctl.usage("legacy").map(|u| u.shed), Some(0));
    }
}
