//! Facility-scale ingest campaigns in virtual time: months of operation
//! of the slide-7 infrastructure, simulated in seconds.
//!
//! Each community's DAQ emits data batches at its daily rate; batches
//! become flows on the facility's 10 GE fabric (max–min fair with
//! everything else in the air) into the storage heads. The result is the
//! storage fill curve, per-community delivery accounting, and the date
//! the installed capacity runs out — the operational question behind the
//! paper's "6 PB in 2012" expansion plan (slide 14).

use std::cell::RefCell;
use std::rc::Rc;

use lsdf_net::lsdf::{build as build_facility_net, capacity};
use lsdf_net::NetSim;

use crate::error::LsdfError;
use lsdf_sim::{SimDuration, SimTime, Simulation};

/// Which storage system a community writes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageTarget {
    /// The 1.4 PB IBM system.
    Ibm,
    /// The 0.5 PB DDN system.
    Ddn,
}

/// One data-producing community in the campaign.
#[derive(Debug, Clone)]
pub struct CampaignCommunity {
    /// Community name.
    pub name: String,
    /// Production rate, bytes per simulated day.
    pub daily_bytes: u64,
    /// Batches per day (one flow per batch).
    pub batches_per_day: u32,
    /// Which storage system it targets.
    pub target: StorageTarget,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Days to simulate.
    pub days: u32,
    /// The communities.
    pub communities: Vec<CampaignCommunity>,
    /// Network protocol efficiency in `(0, 1]`.
    pub efficiency: f64,
}

impl CampaignConfig {
    /// The paper's 2011 steady state: zebrafish at 2 TB/day into IBM,
    /// the smaller communities into DDN.
    pub fn lsdf_2011(days: u32) -> Self {
        CampaignConfig {
            days,
            communities: vec![
                CampaignCommunity {
                    name: "zebrafish-htm".into(),
                    daily_bytes: 2_000_000_000_000,
                    batches_per_day: 24,
                    target: StorageTarget::Ibm,
                },
                CampaignCommunity {
                    name: "katrin".into(),
                    daily_bytes: 100_000_000_000,
                    batches_per_day: 12,
                    target: StorageTarget::Ddn,
                },
                CampaignCommunity {
                    name: "anka".into(),
                    daily_bytes: 300_000_000_000,
                    batches_per_day: 8,
                    target: StorageTarget::Ddn,
                },
            ],
            efficiency: 0.7,
        }
    }
}

/// One sample of the fill curve (taken at each simulated midnight).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FillSample {
    /// Day index (1-based: sampled at the end of this day).
    pub day: u32,
    /// Bytes accumulated on the IBM system.
    pub ibm_bytes: u128,
    /// Bytes accumulated on the DDN system.
    pub ddn_bytes: u128,
}

/// Campaign outcome.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Bytes delivered into storage, total.
    pub delivered_bytes: u128,
    /// Bytes the communities produced (delivered + still in flight).
    pub produced_bytes: u128,
    /// Flows still in the air when the horizon hit (ingest backlog).
    pub in_flight_flows: usize,
    /// End-of-day fill samples.
    pub fill_curve: Vec<FillSample>,
    /// First day the combined fill exceeded the installed 1.9 PB, if any.
    pub capacity_exhausted_on_day: Option<u32>,
}

/// Runs the campaign. Virtual time only — a year simulates in well under
/// a second of wall clock.
///
/// # Panics
/// Panics if `days == 0`, a community has zero batches, or the config
/// routes more communities than the facility has DAQ ports (one each).
///
/// # Errors
/// Propagates facility-network construction failures as [`LsdfError::Net`].
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignResult, LsdfError> {
    assert!(config.days > 0, "campaign needs at least one day");
    assert!(
        config.communities.iter().all(|c| c.batches_per_day > 0),
        "each community needs at least one batch per day"
    );
    let net = build_facility_net(config.communities.len())?;
    let sim_net = NetSim::with_efficiency(net.topology.clone(), config.efficiency);
    let mut sim = Simulation::new();

    let ibm = Rc::new(RefCell::new(0u128));
    let ddn = Rc::new(RefCell::new(0u128));
    let produced = Rc::new(RefCell::new(0u128));
    let day_ns: u64 = 86_400_000_000_000;

    // Schedule every batch of every community up front (they are light).
    for (ci, community) in config.communities.iter().enumerate() {
        // Split the daily volume exactly: early batches carry the
        // remainder byte so per-day sums match daily_bytes.
        let base = community.daily_bytes / u64::from(community.batches_per_day);
        let rem = community.daily_bytes % u64::from(community.batches_per_day);
        let interval = SimDuration::from_nanos(day_ns / u64::from(community.batches_per_day));
        let daq = net.daq[ci];
        let dst = match community.target {
            StorageTarget::Ibm => net.storage_ibm,
            StorageTarget::Ddn => net.storage_ddn,
        };
        let sink = match community.target {
            StorageTarget::Ibm => ibm.clone(),
            StorageTarget::Ddn => ddn.clone(),
        };
        for day in 0..config.days {
            for b in 0..community.batches_per_day {
                let batch_bytes = base + u64::from(u64::from(b) < rem);
                let at = SimTime::ZERO
                    + SimDuration::from_nanos(u64::from(day) * day_ns)
                    + interval * u64::from(b);
                let sim_net = sim_net.clone();
                let sink = sink.clone();
                let produced = produced.clone();
                sim.schedule_at(at, move |s| {
                    *produced.borrow_mut() += u128::from(batch_bytes);
                    let sink = sink.clone();
                    sim_net
                        .start_flow(s, daq, dst, batch_bytes, move |_, summary| {
                            *sink.borrow_mut() += u128::from(summary.bytes);
                        })
                        // lint: allow(no_panic) -- sim callback; every DAQ is dual-homed so routes exist
                        .expect("facility routes exist");
                });
            }
        }
    }

    // Sample the fill at each midnight.
    let fill: Rc<RefCell<Vec<FillSample>>> = Rc::new(RefCell::new(Vec::new()));
    for day in 1..=config.days {
        let at = SimTime::ZERO + SimDuration::from_nanos(u64::from(day) * day_ns);
        let ibm = ibm.clone();
        let ddn = ddn.clone();
        let fill = fill.clone();
        sim.schedule_at(at, move |_| {
            fill.borrow_mut().push(FillSample {
                day,
                ibm_bytes: *ibm.borrow(),
                ddn_bytes: *ddn.borrow(),
            });
        });
    }

    // Run to the horizon plus a drain allowance for in-flight batches.
    let horizon = SimTime::ZERO + SimDuration::from_nanos(u64::from(config.days) * day_ns);
    sim.run_until(horizon);
    let in_flight = sim_net.active_flows();
    // Let the tail drain for accounting, but keep the fill curve as-of
    // the horizon.
    sim.run();

    let fill_curve = fill.borrow().clone();
    let installed = u128::from(capacity::TOTAL_DISK_BYTES);
    let capacity_exhausted_on_day = fill_curve
        .iter()
        .find(|s| s.ibm_bytes + s.ddn_bytes > installed)
        .map(|s| s.day);
    let delivered_bytes = *ibm.borrow() + *ddn.borrow();
    let produced_bytes = *produced.borrow();
    Ok(CampaignResult {
        delivered_bytes,
        produced_bytes,
        in_flight_flows: in_flight,
        fill_curve,
        capacity_exhausted_on_day,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_days_deliver_everything() {
        let config = CampaignConfig::lsdf_2011(30);
        let r = run_campaign(&config).expect("campaign runs");
        let expect: u128 = config
            .communities
            .iter()
            .map(|c| u128::from(c.daily_bytes) * 30)
            .sum();
        assert_eq!(r.produced_bytes, expect);
        assert_eq!(r.delivered_bytes, expect, "10 GE keeps up with 2.4 TB/day");
        assert_eq!(r.fill_curve.len(), 30);
        assert!(r.capacity_exhausted_on_day.is_none());
    }

    #[test]
    fn fill_curve_is_monotone_and_split_by_target() {
        let r = run_campaign(&CampaignConfig::lsdf_2011(10)).expect("campaign runs");
        for w in r.fill_curve.windows(2) {
            assert!(w[1].ibm_bytes >= w[0].ibm_bytes);
            assert!(w[1].ddn_bytes >= w[0].ddn_bytes);
        }
        let last = r.fill_curve.last().unwrap();
        // Zebrafish (2 TB/day) goes to IBM; katrin+anka (0.4 TB/day) to DDN.
        assert_eq!(last.ibm_bytes, 2_000_000_000_000u128 * 10);
        assert_eq!(last.ddn_bytes, 400_000_000_000u128 * 10);
    }

    #[test]
    fn capacity_exhaustion_day_matches_arithmetic() {
        // Crank zebrafish to 60 TB/day — below the DAQ uplink's
        // 75.6 TB/day (10 Gb/s x 0.7), so delivery tracks production and
        // the fill is pure arithmetic: 1.9 PB / 60.4 TB/day ~ day 32.
        let mut config = CampaignConfig::lsdf_2011(40);
        config.communities[0].daily_bytes = 60_000_000_000_000;
        let r = run_campaign(&config).expect("campaign runs");
        let day = r.capacity_exhausted_on_day.expect("must exhaust");
        assert!(
            (31..=33).contains(&day),
            "exhaustion on day {day}, expected ~32"
        );
    }

    #[test]
    fn overload_completions_lag_link_capacity() {
        // Above uplink capacity, processor-sharing keeps many flows
        // partially complete: delivered-to-storage per day is *below*
        // even the link's capacity, and the backlog grows — the queueing
        // insight behind giving heavy experiments dedicated links.
        let mut config = CampaignConfig::lsdf_2011(10);
        config.communities[0].daily_bytes = 100_000_000_000_000;
        let r = run_campaign(&config).expect("campaign runs");
        let last = r.fill_curve.last().unwrap();
        let per_day = last.ibm_bytes as f64 / 10.0;
        assert!(per_day < 75.6e12, "delivery {per_day} must be under link rate");
        assert!(per_day > 40e12, "but the link is far from idle");
        assert!(r.in_flight_flows > 50, "backlog grows without backpressure");
    }

    #[test]
    fn overload_creates_backlog() {
        // A DAQ cannot push more than its 10 GE uplink: 10 Gb/s * 0.7 eff
        // ≈ 75.6 TB/day. Ask for 200 TB/day and the backlog shows up as
        // in-flight flows at the horizon.
        let mut config = CampaignConfig::lsdf_2011(5);
        config.communities[0].daily_bytes = 200_000_000_000_000;
        let r = run_campaign(&config).expect("campaign runs");
        assert!(
            r.in_flight_flows > 0,
            "an oversubscribed uplink must leave flows in the air"
        );
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn zero_days_rejected() {
        let _ = run_campaign(&CampaignConfig::lsdf_2011(0));
    }
}
