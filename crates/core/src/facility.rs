//! The facility: wiring storage backends, the ADAL, per-project metadata
//! stores and access control into one system, as deployed at KIT.

use std::collections::HashMap;
use std::sync::Arc;

use lsdf_adal::{
    Acl, Adal, Credential, DfsBackend, HsmBackend, ObjectStoreBackend, ResilienceConfig,
    StorageBackend, TokenAuth,
};
use lsdf_admission::{AdmissionController, AdmissionError, Lane, QuotaSpec, Ticket};
use lsdf_dfs::{ClusterTopology, Dfs, DfsConfig};
use lsdf_durability::{ComponentDurability, DurabilityConfig, DurableStore};
use lsdf_metadata::{ProjectStore, Schema};
use lsdf_obs::{
    facility_status, names, ConsoleInputs, FacilityHealth, Registry, SloMonitor, SloRule,
    SpanProfile, TelemetryConfig, TelemetryStore, TraceConfig, TraceCtx, Tracer,
};
use lsdf_pool::WorkerPool;
use lsdf_storage::{Hsm, MigrationPolicy, ObjectStore};

use crate::error::FacilityError;
use crate::ingest::IngestObs;
use crate::session::ProjectSession;

/// Which storage component backs a project's data.
#[derive(Debug, Clone)]
pub enum BackendChoice {
    /// Plain disk-array object store with the given capacity.
    ObjectStore {
        /// Capacity in bytes.
        capacity: u64,
    },
    /// HSM-tiered store (disk watermarks + tape).
    Hsm {
        /// Disk-tier capacity in bytes.
        disk_capacity: u64,
        /// Demote until usage falls below this fraction.
        low_watermark: f64,
        /// Demote when usage exceeds this fraction.
        high_watermark: f64,
        /// Victim-selection policy.
        policy: MigrationPolicy,
    },
    /// The shared Hadoop-style DFS (analysis data).
    Dfs,
}

/// Declarative description of one tenant project, consumed by
/// [`FacilityBuilder::tenant`]: the metadata schema, the backend
/// serving the data, optional resilience (replica + retry/breaker/
/// journal configuration), the admission [`QuotaSpec`] the front door
/// enforces, and the QoS [`Lane`] the project's bulk traffic rides.
pub struct ProjectSpec {
    schema: Schema,
    backend: BackendChoice,
    resilience: Option<(BackendChoice, ResilienceConfig)>,
    quota: QuotaSpec,
    lane: Lane,
}

impl ProjectSpec {
    /// A plain tenant: `schema` names the project, `backend` serves
    /// its bytes. Defaults: unlimited quota, bulk-ingest lane, no
    /// resilience.
    pub fn new(schema: Schema, backend: BackendChoice) -> Self {
        ProjectSpec {
            schema,
            backend,
            resilience: None,
            quota: QuotaSpec::unlimited(),
            lane: Lane::Bulk,
        }
    }

    /// Mounts the project through the full ADAL resilience stack:
    /// retries, circuit breaker, replica failover reads and a redo
    /// journal (see [`Adal::mount_resilient`]). The replica should be
    /// an independent backend (a [`BackendChoice::Dfs`] replica shares
    /// the facility-wide DFS namespace with any DFS primary).
    pub fn resilient(mut self, replica: BackendChoice, cfg: ResilienceConfig) -> Self {
        self.resilience = Some((replica, cfg));
        self
    }

    /// Installs the admission quota the front door enforces for this
    /// tenant (default: [`QuotaSpec::unlimited`]).
    pub fn quota(mut self, quota: QuotaSpec) -> Self {
        self.quota = quota;
        self
    }

    /// The QoS lane the tenant's bulk (write-side) traffic rides
    /// (default: [`Lane::Bulk`]). Read-side traffic is classified per
    /// request, so this only moves writes.
    pub fn lane(mut self, lane: Lane) -> Self {
        self.lane = lane;
        self
    }

    /// The project name (the schema's name).
    pub fn name(&self) -> &str {
        &self.schema.name
    }
}

/// Builder for a [`Facility`].
pub struct FacilityBuilder {
    projects: Vec<ProjectSpec>,
    cluster: ClusterTopology,
    dfs_config: DfsConfig,
    admin_token: String,
    registry: Option<Arc<Registry>>,
    workers: Option<usize>,
    tracing: Option<TraceConfig>,
    slo_rules: Option<Vec<SloRule>>,
    durability: Option<(DurableStore, DurabilityConfig)>,
    telemetry: Option<TelemetryConfig>,
}

impl FacilityBuilder {
    /// Starts a builder with the paper's 60-node cluster and an
    /// `"admin"` token.
    pub fn new() -> Self {
        FacilityBuilder {
            projects: Vec::new(),
            cluster: ClusterTopology::lsdf(),
            dfs_config: DfsConfig::default(),
            admin_token: "admin-token".to_string(),
            registry: None,
            workers: None,
            tracing: None,
            slo_rules: None,
            durability: None,
            telemetry: None,
        }
    }

    /// Overrides the telemetry store's scrape interval / retention (see
    /// [`TelemetryConfig`]). The store itself is always on: it scrapes
    /// the registry on the virtual clock, keeps the bounded time-series
    /// history that powers windowed SLO rules (`window(N) ...`), and
    /// feeds the sparklines in [`Facility::operator_report`].
    pub fn telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = Some(config);
        self
    }

    /// Makes the facility's stateful services (DFS namenode, per-project
    /// metadata stores) crash-durable: every acked mutation is committed
    /// to a per-component WAL in `store` before returning, checkpoints
    /// are taken by [`Facility::run_durability_reconciler`], and any
    /// state already in `store` (a previous incarnation's checkpoint +
    /// WAL) is recovered during [`FacilityBuilder::build`].
    pub fn durability(mut self, store: DurableStore, cfg: DurabilityConfig) -> Self {
        self.durability = Some((store, cfg));
        self
    }

    /// Enables causal tracing: every ADAL operation and batch ingest
    /// mints a trace (subject to `config`'s sampling mode), retrievable
    /// through [`Facility::tracer`].
    pub fn tracing(mut self, config: TraceConfig) -> Self {
        self.tracing = Some(config);
        self
    }

    /// Installs declarative SLO rules evaluated by
    /// [`Facility::facility_health`]. Without this call the facility
    /// monitors the default rule set (see [`SloMonitor::with_defaults`]).
    pub fn slo(mut self, rules: Vec<SloRule>) -> Self {
        self.slo_rules = Some(rules);
        self
    }

    /// Sets the worker-pool width for the parallel data path (batch
    /// ingest fan-out and ADAL replica writes). Defaults to the
    /// `LSDF_WORKERS` environment variable; unset means serial. Results
    /// are bit-identical for every worker count — only wall-clock time
    /// changes.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Supplies an external metrics registry. Every subsystem the builder
    /// assembles (ADAL, DFS, HSM tiers, ingest pipeline) records into it;
    /// by default the facility creates its own.
    pub fn registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Adds a tenant project from its declarative [`ProjectSpec`]:
    /// schema, backend, optional resilience, admission quota and QoS
    /// lane, all in one description.
    pub fn tenant(mut self, spec: ProjectSpec) -> Self {
        self.projects.push(spec);
        self
    }

    /// Adds a project with its metadata schema and backend choice.
    #[deprecated(note = "use `tenant(ProjectSpec::new(schema, backend))`")]
    pub fn project(self, schema: Schema, backend: BackendChoice) -> Self {
        self.tenant(ProjectSpec::new(schema, backend))
    }

    /// Adds a project mounted through the full ADAL resilience stack.
    #[deprecated(
        note = "use `tenant(ProjectSpec::new(schema, primary).resilient(replica, cfg))`"
    )]
    pub fn resilient_project(
        self,
        schema: Schema,
        primary: BackendChoice,
        replica: BackendChoice,
        cfg: ResilienceConfig,
    ) -> Self {
        self.tenant(ProjectSpec::new(schema, primary).resilient(replica, cfg))
    }

    /// Overrides the compute-cluster shape.
    pub fn cluster(mut self, topology: ClusterTopology, config: DfsConfig) -> Self {
        self.cluster = topology;
        self.dfs_config = config;
        self
    }

    /// Overrides the bootstrap admin token.
    pub fn admin_token(mut self, token: &str) -> Self {
        self.admin_token = token.to_string();
        self
    }

    /// Assembles the facility.
    pub fn build(self) -> Result<Facility, FacilityError> {
        let obs = self.registry.unwrap_or_else(|| Arc::new(Registry::new()));
        let pool = self
            .workers
            .map(WorkerPool::new)
            .unwrap_or_else(WorkerPool::from_env);
        let auth = Arc::new(TokenAuth::new());
        auth.register(&self.admin_token, "admin");
        let acl = Arc::new(Acl::new());
        let tracer = self.tracing.map(|cfg| Tracer::new(&obs, cfg));
        let telemetry = TelemetryStore::new(self.telemetry.unwrap_or_default());
        let slo = match self.slo_rules {
            Some(rules) => SloMonitor::new(rules),
            None => SloMonitor::with_defaults(),
        };
        let mut adal_builder = Adal::builder()
            .auth(auth.clone())
            .acl(acl.clone())
            .registry(obs.clone())
            .workers(pool.workers());
        if let Some(t) = &tracer {
            adal_builder = adal_builder.tracer(t.clone());
        }
        let adal = Arc::new(adal_builder.build());
        let dfs_durability = self
            .durability
            .as_ref()
            .map(|(store, cfg)| ComponentDurability::open(store, "dfs", &obs, cfg));
        let dfs = Arc::new(Dfs::with_durability(
            self.cluster,
            self.dfs_config,
            obs.clone(),
            dfs_durability,
        ));

        let admission = Arc::new(AdmissionController::new(obs.clone()));
        let mut stores = HashMap::new();
        let mut hsms = HashMap::new();
        let mut lanes = HashMap::new();
        for spec in self.projects {
            let project = spec.schema.name.clone();
            if stores.contains_key(&project) {
                return Err(FacilityError::DuplicateProject(project));
            }
            let primary = make_backend(&project, spec.backend, &obs, &dfs, &mut hsms);
            match spec.resilience {
                None => adal.mount(&project, primary),
                Some((replica_choice, cfg)) => {
                    // The replica's stores carry a `-replica` suffix so
                    // they never collide with the primary's.
                    let replica = make_backend(
                        &format!("{project}-replica"),
                        replica_choice,
                        &obs,
                        &dfs,
                        &mut hsms,
                    );
                    adal.mount_resilient(&project, primary, Some(replica), cfg);
                }
            }
            // Admin gets full access to every project.
            acl.grant("admin", &project, true);
            admission.register(&project, spec.quota);
            lanes.insert(project.clone(), spec.lane);
            let meta_durability = self.durability.as_ref().map(|(store, cfg)| {
                ComponentDurability::open(store, &format!("meta-{project}"), &obs, cfg)
            });
            stores.insert(
                project,
                Arc::new(ProjectStore::with_durability(spec.schema, meta_durability)),
            );
        }
        // Resolve every ingest metric handle once, so the steady-state
        // ingest hot path never touches the registry maps.
        let ingest_obs = IngestObs::new(&obs, stores.keys());
        Ok(Facility {
            adal,
            auth,
            acl,
            dfs,
            stores,
            hsms,
            admin: Credential::Token(self.admin_token),
            obs,
            pool,
            ingest_obs,
            tracer,
            telemetry,
            slo,
            admission,
            lanes,
            durability: self.durability,
        })
    }
}

impl Default for FacilityBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Constructs the storage backend for one mount. `name` keys the
/// underlying stores (and the [`Facility::hsm`] lookup for HSM mounts);
/// resilient replicas pass a suffixed name so their stores stay
/// distinct from the primary's.
fn make_backend(
    name: &str,
    choice: BackendChoice,
    obs: &Arc<Registry>,
    dfs: &Arc<Dfs>,
    hsms: &mut HashMap<String, Arc<Hsm>>,
) -> Arc<dyn StorageBackend> {
    match choice {
        BackendChoice::ObjectStore { capacity } => {
            let store = Arc::new(ObjectStore::new(name, capacity));
            Arc::new(ObjectStoreBackend::new(store))
        }
        BackendChoice::Hsm {
            disk_capacity,
            low_watermark,
            high_watermark,
            policy,
        } => {
            let disk = Arc::new(ObjectStore::new(format!("{name}-disk"), disk_capacity));
            let tape = Arc::new(ObjectStore::new(format!("{name}-tape"), u64::MAX));
            let hsm = Arc::new(Hsm::with_registry(
                disk,
                tape,
                low_watermark,
                high_watermark,
                policy,
                obs.clone(),
            ));
            hsms.insert(name.to_string(), hsm.clone());
            Arc::new(HsmBackend::new(hsm))
        }
        BackendChoice::Dfs => Arc::new(DfsBackend::new(dfs.clone())),
    }
}

/// The assembled Large Scale Data Facility.
pub struct Facility {
    adal: Arc<Adal>,
    auth: Arc<TokenAuth>,
    acl: Arc<Acl>,
    dfs: Arc<Dfs>,
    stores: HashMap<String, Arc<ProjectStore>>,
    hsms: HashMap<String, Arc<Hsm>>,
    admin: Credential,
    obs: Arc<Registry>,
    pool: WorkerPool,
    ingest_obs: IngestObs,
    tracer: Option<Tracer>,
    telemetry: TelemetryStore,
    slo: SloMonitor,
    admission: Arc<AdmissionController>,
    lanes: HashMap<String, Lane>,
    durability: Option<(DurableStore, DurabilityConfig)>,
}

/// What one component replayed during [`Facility::crash_restart`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentRecovery {
    /// Component name (`"dfs"` or `"meta-<project>"`).
    pub component: String,
    /// A verified checkpoint was loaded as the replay base.
    pub snapshot_loaded: bool,
    /// WAL records applied during replay.
    pub replayed: u64,
    /// WAL records skipped (effect already present).
    pub skipped: u64,
    /// Log segments that ended in a torn (un-acked) frame.
    pub torn_tails: u64,
}

/// Per-component recovery outcome of one kill-and-restart cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// One entry per stateful component, DFS first, then the metadata
    /// stores in project order.
    pub components: Vec<ComponentRecovery>,
}

impl RecoveryReport {
    /// Total WAL records replayed across components.
    pub fn total_replayed(&self) -> u64 {
        self.components.iter().map(|c| c.replayed).sum()
    }

    /// Total torn (discarded, never-acked) frames across components.
    pub fn total_torn_tails(&self) -> u64 {
        self.components.iter().map(|c| c.torn_tails).sum()
    }

    /// Renders the report as a stable JSON document (the restart-soak
    /// CI artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"components\": [\n");
        for (i, c) in self.components.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"component\": \"{}\", \"snapshot_loaded\": {}, \"replayed\": {}, \"skipped\": {}, \"torn_tails\": {}}}{}\n",
                c.component,
                c.snapshot_loaded,
                c.replayed,
                c.skipped,
                c.torn_tails,
                if i + 1 < self.components.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"total_replayed\": {},\n  \"total_torn_tails\": {}\n}}\n",
            self.total_replayed(),
            self.total_torn_tails()
        ));
        out
    }
}

impl Facility {
    /// Starts a builder.
    pub fn builder() -> FacilityBuilder {
        FacilityBuilder::new()
    }

    /// The unified access layer.
    pub fn adal(&self) -> &Arc<Adal> {
        &self.adal
    }

    /// The facility-wide metrics registry. Every subsystem assembled by
    /// the builder records into it; export with
    /// [`Registry::to_json`].
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The shared analysis cluster's DFS.
    pub fn dfs(&self) -> &Arc<Dfs> {
        &self.dfs
    }

    /// The worker pool driving the parallel data path.
    pub fn pool(&self) -> WorkerPool {
        self.pool
    }

    /// Cached ingest metric handles (resolved once at build time).
    pub(crate) fn ingest_obs(&self) -> &IngestObs {
        &self.ingest_obs
    }

    /// The causal tracer, when the facility was built with
    /// [`FacilityBuilder::tracing`].
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// The installed SLO monitor.
    pub fn slo(&self) -> &SloMonitor {
        &self.slo
    }

    /// The always-on telemetry store: the bounded time-series history
    /// scraped from [`Facility::obs`] on the virtual clock.
    pub fn telemetry(&self) -> &TelemetryStore {
        &self.telemetry
    }

    /// Evaluates the SLO rules against the current registry state and
    /// returns the facility health report, including per-project
    /// accounting (ops, bytes, tape mounts, violations). Scrapes the
    /// telemetry store first (if its interval has elapsed) so windowed
    /// rules see history up to the current virtual time.
    pub fn facility_health(&self) -> FacilityHealth {
        self.telemetry.maybe_scrape(&self.obs);
        self.slo.evaluate_with_history(&self.obs, Some(&self.telemetry))
    }

    /// Renders the operator console: per-tenant accounts with
    /// ops/latency sparklines, lane queue depths, breaker states,
    /// WAL/checkpoint lag, active alerts, the slowest-operations span
    /// profile (when tracing is on), and the telemetry store's
    /// self-accounting. Byte-identical at any worker count for a given
    /// seed.
    pub fn operator_report(&self) -> String {
        let health = self.facility_health();
        let profile = self
            .tracer
            .as_ref()
            .map(|t| SpanProfile::from_traces(&t.traces()));
        facility_status(&ConsoleInputs {
            registry: &self.obs,
            telemetry: Some(&self.telemetry),
            health: &health,
            profile: profile.as_ref(),
        })
    }

    /// The collapsed-stack (flamegraph) export of every retained trace,
    /// or `None` when the facility was built without tracing.
    pub fn collapsed_stacks(&self) -> Option<String> {
        self.tracer
            .as_ref()
            .map(|t| SpanProfile::from_traces(&t.traces()).collapsed_stacks())
    }

    /// The multi-tenant admission front door.
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.admission
    }

    /// One governor step: evaluates the SLO rules and feeds the report
    /// to the admission governor, which throttles (halves the refill
    /// rate of) each project attributed a violation and restores full
    /// rate once the project is healthy again. Returns the report.
    pub fn govern(&self) -> FacilityHealth {
        let health = self.facility_health();
        self.admission.observe(&health);
        health
    }

    /// True when the facility was built with
    /// [`FacilityBuilder::durability`].
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durable store backing every component's WAL + checkpoints,
    /// when the facility is durable.
    pub fn durable_store(&self) -> Option<&DurableStore> {
        self.durability.as_ref().map(|(s, _)| s)
    }

    /// One background-reconciler sweep: checkpoints every stateful
    /// component whose WAL has crossed the configured record threshold
    /// (rotate → snapshot → persist → truncate old segments). Returns
    /// the number of checkpoints taken. A non-durable facility returns
    /// zero.
    pub fn run_durability_reconciler(&self) -> usize {
        let mut taken = 0;
        if self.dfs.maybe_checkpoint() {
            taken += 1;
        }
        for p in self.projects() {
            if self.stores[&p].maybe_checkpoint() {
                taken += 1;
            }
        }
        taken
    }

    /// Kills and restarts the facility's stateful services in place:
    /// the namenode and every metadata store lose all volatile state
    /// (with an in-flight WAL frame torn at a seed-picked offset), then
    /// recover from their durable logs — checkpoint install plus
    /// idempotent WAL replay. Datanodes model separate machines and
    /// keep their block bytes.
    ///
    /// Emits a `recovery_replay` root span (when tracing is on) with a
    /// `chaos_crash` event and one `recovery_component` child span per
    /// recovered component. A non-durable facility returns an empty
    /// report and loses nothing, because nothing is wiped.
    pub fn crash_restart(&self, seed: u64) -> RecoveryReport {
        if self.durability.is_none() {
            return RecoveryReport::default();
        }
        let root = self
            .tracer
            .as_ref()
            .map_or_else(TraceCtx::disabled, |t| {
                t.root(names::RECOVERY_REPLAY_SPAN, "restart")
            });
        root.event(names::CHAOS_CRASH_LOG_EVENT, &[("seed", &seed.to_string())]);
        // One process, one death: every stateful service crashes
        // together, each tearing its own in-flight frame.
        self.dfs.crash(seed);
        let projects = self.projects();
        for (i, p) in projects.iter().enumerate() {
            self.stores[p].crash(seed.wrapping_add(i as u64 + 1));
        }
        let mut components = Vec::with_capacity(projects.len() + 1);
        {
            let span = root.child(names::RECOVERY_COMPONENT_SPAN);
            span.add_field("component", "dfs");
            let s = self.dfs.recover();
            span.finish();
            components.push(ComponentRecovery {
                component: "dfs".to_string(),
                snapshot_loaded: s.snapshot_loaded,
                replayed: s.replayed,
                skipped: s.skipped,
                torn_tails: s.torn_tails,
            });
        }
        for p in &projects {
            let span = root.child(names::RECOVERY_COMPONENT_SPAN);
            span.add_field("component", &format!("meta-{p}"));
            let s = self.stores[p].recover();
            span.finish();
            components.push(ComponentRecovery {
                component: format!("meta-{p}"),
                snapshot_loaded: s.snapshot_loaded,
                replayed: s.replayed,
                skipped: s.skipped,
                torn_tails: s.torn_tails,
            });
        }
        root.finish();
        RecoveryReport { components }
    }

    /// The QoS lane a project's bulk (write-side) traffic rides.
    pub(crate) fn default_lane(&self, project: &str) -> Lane {
        self.lanes.get(project).copied().unwrap_or(Lane::Bulk)
    }

    /// Serial admission decision for one ingest item, made on the
    /// caller thread in submission order (never inside pool workers)
    /// so decisions are identical at every worker count. Unknown
    /// projects keep their legacy `FacilityError::UnknownProject`.
    pub(crate) fn admit_ingest(
        &self,
        project: &str,
        bytes: u64,
    ) -> Result<Ticket, FacilityError> {
        match self
            .admission
            .admit(project, self.default_lane(project), bytes)
        {
            Ok(t) => Ok(t),
            Err(AdmissionError::UnknownProject(p)) => Err(FacilityError::UnknownProject(p)),
            Err(e) => Err(e.into()),
        }
    }

    /// Opens a session on `project` under the admin credential: the
    /// handle every tenant-facing operation hangs off.
    pub fn session(&self, project: &str) -> Result<ProjectSession<'_>, FacilityError> {
        self.session_as(project, self.admin.clone())
    }

    /// Opens a session on `project` under a caller-supplied credential
    /// (register + grant the user first).
    pub fn session_as(
        &self,
        project: &str,
        cred: Credential,
    ) -> Result<ProjectSession<'_>, FacilityError> {
        if !self.stores.contains_key(project) {
            return Err(FacilityError::UnknownProject(project.to_string()));
        }
        Ok(ProjectSession::new(self, project.to_string(), cred))
    }

    /// A project's metadata store.
    pub fn store(&self, project: &str) -> Result<&Arc<ProjectStore>, FacilityError> {
        self.stores
            .get(project)
            .ok_or_else(|| FacilityError::UnknownProject(project.to_string()))
    }

    /// A project's HSM, when HSM-backed.
    pub fn hsm(&self, project: &str) -> Option<&Arc<Hsm>> {
        self.hsms.get(project)
    }

    /// Registered project names, sorted.
    pub fn projects(&self) -> Vec<String> {
        let mut v: Vec<String> = self.stores.keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// The bootstrap admin credential.
    pub fn admin(&self) -> &Credential {
        &self.admin
    }

    /// Registers a user token.
    pub fn register_user(&self, token: &str, user: &str) {
        self.auth.register(token, user);
    }

    /// Grants project access to a user.
    pub fn grant(&self, user: &str, project: &str, write: bool) {
        self.acl.grant(user, project, write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdf_metadata::{zebrafish_schema, FieldType, SchemaBuilder};
    use lsdf_obs::names;

    fn katrin_schema() -> Schema {
        SchemaBuilder::new("katrin")
            .required("run", FieldType::Int)
            .build()
            .unwrap()
    }

    fn mini() -> Facility {
        Facility::builder()
            .tenant(ProjectSpec::new(
                zebrafish_schema(),
                BackendChoice::ObjectStore { capacity: u64::MAX },
            ))
            .tenant(ProjectSpec::new(katrin_schema(), BackendChoice::Hsm {
                disk_capacity: 10_000,
                low_watermark: 0.5,
                high_watermark: 0.8,
                policy: MigrationPolicy::OldestFirst,
            }))
            .cluster(ClusterTopology::new(2, 2), DfsConfig {
                block_size: 1024,
                replication: 2,
                ..DfsConfig::default()
            })
            .build()
            .unwrap()
    }

    #[test]
    fn builder_wires_projects_and_backends() {
        let f = mini();
        assert_eq!(f.projects(), vec!["katrin", "zebrafish-htm"]);
        assert_eq!(f.adal().backend_kind("zebrafish-htm"), Some("object-store"));
        assert_eq!(f.adal().backend_kind("katrin"), Some("hsm"));
        assert!(f.hsm("katrin").is_some());
        assert!(f.hsm("zebrafish-htm").is_none());
        assert!(f.store("zebrafish-htm").is_ok());
        assert!(f.store("nope").is_err());
    }

    #[test]
    fn facility_shares_one_registry_across_subsystems() {
        let reg = Arc::new(Registry::new());
        let f = Facility::builder()
            .tenant(ProjectSpec::new(
                zebrafish_schema(),
                BackendChoice::ObjectStore { capacity: u64::MAX },
            ))
            .tenant(ProjectSpec::new(katrin_schema(), BackendChoice::Hsm {
                disk_capacity: 10_000,
                low_watermark: 0.5,
                high_watermark: 0.8,
                policy: MigrationPolicy::OldestFirst,
            }))
            .registry(reg.clone())
            .build()
            .unwrap();
        assert!(Arc::ptr_eq(f.obs(), &reg));
        assert!(Arc::ptr_eq(f.adal().obs(), &reg));
        let admin = f.admin().clone();
        f.adal()
            .put(&admin, "lsdf://katrin/obs1", bytes::Bytes::from_static(b"abc"))
            .unwrap();
        // The same put is visible at the ADAL layer and the HSM tier.
        assert_eq!(reg.counter_value(names::ADAL_OPS_TOTAL, &[("op", "put")]), 1);
        assert_eq!(
            reg.counter_value(names::HSM_PUTS_TOTAL, &[("store", "katrin-disk")]),
            1
        );
    }

    #[test]
    fn resilient_project_mounts_with_replica_and_health() {
        let f = Facility::builder()
            .tenant(
                ProjectSpec::new(
                    zebrafish_schema(),
                    BackendChoice::ObjectStore { capacity: u64::MAX },
                )
                .resilient(
                    BackendChoice::ObjectStore { capacity: u64::MAX },
                    ResilienceConfig::default(),
                ),
            )
            .build()
            .unwrap();
        let admin = f.admin().clone();
        f.adal()
            .put(
                &admin,
                "lsdf://zebrafish-htm/a",
                bytes::Bytes::from_static(b"x"),
            )
            .unwrap();
        assert_eq!(
            f.adal()
                .get(&admin, "lsdf://zebrafish-htm/a")
                .unwrap(),
            bytes::Bytes::from_static(b"x")
        );
        let h = f.adal().health("zebrafish-htm").unwrap();
        assert!(h.has_replica);
        assert_eq!(h.breaker, lsdf_adal::BreakerState::Closed);
        assert_eq!(h.journal_depth, 0);
        // The write was replicated: re-putting the same key is refused
        // by the replica-side write-once check even while degraded.
        assert!(f
            .adal()
            .put(
                &admin,
                "lsdf://zebrafish-htm/a",
                bytes::Bytes::from_static(b"y"),
            )
            .is_err());
    }

    #[test]
    fn duplicate_projects_rejected() {
        let r = Facility::builder()
            .tenant(ProjectSpec::new(
                zebrafish_schema(),
                BackendChoice::ObjectStore { capacity: 1 },
            ))
            .tenant(ProjectSpec::new(
                zebrafish_schema(),
                BackendChoice::ObjectStore { capacity: 1 },
            ))
            .build();
        assert!(matches!(r, Err(FacilityError::DuplicateProject(_))));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_builder_shims_still_compile_and_run() {
        let f = Facility::builder()
            .project(
                zebrafish_schema(),
                BackendChoice::ObjectStore { capacity: u64::MAX },
            )
            .resilient_project(
                katrin_schema(),
                BackendChoice::ObjectStore { capacity: u64::MAX },
                BackendChoice::ObjectStore { capacity: u64::MAX },
                ResilienceConfig::default(),
            )
            .build()
            .unwrap();
        assert_eq!(f.projects(), vec!["katrin", "zebrafish-htm"]);
        // Shim-registered projects get an unlimited quota: never shed.
        assert_eq!(
            f.admission().quota("katrin"),
            Some(QuotaSpec::unlimited())
        );
        assert!(f.adal().health("katrin").unwrap().has_replica);
    }

    #[test]
    fn session_puts_gets_and_reports_usage() {
        let f = mini();
        let s = f.session("katrin").unwrap();
        assert_eq!(s.project(), "katrin");
        let ticket = s.put("run1", bytes::Bytes::from_static(b"spectra")).unwrap();
        assert_eq!(ticket.wait_ns, 0, "unlimited quota never waits");
        assert_eq!(
            s.get("run1").unwrap(),
            bytes::Bytes::from_static(b"spectra")
        );
        let usage = s.usage();
        assert_eq!(usage.admitted, 2);
        assert_eq!(usage.shed, 0);
        assert_eq!(usage.bytes, 7);
        assert!(
            !s.health().expect("mount reports health").has_replica,
            "plain mount has no replica"
        );
        assert!(matches!(
            f.session("nope"),
            Err(FacilityError::UnknownProject(_))
        ));
    }

    #[test]
    fn session_sheds_puts_beyond_quota_with_typed_retry() {
        let f = Facility::builder()
            .tenant(
                ProjectSpec::new(
                    zebrafish_schema(),
                    BackendChoice::ObjectStore { capacity: u64::MAX },
                )
                .quota(QuotaSpec::per_second(7, 1 << 20).queue_depth(0))
                .lane(Lane::Bulk),
            )
            .build()
            .unwrap();
        let s = f.session("zebrafish-htm").unwrap();
        // The bulk lane's bucket mounts full (7 tokens); with no queue
        // the eighth put in the same instant is shed.
        for i in 0..7 {
            s.put(&format!("k{i}"), bytes::Bytes::from_static(b"x"))
                .unwrap();
        }
        let err = s.put("k7", bytes::Bytes::from_static(b"x")).unwrap_err();
        match err {
            FacilityError::Admission(AdmissionError::Rejected {
                project,
                lane,
                retry_after_ns,
            }) => {
                assert_eq!(project, "zebrafish-htm");
                assert_eq!(lane, Lane::Bulk);
                assert!(retry_after_ns > 0);
            }
            other => panic!("expected typed admission shed, got {other:?}"),
        }
        // The shed put never reached storage.
        assert!(s.get("k7").is_err());
        assert_eq!(s.usage().shed, 1);
    }

    fn zf_ds(name: &str, fish: i64) -> lsdf_metadata::NewDataset {
        lsdf_metadata::NewDataset {
            name: name.to_string(),
            location: format!("lsdf://zebrafish-htm/raw/{name}"),
            size_bytes: 9,
            checksum_hex: String::new(),
            basic: [
                ("fish_id".to_string(), lsdf_metadata::Value::Int(fish)),
                ("image_index".to_string(), lsdf_metadata::Value::Int(0)),
                ("focus_um".to_string(), lsdf_metadata::Value::Float(10.0)),
                (
                    "wavelength_nm".to_string(),
                    lsdf_metadata::Value::Float(488.0),
                ),
                ("well".to_string(), lsdf_metadata::Value::from("A1")),
                ("acquired_at".to_string(), lsdf_metadata::Value::Time(fish)),
            ]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn durable_facility_crash_restart_recovers_bit_identically() {
        let disk = DurableStore::new();
        let cfg = DurabilityConfig {
            checkpoint_every: 4,
            ..DurabilityConfig::default()
        };
        let f = Facility::builder()
            .tenant(ProjectSpec::new(zebrafish_schema(), BackendChoice::Dfs))
            .cluster(ClusterTopology::new(2, 2), DfsConfig {
                block_size: 1024,
                replication: 2,
                ..DfsConfig::default()
            })
            .durability(disk.clone(), cfg)
            .tracing(TraceConfig::full())
            .build()
            .unwrap();
        assert!(f.is_durable());
        assert!(f.durable_store().is_some());
        let admin = f.admin().clone();
        f.adal()
            .put(
                &admin,
                "lsdf://zebrafish-htm/a",
                bytes::Bytes::from_static(b"payload-a"),
            )
            .unwrap();
        f.adal()
            .put(
                &admin,
                "lsdf://zebrafish-htm/b",
                bytes::Bytes::from_static(b"payload-b"),
            )
            .unwrap();
        let store = f.store("zebrafish-htm").unwrap().clone();
        store.insert(zf_ds("img-0", 1)).unwrap();
        store.insert(zf_ds("img-1", 2)).unwrap();
        let dfs_digest = f.dfs().namespace_digest();
        let meta_digest = store.catalog_digest();

        let report = f.crash_restart(42);
        assert_eq!(report.components.len(), 2, "dfs + one metadata store");
        assert_eq!(report.components[0].component, "dfs");
        assert_eq!(report.components[1].component, "meta-zebrafish-htm");
        assert!(report.total_torn_tails() >= 2, "each component tears a frame");
        assert!(report.total_replayed() > 0);
        // Bit-identical namespaces, and the acked data is still readable.
        assert_eq!(f.dfs().namespace_digest(), dfs_digest);
        assert_eq!(store.catalog_digest(), meta_digest);
        assert_eq!(
            f.adal().get(&admin, "lsdf://zebrafish-htm/a").unwrap(),
            bytes::Bytes::from_static(b"payload-a")
        );
        assert_eq!(store.get_by_name("img-1").unwrap().size_bytes, 9);
        // The report renders as the CI artifact.
        let json = report.to_json();
        assert!(json.contains("\"component\": \"dfs\""));
        assert!(json.contains("\"total_replayed\""));
        // The restart minted a recovery_replay trace with per-component
        // child spans and the chaos_crash event.
        let traces = f.tracer().unwrap().traces();
        let recovery = traces
            .iter()
            .find(|t| t.root.name == names::RECOVERY_REPLAY_SPAN)
            .expect("recovery span recorded");
        assert_eq!(recovery.root.children.len(), 2, "one child span per component");
        assert!(recovery
            .root
            .events
            .iter()
            .any(|e| e.name == names::CHAOS_CRASH_LOG_EVENT));
    }

    #[test]
    fn reconciler_checkpoints_when_thresholds_cross() {
        let disk = DurableStore::new();
        let cfg = DurabilityConfig {
            checkpoint_every: 2,
            ..DurabilityConfig::default()
        };
        let f = Facility::builder()
            .tenant(ProjectSpec::new(zebrafish_schema(), BackendChoice::Dfs))
            .cluster(ClusterTopology::new(2, 2), DfsConfig {
                block_size: 1024,
                replication: 2,
                ..DfsConfig::default()
            })
            .durability(disk, cfg)
            .build()
            .unwrap();
        assert_eq!(f.run_durability_reconciler(), 0, "nothing to checkpoint yet");
        let store = f.store("zebrafish-htm").unwrap();
        store.insert(zf_ds("img-0", 1)).unwrap();
        store.insert(zf_ds("img-1", 2)).unwrap();
        assert_eq!(f.run_durability_reconciler(), 1, "metadata store crossed");
        assert_eq!(store.wal_records_since_checkpoint(), 0);
    }

    #[test]
    fn non_durable_facility_crash_restart_is_a_no_op() {
        let f = mini();
        assert!(!f.is_durable());
        assert!(f.durable_store().is_none());
        assert_eq!(f.run_durability_reconciler(), 0);
        let admin = f.admin().clone();
        f.adal()
            .put(&admin, "lsdf://katrin/run1", bytes::Bytes::from_static(b"x"))
            .unwrap();
        let report = f.crash_restart(7);
        assert!(report.components.is_empty());
        // Nothing was wiped.
        assert_eq!(
            f.adal().get(&admin, "lsdf://katrin/run1").unwrap(),
            bytes::Bytes::from_static(b"x")
        );
    }

    #[test]
    fn admin_has_access_users_do_not_until_granted() {
        let f = mini();
        let admin = f.admin().clone();
        f.adal()
            .put(&admin, "lsdf://katrin/run1", bytes::Bytes::from_static(b"x"))
            .unwrap();
        let user = Credential::Token("utok".into());
        assert!(f.adal().get(&user, "lsdf://katrin/run1").is_err());
        f.register_user("utok", "alice");
        assert!(f.adal().get(&user, "lsdf://katrin/run1").is_err());
        f.grant("alice", "katrin", false);
        assert_eq!(
            f.adal().get(&user, "lsdf://katrin/run1").unwrap(),
            bytes::Bytes::from_static(b"x")
        );
        // Read-only: writes still denied.
        assert!(f
            .adal()
            .put(&user, "lsdf://katrin/run2", bytes::Bytes::from_static(b"y"))
            .is_err());
    }
}
