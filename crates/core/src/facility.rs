//! The facility: wiring storage backends, the ADAL, per-project metadata
//! stores and access control into one system, as deployed at KIT.

use std::collections::HashMap;
use std::sync::Arc;

use lsdf_adal::{
    Acl, Adal, Credential, DfsBackend, HsmBackend, ObjectStoreBackend, ResilienceConfig,
    StorageBackend, TokenAuth,
};
use lsdf_dfs::{ClusterTopology, Dfs, DfsConfig};
use lsdf_metadata::{ProjectStore, Schema};
use lsdf_obs::{FacilityHealth, Registry, SloMonitor, SloRule, TraceConfig, Tracer};
use lsdf_pool::WorkerPool;
use lsdf_storage::{Hsm, MigrationPolicy, ObjectStore};

use crate::error::FacilityError;
use crate::ingest::IngestObs;

/// Which storage component backs a project's data.
#[derive(Debug, Clone)]
pub enum BackendChoice {
    /// Plain disk-array object store with the given capacity.
    ObjectStore {
        /// Capacity in bytes.
        capacity: u64,
    },
    /// HSM-tiered store (disk watermarks + tape).
    Hsm {
        /// Disk-tier capacity in bytes.
        disk_capacity: u64,
        /// Demote until usage falls below this fraction.
        low_watermark: f64,
        /// Demote when usage exceeds this fraction.
        high_watermark: f64,
        /// Victim-selection policy.
        policy: MigrationPolicy,
    },
    /// The shared Hadoop-style DFS (analysis data).
    Dfs,
}

/// One project entry: the primary backend plus optional resilience
/// (replica backend choice and retry/breaker/journal configuration).
struct ProjectSpec {
    schema: Schema,
    primary: BackendChoice,
    resilience: Option<(BackendChoice, ResilienceConfig)>,
}

/// Builder for a [`Facility`].
pub struct FacilityBuilder {
    projects: Vec<ProjectSpec>,
    cluster: ClusterTopology,
    dfs_config: DfsConfig,
    admin_token: String,
    registry: Option<Arc<Registry>>,
    workers: Option<usize>,
    tracing: Option<TraceConfig>,
    slo_rules: Option<Vec<SloRule>>,
}

impl FacilityBuilder {
    /// Starts a builder with the paper's 60-node cluster and an
    /// `"admin"` token.
    pub fn new() -> Self {
        FacilityBuilder {
            projects: Vec::new(),
            cluster: ClusterTopology::lsdf(),
            dfs_config: DfsConfig::default(),
            admin_token: "admin-token".to_string(),
            registry: None,
            workers: None,
            tracing: None,
            slo_rules: None,
        }
    }

    /// Enables causal tracing: every ADAL operation and batch ingest
    /// mints a trace (subject to `config`'s sampling mode), retrievable
    /// through [`Facility::tracer`].
    pub fn tracing(mut self, config: TraceConfig) -> Self {
        self.tracing = Some(config);
        self
    }

    /// Installs declarative SLO rules evaluated by
    /// [`Facility::facility_health`]. Without this call the facility
    /// monitors the default rule set (see [`SloMonitor::with_defaults`]).
    pub fn slo(mut self, rules: Vec<SloRule>) -> Self {
        self.slo_rules = Some(rules);
        self
    }

    /// Sets the worker-pool width for the parallel data path (batch
    /// ingest fan-out and ADAL replica writes). Defaults to the
    /// `LSDF_WORKERS` environment variable; unset means serial. Results
    /// are bit-identical for every worker count — only wall-clock time
    /// changes.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Supplies an external metrics registry. Every subsystem the builder
    /// assembles (ADAL, DFS, HSM tiers, ingest pipeline) records into it;
    /// by default the facility creates its own.
    pub fn registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Adds a project with its metadata schema and backend choice.
    pub fn project(mut self, schema: Schema, backend: BackendChoice) -> Self {
        self.projects.push(ProjectSpec {
            schema,
            primary: backend,
            resilience: None,
        });
        self
    }

    /// Adds a project mounted through the full ADAL resilience stack:
    /// retries, circuit breaker, replica failover reads and a redo
    /// journal (see [`Adal::mount_resilient`]). The replica should be
    /// an independent backend (a [`BackendChoice::Dfs`] replica shares
    /// the facility-wide DFS namespace with any DFS primary).
    pub fn resilient_project(
        mut self,
        schema: Schema,
        primary: BackendChoice,
        replica: BackendChoice,
        cfg: ResilienceConfig,
    ) -> Self {
        self.projects.push(ProjectSpec {
            schema,
            primary,
            resilience: Some((replica, cfg)),
        });
        self
    }

    /// Overrides the compute-cluster shape.
    pub fn cluster(mut self, topology: ClusterTopology, config: DfsConfig) -> Self {
        self.cluster = topology;
        self.dfs_config = config;
        self
    }

    /// Overrides the bootstrap admin token.
    pub fn admin_token(mut self, token: &str) -> Self {
        self.admin_token = token.to_string();
        self
    }

    /// Assembles the facility.
    pub fn build(self) -> Result<Facility, FacilityError> {
        let obs = self.registry.unwrap_or_else(|| Arc::new(Registry::new()));
        let pool = self
            .workers
            .map(WorkerPool::new)
            .unwrap_or_else(WorkerPool::from_env);
        let auth = Arc::new(TokenAuth::new());
        auth.register(&self.admin_token, "admin");
        let acl = Arc::new(Acl::new());
        let tracer = self.tracing.map(|cfg| Tracer::new(&obs, cfg));
        let slo = match self.slo_rules {
            Some(rules) => SloMonitor::new(rules),
            None => SloMonitor::with_defaults(),
        };
        let mut adal_builder = Adal::builder()
            .auth(auth.clone())
            .acl(acl.clone())
            .registry(obs.clone())
            .workers(pool.workers());
        if let Some(t) = &tracer {
            adal_builder = adal_builder.tracer(t.clone());
        }
        let adal = Arc::new(adal_builder.build());
        let dfs = Arc::new(Dfs::with_registry(
            self.cluster,
            self.dfs_config,
            obs.clone(),
        ));

        let mut stores = HashMap::new();
        let mut hsms = HashMap::new();
        for spec in self.projects {
            let project = spec.schema.name.clone();
            if stores.contains_key(&project) {
                return Err(FacilityError::DuplicateProject(project));
            }
            let primary = make_backend(&project, spec.primary, &obs, &dfs, &mut hsms);
            match spec.resilience {
                None => adal.mount(&project, primary),
                Some((replica_choice, cfg)) => {
                    // The replica's stores carry a `-replica` suffix so
                    // they never collide with the primary's.
                    let replica = make_backend(
                        &format!("{project}-replica"),
                        replica_choice,
                        &obs,
                        &dfs,
                        &mut hsms,
                    );
                    adal.mount_resilient(&project, primary, Some(replica), cfg);
                }
            }
            // Admin gets full access to every project.
            acl.grant("admin", &project, true);
            stores.insert(project, Arc::new(ProjectStore::new(spec.schema)));
        }
        // Resolve every ingest metric handle once, so the steady-state
        // ingest hot path never touches the registry maps.
        let ingest_obs = IngestObs::new(&obs, stores.keys());
        Ok(Facility {
            adal,
            auth,
            acl,
            dfs,
            stores,
            hsms,
            admin: Credential::Token(self.admin_token),
            obs,
            pool,
            ingest_obs,
            tracer,
            slo,
        })
    }
}

impl Default for FacilityBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Constructs the storage backend for one mount. `name` keys the
/// underlying stores (and the [`Facility::hsm`] lookup for HSM mounts);
/// resilient replicas pass a suffixed name so their stores stay
/// distinct from the primary's.
fn make_backend(
    name: &str,
    choice: BackendChoice,
    obs: &Arc<Registry>,
    dfs: &Arc<Dfs>,
    hsms: &mut HashMap<String, Arc<Hsm>>,
) -> Arc<dyn StorageBackend> {
    match choice {
        BackendChoice::ObjectStore { capacity } => {
            let store = Arc::new(ObjectStore::new(name, capacity));
            Arc::new(ObjectStoreBackend::new(store))
        }
        BackendChoice::Hsm {
            disk_capacity,
            low_watermark,
            high_watermark,
            policy,
        } => {
            let disk = Arc::new(ObjectStore::new(format!("{name}-disk"), disk_capacity));
            let tape = Arc::new(ObjectStore::new(format!("{name}-tape"), u64::MAX));
            let hsm = Arc::new(Hsm::with_registry(
                disk,
                tape,
                low_watermark,
                high_watermark,
                policy,
                obs.clone(),
            ));
            hsms.insert(name.to_string(), hsm.clone());
            Arc::new(HsmBackend::new(hsm))
        }
        BackendChoice::Dfs => Arc::new(DfsBackend::new(dfs.clone())),
    }
}

/// The assembled Large Scale Data Facility.
pub struct Facility {
    adal: Arc<Adal>,
    auth: Arc<TokenAuth>,
    acl: Arc<Acl>,
    dfs: Arc<Dfs>,
    stores: HashMap<String, Arc<ProjectStore>>,
    hsms: HashMap<String, Arc<Hsm>>,
    admin: Credential,
    obs: Arc<Registry>,
    pool: WorkerPool,
    ingest_obs: IngestObs,
    tracer: Option<Tracer>,
    slo: SloMonitor,
}

impl Facility {
    /// Starts a builder.
    pub fn builder() -> FacilityBuilder {
        FacilityBuilder::new()
    }

    /// The unified access layer.
    pub fn adal(&self) -> &Arc<Adal> {
        &self.adal
    }

    /// The facility-wide metrics registry. Every subsystem assembled by
    /// the builder records into it; export with
    /// [`Registry::to_json`].
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The shared analysis cluster's DFS.
    pub fn dfs(&self) -> &Arc<Dfs> {
        &self.dfs
    }

    /// The worker pool driving the parallel data path.
    pub fn pool(&self) -> WorkerPool {
        self.pool
    }

    /// Cached ingest metric handles (resolved once at build time).
    pub(crate) fn ingest_obs(&self) -> &IngestObs {
        &self.ingest_obs
    }

    /// The causal tracer, when the facility was built with
    /// [`FacilityBuilder::tracing`].
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// The installed SLO monitor.
    pub fn slo(&self) -> &SloMonitor {
        &self.slo
    }

    /// Evaluates the SLO rules against the current registry state and
    /// returns the facility health report, including per-project
    /// accounting (ops, bytes, tape mounts, violations).
    pub fn facility_health(&self) -> FacilityHealth {
        self.slo.evaluate(&self.obs)
    }

    /// A project's metadata store.
    pub fn store(&self, project: &str) -> Result<&Arc<ProjectStore>, FacilityError> {
        self.stores
            .get(project)
            .ok_or_else(|| FacilityError::UnknownProject(project.to_string()))
    }

    /// A project's HSM, when HSM-backed.
    pub fn hsm(&self, project: &str) -> Option<&Arc<Hsm>> {
        self.hsms.get(project)
    }

    /// Registered project names, sorted.
    pub fn projects(&self) -> Vec<String> {
        let mut v: Vec<String> = self.stores.keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// The bootstrap admin credential.
    pub fn admin(&self) -> &Credential {
        &self.admin
    }

    /// Registers a user token.
    pub fn register_user(&self, token: &str, user: &str) {
        self.auth.register(token, user);
    }

    /// Grants project access to a user.
    pub fn grant(&self, user: &str, project: &str, write: bool) {
        self.acl.grant(user, project, write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdf_metadata::{zebrafish_schema, FieldType, SchemaBuilder};
    use lsdf_obs::names;

    fn mini() -> Facility {
        Facility::builder()
            .project(
                zebrafish_schema(),
                BackendChoice::ObjectStore { capacity: u64::MAX },
            )
            .project(
                SchemaBuilder::new("katrin")
                    .required("run", FieldType::Int)
                    .build()
                    .unwrap(),
                BackendChoice::Hsm {
                    disk_capacity: 10_000,
                    low_watermark: 0.5,
                    high_watermark: 0.8,
                    policy: MigrationPolicy::OldestFirst,
                },
            )
            .cluster(ClusterTopology::new(2, 2), DfsConfig {
                block_size: 1024,
                replication: 2,
                ..DfsConfig::default()
            })
            .build()
            .unwrap()
    }

    #[test]
    fn builder_wires_projects_and_backends() {
        let f = mini();
        assert_eq!(f.projects(), vec!["katrin", "zebrafish-htm"]);
        assert_eq!(f.adal().backend_kind("zebrafish-htm"), Some("object-store"));
        assert_eq!(f.adal().backend_kind("katrin"), Some("hsm"));
        assert!(f.hsm("katrin").is_some());
        assert!(f.hsm("zebrafish-htm").is_none());
        assert!(f.store("zebrafish-htm").is_ok());
        assert!(f.store("nope").is_err());
    }

    #[test]
    fn facility_shares_one_registry_across_subsystems() {
        let reg = Arc::new(Registry::new());
        let f = Facility::builder()
            .project(
                zebrafish_schema(),
                BackendChoice::ObjectStore { capacity: u64::MAX },
            )
            .project(
                SchemaBuilder::new("katrin")
                    .required("run", FieldType::Int)
                    .build()
                    .unwrap(),
                BackendChoice::Hsm {
                    disk_capacity: 10_000,
                    low_watermark: 0.5,
                    high_watermark: 0.8,
                    policy: MigrationPolicy::OldestFirst,
                },
            )
            .registry(reg.clone())
            .build()
            .unwrap();
        assert!(Arc::ptr_eq(f.obs(), &reg));
        assert!(Arc::ptr_eq(f.adal().obs(), &reg));
        let admin = f.admin().clone();
        f.adal()
            .put(&admin, "lsdf://katrin/obs1", bytes::Bytes::from_static(b"abc"))
            .unwrap();
        // The same put is visible at the ADAL layer and the HSM tier.
        assert_eq!(reg.counter_value(names::ADAL_OPS_TOTAL, &[("op", "put")]), 1);
        assert_eq!(
            reg.counter_value(names::HSM_PUTS_TOTAL, &[("store", "katrin-disk")]),
            1
        );
    }

    #[test]
    fn resilient_project_mounts_with_replica_and_health() {
        let f = Facility::builder()
            .resilient_project(
                zebrafish_schema(),
                BackendChoice::ObjectStore { capacity: u64::MAX },
                BackendChoice::ObjectStore { capacity: u64::MAX },
                ResilienceConfig::default(),
            )
            .build()
            .unwrap();
        let admin = f.admin().clone();
        f.adal()
            .put(
                &admin,
                "lsdf://zebrafish-htm/a",
                bytes::Bytes::from_static(b"x"),
            )
            .unwrap();
        assert_eq!(
            f.adal()
                .get(&admin, "lsdf://zebrafish-htm/a")
                .unwrap(),
            bytes::Bytes::from_static(b"x")
        );
        let h = f.adal().health("zebrafish-htm").unwrap();
        assert!(h.has_replica);
        assert_eq!(h.breaker, lsdf_adal::BreakerState::Closed);
        assert_eq!(h.journal_depth, 0);
        // The write was replicated: re-putting the same key is refused
        // by the replica-side write-once check even while degraded.
        assert!(f
            .adal()
            .put(
                &admin,
                "lsdf://zebrafish-htm/a",
                bytes::Bytes::from_static(b"y"),
            )
            .is_err());
    }

    #[test]
    fn duplicate_projects_rejected() {
        let r = Facility::builder()
            .project(
                zebrafish_schema(),
                BackendChoice::ObjectStore { capacity: 1 },
            )
            .project(
                zebrafish_schema(),
                BackendChoice::ObjectStore { capacity: 1 },
            )
            .build();
        assert!(matches!(r, Err(FacilityError::DuplicateProject(_))));
    }

    #[test]
    fn admin_has_access_users_do_not_until_granted() {
        let f = mini();
        let admin = f.admin().clone();
        f.adal()
            .put(&admin, "lsdf://katrin/run1", bytes::Bytes::from_static(b"x"))
            .unwrap();
        let user = Credential::Token("utok".into());
        assert!(f.adal().get(&user, "lsdf://katrin/run1").is_err());
        f.register_user("utok", "alice");
        assert!(f.adal().get(&user, "lsdf://katrin/run1").is_err());
        f.grant("alice", "katrin", false);
        assert_eq!(
            f.adal().get(&user, "lsdf://katrin/run1").unwrap(),
            bytes::Bytes::from_static(b"x")
        );
        // Read-only: writes still denied.
        assert!(f
            .adal()
            .put(&user, "lsdf://katrin/run2", bytes::Bytes::from_static(b"y"))
            .is_err());
    }
}
