//! Session-scoped tenant handle: every operation a project performs
//! rides one [`ProjectSession`], which classifies the request into a
//! QoS lane, passes the admission front door, and only then touches
//! the ADAL. This is the API the multi-tenant redesign converges on —
//! facility-level `adal()` access remains for operators and tests.

use bytes::Bytes;

use lsdf_adal::{Credential, HealthReport, OpKind, RequestClass};
use lsdf_admission::{Lane, ProjectUsage, Ticket};
use lsdf_storage::Payload;

use crate::error::FacilityError;
use crate::facility::Facility;
use crate::ingest::{IngestItem, IngestPolicy, IngestReport};

/// A tenant's handle on the facility, scoped to one project and one
/// credential. Obtained from [`Facility::session`] /
/// [`Facility::session_as`].
pub struct ProjectSession<'a> {
    facility: &'a Facility,
    project: String,
    cred: Credential,
}

impl<'a> ProjectSession<'a> {
    pub(crate) fn new(facility: &'a Facility, project: String, cred: Credential) -> Self {
        ProjectSession {
            facility,
            project,
            cred,
        }
    }

    /// The project this session is scoped to.
    pub fn project(&self) -> &str {
        &self.project
    }

    fn path(&self, key: &str) -> String {
        format!("lsdf://{}/{}", self.project, key)
    }

    /// Maps the ADAL's request classification onto the admission lane:
    /// reads ride the interactive (or tape-recall) lane per request,
    /// writes ride the lane the tenant registered for bulk traffic.
    fn lane(&self, class: RequestClass) -> Lane {
        match class {
            RequestClass::InteractiveRead => Lane::Interactive,
            RequestClass::TapeRecall => Lane::TapeRecall,
            RequestClass::BulkWrite => self.facility.default_lane(&self.project),
        }
    }

    /// Stores an object under `key`, passing admission first. Returns
    /// the admission [`Ticket`] (simulated wait + queue depth); a shed
    /// request surfaces as [`FacilityError::Admission`] with
    /// `retry_after_ns`, before any byte reaches storage.
    pub fn put(&self, key: &str, data: impl Into<Payload>) -> Result<Ticket, FacilityError> {
        let data = data.into();
        let class = self.facility.adal().classify(OpKind::Put, &self.project);
        let ticket =
            self.facility
                .admission()
                .admit(&self.project, self.lane(class), data.len() as u64)?;
        self.facility.adal().put(&self.cred, &self.path(key), data)?;
        Ok(ticket)
    }

    /// Fetches the object under `key`; reads spend an operation token
    /// on the interactive (or tape-recall) lane but no byte tokens.
    pub fn get(&self, key: &str) -> Result<Bytes, FacilityError> {
        let class = self.facility.adal().classify(OpKind::Get, &self.project);
        self.facility
            .admission()
            .admit(&self.project, self.lane(class), 0)?;
        Ok(self.facility.adal().get(&self.cred, &self.path(key))?)
    }

    /// Batch-ingests `items` into this session's project (each item's
    /// `project` field is overwritten with the session's). Admission
    /// is decided serially per item before the pool fan-out; shed
    /// items are tallied in [`IngestReport::shed`].
    pub fn ingest_batch(&self, items: Vec<IngestItem>, policy: IngestPolicy) -> IngestReport {
        let items = items
            .into_iter()
            .map(|mut item| {
                item.project = self.project.clone();
                item
            })
            .collect();
        self.facility.ingest_batch(&self.cred, items, policy)
    }

    /// Point-in-time health of the project's mount (breaker state,
    /// journal depth, replica presence).
    pub fn health(&self) -> Option<HealthReport> {
        self.facility.adal().health(&self.project)
    }

    /// The project's front-door account: admitted/shed requests,
    /// admitted bytes, and the governor's current throttle level.
    pub fn usage(&self) -> ProjectUsage {
        self.facility
            .admission()
            .usage(&self.project)
            .unwrap_or_default()
    }
}
