//! The DataBrowser: the end-user tool for "exploring and managing the
//! LSDF data" (paper, slide 9) — browse the namespace, query the metadata
//! repository, fetch payloads, tag datasets (which triggers workflows,
//! slide 12), and audit findability (experiment E14).

use bytes::Bytes;

use lsdf_adal::Credential;
use lsdf_metadata::{DatasetId, DatasetRecord, Predicate};

use crate::error::FacilityError;
use crate::facility::Facility;

/// A browsing session bound to a credential.
pub struct DataBrowser<'a> {
    facility: &'a Facility,
    cred: Credential,
}

/// Findability audit result (experiment E14).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FindabilityReport {
    /// Objects present in storage.
    pub stored_objects: usize,
    /// Objects discoverable through metadata queries.
    pub findable: usize,
    /// Objects with bytes but no catalog entry — "lost data".
    pub invisible: usize,
}

impl<'a> DataBrowser<'a> {
    /// Opens a browser session.
    pub fn new(facility: &'a Facility, cred: Credential) -> Self {
        DataBrowser { facility, cred }
    }

    /// Lists storage keys under a prefix.
    pub fn list(&self, project: &str, prefix: &str) -> Result<Vec<String>, FacilityError> {
        let path = format!("lsdf://{project}/{prefix}");
        Ok(self
            .facility
            .adal()
            .list(&self.cred, &path)?
            .into_iter()
            .map(|m| m.key)
            .collect())
    }

    /// Runs a metadata query.
    pub fn query(
        &self,
        project: &str,
        pred: &Predicate,
    ) -> Result<Vec<DatasetRecord>, FacilityError> {
        Ok(self.facility.store(project)?.query(pred))
    }

    /// Fetches a dataset's payload via its catalog location.
    pub fn fetch(&self, project: &str, id: DatasetId) -> Result<Bytes, FacilityError> {
        let rec = self.facility.store(project)?.get(id)?;
        Ok(self.facility.adal().get(&self.cred, &rec.location)?)
    }

    /// Tags a dataset (may trigger workflows via the project's
    /// [`lsdf_workflow::TriggerEngine`]).
    pub fn tag(&self, project: &str, id: DatasetId, tag: &str) -> Result<(), FacilityError> {
        self.facility.store(project)?.tag(id, tag)?;
        Ok(())
    }

    /// Tags every dataset matching a query; returns how many were tagged.
    /// This is the slide-12 gesture: select in the browser, tag, and let
    /// the trigger engine process the selection.
    pub fn tag_matching(
        &self,
        project: &str,
        pred: &Predicate,
        tag: &str,
    ) -> Result<usize, FacilityError> {
        let store = self.facility.store(project)?;
        let hits = store.query(pred);
        for rec in &hits {
            store.tag(rec.id, tag)?;
        }
        Ok(hits.len())
    }

    /// Exports query results as a JSON array — the interchange the
    /// DataBrowser's planned web GUI consumes (slide 9).
    pub fn export_json(
        &self,
        project: &str,
        pred: &Predicate,
    ) -> Result<String, FacilityError> {
        let hits = self.query(project, pred)?;
        Ok(lsdf_metadata::export::records_to_json(&hits))
    }

    /// Audits findability: compares storage contents against catalog
    /// entries. Data without metadata is invisible to every query — the
    /// paper's "lost data".
    pub fn findability(&self, project: &str) -> Result<FindabilityReport, FacilityError> {
        let stored = self.list(project, "")?;
        let store = self.facility.store(project)?;
        let findable = stored
            .iter()
            .filter(|k| store.get_by_name(k).is_some())
            .count();
        Ok(FindabilityReport {
            stored_objects: stored.len(),
            findable,
            invisible: stored.len() - findable,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facility::{BackendChoice, ProjectSpec};
    use crate::ingest::{IngestItem, IngestPolicy};
    use lsdf_metadata::query::{eq, has_tag};
    use lsdf_metadata::zebrafish_schema;
    use lsdf_workloads::microscopy::HtmGenerator;

    fn facility_with_data(n_fish: usize) -> Facility {
        let f = Facility::builder()
            .tenant(ProjectSpec::new(
                zebrafish_schema(),
                BackendChoice::ObjectStore { capacity: u64::MAX },
            ))
            .build()
            .unwrap();
        let admin = f.admin().clone();
        let mut gen = HtmGenerator::new(2, 32);
        for _ in 0..n_fish {
            for (acq, img) in gen.next_fish() {
                f.ingest(
                    &admin,
                    IngestItem {
                        project: "zebrafish-htm".into(),
                        key: acq.key(),
                        data: img.encode(),
                        metadata: Some(acq.document()),
                    },
                    IngestPolicy::default(),
                )
                .unwrap();
            }
        }
        f
    }

    #[test]
    fn browse_query_fetch_roundtrip() {
        let f = facility_with_data(2);
        let b = DataBrowser::new(&f, f.admin().clone());
        let keys = b.list("zebrafish-htm", "raw/fish000000/").unwrap();
        assert_eq!(keys.len(), 24);
        let hits = b.query("zebrafish-htm", &eq("fish_id", 1i64)).unwrap();
        assert_eq!(hits.len(), 24);
        let payload = b.fetch("zebrafish-htm", hits[0].id).unwrap();
        assert!(payload.len() > 16);
    }

    #[test]
    fn tag_matching_selects_by_query() {
        let f = facility_with_data(3);
        let b = DataBrowser::new(&f, f.admin().clone());
        let n = b
            .tag_matching(
                "zebrafish-htm",
                &eq("wavelength_nm", 488.0),
                "needs-segmentation",
            )
            .unwrap();
        assert_eq!(n, 24); // 3 fish x 8 images at 488nm
        let tagged = b
            .query("zebrafish-htm", &has_tag("needs-segmentation"))
            .unwrap();
        assert_eq!(tagged.len(), 24);
    }

    #[test]
    fn export_json_is_valid_shape() {
        let f = facility_with_data(1);
        let b = DataBrowser::new(&f, f.admin().clone());
        let json = b
            .export_json("zebrafish-htm", &eq("fish_id", 0i64))
            .unwrap();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches("\"checksum\"").count(), 24);
        assert!(json.contains("\"wavelength_nm\":488.0"));
    }

    #[test]
    fn findability_flags_invisible_data() {
        let f = facility_with_data(1);
        let admin = f.admin().clone();
        // Sneak two objects in without metadata.
        for i in 0..2 {
            f.ingest(
                &admin,
                IngestItem {
                    project: "zebrafish-htm".into(),
                    key: format!("raw/orphan{i}"),
                    data: Bytes::from_static(b"???"),
                    metadata: None,
                },
                IngestPolicy {
                    enforce_metadata: false,
                },
            )
            .unwrap();
        }
        let b = DataBrowser::new(&f, admin);
        let report = b.findability("zebrafish-htm").unwrap();
        assert_eq!(report.stored_objects, 26);
        assert_eq!(report.findable, 24);
        assert_eq!(report.invisible, 2);
    }

    #[test]
    fn unauthorized_browser_cannot_fetch() {
        let f = facility_with_data(1);
        f.register_user("visitor", "eve");
        let b = DataBrowser::new(&f, Credential::Token("visitor".into()));
        // Metadata query works (store-level, no ACL on queries in-process)
        // but payload fetch is denied.
        let hits = b.query("zebrafish-htm", &eq("fish_id", 0i64)).unwrap();
        assert!(matches!(
            b.fetch("zebrafish-htm", hits[0].id),
            Err(FacilityError::Adal(_))
        ));
        assert!(matches!(b.list("zebrafish-htm", ""), Err(FacilityError::Adal(_))));
    }
}
