//! One-import surface for facility users.
//!
//! `use lsdf_core::prelude::*;` brings in the types a typical experiment
//! script touches: the facility facade, the ADAL and its credentials, the
//! metadata vocabulary, storage policies, workflow building blocks and the
//! metrics registry — without hunting through eight crates' namespaces.

pub use crate::{
    BackendChoice, ComponentRecovery, DataBrowser, Facility, FacilityBuilder, FacilityError,
    IngestItem, IngestPolicy, IngestReport, LsdfError, ProjectSession, ProjectSpec,
    RecoveryReport,
};

pub use lsdf_chaos::{CrashPoint, FaultPlan};

pub use lsdf_durability::{DurabilityConfig, DurableStore};

pub use lsdf_adal::{
    Acl, Adal, AdalBuilder, AdalCounters, AdalError, BackendError, BreakerConfig, BreakerState,
    Credential, EntryMeta, HealthReport, OpKind, RequestClass, ResilienceConfig, RetryPolicy,
    StorageBackend, TokenAuth,
};

pub use lsdf_admission::{
    AdmissionController, AdmissionError, Lane, ProjectUsage, QuotaSpec, Ticket,
};

pub use lsdf_dfs::{ClusterTopology, Dfs, DfsConfig, DfsError, PlacementPolicy};

pub use lsdf_metadata::{
    DatasetId, DatasetRecord, Document, FieldType, MetadataError, NewDataset, ProjectStore,
    Schema, SchemaBuilder, Value,
};

pub use lsdf_obs::names;
pub use lsdf_obs::{
    Clock, Counter, Gauge, Histogram, Registry, Span, SpanProfile, TelemetryConfig, TelemetryStore,
};

pub use lsdf_storage::{Hsm, HsmError, MigrationPolicy, ObjectStore, StoreError};

pub use lsdf_workflow::{
    Actor, Director, Token, TriggerEngine, TriggerRule, Workflow, WorkflowError,
};
