//! Capacity planning: the paper's growth projections (slide 5: 1+ PB/year
//! in 2012, 6 PB/year in 2014; slide 14: 6 PB installed in 2012) and the
//! move-data vs move-compute decision support (slide 11).

use lsdf_net::{choose_placement, Placement, PlacementCosts, TransferModel};
use lsdf_sim::SimDuration;

/// A data-producing community and its growth.
#[derive(Debug, Clone)]
pub struct Community {
    /// Community name.
    pub name: String,
    /// Current production rate, bytes per day.
    pub daily_bytes: u64,
    /// Year-over-year multiplier on the daily rate (Moore's-law-driven
    /// instrument upgrades; slide 3).
    pub annual_growth: f64,
}

/// One year's projection row.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionRow {
    /// Years from now (0 = the current year).
    pub year: u32,
    /// Bytes produced during this year, all communities.
    pub produced_bytes: f64,
    /// Cumulative archive size at year end.
    pub cumulative_bytes: f64,
}

/// Projects facility storage needs over `years`, assuming all data is
/// retained ("old data is very valuable" — slide 3).
pub fn project_growth(communities: &[Community], years: u32) -> Vec<ProjectionRow> {
    let mut rows = Vec::with_capacity(years as usize);
    let mut cumulative = 0.0;
    for year in 0..years {
        let produced: f64 = communities
            .iter()
            .map(|c| c.daily_bytes as f64 * 365.25 * c.annual_growth.powi(year as i32))
            .sum();
        cumulative += produced;
        rows.push(ProjectionRow {
            year,
            produced_bytes: produced,
            cumulative_bytes: cumulative,
        });
    }
    rows
}

/// The LSDF community mix at the paper's publication date (2011):
/// zebrafish microscopy at 2 TB/day dominating, plus the smaller
/// communities being onboarded (slide 14).
pub fn lsdf_2011_communities() -> Vec<Community> {
    vec![
        Community {
            name: "zebrafish-htm".into(),
            daily_bytes: 2_000_000_000_000, // 2 TB/day (slide 5)
            annual_growth: 1.8,             // → multi-PB/yr by 2014
        },
        Community {
            name: "katrin".into(),
            daily_bytes: 100_000_000_000, // 100 GB/day commissioning
            annual_growth: 1.5,
        },
        Community {
            name: "anka-synchrotron".into(),
            daily_bytes: 300_000_000_000,
            annual_growth: 1.4,
        },
        Community {
            name: "climate".into(),
            daily_bytes: 200_000_000_000,
            annual_growth: 1.3,
        },
    ]
}

/// A transfer-vs-relocation recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferPlan {
    /// The recommended placement.
    pub placement: Placement,
    /// Estimated completion time.
    pub duration: SimDuration,
    /// Time the alternative would have taken.
    pub alternative: SimDuration,
}

/// Plans how to process `data_bytes` given the WAN link and compute
/// staging costs — the slide-11 "bring computing to the data" decision.
pub fn plan_processing(
    data_bytes: u64,
    link: TransferModel,
    compute_staging: SimDuration,
    compute_image_bytes: u64,
) -> TransferPlan {
    let costs = PlacementCosts {
        data_link: link,
        compute_staging,
        compute_image_bytes,
    };
    let (placement, duration) = choose_placement(&costs, data_bytes);
    let alternative = match placement {
        Placement::MoveData => {
            compute_staging + link.time_for_bytes(compute_image_bytes)
        }
        Placement::MoveCompute => link.time_for_bytes(data_bytes),
    };
    TransferPlan {
        placement,
        duration,
        alternative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdf_net::units::{GB, PB, TB, TEN_GBIT};

    #[test]
    fn growth_compounds() {
        let rows = project_growth(
            &[Community {
                name: "x".into(),
                daily_bytes: 1_000,
                annual_growth: 2.0,
            }],
            3,
        );
        assert_eq!(rows.len(), 3);
        assert!((rows[0].produced_bytes - 365_250.0).abs() < 1.0);
        assert!((rows[1].produced_bytes - 730_500.0).abs() < 1.0);
        assert!((rows[2].cumulative_bytes - (365_250.0 + 730_500.0 + 1_461_000.0)).abs() < 1.0);
    }

    #[test]
    fn lsdf_mix_reproduces_paper_projections() {
        let rows = project_growth(&lsdf_2011_communities(), 4);
        // 2012 (year 1): "1+ PB/year" — zebrafish alone produces
        // 2 TB/day * 365 * 1.6 ≈ 1.17 PB.
        let y2012 = rows[1].produced_bytes;
        assert!(
            y2012 > 1.0 * PB as f64 && y2012 < 3.0 * PB as f64,
            "2012 production {} PB",
            y2012 / PB as f64
        );
        // 2014 (year 3): "6 PB/year".
        let y2014 = rows[3].produced_bytes;
        assert!(
            y2014 > 4.0 * PB as f64 && y2014 < 9.0 * PB as f64,
            "2014 production {} PB",
            y2014 / PB as f64
        );
        // Cumulative archive by end-2012 is within the planned 6 PB
        // installed capacity (slide 14).
        assert!(rows[1].cumulative_bytes < 6.0 * PB as f64);
    }

    #[test]
    fn small_data_moves_large_data_attracts_compute() {
        let link = TransferModel::with_efficiency(TEN_GBIT, 0.7);
        let staging = SimDuration::from_mins(5);
        let small = plan_processing(10 * GB, link, staging, 4 * GB);
        assert_eq!(small.placement, Placement::MoveData);
        let large = plan_processing(100 * TB, link, staging, 4 * GB);
        assert_eq!(large.placement, Placement::MoveCompute);
        assert!(large.duration < large.alternative);
        // Moving 100 TB over the link would take days; staging is minutes.
        assert!(large.alternative.as_secs_f64() > 86_400.0);
        assert!(large.duration.as_secs_f64() < 3_600.0);
    }
}
