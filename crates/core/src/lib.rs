//! # lsdf-core — the Large Scale Data Facility, assembled
//!
//! The façade tying every substrate together the way the paper's
//! architecture slide (slide 10) does:
//!
//! * [`Facility`] / [`FacilityBuilder`] — wires per-project storage
//!   backends (object store, HSM, DFS) behind the [ADAL](lsdf_adal),
//!   creates the per-project metadata stores, and manages users/ACLs;
//! * [`ProjectSpec`] / [`ProjectSession`] — the multi-tenant front
//!   door: tenants register with quotas and a QoS lane, then operate
//!   through a session handle that passes admission before the ADAL;
//! * [`IngestItem`] / [`Facility::ingest`] — the checksum → store →
//!   register pipeline, with metadata-at-ingest enforcement (the
//!   "invisible data is lost data" control, experiment E14);
//! * [`DataBrowser`] — browse, query, fetch, tag (tag-triggered
//!   workflows are the slide-12 loop);
//! * [`planner`] — capacity projections ("1+ PB/yr in 2012, 6 PB/yr in
//!   2014") and the move-data vs move-compute decision (slide 11);
//! * [`PolicyEngine`] — iRODS-style auto-tag rules on ingest (the
//!   slide-14 outlook item), chaining into trigger-driven workflows.

#![warn(missing_docs)]

mod browser;
pub mod campaign;
mod error;
mod facility;
mod ingest;
pub mod planner;
mod policy;
pub mod prelude;
mod session;

pub use browser::{DataBrowser, FindabilityReport};
pub use error::{FacilityError, LsdfError};
pub use facility::{
    BackendChoice, ComponentRecovery, Facility, FacilityBuilder, ProjectSpec, RecoveryReport,
};
pub use ingest::{IngestItem, IngestPolicy, IngestReport};
pub use session::ProjectSession;
pub use campaign::{
    run_campaign, CampaignCommunity, CampaignConfig, CampaignResult, FillSample, StorageTarget,
};
pub use policy::{AutoTagRule, PolicyEngine};
