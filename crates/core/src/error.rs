//! The facility-level error types: [`FacilityError`] for facade
//! operations and the workspace-wide [`LsdfError`] umbrella that every
//! subsystem error converts into with `?`.

use lsdf_adal::{AdalError, BackendError};
use lsdf_admission::AdmissionError;
use lsdf_cloud::CloudError;
use lsdf_dfs::DfsError;
use lsdf_metadata::MetadataError;
use lsdf_net::TopologyError;
use lsdf_storage::{HsmError, StoreError};
use lsdf_workflow::WorkflowError;

/// Errors surfaced by facility operations.
#[derive(Debug, Clone, PartialEq)]
pub enum FacilityError {
    /// A project name was registered twice.
    DuplicateProject(String),
    /// No such project.
    UnknownProject(String),
    /// Access-layer failure (auth, path, backend).
    Adal(AdalError),
    /// Metadata-repository failure.
    Metadata(MetadataError),
    /// Workflow failure.
    Workflow(WorkflowError),
    /// Ingest rejected because metadata is missing or invalid and the
    /// facility enforces metadata-at-ingest.
    MetadataRequired {
        /// The offending item's key.
        key: String,
        /// Why validation failed.
        reason: String,
    },
    /// Request shed (or refused) by the multi-tenant admission front
    /// door; the typed error carries `retry_after_ns`.
    Admission(AdmissionError),
}

impl std::fmt::Display for FacilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FacilityError::DuplicateProject(p) => write!(f, "project '{p}' already registered"),
            FacilityError::UnknownProject(p) => write!(f, "unknown project '{p}'"),
            FacilityError::Adal(e) => write!(f, "{e}"),
            FacilityError::Metadata(e) => write!(f, "{e}"),
            FacilityError::Workflow(e) => write!(f, "{e}"),
            FacilityError::MetadataRequired { key, reason } => {
                write!(f, "ingest of '{key}' rejected: {reason}")
            }
            FacilityError::Admission(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FacilityError {}

impl From<AdalError> for FacilityError {
    fn from(e: AdalError) -> Self {
        FacilityError::Adal(e)
    }
}
impl From<MetadataError> for FacilityError {
    fn from(e: MetadataError) -> Self {
        FacilityError::Metadata(e)
    }
}
impl From<WorkflowError> for FacilityError {
    fn from(e: WorkflowError) -> Self {
        FacilityError::Workflow(e)
    }
}
impl From<AdmissionError> for FacilityError {
    fn from(e: AdmissionError) -> Self {
        FacilityError::Admission(e)
    }
}

/// The workspace-wide error umbrella.
///
/// Every subsystem keeps its own typed error enum; `LsdfError` is the
/// top-level sum that callers crossing subsystem boundaries can `?` into
/// without stringifying. Conversions preserve the typed variant — no
/// information is flattened into strings on the way up.
#[derive(Debug, Clone, PartialEq)]
pub enum LsdfError {
    /// Access-layer failure (auth, path, backend dispatch).
    Adal(AdalError),
    /// Storage-backend failure behind the ADAL.
    Backend(BackendError),
    /// Distributed-filesystem failure.
    Dfs(DfsError),
    /// HSM tiering failure.
    Hsm(HsmError),
    /// Object-store failure.
    Store(StoreError),
    /// Metadata-repository failure.
    Metadata(MetadataError),
    /// Workflow failure.
    Workflow(WorkflowError),
    /// Cloud/IaaS failure.
    Cloud(CloudError),
    /// Network-topology failure.
    Net(TopologyError),
    /// Facility-facade failure.
    Facility(FacilityError),
    /// Request shed by the multi-tenant admission front door.
    Admission(AdmissionError),
}

impl std::fmt::Display for LsdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LsdfError::Adal(e) => write!(f, "adal: {e}"),
            LsdfError::Backend(e) => write!(f, "backend: {e}"),
            LsdfError::Dfs(e) => write!(f, "dfs: {e}"),
            LsdfError::Hsm(e) => write!(f, "hsm: {e}"),
            LsdfError::Store(e) => write!(f, "store: {e}"),
            LsdfError::Metadata(e) => write!(f, "metadata: {e}"),
            LsdfError::Workflow(e) => write!(f, "workflow: {e}"),
            LsdfError::Cloud(e) => write!(f, "cloud: {e}"),
            LsdfError::Net(e) => write!(f, "net: {e}"),
            LsdfError::Facility(e) => write!(f, "facility: {e}"),
            LsdfError::Admission(e) => write!(f, "admission: {e}"),
        }
    }
}

impl std::error::Error for LsdfError {}

impl From<AdalError> for LsdfError {
    fn from(e: AdalError) -> Self {
        LsdfError::Adal(e)
    }
}
impl From<BackendError> for LsdfError {
    fn from(e: BackendError) -> Self {
        LsdfError::Backend(e)
    }
}
impl From<DfsError> for LsdfError {
    fn from(e: DfsError) -> Self {
        LsdfError::Dfs(e)
    }
}
impl From<HsmError> for LsdfError {
    fn from(e: HsmError) -> Self {
        LsdfError::Hsm(e)
    }
}
impl From<StoreError> for LsdfError {
    fn from(e: StoreError) -> Self {
        LsdfError::Store(e)
    }
}
impl From<MetadataError> for LsdfError {
    fn from(e: MetadataError) -> Self {
        LsdfError::Metadata(e)
    }
}
impl From<WorkflowError> for LsdfError {
    fn from(e: WorkflowError) -> Self {
        LsdfError::Workflow(e)
    }
}
impl From<CloudError> for LsdfError {
    fn from(e: CloudError) -> Self {
        LsdfError::Cloud(e)
    }
}
impl From<TopologyError> for LsdfError {
    fn from(e: TopologyError) -> Self {
        LsdfError::Net(e)
    }
}
impl From<FacilityError> for LsdfError {
    fn from(e: FacilityError) -> Self {
        LsdfError::Facility(e)
    }
}
impl From<AdmissionError> for LsdfError {
    fn from(e: AdmissionError) -> Self {
        LsdfError::Admission(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsystem_errors_lift_without_stringification() {
        fn cross_layer() -> Result<(), LsdfError> {
            Err(StoreError::NotFound("k".into()))?
        }
        match cross_layer() {
            Err(LsdfError::Store(StoreError::NotFound(k))) => assert_eq!(k, "k"),
            other => panic!("expected typed store error, got {other:?}"),
        }
        let e: LsdfError = FacilityError::UnknownProject("p".into()).into();
        assert!(e.to_string().contains("unknown project"));
    }

    #[test]
    fn admission_sheds_lift_without_stringification() {
        fn front_door() -> Result<(), LsdfError> {
            Err(AdmissionError::Rejected {
                project: "katrin".into(),
                lane: lsdf_admission::Lane::Bulk,
                retry_after_ns: 250,
            })?
        }
        match front_door() {
            Err(LsdfError::Admission(AdmissionError::Rejected {
                retry_after_ns, ..
            })) => assert_eq!(retry_after_ns, 250),
            other => panic!("expected typed admission error, got {other:?}"),
        }
        let e: FacilityError = AdmissionError::UnknownProject("p".into()).into();
        assert!(matches!(e, FacilityError::Admission(_)));
    }
}
