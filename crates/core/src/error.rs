//! The facility-level error type.

use lsdf_adal::AdalError;
use lsdf_metadata::MetadataError;
use lsdf_workflow::WorkflowError;

/// Errors surfaced by facility operations.
#[derive(Debug, Clone, PartialEq)]
pub enum FacilityError {
    /// A project name was registered twice.
    DuplicateProject(String),
    /// No such project.
    UnknownProject(String),
    /// Access-layer failure (auth, path, backend).
    Adal(AdalError),
    /// Metadata-repository failure.
    Metadata(MetadataError),
    /// Workflow failure.
    Workflow(WorkflowError),
    /// Ingest rejected because metadata is missing or invalid and the
    /// facility enforces metadata-at-ingest.
    MetadataRequired {
        /// The offending item's key.
        key: String,
        /// Why validation failed.
        reason: String,
    },
}

impl std::fmt::Display for FacilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FacilityError::DuplicateProject(p) => write!(f, "project '{p}' already registered"),
            FacilityError::UnknownProject(p) => write!(f, "unknown project '{p}'"),
            FacilityError::Adal(e) => write!(f, "{e}"),
            FacilityError::Metadata(e) => write!(f, "{e}"),
            FacilityError::Workflow(e) => write!(f, "{e}"),
            FacilityError::MetadataRequired { key, reason } => {
                write!(f, "ingest of '{key}' rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for FacilityError {}

impl From<AdalError> for FacilityError {
    fn from(e: AdalError) -> Self {
        FacilityError::Adal(e)
    }
}
impl From<MetadataError> for FacilityError {
    fn from(e: MetadataError) -> Self {
        FacilityError::Metadata(e)
    }
}
impl From<WorkflowError> for FacilityError {
    fn from(e: WorkflowError) -> Self {
        FacilityError::Workflow(e)
    }
}
