//! Declarative data-management policies — the paper's outlook item
//! "Data management system iRODS (ongoing)" (slide 14).
//!
//! iRODS's core idea is rules that fire on data-management events. We
//! implement the subset the LSDF workflows need: **auto-tag rules** that
//! run on every dataset registration and tag records matching a
//! predicate. Chained with the [`lsdf_workflow::TriggerEngine`], this
//! closes the loop with zero manual steps: *ingest → policy auto-tag →
//! trigger → workflow → results stored and re-tagged*.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lsdf_metadata::{MetadataEvent, Predicate, ProjectStore};

/// A rule applied to every newly registered dataset.
pub struct AutoTagRule {
    /// Rule name (diagnostics).
    pub name: String,
    /// Datasets matching this predicate...
    pub predicate: Predicate,
    /// ...receive this tag.
    pub tag: String,
}

/// The policy engine: evaluates rules on metadata events.
pub struct PolicyEngine {
    store: Arc<ProjectStore>,
    rules: Arc<Vec<AutoTagRule>>,
    applied: Arc<AtomicU64>,
}

impl PolicyEngine {
    /// Attaches rules to a store. Rules run synchronously inside the
    /// insert call path (after the record is committed), so by the time
    /// `insert` returns the dataset already carries its policy tags.
    pub fn attach(store: Arc<ProjectStore>, rules: Vec<AutoTagRule>) -> Arc<Self> {
        let engine = Arc::new(PolicyEngine {
            store: store.clone(),
            rules: Arc::new(rules),
            applied: Arc::new(AtomicU64::new(0)),
        });
        let store2 = store.clone();
        let rules = engine.rules.clone();
        let applied = engine.applied.clone();
        store.subscribe(Arc::new(move |ev: &MetadataEvent| {
            if let MetadataEvent::Inserted { id, .. } = ev {
                let Ok(rec) = store2.get(*id) else { return };
                for rule in rules.iter() {
                    if rule.predicate.matches(&rec) {
                        // tag() re-enters the store; the event it emits
                        // (Tagged) does not recurse into this handler.
                        if store2.tag(*id, &rule.tag).is_ok() {
                            applied.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }));
        engine
    }

    /// Total tags applied by this engine.
    pub fn tags_applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Re-evaluates all rules over the existing catalog (for rules added
    /// after data already arrived). Returns tags newly applied.
    pub fn backfill(&self) -> u64 {
        let mut applied = 0;
        for rule in self.rules.iter() {
            for rec in self.store.query(&rule.predicate) {
                if !rec.has_tag(&rule.tag) && self.store.tag(rec.id, &rule.tag).is_ok() {
                    applied += 1;
                    self.applied.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facility::{BackendChoice, Facility, ProjectSpec};
    use crate::ingest::{IngestItem, IngestPolicy};
    use lsdf_metadata::query::{eq, has_tag};
    use lsdf_metadata::zebrafish_schema;
    use lsdf_workflow::{Collect, Director, Token, TriggerEngine, TriggerRule, VecSource, Workflow};
    use lsdf_workloads::microscopy::HtmGenerator;

    fn facility() -> Facility {
        Facility::builder()
            .tenant(ProjectSpec::new(
                zebrafish_schema(),
                BackendChoice::ObjectStore { capacity: u64::MAX },
            ))
            .build()
            .unwrap()
    }

    fn ingest_fish(f: &Facility, n: usize, seed: u64) {
        let admin = f.admin().clone();
        let mut gen = HtmGenerator::new(seed, 32);
        for _ in 0..n {
            for (acq, img) in gen.next_fish() {
                f.ingest(
                    &admin,
                    IngestItem {
                        project: "zebrafish-htm".into(),
                        key: acq.key(),
                        data: img.encode(),
                        metadata: Some(acq.document()),
                    },
                    IngestPolicy::default(),
                )
                .unwrap();
            }
        }
    }

    #[test]
    fn auto_tag_applies_on_ingest() {
        let f = facility();
        let store = f.store("zebrafish-htm").unwrap().clone();
        let engine = PolicyEngine::attach(
            store.clone(),
            vec![AutoTagRule {
                name: "in-focus-488".into(),
                predicate: eq("focus_um", 0.0).and(eq("wavelength_nm", 488.0)),
                tag: "analysis-queue".into(),
            }],
        );
        ingest_fish(&f, 3, 1);
        // 3 fish x 1 in-focus 488nm image each.
        assert_eq!(engine.tags_applied(), 3);
        assert_eq!(store.query(&has_tag("analysis-queue")).len(), 3);
    }

    #[test]
    fn multiple_rules_stack() {
        let f = facility();
        let store = f.store("zebrafish-htm").unwrap().clone();
        let engine = PolicyEngine::attach(
            store.clone(),
            vec![
                AutoTagRule {
                    name: "all-raw".into(),
                    predicate: Predicate::All,
                    tag: "raw".into(),
                },
                AutoTagRule {
                    name: "channel-405".into(),
                    predicate: eq("wavelength_nm", 405.0),
                    tag: "dapi-like".into(),
                },
            ],
        );
        ingest_fish(&f, 1, 2);
        assert_eq!(store.query(&has_tag("raw")).len(), 24);
        assert_eq!(store.query(&has_tag("dapi-like")).len(), 8);
        assert_eq!(engine.tags_applied(), 32);
    }

    #[test]
    fn backfill_covers_preexisting_data() {
        let f = facility();
        let store = f.store("zebrafish-htm").unwrap().clone();
        ingest_fish(&f, 2, 3); // data arrives before the rule exists
        let engine = PolicyEngine::attach(
            store.clone(),
            vec![AutoTagRule {
                name: "late-rule".into(),
                predicate: eq("fish_id", 1i64),
                tag: "cohort-b".into(),
            }],
        );
        assert_eq!(engine.tags_applied(), 0, "no new inserts yet");
        let applied = engine.backfill();
        assert_eq!(applied, 24);
        assert_eq!(store.query(&has_tag("cohort-b")).len(), 24);
        // Backfill is idempotent.
        assert_eq!(engine.backfill(), 0);
    }

    #[test]
    fn policy_plus_trigger_is_fully_automatic() {
        // The complete hands-off loop: ingest -> policy auto-tag ->
        // trigger -> workflow -> result metadata + done tag.
        let f = facility();
        let store = f.store("zebrafish-htm").unwrap().clone();
        let _policy = PolicyEngine::attach(
            store.clone(),
            vec![AutoTagRule {
                name: "queue-infocus".into(),
                predicate: eq("focus_um", 0.0),
                tag: "needs-qc".into(),
            }],
        );
        let trigger = TriggerEngine::new(
            store.clone(),
            vec![TriggerRule {
                step: "qc".into(),
                tag: "needs-qc".into(),
                done_tag: "qc-done".into(),
                remove_trigger_tag: true,
                build: Box::new(|_id, sink| {
                    let mut wf = Workflow::new();
                    let src = wf.add(VecSource::new(
                        "result",
                        vec![Token::str("ok"), Token::Value(lsdf_metadata::Value::Bool(true))],
                    ));
                    let out = wf.add(Collect::new("sink", sink));
                    wf.connect(src, 0, out, 0).unwrap();
                    wf
                }),
            }],
            Director::Sequential,
        );
        ingest_fish(&f, 2, 4);
        // The policy tagged during ingest; the trigger queue is primed.
        assert_eq!(trigger.pending(), 6); // 2 fish x 3 in-focus channels
        let outcomes = trigger.run_pending().unwrap();
        assert_eq!(outcomes.len(), 6);
        assert_eq!(store.query(&has_tag("qc-done")).len(), 6);
        // No human tagged anything.
        for rec in store.query(&has_tag("qc-done")) {
            assert_eq!(rec.processing.len(), 1);
        }
    }
}
