//! The ingest pipeline: checksum → store via ADAL → register metadata.
//!
//! This is the facility's front door for experiment data. The
//! `enforce_metadata` switch embodies the paper's slide-3 warning —
//! "invisible (not-found, no-metadata) data is lost data": with
//! enforcement on, an item without valid metadata is rejected; with it
//! off, the bytes land in storage but no catalog entry exists, and
//! experiment E14 measures exactly how much data becomes unfindable.

use std::collections::HashMap;

use bytes::Bytes;

use lsdf_adal::{Credential, PendingPut};
use lsdf_metadata::{DatasetId, Document, NewDataset, ProjectStore};
use lsdf_obs::{Counter, Histogram, Registry, Span, TraceCtx};
use lsdf_storage::Payload;

use crate::error::FacilityError;
use crate::facility::Facility;
use lsdf_obs::names;
use std::sync::Arc;

/// Per-project ingest metric handles, resolved once at facility build.
pub(crate) struct ProjectIngestObs {
    registered: Counter,
    stored_unregistered: Counter,
    rejected: Counter,
    bytes: Histogram,
}

impl ProjectIngestObs {
    fn outcome(&self, o: Outcome) -> &Counter {
        match o {
            Outcome::Registered => &self.registered,
            Outcome::StoredUnregistered => &self.stored_unregistered,
            Outcome::Rejected => &self.rejected,
        }
    }
}

#[derive(Clone, Copy)]
enum Outcome {
    Registered,
    StoredUnregistered,
    Rejected,
}

/// Cached ingest metric handles: the registry maps are touched once
/// per project at construction, never on the per-item hot path.
pub(crate) struct IngestObs {
    latency: Histogram,
    projects: HashMap<String, ProjectIngestObs>,
}

impl IngestObs {
    /// Resolves the latency histogram plus every per-project outcome
    /// counter and byte histogram for the given project names.
    pub(crate) fn new<'a>(
        registry: &Registry,
        projects: impl Iterator<Item = &'a String>,
    ) -> Self {
        let per_project = |project: &str| {
            let outcome = |o: &str| {
                registry.counter(
                    names::FACILITY_INGEST_TOTAL,
                    &[("project", project), ("outcome", o)],
                )
            };
            ProjectIngestObs {
                registered: outcome("registered"),
                stored_unregistered: outcome("stored_unregistered"),
                rejected: outcome("rejected"),
                bytes: registry.histogram(names::FACILITY_INGEST_BYTES, &[("project", project)]),
            }
        };
        IngestObs {
            latency: registry.histogram(names::FACILITY_INGEST_LATENCY_NS, &[]),
            projects: projects.map(|p| (p.clone(), per_project(p))).collect(),
        }
    }

    fn project(&self, project: &str) -> Option<&ProjectIngestObs> {
        self.projects.get(project)
    }
}

/// One item arriving from an experiment DAQ.
#[derive(Debug, Clone)]
pub struct IngestItem {
    /// Target project.
    pub project: String,
    /// Storage key within the project.
    pub key: String,
    /// Payload.
    pub data: Bytes,
    /// Basic metadata (may be `None` for instruments that fail to provide
    /// it — the "invisible data" failure mode).
    pub metadata: Option<Document>,
}

/// Outcome counters for a batch ingest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Items fully ingested (stored + registered).
    pub registered: u64,
    /// Items stored without metadata (enforcement off only).
    pub stored_unregistered: u64,
    /// Items rejected.
    pub rejected: u64,
    /// Items shed at the admission front door before touching storage
    /// (quota exhausted or queue full); retry later.
    pub shed: u64,
    /// Payload bytes accepted into storage.
    pub bytes: u64,
}

/// Ingest configuration.
#[derive(Debug, Clone, Copy)]
pub struct IngestPolicy {
    /// Reject items whose metadata is missing or schema-invalid.
    pub enforce_metadata: bool,
}

impl Default for IngestPolicy {
    fn default() -> Self {
        IngestPolicy {
            enforce_metadata: true,
        }
    }
}

/// One batch item staged through the ADAL, plus everything needed to
/// finalize it (catalog entry, metrics, latency span) once the batched
/// commit lands.
struct StagedIngest {
    pending: PendingPut,
    fin: IngestFinalize,
}

struct IngestFinalize {
    store: Arc<ProjectStore>,
    project: String,
    key: String,
    location: String,
    size: u64,
    checksum_hex: String,
    doc: Option<Document>,
    span: Span,
}

impl Facility {
    /// Ingests one item: checksums the payload, stores it through the
    /// ADAL, and registers the dataset in the project's metadata store.
    /// Returns the dataset id when a catalog entry was created.
    ///
    /// Outcomes feed the registry as
    /// `facility_ingest_total{project,outcome}` plus a
    /// `facility_ingest_bytes{project}` histogram for accepted payloads.
    ///
    /// The item passes the admission front door first: a project over
    /// its quota gets [`FacilityError::Admission`] with `retry_after_ns`
    /// before any byte reaches storage.
    pub fn ingest(
        &self,
        cred: &Credential,
        item: IngestItem,
        policy: IngestPolicy,
    ) -> Result<Option<DatasetId>, FacilityError> {
        self.admit_ingest(&item.project, item.data.len() as u64)?;
        self.ingest_traced(&TraceCtx::disabled(), cred, item, policy)
    }

    /// [`Facility::ingest`] with an explicit trace context: the ADAL
    /// put (and everything below it — retries, breaker transitions,
    /// DFS placement, HSM staging) attaches as children of `ctx`.
    ///
    /// Admission is *not* checked here — callers either went through
    /// [`Facility::ingest`] or the batch pre-pass, both of which admit
    /// before this runs.
    pub fn ingest_traced(
        &self,
        ctx: &TraceCtx,
        cred: &Credential,
        item: IngestItem,
        policy: IngestPolicy,
    ) -> Result<Option<DatasetId>, FacilityError> {
        let store = self.store(&item.project)?.clone();
        // Metric handles were cached at facility build: the hot path
        // only bumps atomics, never the registry maps.
        let pm = self
            .ingest_obs()
            .project(&item.project)
            .ok_or_else(|| FacilityError::UnknownProject(item.project.clone()))?;
        let span = self.obs().span(&self.ingest_obs().latency);
        let outcome = |o: Outcome| pm.outcome(o).inc();
        // Validate metadata *before* the payload lands, so enforcement
        // never leaves orphan bytes.
        let doc = match &item.metadata {
            Some(doc) => match store.schema().validate(doc) {
                Ok(()) => Some(doc.clone()),
                Err(e) => {
                    if policy.enforce_metadata {
                        outcome(Outcome::Rejected);
                        return Err(FacilityError::MetadataRequired {
                            key: item.key,
                            reason: e.to_string(),
                        });
                    }
                    None
                }
            },
            None => {
                if policy.enforce_metadata {
                    outcome(Outcome::Rejected);
                    return Err(FacilityError::MetadataRequired {
                        key: item.key,
                        reason: "no metadata supplied".to_string(),
                    });
                }
                None
            }
        };
        // One SHA-256 per acked payload: the memoized digest travels
        // with the handle, so the object store / replica reuse it.
        let data: Payload = item.data.into();
        let digest = data.digest();
        let location = format!("lsdf://{}/{}", item.project, item.key);
        let size = data.len() as u64;
        if let Err(e) = self.adal().put_traced(ctx, cred, &location, data) {
            outcome(Outcome::Rejected);
            return Err(e.into());
        }
        pm.bytes.record(size);
        let result = match doc {
            Some(basic) => {
                outcome(Outcome::Registered);
                let id = store.insert(NewDataset {
                    name: item.key,
                    location,
                    size_bytes: size,
                    checksum_hex: digest.to_hex(),
                    basic,
                })?;
                Ok(Some(id))
            }
            None => {
                outcome(Outcome::StoredUnregistered);
                Ok(None)
            }
        };
        span.finish();
        result
    }

    /// Stages one batch item: metadata validation, the single payload
    /// hash, and ADAL staging (placement / resilient fan-out) happen
    /// here, safely inside a pool worker; the metadata commit and
    /// catalog insert wait for [`Facility::ingest_finalize`]. Failure
    /// metrics are recorded exactly as on the eager path.
    fn ingest_stage_traced(
        &self,
        ctx: &TraceCtx,
        cred: &Credential,
        item: IngestItem,
        policy: IngestPolicy,
    ) -> Result<StagedIngest, FacilityError> {
        let store = self.store(&item.project)?.clone();
        let pm = self
            .ingest_obs()
            .project(&item.project)
            .ok_or_else(|| FacilityError::UnknownProject(item.project.clone()))?;
        let span = self.obs().span(&self.ingest_obs().latency);
        let doc = match &item.metadata {
            Some(doc) => match store.schema().validate(doc) {
                Ok(()) => Some(doc.clone()),
                Err(e) => {
                    if policy.enforce_metadata {
                        pm.outcome(Outcome::Rejected).inc();
                        return Err(FacilityError::MetadataRequired {
                            key: item.key,
                            reason: e.to_string(),
                        });
                    }
                    None
                }
            },
            None => {
                if policy.enforce_metadata {
                    pm.outcome(Outcome::Rejected).inc();
                    return Err(FacilityError::MetadataRequired {
                        key: item.key,
                        reason: "no metadata supplied".to_string(),
                    });
                }
                None
            }
        };
        // The one hash per acked payload, memoized on the shared handle.
        let data: Payload = item.data.into();
        let digest = data.digest();
        let location = format!("lsdf://{}/{}", item.project, item.key);
        let size = data.len() as u64;
        let pending = match self.adal().put_stage_traced(ctx, cred, &location, data) {
            Ok(p) => p,
            Err(e) => {
                pm.outcome(Outcome::Rejected).inc();
                return Err(e.into());
            }
        };
        Ok(StagedIngest {
            pending,
            fin: IngestFinalize {
                store,
                project: item.project,
                key: item.key,
                location,
                size,
                checksum_hex: digest.to_hex(),
                doc,
                span,
            },
        })
    }

    /// Commits a batch of staged items — one ADAL batched commit (one
    /// namenode lock, one WAL group commit for a DFS mount) — then
    /// finalizes catalog entries and metrics serially in submission
    /// order. An item is acked (counted in the report) only after its
    /// commit returned Ok.
    fn ingest_finalize(
        &self,
        staged: Vec<Result<StagedIngest, FacilityError>>,
    ) -> Vec<(Outcome, u64)> {
        let mut fins: Vec<Result<IngestFinalize, ()>> = Vec::with_capacity(staged.len());
        let mut pendings = Vec::new();
        for r in staged {
            match r {
                Ok(s) => {
                    pendings.push(s.pending);
                    fins.push(Ok(s.fin));
                }
                Err(_) => fins.push(Err(())),
            }
        }
        let mut commits = self.adal().commit_staged(pendings).into_iter();
        fins.into_iter()
            .map(|f| {
                let Ok(fin) = f else {
                    return (Outcome::Rejected, 0);
                };
                let committed = matches!(commits.next(), Some(Ok(())));
                let pm = self.ingest_obs().project(&fin.project);
                if !committed {
                    if let Some(pm) = pm {
                        pm.outcome(Outcome::Rejected).inc();
                    }
                    return (Outcome::Rejected, 0);
                }
                if let Some(pm) = pm {
                    pm.bytes.record(fin.size);
                }
                let out = match fin.doc {
                    Some(basic) => {
                        if let Some(pm) = pm {
                            pm.outcome(Outcome::Registered).inc();
                        }
                        match fin.store.insert(NewDataset {
                            name: fin.key,
                            location: fin.location,
                            size_bytes: fin.size,
                            checksum_hex: fin.checksum_hex,
                            basic,
                        }) {
                            Ok(_) => (Outcome::Registered, fin.size),
                            Err(_) => (Outcome::Rejected, 0),
                        }
                    }
                    None => {
                        if let Some(pm) = pm {
                            pm.outcome(Outcome::StoredUnregistered).inc();
                        }
                        (Outcome::StoredUnregistered, fin.size)
                    }
                };
                fin.span.finish();
                out
            })
            .collect()
    }

    /// Ingests a batch, tallying outcomes instead of failing fast.
    ///
    /// Admission runs as a serial pre-pass on the caller thread, in
    /// submission order, *before* the pool fan-out: token-bucket
    /// decisions (admit / wait / shed) therefore never depend on worker
    /// interleaving. Shed items are tallied in [`IngestReport::shed`]
    /// and never reach storage.
    ///
    /// Admitted items fan out across the facility's worker pool (see
    /// [`crate::facility::FacilityBuilder::workers`]); per-item
    /// outcomes are merged back in submission order, so the report —
    /// and the metrics it mirrors — are bit-identical to the serial
    /// path at every worker count.
    pub fn ingest_batch(
        &self,
        cred: &Credential,
        items: Vec<IngestItem>,
        policy: IngestPolicy,
    ) -> IngestReport {
        let trace = match self.tracer() {
            Some(t) => {
                let root = t.root(names::FACILITY_INGEST_BATCH_SPAN, "batch");
                root.add_field("items", &items.len().to_string());
                root
            }
            None => TraceCtx::disabled(),
        };
        // Serial admission pre-pass: deterministic at any worker count.
        let mut shed = 0u64;
        let admitted: Vec<(IngestItem, u64)> = items
            .into_iter()
            .filter_map(|item| {
                match self.admit_ingest(&item.project, item.data.len() as u64) {
                    Ok(ticket) => Some((item, ticket.wait_ns)),
                    // Unknown projects fall through to the pool so the
                    // per-item pipeline reports them as rejected, exactly
                    // as before admission existed.
                    Err(FacilityError::UnknownProject(_)) => Some((item, 0)),
                    Err(_) => {
                        shed += 1;
                        None
                    }
                }
            })
            .collect();
        // Workers stage items (validation, hashing, block placement);
        // the metadata commits that serialise on shared state happen
        // below, batched, after the fan-out.
        let staged = self
            .pool()
            .run_traced(&trace, admitted, |_, (item, wait_ns), ctx| {
                if wait_ns > 0 && ctx.is_enabled() {
                    let span = ctx.child(names::ADMISSION_WAIT_SPAN);
                    span.add_field("wait_ns", &wait_ns.to_string());
                    span.finish_at(self.obs().now_ns() + wait_ns);
                }
                self.ingest_stage_traced(ctx, cred, item, policy)
            });
        let outcomes = self.ingest_finalize(staged);
        trace.finish();
        // Telemetry scrape in the serial tail: at most one scrape per
        // interval, never inside the fan-out, so the history — and
        // everything derived from it — is worker-count-invariant.
        self.telemetry().maybe_scrape(self.obs());
        let mut report = IngestReport {
            shed,
            ..IngestReport::default()
        };
        for (outcome, size) in outcomes {
            match outcome {
                Outcome::Registered => {
                    report.registered += 1;
                    report.bytes += size;
                }
                Outcome::StoredUnregistered => {
                    report.stored_unregistered += 1;
                    report.bytes += size;
                }
                Outcome::Rejected => report.rejected += 1,
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facility::{BackendChoice, ProjectSpec};
    use lsdf_metadata::query::eq;
    use lsdf_metadata::zebrafish_schema;
    use lsdf_workloads::microscopy::HtmGenerator;

    fn facility() -> Facility {
        Facility::builder()
            .tenant(ProjectSpec::new(
                zebrafish_schema(),
                BackendChoice::ObjectStore { capacity: u64::MAX },
            ))
            .build()
            .unwrap()
    }

    fn items(n_fish: usize) -> Vec<IngestItem> {
        let mut gen = HtmGenerator::new(5, 32);
        let mut out = Vec::new();
        for _ in 0..n_fish {
            for (acq, img) in gen.next_fish() {
                out.push(IngestItem {
                    project: "zebrafish-htm".to_string(),
                    key: acq.key(),
                    data: img.encode(),
                    metadata: Some(acq.document()),
                });
            }
        }
        out
    }

    #[test]
    fn ingest_stores_registers_and_checksums() {
        let f = facility();
        let admin = f.admin().clone();
        let batch = items(2);
        let payload0 = batch[0].data.clone();
        let key0 = batch[0].key.clone();
        let report = f.ingest_batch(&admin, batch, IngestPolicy::default());
        assert_eq!(report.registered, 48);
        assert_eq!(report.rejected, 0);
        // Payload retrievable through the unified namespace.
        let path = format!("lsdf://zebrafish-htm/{key0}");
        assert_eq!(f.adal().get(&admin, &path).unwrap(), payload0);
        // Catalog entry carries checksum + size + location.
        let store = f.store("zebrafish-htm").unwrap();
        let rec = store.get_by_name(&key0).unwrap();
        assert_eq!(rec.size_bytes, payload0.len() as u64);
        assert_eq!(rec.checksum_hex, lsdf_storage::sha256(&payload0).to_hex());
        assert_eq!(rec.location, path);
        // Indexed query works on ingested metadata.
        assert_eq!(store.query(&eq("fish_id", 0i64)).len(), 24);
    }

    #[test]
    fn enforcement_rejects_missing_metadata_without_orphan_bytes() {
        let f = facility();
        let admin = f.admin().clone();
        let item = IngestItem {
            project: "zebrafish-htm".into(),
            key: "raw/mystery".into(),
            data: Bytes::from_static(b"pixels"),
            metadata: None,
        };
        let r = f.ingest(&admin, item, IngestPolicy::default());
        assert!(matches!(r, Err(FacilityError::MetadataRequired { .. })));
        // No orphan object.
        assert!(f
            .adal()
            .get(&admin, "lsdf://zebrafish-htm/raw/mystery")
            .is_err());
    }

    #[test]
    fn lax_policy_stores_invisible_data() {
        let f = facility();
        let admin = f.admin().clone();
        let item = IngestItem {
            project: "zebrafish-htm".into(),
            key: "raw/mystery".into(),
            data: Bytes::from_static(b"pixels"),
            metadata: None,
        };
        let id = f
            .ingest(&admin, item, IngestPolicy {
                enforce_metadata: false,
            })
            .unwrap();
        assert_eq!(id, None, "no catalog entry");
        // Bytes exist...
        assert!(f
            .adal()
            .get(&admin, "lsdf://zebrafish-htm/raw/mystery")
            .is_ok());
        // ...but the data is invisible to every metadata query.
        let store = f.store("zebrafish-htm").unwrap();
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn invalid_metadata_counted_as_rejected_in_batch() {
        let f = facility();
        let admin = f.admin().clone();
        let mut batch = items(1);
        batch[3].metadata = Some(Document::new()); // invalid: required fields missing
        batch[7].metadata = None;
        let report = f.ingest_batch(&admin, batch, IngestPolicy::default());
        assert_eq!(report.registered, 22);
        assert_eq!(report.rejected, 2);
        assert_eq!(report.stored_unregistered, 0);
    }

    #[test]
    fn registry_tallies_ingest_outcomes_per_project() {
        let f = facility();
        let admin = f.admin().clone();
        let mut batch = items(1);
        batch[3].metadata = None;
        let report = f.ingest_batch(&admin, batch, IngestPolicy::default());
        assert_eq!(report.registered, 23);
        assert_eq!(report.rejected, 1);
        let reg = f.obs();
        fn labels(o: &str) -> [(&str, &str); 2] {
            [("project", "zebrafish-htm"), ("outcome", o)]
        }
        assert_eq!(
            reg.counter_value(names::FACILITY_INGEST_TOTAL, &labels("registered")),
            report.registered
        );
        assert_eq!(
            reg.counter_value(names::FACILITY_INGEST_TOTAL, &labels("rejected")),
            report.rejected
        );
        let bytes = reg.histogram(names::FACILITY_INGEST_BYTES, &[("project", "zebrafish-htm")]);
        assert_eq!(bytes.sum(), report.bytes);
        assert_eq!(bytes.count(), report.registered);
        // Ingest flowed through the shared ADAL counters too.
        assert_eq!(f.adal().counters().puts, report.registered);
    }

    #[test]
    fn traced_batch_produces_nested_trace_and_health_report() {
        use lsdf_obs::TraceConfig;
        let f = Facility::builder()
            .tenant(ProjectSpec::new(
                zebrafish_schema(),
                BackendChoice::ObjectStore { capacity: u64::MAX },
            ))
            .tracing(TraceConfig::full())
            .build()
            .unwrap();
        let admin = f.admin().clone();
        let batch = items(1);
        let n = batch.len();
        let report = f.ingest_batch(&admin, batch, IngestPolicy::default());
        assert_eq!(report.registered as usize, n);
        let tracer = f.tracer().expect("tracing was enabled");
        let traces = tracer.traces();
        assert_eq!(traces.len(), 1, "one batch => one trace");
        let root = &traces[0].root;
        assert_eq!(root.name, names::FACILITY_INGEST_BATCH_SPAN);
        assert_eq!(root.children.len(), n, "one pool task per item");
        for task in &root.children {
            assert_eq!(task.name, names::POOL_TASK_SPAN);
            assert_eq!(task.children[0].name, names::ADAL_PUT_SPAN);
        }
        // Health: default rules pass on a healthy facility, and the
        // accounting sees the project's ops and bytes.
        let health = f.facility_health();
        assert!(health.healthy, "no SLO violated: {:?}", health.rules);
        let acct = health
            .projects
            .iter()
            .find(|p| p.project == "zebrafish-htm")
            .expect("project accounted");
        assert_eq!(acct.bytes, report.bytes);
        assert!(acct.ops >= report.registered);
    }

    #[test]
    fn quota_limited_batch_sheds_and_traces_admission_waits() {
        use lsdf_obs::TraceConfig;
        let f = Facility::builder()
            .tenant(
                ProjectSpec::new(
                    zebrafish_schema(),
                    BackendChoice::ObjectStore { capacity: u64::MAX },
                )
                // Bulk-lane bucket mounts full at 7 tokens; a queue of
                // 2 admits two more with simulated waits, then sheds.
                .quota(lsdf_admission::QuotaSpec::per_second(7, 1 << 20).queue_depth(2)),
            )
            .tracing(TraceConfig::full())
            .build()
            .unwrap();
        let admin = f.admin().clone();
        let batch = items(1); // 24 items in one instant
        let report = f.ingest_batch(&admin, batch, IngestPolicy::default());
        assert_eq!(report.registered, 9, "7 burst + 2 queued");
        assert_eq!(report.shed, 15);
        assert_eq!(report.rejected, 0);
        let reg = f.obs();
        let labels = [("project", "zebrafish-htm"), ("lane", "bulk")];
        assert_eq!(
            reg.counter_value(names::ADMISSION_ADMITTED_TOTAL, &labels),
            9
        );
        assert_eq!(reg.counter_value(names::ADMISSION_SHED_TOTAL, &labels), 15);
        // The two queued admissions carry admission_wait spans parented
        // under their pool tasks; burst admissions (wait 0) do not.
        let traces = f.tracer().unwrap().traces();
        let root = &traces[0].root;
        assert_eq!(root.children.len(), 9, "only admitted items reach the pool");
        let mut waits = 0;
        for task in &root.children {
            let span_names: Vec<&str> = task.children.iter().map(|c| c.name).collect();
            if span_names.first() == Some(&names::ADMISSION_WAIT_SPAN) {
                waits += 1;
                assert!(span_names.contains(&names::ADAL_PUT_SPAN));
            } else {
                assert_eq!(span_names.first(), Some(&names::ADAL_PUT_SPAN));
            }
        }
        assert_eq!(waits, 2, "exactly the queued admissions record a wait");
    }

    #[test]
    fn duplicate_keys_rejected_at_storage_layer() {
        let f = facility();
        let admin = f.admin().clone();
        let batch = items(1);
        let one = batch[0].clone();
        f.ingest(&admin, one.clone(), IngestPolicy::default())
            .unwrap();
        let r = f.ingest(&admin, one, IngestPolicy::default());
        assert!(matches!(r, Err(FacilityError::Adal(_))));
    }
}
