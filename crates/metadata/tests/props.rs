//! Property tests: index-assisted queries always agree with full scans,
//! WORM holds, and unified/federated organisations return identical hits.

use std::sync::Arc;

use lsdf_metadata::query::{eq, ge, has_tag, lt};
use lsdf_metadata::{
    dataset, CrossQuery, Document, Federation, FieldType, Predicate, ProjectStore, SchemaBuilder,
    UnifiedCatalog, Value,
};
use proptest::prelude::*;

fn schema(name: &str) -> lsdf_metadata::Schema {
    SchemaBuilder::new(name)
        .required("run", FieldType::Int)
        .indexed()
        .required("energy", FieldType::Float)
        .indexed()
        .required("detector", FieldType::Str)
        .build()
        .unwrap()
}

fn doc(run: i64, energy: f64, detector: &str) -> Document {
    [
        ("run".to_string(), Value::Int(run)),
        ("energy".to_string(), Value::Float(energy)),
        ("detector".to_string(), Value::from(detector)),
    ]
    .into_iter()
    .collect()
}

proptest! {
    /// For random data and random predicates, the index-assisted query path
    /// returns exactly the records the brute-force `matches()` scan does.
    #[test]
    fn indexed_query_equals_full_scan(
        rows in prop::collection::vec((0i64..20, 0u32..1000, 0usize..3), 1..200),
        q_run in 0i64..20,
        q_energy in 0u32..1000,
    ) {
        let store = ProjectStore::new(schema("t"));
        for (i, (run, e, d)) in rows.iter().enumerate() {
            let detector = ["main", "veto", "monitor"][*d];
            store
                .insert(dataset(&format!("r{i}"), 1, doc(*run, *e as f64, detector)))
                .unwrap();
        }
        let preds: Vec<Predicate> = vec![
            eq("run", q_run),
            ge("energy", q_energy as f64),
            lt("energy", q_energy as f64),
            eq("run", q_run).and(ge("energy", q_energy as f64)),
            eq("run", q_run).or(eq("detector", "veto")),
            eq("detector", "main").and(lt("energy", q_energy as f64)),
            eq("run", q_run).not(),
        ];
        for pred in &preds {
            let via_engine: Vec<u64> = store.query(pred).iter().map(|r| r.id.0).collect();
            let via_scan: Vec<u64> = store
                .all()
                .iter()
                .filter(|r| pred.matches(r))
                .map(|r| r.id.0)
                .collect();
            prop_assert_eq!(&via_engine, &via_scan, "pred {:?}", pred);
        }
    }

    /// Tag/untag sequences keep the tag index consistent with record state.
    #[test]
    fn tag_index_matches_records(ops in prop::collection::vec((0u64..30, 0usize..3, any::<bool>()), 1..150)) {
        let store = ProjectStore::new(schema("t"));
        for i in 0..30 {
            store.insert(dataset(&format!("r{i}"), 1, doc(i, 0.0, "main"))).unwrap();
        }
        let tags = ["raw", "qa-passed", "archived"];
        for (id, tag_i, add) in ops {
            let tag = tags[tag_i];
            if add {
                store.tag(lsdf_metadata::DatasetId(id), tag).unwrap();
            } else {
                store.untag(lsdf_metadata::DatasetId(id), tag).unwrap();
            }
        }
        for tag in tags {
            let via_index: std::collections::BTreeSet<u64> =
                store.ids_with_tag(tag).iter().map(|i| i.0).collect();
            let via_scan: std::collections::BTreeSet<u64> = store
                .all()
                .iter()
                .filter(|r| r.has_tag(tag))
                .map(|r| r.id.0)
                .collect();
            prop_assert_eq!(via_index, via_scan, "tag {}", tag);
        }
        // Tag queries agree too.
        for tag in tags {
            let q = store.query(&has_tag(tag)).len();
            prop_assert_eq!(q, store.ids_with_tag(tag).len());
        }
    }

    /// Unified catalog and federation return the same hit multiset for the
    /// same data, and the unified catalog never contacts more than one
    /// store.
    #[test]
    fn unified_equals_federation(
        per_project in prop::collection::vec(prop::collection::vec((0i64..10, 0u32..100), 0..30), 1..6),
        q_run in 0i64..10,
    ) {
        let schemas: Vec<_> = (0..per_project.len())
            .map(|i| schema(&format!("p{i}")))
            .collect();
        let unified = UnifiedCatalog::new(&schemas).unwrap();
        let mut fed = Federation::new();
        for (pi, rows) in per_project.iter().enumerate() {
            let store = Arc::new(ProjectStore::new(schemas[pi].clone()));
            for (ri, (run, e)) in rows.iter().enumerate() {
                let d = dataset(&format!("r{ri}"), 1, doc(*run, *e as f64, "main"));
                store.insert(d.clone()).unwrap();
                unified.insert(&format!("p{pi}"), d).unwrap();
            }
            fed.add(store);
        }
        let pred = eq("run", q_run);
        let u = unified.cross_query(&pred);
        let f = fed.cross_query(&pred);
        prop_assert_eq!(u.hits.len(), f.hits.len());
        let mut u_names: Vec<String> = u
            .hits
            .iter()
            .map(|(p, r)| format!("{p}/{}", r.name.rsplit('/').next().unwrap()))
            .collect();
        let mut f_names: Vec<String> = f
            .hits
            .iter()
            .map(|(p, r)| format!("{p}/{}", r.name))
            .collect();
        u_names.sort();
        f_names.sort();
        prop_assert_eq!(u_names, f_names);
        prop_assert_eq!(u.stores_contacted, 1);
        prop_assert_eq!(f.stores_contacted, per_project.len());
    }

    /// WORM: after insert, basic metadata can never be changed, regardless
    /// of what the caller supplies.
    #[test]
    fn worm_always_holds(run in 0i64..100, attempts in 1usize..5) {
        let store = ProjectStore::new(schema("t"));
        let id = store.insert(dataset("d", 1, doc(run, 1.0, "main"))).unwrap();
        let before = store.get(id).unwrap().basic.clone();
        for i in 0..attempts {
            let res = store.update_basic(id, doc(run + i as i64 + 1, 2.0, "veto"));
            prop_assert!(res.is_err());
        }
        prop_assert_eq!(store.get(id).unwrap().basic, before);
    }
}
