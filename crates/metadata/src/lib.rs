//! # lsdf-metadata — the project metadata repository
//!
//! Implements the paper's slide-8 data model: experiment data is
//! **write-once, read-many**; each dataset carries WORM *basic metadata*
//! validated against a **project-dependent schema**, plus any number of
//! appended *processing-result* metadata sets (METADATA 1..N). Tagging
//! datasets emits events that the workflow engine (lsdf-workflow)
//! subscribes to — the slide-12 automation loop.
//!
//! The crate also provides the substrate for two of the paper's claims:
//!
//! * slide 3, "a single big DB with scientific data is more valuable than
//!   many small ones" — [`UnifiedCatalog`] vs [`Federation`] (experiment E8);
//! * slide 3, "invisible (not-found, no-metadata) data is lost data" —
//!   findability measured through [`ProjectStore::query`] (experiment E14).

#![warn(missing_docs)]

mod events;
pub mod export;
mod federation;
mod index;
pub mod query;
mod record;
mod schema;
mod store;
mod value;
mod wal;

pub use events::{MetadataEvent, Subscriber};
pub use federation::{dataset, CrossQuery, CrossQueryResult, Federation, UnifiedCatalog};
pub use index::{FieldIndex, TagIndex};
pub use query::Predicate;
pub use record::{DatasetId, DatasetRecord, ProcessingResult};
pub use schema::{zebrafish_schema, Document, FieldDef, Schema, SchemaBuilder, SchemaError};
pub use store::{MetaRecoveryStats, MetadataError, NewDataset, ProjectStore};
pub use value::{FieldType, Value};
