//! Project metadata schemas.
//!
//! "Metadata schema is highly project-dependent ⇒ we use a project metadata
//! DB" (paper, slide 8). A [`Schema`] declares each project's fields, which
//! are required at ingest, and which should be indexed for query speed.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::value::{FieldType, Value};

/// A metadata document: field name → value.
pub type Document = BTreeMap<String, Value>;

/// Declaration of one schema field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Expected type.
    pub ty: FieldType,
    /// Must be present in every dataset's basic metadata.
    pub required: bool,
    /// Maintain a secondary index on this field.
    pub indexed: bool,
}

/// A project's metadata schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Schema (project) name.
    pub name: String,
    fields: Vec<FieldDef>,
}

/// Schema-validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A required field is missing from the document.
    MissingField(String),
    /// A document value has the wrong type.
    TypeMismatch {
        /// Field name.
        field: String,
        /// Declared type.
        expected: FieldType,
        /// Actual value type.
        got: FieldType,
    },
    /// A document contains a field not declared in the schema.
    UnknownField(String),
    /// A float field contains NaN (unorderable, breaks indexes).
    NanValue(String),
    /// Two fields with the same name were declared.
    DuplicateField(String),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::MissingField(n) => write!(f, "required field '{n}' missing"),
            SchemaError::TypeMismatch { field, expected, got } => {
                write!(f, "field '{field}': expected {expected:?}, got {got:?}")
            }
            SchemaError::UnknownField(n) => write!(f, "field '{n}' not in schema"),
            SchemaError::NanValue(n) => write!(f, "field '{n}' is NaN"),
            SchemaError::DuplicateField(n) => write!(f, "duplicate field '{n}'"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Builder for [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    name: String,
    fields: Vec<FieldDef>,
}

impl SchemaBuilder {
    /// Starts a schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SchemaBuilder {
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// Adds a required field.
    pub fn required(mut self, name: &str, ty: FieldType) -> Self {
        self.fields.push(FieldDef {
            name: name.to_string(),
            ty,
            required: true,
            indexed: false,
        });
        self
    }

    /// Adds an optional field.
    pub fn optional(mut self, name: &str, ty: FieldType) -> Self {
        self.fields.push(FieldDef {
            name: name.to_string(),
            ty,
            required: false,
            indexed: false,
        });
        self
    }

    /// Marks the most recently added field as indexed.
    ///
    /// # Panics
    /// Panics if no field has been added yet.
    pub fn indexed(mut self) -> Self {
        self.fields
            .last_mut()
            // lint: allow(no_panic) -- documented builder-misuse panic (see `# Panics` above)
            .expect("indexed() requires a preceding field")
            .indexed = true;
        self
    }

    /// Finalizes the schema, checking for duplicate field names.
    pub fn build(self) -> Result<Schema, SchemaError> {
        let mut seen = std::collections::HashSet::new();
        for f in &self.fields {
            if !seen.insert(f.name.clone()) {
                return Err(SchemaError::DuplicateField(f.name.clone()));
            }
        }
        Ok(Schema {
            name: self.name,
            fields: self.fields,
        })
    }
}

impl Schema {
    /// Declared fields in declaration order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Looks up one field.
    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Names of all indexed fields.
    pub fn indexed_fields(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().filter(|f| f.indexed).map(|f| f.name.as_str())
    }

    /// Validates a *basic metadata* document: required fields present,
    /// all fields declared, types correct, floats finite.
    pub fn validate(&self, doc: &Document) -> Result<(), SchemaError> {
        for f in &self.fields {
            match doc.get(&f.name) {
                None if f.required => return Err(SchemaError::MissingField(f.name.clone())),
                None => {}
                Some(v) => {
                    if v.field_type() != f.ty {
                        return Err(SchemaError::TypeMismatch {
                            field: f.name.clone(),
                            expected: f.ty,
                            got: v.field_type(),
                        });
                    }
                    if let Value::Float(x) = v {
                        if x.is_nan() {
                            return Err(SchemaError::NanValue(f.name.clone()));
                        }
                    }
                }
            }
        }
        for k in doc.keys() {
            if self.field(k).is_none() {
                return Err(SchemaError::UnknownField(k.clone()));
            }
        }
        Ok(())
    }
}

/// The zebrafish high-throughput-microscopy schema used throughout the
/// examples and benches (fields from slides 4–5: focus point, wavelength,
/// per-fish image counts).
pub fn zebrafish_schema() -> Schema {
    SchemaBuilder::new("zebrafish-htm")
        .required("fish_id", FieldType::Int)
        .indexed()
        .required("image_index", FieldType::Int)
        .required("focus_um", FieldType::Float)
        .required("wavelength_nm", FieldType::Float)
        .indexed()
        .required("well", FieldType::Str)
        .required("acquired_at", FieldType::Time)
        .indexed()
        .optional("compound", FieldType::Str)
        .indexed()
        .optional("concentration_um", FieldType::Float)
        .build()
        // lint: allow(no_panic) -- constant field list with unique names; covered by tests
        .expect("static schema is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(pairs: &[(&str, Value)]) -> Document {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn valid_document_passes() {
        let s = zebrafish_schema();
        let d = doc(&[
            ("fish_id", Value::Int(7)),
            ("image_index", Value::Int(3)),
            ("focus_um", Value::Float(12.5)),
            ("wavelength_nm", Value::Float(488.0)),
            ("well", Value::from("A3")),
            ("acquired_at", Value::Time(1000)),
        ]);
        assert_eq!(s.validate(&d), Ok(()));
    }

    #[test]
    fn missing_required_field_rejected() {
        let s = zebrafish_schema();
        let d = doc(&[("fish_id", Value::Int(7))]);
        assert_eq!(s.validate(&d), Err(SchemaError::MissingField("image_index".into())));
    }

    #[test]
    fn wrong_type_rejected() {
        let s = SchemaBuilder::new("t")
            .required("n", FieldType::Int)
            .build()
            .unwrap();
        let d = doc(&[("n", Value::from("five"))]);
        assert_eq!(
            s.validate(&d),
            Err(SchemaError::TypeMismatch {
                field: "n".into(),
                expected: FieldType::Int,
                got: FieldType::Str
            })
        );
    }

    #[test]
    fn unknown_field_rejected() {
        let s = SchemaBuilder::new("t")
            .required("a", FieldType::Int)
            .build()
            .unwrap();
        let d = doc(&[("a", Value::Int(1)), ("mystery", Value::Int(2))]);
        assert_eq!(s.validate(&d), Err(SchemaError::UnknownField("mystery".into())));
    }

    #[test]
    fn nan_rejected() {
        let s = SchemaBuilder::new("t")
            .required("x", FieldType::Float)
            .build()
            .unwrap();
        let d = doc(&[("x", Value::Float(f64::NAN))]);
        assert_eq!(s.validate(&d), Err(SchemaError::NanValue("x".into())));
    }

    #[test]
    fn optional_fields_may_be_absent() {
        let s = SchemaBuilder::new("t")
            .required("a", FieldType::Int)
            .optional("b", FieldType::Str)
            .build()
            .unwrap();
        assert_eq!(s.validate(&doc(&[("a", Value::Int(1))])), Ok(()));
    }

    #[test]
    fn duplicate_fields_rejected_at_build() {
        let r = SchemaBuilder::new("t")
            .required("a", FieldType::Int)
            .optional("a", FieldType::Str)
            .build();
        assert_eq!(r.unwrap_err(), SchemaError::DuplicateField("a".into()));
    }

    #[test]
    fn indexed_fields_enumerated() {
        let s = zebrafish_schema();
        let idx: Vec<&str> = s.indexed_fields().collect();
        assert_eq!(idx, vec!["fish_id", "wavelength_nm", "acquired_at", "compound"]);
    }

    #[test]
    #[should_panic(expected = "preceding field")]
    fn indexed_without_field_panics() {
        let _ = SchemaBuilder::new("t").indexed();
    }
}
