//! The project metadata store: schema-validated inserts, WORM basic
//! metadata, appended processing results, tags, secondary indexes, and an
//! index-aware query executor with scan instrumentation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use lsdf_sync::{ranks, OrderedRwLock};

use crate::events::{MetadataEvent, Subscriber};
use crate::index::{FieldIndex, TagIndex};
use crate::query::Predicate;
use crate::record::{DatasetId, DatasetRecord, ProcessingResult};
use crate::schema::{Document, Schema, SchemaError};
use crate::value::Value;
use crate::wal::{MetaSnapshot, MetaWalRecord};
use lsdf_durability::ComponentDurability;
use lsdf_storage::sha256;

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq)]
pub enum MetadataError {
    /// Schema validation failed.
    Schema(SchemaError),
    /// Dataset id unknown.
    NotFound(DatasetId),
    /// A dataset with this name already exists.
    DuplicateName(String),
    /// Attempted to modify write-once basic metadata.
    WormViolation(DatasetId),
}

impl std::fmt::Display for MetadataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetadataError::Schema(e) => write!(f, "schema: {e}"),
            MetadataError::NotFound(id) => write!(f, "dataset {id:?} not found"),
            MetadataError::DuplicateName(n) => write!(f, "dataset name '{n}' already registered"),
            MetadataError::WormViolation(id) => {
                write!(f, "basic metadata of {id:?} is write-once (WORM)")
            }
        }
    }
}

impl std::error::Error for MetadataError {}

impl From<SchemaError> for MetadataError {
    fn from(e: SchemaError) -> Self {
        MetadataError::Schema(e)
    }
}

/// Parameters describing a new dataset at registration time.
#[derive(Debug, Clone)]
pub struct NewDataset {
    /// Unique name (usually the storage key).
    pub name: String,
    /// ADAL location of the payload.
    pub location: String,
    /// Payload size in bytes.
    pub size_bytes: u64,
    /// Hex SHA-256 of the payload (may be empty).
    pub checksum_hex: String,
    /// Basic (write-once) metadata; validated against the project schema.
    pub basic: Document,
}

struct StoreState {
    records: Vec<DatasetRecord>,
    by_name: HashMap<String, DatasetId>,
    field_indexes: HashMap<String, FieldIndex>,
    tag_index: TagIndex,
    subscribers: Vec<Subscriber>,
}

/// What one metadata-store recovery pass replayed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetaRecoveryStats {
    /// A verified checkpoint was loaded as the replay base.
    pub snapshot_loaded: bool,
    /// WAL records applied during replay.
    pub replayed: u64,
    /// WAL records skipped because their effect was already present.
    pub skipped: u64,
    /// Log segments that ended in a torn (un-acked) frame.
    pub torn_tails: u64,
}

/// A single project's metadata repository.
pub struct ProjectStore {
    project: String,
    schema: Schema,
    state: OrderedRwLock<StoreState>,
    /// Records touched by query execution — the cost metric for E7/E8.
    scanned: AtomicU64,
    queries: AtomicU64,
    durability: Option<ComponentDurability>,
}

impl ProjectStore {
    /// Creates an empty store for `schema`.
    pub fn new(schema: Schema) -> Self {
        Self::with_durability(schema, None)
    }

    /// Creates a store with an optional durability handle: when `Some`,
    /// every acked mutation is committed to the WAL before returning,
    /// and any existing state in the durable store (checkpoint + WAL
    /// segments from a previous incarnation) is recovered before this
    /// returns.
    pub fn with_durability(schema: Schema, durability: Option<ComponentDurability>) -> Self {
        let field_indexes = schema
            .indexed_fields()
            .map(|f| (f.to_string(), FieldIndex::new()))
            .collect();
        let store = ProjectStore {
            project: schema.name.clone(),
            schema,
            state: OrderedRwLock::new(ranks::META_STATE, StoreState {
                records: Vec::new(),
                by_name: HashMap::new(),
                field_indexes,
                tag_index: TagIndex::new(),
                subscribers: Vec::new(),
            }),
            scanned: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            durability,
        };
        if store.durability.is_some() {
            store.recover();
        }
        store
    }

    /// The project name (same as the schema name).
    pub fn project(&self) -> &str {
        &self.project
    }

    /// The project schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of datasets registered.
    pub fn len(&self) -> usize {
        self.state.read().records.len()
    }

    /// True when no datasets are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Subscribes to change events.
    pub fn subscribe(&self, sub: Subscriber) {
        self.state.write().subscribers.push(sub);
    }

    fn emit(&self, subs: &[Subscriber], event: &MetadataEvent) {
        for s in subs {
            s(event);
        }
    }

    /// Registers a dataset. Basic metadata is validated and becomes
    /// write-once.
    pub fn insert(&self, new: NewDataset) -> Result<DatasetId, MetadataError> {
        self.schema.validate(&new.basic)?;
        let (id, subs) = {
            let mut st = self.state.write();
            if st.by_name.contains_key(&new.name) {
                return Err(MetadataError::DuplicateName(new.name));
            }
            let id = DatasetId(st.records.len() as u64);
            // Logged under the namespace lock so log order agrees with
            // id-assignment order (ids are dense insertion indexes).
            if let Some(d) = &self.durability {
                let rec = MetaWalRecord::Insert {
                    name: new.name.clone(),
                    location: new.location.clone(),
                    size_bytes: new.size_bytes,
                    checksum_hex: new.checksum_hex.clone(),
                    basic: new.basic.clone(),
                };
                d.log(&rec.encode());
            }
            for (field, idx) in st.field_indexes.iter_mut() {
                if let Some(v) = new.basic.get(field) {
                    idx.insert(v, id);
                }
            }
            st.by_name.insert(new.name.clone(), id);
            st.records.push(DatasetRecord {
                id,
                name: new.name,
                location: new.location,
                size_bytes: new.size_bytes,
                checksum_hex: new.checksum_hex,
                basic: new.basic,
                processing: Vec::new(),
                tags: Default::default(),
            });
            (id, st.subscribers.clone())
        };
        self.emit(
            &subs,
            &MetadataEvent::Inserted {
                project: self.project.clone(),
                id,
            },
        );
        Ok(id)
    }

    /// Fetches a record by id.
    pub fn get(&self, id: DatasetId) -> Result<DatasetRecord, MetadataError> {
        self.state
            .read()
            .records
            .get(id.0 as usize)
            .cloned()
            .ok_or(MetadataError::NotFound(id))
    }

    /// Fetches a record by unique name.
    pub fn get_by_name(&self, name: &str) -> Option<DatasetRecord> {
        let st = self.state.read();
        st.by_name.get(name).map(|&id| st.records[id.0 as usize].clone())
    }

    /// Basic metadata is write-once: this always fails, by design. The
    /// method exists so that callers porting from mutable catalogs get a
    /// typed error instead of silently diverging from the facility
    /// contract (paper slide 8: "BASIC METADATA — write once, read many").
    pub fn update_basic(&self, id: DatasetId, _doc: Document) -> Result<(), MetadataError> {
        let st = self.state.read();
        if st.records.get(id.0 as usize).is_none() {
            return Err(MetadataError::NotFound(id));
        }
        Err(MetadataError::WormViolation(id))
    }

    /// Appends a processing-result set (the paper's METADATA N), returning
    /// its sequence number.
    pub fn append_processing(
        &self,
        id: DatasetId,
        step: &str,
        params: Document,
        results: Document,
        derived_keys: Vec<String>,
    ) -> Result<u32, MetadataError> {
        let (seq, subs) = {
            let mut st = self.state.write();
            let rec = st
                .records
                .get_mut(id.0 as usize)
                .ok_or(MetadataError::NotFound(id))?;
            let seq = rec.processing.len() as u32 + 1;
            if let Some(d) = &self.durability {
                let log_rec = MetaWalRecord::AppendProcessing {
                    id,
                    step: step.to_string(),
                    params: params.clone(),
                    results: results.clone(),
                    derived_keys: derived_keys.clone(),
                    seq,
                };
                d.log(&log_rec.encode());
            }
            rec.processing.push(ProcessingResult {
                step: step.to_string(),
                params,
                results,
                derived_keys,
                seq,
            });
            (seq, st.subscribers.clone())
        };
        self.emit(
            &subs,
            &MetadataEvent::ProcessingAdded {
                project: self.project.clone(),
                id,
                step: step.to_string(),
                seq,
            },
        );
        Ok(seq)
    }

    /// Adds a tag; idempotent. Emits an event only on first addition.
    pub fn tag(&self, id: DatasetId, tag: &str) -> Result<(), MetadataError> {
        let (added, subs) = {
            let mut st = self.state.write();
            let rec = st
                .records
                .get_mut(id.0 as usize)
                .ok_or(MetadataError::NotFound(id))?;
            let added = rec.tags.insert(tag.to_string());
            if added {
                if let Some(d) = &self.durability {
                    d.log(&MetaWalRecord::Tag { id, tag: tag.to_string() }.encode());
                }
                st.tag_index.insert(tag, id);
            }
            (added, st.subscribers.clone())
        };
        if added {
            self.emit(
                &subs,
                &MetadataEvent::Tagged {
                    project: self.project.clone(),
                    id,
                    tag: tag.to_string(),
                },
            );
        }
        Ok(())
    }

    /// Removes a tag; idempotent.
    pub fn untag(&self, id: DatasetId, tag: &str) -> Result<(), MetadataError> {
        let (removed, subs) = {
            let mut st = self.state.write();
            let rec = st
                .records
                .get_mut(id.0 as usize)
                .ok_or(MetadataError::NotFound(id))?;
            let removed = rec.tags.remove(tag);
            if removed {
                if let Some(d) = &self.durability {
                    d.log(&MetaWalRecord::Untag { id, tag: tag.to_string() }.encode());
                }
                st.tag_index.remove(tag, id);
            }
            (removed, st.subscribers.clone())
        };
        if removed {
            self.emit(
                &subs,
                &MetadataEvent::Untagged {
                    project: self.project.clone(),
                    id,
                    tag: tag.to_string(),
                },
            );
        }
        Ok(())
    }

    /// Executes a query, using secondary indexes where the predicate shape
    /// allows, and returns matching records in id order.
    pub fn query(&self, pred: &Predicate) -> Vec<DatasetRecord> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let st = self.state.read();
        let candidates = self.candidate_ids(&st, pred);
        match candidates {
            Some(mut ids) => {
                ids.sort_unstable();
                ids.dedup();
                self.scanned.fetch_add(ids.len() as u64, Ordering::Relaxed);
                ids.into_iter()
                    .map(|id| &st.records[id.0 as usize])
                    .filter(|r| pred.matches(r))
                    .cloned()
                    .collect()
            }
            None => {
                self.scanned
                    .fetch_add(st.records.len() as u64, Ordering::Relaxed);
                st.records.iter().filter(|r| pred.matches(r)).cloned().collect()
            }
        }
    }

    /// Index-assisted candidate generation. `None` = full scan required.
    /// A conjunction may narrow via either side; a disjunction needs both.
    fn candidate_ids(&self, st: &StoreState, pred: &Predicate) -> Option<Vec<DatasetId>> {
        match pred {
            Predicate::Eq(f, v) => st.field_indexes.get(f).map(|idx| idx.lookup_eq(v)),
            Predicate::Lt(f, v) => st
                .field_indexes
                .get(f)
                .map(|idx| idx.lookup_range(None, Some(v))),
            Predicate::Le(f, v) => st.field_indexes.get(f).map(|idx| {
                let mut ids = idx.lookup_range(None, Some(v));
                ids.extend(idx.lookup_eq(v));
                ids
            }),
            // lookup_range's lower bound is inclusive, so Gt candidates
            // include exact-equal ids; the final matches() filter drops them.
            Predicate::Gt(f, v) => st
                .field_indexes
                .get(f)
                .map(|idx| idx.lookup_range(Some(v), None)),
            Predicate::Ge(f, v) => st
                .field_indexes
                .get(f)
                .map(|idx| idx.lookup_range(Some(v), None)),
            Predicate::HasTag(t) => Some(st.tag_index.lookup(t)),
            Predicate::And(a, b) => match (self.candidate_ids(st, a), self.candidate_ids(st, b)) {
                (Some(x), Some(y)) => {
                    // Use the smaller side as the candidate set.
                    Some(if x.len() <= y.len() { x } else { y })
                }
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            },
            Predicate::Or(a, b) => {
                let x = self.candidate_ids(st, a)?;
                let mut y = self.candidate_ids(st, b)?;
                let mut out = x;
                out.append(&mut y);
                Some(out)
            }
            // Ne, Contains, Not, All: no index help.
            _ => None,
        }
    }

    /// `(queries executed, records scanned)` counters.
    pub fn query_stats(&self) -> (u64, u64) {
        (
            self.queries.load(Ordering::Relaxed),
            self.scanned.load(Ordering::Relaxed),
        )
    }

    /// All records (snapshot), in insertion order.
    pub fn all(&self) -> Vec<DatasetRecord> {
        self.state.read().records.clone()
    }

    /// All tags in use.
    pub fn tags(&self) -> Vec<String> {
        self.state.read().tag_index.tags()
    }

    /// Total bytes registered across datasets.
    pub fn total_bytes(&self) -> u128 {
        self.state
            .read()
            .records
            .iter()
            .map(|r| u128::from(r.size_bytes))
            .sum()
    }

    /// Convenience: ids of records matching a tag.
    pub fn ids_with_tag(&self, tag: &str) -> Vec<DatasetId> {
        self.state.read().tag_index.lookup(tag)
    }

    /// Looks up a single basic-metadata value.
    pub fn field_of(&self, id: DatasetId, field: &str) -> Option<Value> {
        self.state
            .read()
            .records
            .get(id.0 as usize)
            .and_then(|r| r.basic.get(field).cloned())
    }

    // --- Durability: snapshot, crash, recovery ------------------------

    /// True when mutations are committed to a WAL before acking.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// WAL records committed since the last checkpoint (reconciler
    /// scheduling input).
    pub fn wal_records_since_checkpoint(&self) -> u64 {
        self.durability
            .as_ref()
            .map_or(0, ComponentDurability::records_since_checkpoint)
    }

    fn snapshot(&self) -> Vec<u8> {
        let records = self.state.read().records.clone();
        MetaSnapshot { records }.encode()
    }

    /// SHA-256 over the canonical catalog snapshot: two stores with the
    /// same logical catalog produce the same digest, bit for bit.
    pub fn catalog_digest(&self) -> String {
        sha256(&self.snapshot()).to_hex()
    }

    /// Takes a checkpoint now (rotate WAL → snapshot → persist →
    /// truncate old segments). Returns the checkpoint's content hash,
    /// or `None` on a non-durable store.
    pub fn checkpoint(&self) -> Option<String> {
        let d = self.durability.as_ref()?;
        Some(d.checkpoint_with(|| self.snapshot()))
    }

    /// Checkpoints when enough WAL records have accumulated; returns
    /// whether a checkpoint was taken.
    pub fn maybe_checkpoint(&self) -> bool {
        match &self.durability {
            Some(d) if d.should_checkpoint() => {
                d.checkpoint_with(|| self.snapshot());
                true
            }
            _ => false,
        }
    }

    /// Simulates a store crash: the in-memory catalog (records, name
    /// map, every secondary index) is wiped and an in-flight, never-
    /// acked WAL frame is torn. Subscribers survive — they model the
    /// restarted process re-registering its triggers, not durable
    /// state. Call [`ProjectStore::recover`] to rebuild.
    pub fn crash(&self, seed: u64) {
        if let Some(d) = &self.durability {
            d.crash_torn(seed);
        }
        let mut st = self.state.write();
        st.records.clear();
        st.by_name.clear();
        for idx in st.field_indexes.values_mut() {
            *idx = FieldIndex::new();
        }
        st.tag_index = TagIndex::new();
    }

    /// Rebuilds the catalog from the durable store: installs the latest
    /// verified checkpoint, then replays the committed WAL suffix
    /// idempotently. A store without durability returns zeroed stats.
    pub fn recover(&self) -> MetaRecoveryStats {
        let Some(d) = &self.durability else {
            return MetaRecoveryStats::default();
        };
        let recovered = d.recover();
        let mut stats = MetaRecoveryStats {
            torn_tails: recovered.torn_tails,
            ..MetaRecoveryStats::default()
        };
        if let Some(snap) = recovered.snapshot.as_deref().and_then(MetaSnapshot::decode) {
            stats.snapshot_loaded = true;
            self.install_snapshot(snap);
        }
        for payload in &recovered.records {
            match MetaWalRecord::decode(payload) {
                Some(rec) => {
                    if self.apply_record(rec) {
                        stats.replayed += 1;
                    } else {
                        stats.skipped += 1;
                    }
                }
                None => stats.skipped += 1,
            }
        }
        d.note_skipped(stats.skipped);
        stats
    }

    /// Installs a checkpoint snapshot, rebuilding every derived
    /// structure (name map, field indexes, tag index) from the records.
    fn install_snapshot(&self, snap: MetaSnapshot) {
        let mut st = self.state.write();
        st.by_name.clear();
        for idx in st.field_indexes.values_mut() {
            *idx = FieldIndex::new();
        }
        st.tag_index = TagIndex::new();
        st.records = snap.records;
        let StoreState { records, by_name, field_indexes, tag_index, .. } = &mut *st;
        for r in records.iter() {
            by_name.insert(r.name.clone(), r.id);
            for (field, idx) in field_indexes.iter_mut() {
                if let Some(v) = r.basic.get(field) {
                    idx.insert(v, r.id);
                }
            }
            for t in &r.tags {
                tag_index.insert(t, r.id);
            }
        }
    }

    /// Applies one replayed WAL record; `false` when its effect is
    /// already present (idempotent skip). Replay emits no events: the
    /// recovered catalog is a reconstruction, not new activity.
    fn apply_record(&self, rec: MetaWalRecord) -> bool {
        let mut st = self.state.write();
        match rec {
            MetaWalRecord::Insert { name, location, size_bytes, checksum_hex, basic } => {
                if st.by_name.contains_key(&name) {
                    return false;
                }
                let id = DatasetId(st.records.len() as u64);
                for (field, idx) in st.field_indexes.iter_mut() {
                    if let Some(v) = basic.get(field) {
                        idx.insert(v, id);
                    }
                }
                st.by_name.insert(name.clone(), id);
                st.records.push(DatasetRecord {
                    id,
                    name,
                    location,
                    size_bytes,
                    checksum_hex,
                    basic,
                    processing: Vec::new(),
                    tags: Default::default(),
                });
                true
            }
            MetaWalRecord::Tag { id, tag } => {
                let Some(rec) = st.records.get_mut(id.0 as usize) else {
                    return false;
                };
                let added = rec.tags.insert(tag.clone());
                if added {
                    st.tag_index.insert(&tag, id);
                }
                added
            }
            MetaWalRecord::Untag { id, tag } => {
                let Some(rec) = st.records.get_mut(id.0 as usize) else {
                    return false;
                };
                let removed = rec.tags.remove(&tag);
                if removed {
                    st.tag_index.remove(&tag, id);
                }
                removed
            }
            MetaWalRecord::AppendProcessing { id, step, params, results, derived_keys, seq } => {
                let Some(rec) = st.records.get_mut(id.0 as usize) else {
                    return false;
                };
                if rec.processing.len() as u32 >= seq {
                    return false;
                }
                rec.processing.push(ProcessingResult { step, params, results, derived_keys, seq });
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{eq, ge, gt, has_tag, le, lt};
    use crate::schema::{zebrafish_schema, SchemaBuilder};
    use crate::value::FieldType;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn zf_doc(fish: i64, idx: i64, wl: f64) -> Document {
        [
            ("fish_id".to_string(), Value::Int(fish)),
            ("image_index".to_string(), Value::Int(idx)),
            ("focus_um".to_string(), Value::Float(10.0)),
            ("wavelength_nm".to_string(), Value::Float(wl)),
            ("well".to_string(), Value::from("A1")),
            ("acquired_at".to_string(), Value::Time(fish * 100 + idx)),
        ]
        .into_iter()
        .collect()
    }

    fn new_ds(name: &str, doc: Document) -> NewDataset {
        NewDataset {
            name: name.to_string(),
            location: format!("lsdf://zebrafish-htm/raw/{name}"),
            size_bytes: 4_000_000,
            checksum_hex: String::new(),
            basic: doc,
        }
    }

    fn store_with(n: usize) -> ProjectStore {
        let store = ProjectStore::new(zebrafish_schema());
        for i in 0..n {
            let wl = if i % 2 == 0 { 488.0 } else { 561.0 };
            store
                .insert(new_ds(&format!("img-{i:05}"), zf_doc((i / 24) as i64, (i % 24) as i64, wl)))
                .unwrap();
        }
        store
    }

    #[test]
    fn insert_validates_schema() {
        let store = ProjectStore::new(zebrafish_schema());
        let bad = NewDataset {
            name: "x".into(),
            location: String::new(),
            size_bytes: 0,
            checksum_hex: String::new(),
            basic: Document::new(),
        };
        assert!(matches!(store.insert(bad), Err(MetadataError::Schema(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let store = ProjectStore::new(zebrafish_schema());
        store.insert(new_ds("a", zf_doc(1, 1, 488.0))).unwrap();
        assert_eq!(
            store.insert(new_ds("a", zf_doc(1, 2, 488.0))),
            Err(MetadataError::DuplicateName("a".into()))
        );
    }

    #[test]
    fn basic_metadata_is_worm() {
        let store = ProjectStore::new(zebrafish_schema());
        let id = store.insert(new_ds("a", zf_doc(1, 1, 488.0))).unwrap();
        assert_eq!(
            store.update_basic(id, Document::new()),
            Err(MetadataError::WormViolation(id))
        );
        assert_eq!(
            store.update_basic(DatasetId(99), Document::new()),
            Err(MetadataError::NotFound(DatasetId(99)))
        );
    }

    #[test]
    fn processing_results_append_with_monotone_seq() {
        let store = ProjectStore::new(zebrafish_schema());
        let id = store.insert(new_ds("a", zf_doc(1, 1, 488.0))).unwrap();
        let s1 = store
            .append_processing(id, "segmentation", Document::new(), Document::new(), vec![])
            .unwrap();
        let s2 = store
            .append_processing(id, "segmentation", Document::new(), Document::new(), vec![])
            .unwrap();
        assert_eq!((s1, s2), (1, 2));
        let rec = store.get(id).unwrap();
        assert_eq!(rec.processing.len(), 2);
        assert_eq!(rec.latest_processing("segmentation").unwrap().seq, 2);
    }

    #[test]
    fn indexed_equality_query_scans_only_matches() {
        let store = store_with(480); // 20 fish * 24 images
        let hits = store.query(&eq("fish_id", 7i64));
        assert_eq!(hits.len(), 24);
        let (_q, scanned) = store.query_stats();
        assert_eq!(scanned, 24, "index should avoid a full scan");
    }

    #[test]
    fn range_query_uses_ordered_index() {
        let store = store_with(480);
        let hits = store.query(&ge("wavelength_nm", 500.0));
        assert_eq!(hits.len(), 240);
        let (_, scanned) = store.query_stats();
        assert_eq!(scanned, 240);
        // lt/le/gt variants also behave.
        assert_eq!(store.query(&lt("wavelength_nm", 500.0)).len(), 240);
        assert_eq!(store.query(&le("wavelength_nm", 488.0)).len(), 240);
        assert_eq!(store.query(&gt("wavelength_nm", 488.0)).len(), 240);
    }

    #[test]
    fn unindexed_query_full_scans_but_is_correct() {
        let store = store_with(48);
        let hits = store.query(&eq("well", "A1"));
        assert_eq!(hits.len(), 48);
        let (_, scanned) = store.query_stats();
        assert_eq!(scanned, 48);
    }

    #[test]
    fn conjunction_narrows_via_cheaper_index() {
        let store = store_with(480);
        let hits = store.query(&eq("fish_id", 3i64).and(eq("wavelength_nm", 488.0)));
        assert_eq!(hits.len(), 12);
        let (_, scanned) = store.query_stats();
        assert!(scanned <= 24, "scanned {scanned}, expected <= 24");
    }

    #[test]
    fn tags_query_and_events_fire() {
        let store = store_with(10);
        let tag_events = Arc::new(AtomicUsize::new(0));
        {
            let c = tag_events.clone();
            store.subscribe(Arc::new(move |ev| {
                if matches!(ev, MetadataEvent::Tagged { .. }) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        store.tag(DatasetId(1), "needs-processing").unwrap();
        store.tag(DatasetId(1), "needs-processing").unwrap(); // idempotent
        store.tag(DatasetId(4), "needs-processing").unwrap();
        assert_eq!(tag_events.load(Ordering::Relaxed), 2);
        let hits = store.query(&has_tag("needs-processing"));
        assert_eq!(hits.len(), 2);
        store.untag(DatasetId(1), "needs-processing").unwrap();
        assert_eq!(store.ids_with_tag("needs-processing"), vec![DatasetId(4)]);
    }

    #[test]
    fn insert_event_fires() {
        let store = ProjectStore::new(zebrafish_schema());
        let events = Arc::new(AtomicUsize::new(0));
        {
            let c = events.clone();
            store.subscribe(Arc::new(move |ev| {
                if matches!(ev, MetadataEvent::Inserted { .. }) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        store.insert(new_ds("a", zf_doc(1, 1, 488.0))).unwrap();
        store.insert(new_ds("b", zf_doc(1, 2, 488.0))).unwrap();
        assert_eq!(events.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn get_by_name_and_field_of() {
        let store = store_with(5);
        let rec = store.get_by_name("img-00003").unwrap();
        assert_eq!(rec.id, DatasetId(3));
        assert_eq!(store.field_of(rec.id, "fish_id"), Some(Value::Int(0)));
        assert!(store.get_by_name("nope").is_none());
    }

    #[test]
    fn total_bytes_sums_sizes() {
        let store = store_with(10);
        assert_eq!(store.total_bytes(), 40_000_000);
    }

    #[test]
    fn or_query_merges_indexes() {
        let store = store_with(480);
        let hits = store.query(&eq("fish_id", 1i64).or(eq("fish_id", 2i64)));
        assert_eq!(hits.len(), 48);
        let (_, scanned) = store.query_stats();
        assert_eq!(scanned, 48);
    }

    fn durable_store(
        store: &lsdf_durability::DurableStore,
        checkpoint_every: u64,
    ) -> ProjectStore {
        let reg = Arc::new(lsdf_obs::Registry::new());
        let cfg = lsdf_durability::DurabilityConfig {
            checkpoint_every,
            ..lsdf_durability::DurabilityConfig::default()
        };
        ProjectStore::with_durability(
            zebrafish_schema(),
            Some(lsdf_durability::ComponentDurability::open(
                store,
                "meta-zebrafish",
                &reg,
                &cfg,
            )),
        )
    }

    #[test]
    fn crash_recover_is_bit_identical() {
        let disk = lsdf_durability::DurableStore::new();
        let store = durable_store(&disk, 3);
        for i in 0..3 {
            store
                .insert(new_ds(&format!("img-{i:05}"), zf_doc(i, 0, 488.0)))
                .unwrap();
        }
        assert!(store.maybe_checkpoint(), "threshold reached");
        store.tag(DatasetId(0), "needs-processing").unwrap();
        store
            .append_processing(
                DatasetId(1),
                "segmentation",
                Document::new(),
                [("cells".to_string(), Value::Int(42))].into_iter().collect(),
                vec!["seg/img-00001".into()],
            )
            .unwrap();
        store.tag(DatasetId(2), "raw").unwrap();
        store.untag(DatasetId(2), "raw").unwrap();
        let digest = store.catalog_digest();
        let all_before = store.all();

        store.crash(99);
        assert!(store.is_empty(), "volatile catalog wiped");
        let stats = store.recover();
        assert!(stats.snapshot_loaded);
        assert!(stats.torn_tails >= 1, "crash tears an in-flight frame");
        assert_eq!(store.catalog_digest(), digest);
        assert_eq!(store.all(), all_before);
        // Derived structures are rebuilt, not just the records: the
        // name map, tag index, and field indexes all answer correctly.
        assert_eq!(store.get_by_name("img-00001").unwrap().id, DatasetId(1));
        assert_eq!(store.ids_with_tag("needs-processing"), vec![DatasetId(0)]);
        assert!(store.ids_with_tag("raw").is_empty());
        let hits = store.query(&eq("fish_id", 1i64));
        assert_eq!(hits.len(), 1);
        let (_, scanned) = store.query_stats();
        assert_eq!(scanned, 1, "field index answers after recovery");
    }

    #[test]
    fn replay_without_checkpoint_reassigns_dense_ids() {
        let disk = lsdf_durability::DurableStore::new();
        let store = durable_store(&disk, 1_000);
        let a = store.insert(new_ds("a", zf_doc(1, 0, 488.0))).unwrap();
        let b = store.insert(new_ds("b", zf_doc(2, 0, 561.0))).unwrap();
        store.crash(5);
        let stats = store.recover();
        assert!(!stats.snapshot_loaded);
        assert_eq!(stats.replayed, 2);
        assert_eq!(store.get_by_name("a").unwrap().id, a);
        assert_eq!(store.get_by_name("b").unwrap().id, b);
        // The next insert continues the dense id sequence.
        let c = store.insert(new_ds("c", zf_doc(3, 0, 488.0))).unwrap();
        assert_eq!(c, DatasetId(2));
    }

    #[test]
    fn processing_seq_replay_is_idempotent_across_checkpoint_race() {
        let disk = lsdf_durability::DurableStore::new();
        let store = durable_store(&disk, 1_000);
        let id = store.insert(new_ds("a", zf_doc(1, 0, 488.0))).unwrap();
        store
            .append_processing(id, "seg", Document::new(), Document::new(), vec![])
            .unwrap();
        // Checkpoint captures the processing result; its WAL record is
        // gone (truncated), but a second result lands in the new segment.
        store.checkpoint().unwrap();
        store
            .append_processing(id, "seg", Document::new(), Document::new(), vec![])
            .unwrap();
        let digest = store.catalog_digest();
        store.crash(11);
        let stats = store.recover();
        assert!(stats.snapshot_loaded);
        assert_eq!(store.catalog_digest(), digest);
        assert_eq!(store.get(id).unwrap().processing.len(), 2);
        assert_eq!(store.get(id).unwrap().latest_processing("seg").unwrap().seq, 2);
    }

    #[test]
    fn non_durable_store_recovery_is_a_no_op() {
        let store = store_with(2);
        assert!(!store.is_durable());
        assert_eq!(store.wal_records_since_checkpoint(), 0);
        assert_eq!(store.checkpoint(), None);
        assert!(!store.maybe_checkpoint());
        assert_eq!(store.recover(), MetaRecoveryStats::default());
        assert_eq!(store.len(), 2, "recover leaves a non-durable store alone");
    }

    #[test]
    fn unknown_schema_fields_still_queryable_against_missing() {
        // Query on a field no record carries: matches nothing, no panic.
        let schema = SchemaBuilder::new("t")
            .required("a", FieldType::Int)
            .build()
            .unwrap();
        let store = ProjectStore::new(schema);
        store
            .insert(NewDataset {
                name: "x".into(),
                location: String::new(),
                size_bytes: 1,
                checksum_hex: String::new(),
                basic: [("a".to_string(), Value::Int(1))].into_iter().collect(),
            })
            .unwrap();
        assert!(store.query(&eq("zzz", 1i64)).is_empty());
    }
}
