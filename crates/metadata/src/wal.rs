//! Metadata-store WAL records and the canonical catalog snapshot codec.
//!
//! Every catalog mutation the store acks (dataset registration, tag,
//! untag, appended processing result) is first committed to its
//! [`lsdf_durability::DurableLog`]; checkpoints serialize the full
//! record vector with the canonical [`lsdf_durability::codec`] so that
//! replaying WAL over the latest checkpoint reconstructs a bit-identical
//! catalog. Secondary structures (name map, field indexes, tag index)
//! are derived state and are rebuilt from the records on install.
//!
//! Replay is idempotent: an `Insert` whose name is already registered,
//! a `Tag`/`Untag` whose effect is present, or an `AppendProcessing`
//! whose sequence number the record already holds are all skipped, so a
//! crash at any point of the checkpoint sequence (segment rotation vs
//! snapshot capture) is safe. Dataset ids are dense insertion indexes,
//! so replaying inserts in log order reassigns the original ids.

use std::collections::BTreeSet;

use crate::record::{DatasetId, DatasetRecord, ProcessingResult};
use crate::schema::Document;
use crate::value::Value;
use lsdf_durability::{Dec, Enc};

const VALUE_STR: u8 = 0;
const VALUE_INT: u8 = 1;
const VALUE_FLOAT: u8 = 2;
const VALUE_BOOL: u8 = 3;
const VALUE_TIME: u8 = 4;

fn enc_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Str(s) => {
            e.u8(VALUE_STR);
            e.str(s);
        }
        Value::Int(i) => {
            e.u8(VALUE_INT);
            e.i64(*i);
        }
        Value::Float(x) => {
            e.u8(VALUE_FLOAT);
            e.f64(*x);
        }
        Value::Bool(b) => {
            e.u8(VALUE_BOOL);
            e.u8(u8::from(*b));
        }
        Value::Time(t) => {
            e.u8(VALUE_TIME);
            e.i64(*t);
        }
    }
}

fn dec_value(d: &mut Dec<'_>) -> Option<Value> {
    Some(match d.u8()? {
        VALUE_STR => Value::Str(d.str()?),
        VALUE_INT => Value::Int(d.i64()?),
        VALUE_FLOAT => Value::Float(d.f64()?),
        VALUE_BOOL => Value::Bool(match d.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        }),
        VALUE_TIME => Value::Time(d.i64()?),
        _ => return None,
    })
}

/// Documents are `BTreeMap`s, so iteration (and therefore the encoding)
/// is already canonical: same document ⇒ same bytes.
fn enc_doc(e: &mut Enc, doc: &Document) {
    e.u32(doc.len() as u32);
    for (k, v) in doc {
        e.str(k);
        enc_value(e, v);
    }
}

fn dec_doc(d: &mut Dec<'_>) -> Option<Document> {
    let n = d.u32()? as usize;
    let mut doc = Document::new();
    for _ in 0..n {
        let k = d.str()?;
        let v = dec_value(d)?;
        doc.insert(k, v);
    }
    Some(doc)
}

fn enc_strs(e: &mut Enc, strs: &[String]) {
    e.u32(strs.len() as u32);
    for s in strs {
        e.str(s);
    }
}

fn dec_strs(d: &mut Dec<'_>) -> Option<Vec<String>> {
    let n = d.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(d.str()?);
    }
    Some(out)
}

const TAG_INSERT: u8 = 1;
const TAG_TAG: u8 = 2;
const TAG_UNTAG: u8 = 3;
const TAG_APPEND_PROCESSING: u8 = 4;

/// A logged catalog mutation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum MetaWalRecord {
    /// A dataset registration. The id is not logged: ids are dense
    /// insertion indexes, so log order reassigns the original id.
    Insert {
        name: String,
        location: String,
        size_bytes: u64,
        checksum_hex: String,
        basic: Document,
    },
    /// First addition of a tag to a dataset.
    Tag { id: DatasetId, tag: String },
    /// Removal of a present tag from a dataset.
    Untag { id: DatasetId, tag: String },
    /// An appended processing-result set with its sequence number.
    AppendProcessing {
        id: DatasetId,
        step: String,
        params: Document,
        results: Document,
        derived_keys: Vec<String>,
        seq: u32,
    },
}

impl MetaWalRecord {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            MetaWalRecord::Insert { name, location, size_bytes, checksum_hex, basic } => {
                e.u8(TAG_INSERT);
                e.str(name);
                e.str(location);
                e.u64(*size_bytes);
                e.str(checksum_hex);
                enc_doc(&mut e, basic);
            }
            MetaWalRecord::Tag { id, tag } => {
                e.u8(TAG_TAG);
                e.u64(id.0);
                e.str(tag);
            }
            MetaWalRecord::Untag { id, tag } => {
                e.u8(TAG_UNTAG);
                e.u64(id.0);
                e.str(tag);
            }
            MetaWalRecord::AppendProcessing { id, step, params, results, derived_keys, seq } => {
                e.u8(TAG_APPEND_PROCESSING);
                e.u64(id.0);
                e.str(step);
                enc_doc(&mut e, params);
                enc_doc(&mut e, results);
                enc_strs(&mut e, derived_keys);
                e.u32(*seq);
            }
        }
        e.finish()
    }

    /// Decodes a record; `None` on any malformed payload (recovery
    /// treats that as a skipped record, never a panic).
    pub(crate) fn decode(bytes: &[u8]) -> Option<Self> {
        let mut d = Dec::new(bytes);
        let rec = match d.u8()? {
            TAG_INSERT => MetaWalRecord::Insert {
                name: d.str()?,
                location: d.str()?,
                size_bytes: d.u64()?,
                checksum_hex: d.str()?,
                basic: dec_doc(&mut d)?,
            },
            TAG_TAG => MetaWalRecord::Tag { id: DatasetId(d.u64()?), tag: d.str()? },
            TAG_UNTAG => MetaWalRecord::Untag { id: DatasetId(d.u64()?), tag: d.str()? },
            TAG_APPEND_PROCESSING => MetaWalRecord::AppendProcessing {
                id: DatasetId(d.u64()?),
                step: d.str()?,
                params: dec_doc(&mut d)?,
                results: dec_doc(&mut d)?,
                derived_keys: dec_strs(&mut d)?,
                seq: d.u32()?,
            },
            _ => return None,
        };
        d.at_end().then_some(rec)
    }
}

fn enc_record(e: &mut Enc, r: &DatasetRecord) {
    e.u64(r.id.0);
    e.str(&r.name);
    e.str(&r.location);
    e.u64(r.size_bytes);
    e.str(&r.checksum_hex);
    enc_doc(e, &r.basic);
    e.u32(r.processing.len() as u32);
    for p in &r.processing {
        e.str(&p.step);
        enc_doc(e, &p.params);
        enc_doc(e, &p.results);
        enc_strs(e, &p.derived_keys);
        e.u32(p.seq);
    }
    e.u32(r.tags.len() as u32);
    for t in &r.tags {
        e.str(t);
    }
}

fn dec_record(d: &mut Dec<'_>) -> Option<DatasetRecord> {
    let id = DatasetId(d.u64()?);
    let name = d.str()?;
    let location = d.str()?;
    let size_bytes = d.u64()?;
    let checksum_hex = d.str()?;
    let basic = dec_doc(d)?;
    let n_proc = d.u32()? as usize;
    let mut processing = Vec::with_capacity(n_proc.min(1024));
    for _ in 0..n_proc {
        processing.push(ProcessingResult {
            step: d.str()?,
            params: dec_doc(d)?,
            results: dec_doc(d)?,
            derived_keys: dec_strs(d)?,
            seq: d.u32()?,
        });
    }
    let n_tags = d.u32()? as usize;
    let mut tags = BTreeSet::new();
    for _ in 0..n_tags {
        tags.insert(d.str()?);
    }
    Some(DatasetRecord {
        id,
        name,
        location,
        size_bytes,
        checksum_hex,
        basic,
        processing,
        tags,
    })
}

/// Canonical full-catalog snapshot (checkpoint payload and the
/// catalog-digest witness): the record vector in id order. Documents
/// are `BTreeMap`s and tags are `BTreeSet`s, so the bytes are fully
/// canonical: same logical catalog ⇒ same bytes ⇒ same SHA-256.
#[derive(Debug, Default, PartialEq)]
pub(crate) struct MetaSnapshot {
    pub records: Vec<DatasetRecord>,
}

impl MetaSnapshot {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.records.len() as u64);
        for r in &self.records {
            enc_record(&mut e, r);
        }
        e.finish()
    }

    pub(crate) fn decode(bytes: &[u8]) -> Option<Self> {
        let mut d = Dec::new(bytes);
        let n = d.u64()? as usize;
        let mut records = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            records.push(dec_record(&mut d)?);
        }
        d.at_end().then_some(MetaSnapshot { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        [
            ("fish_id".to_string(), Value::Int(7)),
            ("wavelength_nm".to_string(), Value::Float(488.0)),
            ("well".to_string(), Value::from("A1")),
            ("valid".to_string(), Value::Bool(true)),
            ("acquired_at".to_string(), Value::Time(1234)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn record_roundtrip() {
        let records = vec![
            MetaWalRecord::Insert {
                name: "img-001".into(),
                location: "lsdf://zebrafish/raw/img-001".into(),
                size_bytes: 4_000_000,
                checksum_hex: "ab12".into(),
                basic: doc(),
            },
            MetaWalRecord::Tag { id: DatasetId(3), tag: "needs-processing".into() },
            MetaWalRecord::Untag { id: DatasetId(3), tag: "needs-processing".into() },
            MetaWalRecord::AppendProcessing {
                id: DatasetId(0),
                step: "segmentation".into(),
                params: doc(),
                results: [("cells".to_string(), Value::Int(120))].into_iter().collect(),
                derived_keys: vec!["seg/img-001".into()],
                seq: 2,
            },
        ];
        for r in records {
            assert_eq!(MetaWalRecord::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn snapshot_roundtrip_and_canonical_bytes() {
        let snap = MetaSnapshot {
            records: vec![DatasetRecord {
                id: DatasetId(0),
                name: "a".into(),
                location: "lsdf://p/a".into(),
                size_bytes: 9,
                checksum_hex: String::new(),
                basic: doc(),
                processing: vec![ProcessingResult {
                    step: "seg".into(),
                    params: Document::new(),
                    results: doc(),
                    derived_keys: vec![],
                    seq: 1,
                }],
                tags: ["raw".to_string()].into_iter().collect(),
            }],
        };
        let bytes = snap.encode();
        assert_eq!(MetaSnapshot::decode(&bytes), Some(snap));
        let reencoded = MetaSnapshot::decode(&bytes).map(|s| s.encode());
        assert_eq!(reencoded.as_deref(), Some(&bytes[..]));
    }

    #[test]
    fn malformed_records_are_rejected_not_panicked() {
        assert_eq!(MetaWalRecord::decode(&[]), None);
        assert_eq!(MetaWalRecord::decode(&[77, 0, 1]), None);
        let mut good = MetaWalRecord::Tag { id: DatasetId(1), tag: "t".into() }.encode();
        good.push(9); // trailing garbage
        assert_eq!(MetaWalRecord::decode(&good), None);
        for cut in 0..good.len() - 1 {
            let _ = MetaWalRecord::decode(&good[..cut]);
        }
        // Bad bool payload and bad value tag inside a document.
        assert_eq!(dec_value(&mut Dec::new(&[VALUE_BOOL, 7])), None);
        assert_eq!(dec_value(&mut Dec::new(&[9])), None);
    }
}
