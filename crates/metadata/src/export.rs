//! JSON export of catalog records — the interchange format the
//! DataBrowser's planned "web GUI" (paper, slide 9) would consume.
//!
//! Hand-rolled writer (~100 lines) rather than a serde format crate, to
//! stay within the workspace's offline dependency set; the output is
//! strict RFC 8259 JSON.

use crate::record::DatasetRecord;
use crate::schema::Document;
use crate::value::Value;

/// Escapes and quotes a string per RFC 8259.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders one metadata value.
pub fn value_to_json(v: &Value) -> String {
    match v {
        Value::Str(s) => json_string(s),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => {
            if x.is_finite() {
                // Keep integral floats distinguishable from ints.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    format!("{x:.1}")
                } else {
                    format!("{x}")
                }
            } else {
                // JSON has no Inf/NaN; schema validation rejects NaN, and
                // infinities become nulls rather than invalid output.
                "null".to_string()
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Time(t) => format!("{{\"time_ns\":{t}}}"),
    }
}

/// Renders a document as a JSON object (keys in BTreeMap order —
/// deterministic output).
pub fn document_to_json(doc: &Document) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in doc.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(k));
        out.push(':');
        out.push_str(&value_to_json(v));
    }
    out.push('}');
    out
}

/// Renders a full dataset record, including processing results and tags.
pub fn record_to_json(rec: &DatasetRecord) -> String {
    let tags: Vec<String> = rec.tags.iter().map(|t| json_string(t)).collect();
    let processing: Vec<String> = rec
        .processing
        .iter()
        .map(|p| {
            let keys: Vec<String> = p.derived_keys.iter().map(|k| json_string(k)).collect();
            format!(
                "{{\"step\":{},\"seq\":{},\"params\":{},\"results\":{},\"derived_keys\":[{}]}}",
                json_string(&p.step),
                p.seq,
                document_to_json(&p.params),
                document_to_json(&p.results),
                keys.join(",")
            )
        })
        .collect();
    format!(
        "{{\"id\":{},\"name\":{},\"location\":{},\"size_bytes\":{},\"checksum\":{},\
         \"basic\":{},\"tags\":[{}],\"processing\":[{}]}}",
        rec.id.0,
        json_string(&rec.name),
        json_string(&rec.location),
        rec.size_bytes,
        json_string(&rec.checksum_hex),
        document_to_json(&rec.basic),
        tags.join(","),
        processing.join(",")
    )
}

/// Renders a result set as a JSON array.
pub fn records_to_json(recs: &[DatasetRecord]) -> String {
    let items: Vec<String> = recs.iter().map(record_to_json).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DatasetId, ProcessingResult};

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("ctrl\u{01}"), "\"ctrl\\u0001\"");
        assert_eq!(json_string("unicode: μ"), "\"unicode: μ\"");
    }

    #[test]
    fn value_rendering() {
        assert_eq!(value_to_json(&Value::Int(-5)), "-5");
        assert_eq!(value_to_json(&Value::Float(1.5)), "1.5");
        assert_eq!(value_to_json(&Value::Float(488.0)), "488.0");
        assert_eq!(value_to_json(&Value::Bool(true)), "true");
        assert_eq!(value_to_json(&Value::from("x")), "\"x\"");
        assert_eq!(value_to_json(&Value::Time(9)), "{\"time_ns\":9}");
        assert_eq!(value_to_json(&Value::Float(f64::INFINITY)), "null");
    }

    #[test]
    fn document_is_deterministic_and_sorted() {
        let doc: Document = [
            ("zeta".to_string(), Value::Int(1)),
            ("alpha".to_string(), Value::from("first")),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            document_to_json(&doc),
            "{\"alpha\":\"first\",\"zeta\":1}"
        );
        assert_eq!(document_to_json(&Document::new()), "{}");
    }

    #[test]
    fn record_rendering_includes_everything() {
        let rec = DatasetRecord {
            id: DatasetId(7),
            name: "img-1".into(),
            location: "lsdf://p/img-1".into(),
            size_bytes: 42,
            checksum_hex: "abcd".into(),
            basic: [("fish".to_string(), Value::Int(3))].into_iter().collect(),
            processing: vec![ProcessingResult {
                step: "seg".into(),
                params: Document::new(),
                results: [("cells".to_string(), Value::Int(12))].into_iter().collect(),
                derived_keys: vec!["out/mask-1".into()],
                seq: 1,
            }],
            tags: ["raw".to_string()].into_iter().collect(),
        };
        let json = record_to_json(&rec);
        assert!(json.starts_with("{\"id\":7,\"name\":\"img-1\""));
        assert!(json.contains("\"basic\":{\"fish\":3}"));
        assert!(json.contains("\"tags\":[\"raw\"]"));
        assert!(json.contains(
            "\"processing\":[{\"step\":\"seg\",\"seq\":1,\"params\":{},\
             \"results\":{\"cells\":12},\"derived_keys\":[\"out/mask-1\"]}]"
        ));
        // Array form.
        let arr = records_to_json(&[rec.clone(), rec]);
        assert!(arr.starts_with('['));
        assert_eq!(arr.matches("\"id\":7").count(), 2);
    }
}
