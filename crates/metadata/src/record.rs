//! Dataset records: the paper's slide-8 data model.
//!
//! Each experiment dataset has **write-once basic metadata** plus any
//! number of appended **processing-result metadata sets** ("METADATA 1..N"
//! in the paper's diagram: basic metadata + processing X parameters +
//! results X). Tags drive the workflow-trigger mechanism of slide 12.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::schema::Document;

/// Identifies a dataset within one project store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DatasetId(pub u64);

/// One processing run's metadata, appended to a dataset after a workflow
/// or analysis job completes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessingResult {
    /// Name of the processing step (e.g. `"segmentation-v2"`).
    pub step: String,
    /// Parameters the step ran with.
    pub params: Document,
    /// Result metadata produced by the step.
    pub results: Document,
    /// Storage keys of derived data products written by the step.
    pub derived_keys: Vec<String>,
    /// Monotone sequence number within the dataset (1-based).
    pub seq: u32,
}

/// A dataset record: WORM basic metadata + appended processing results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetRecord {
    /// Record id within the project store.
    pub id: DatasetId,
    /// Unique dataset name (usually the primary storage key).
    pub name: String,
    /// Storage location (ADAL path) of the primary data object.
    pub location: String,
    /// Payload size in bytes.
    pub size_bytes: u64,
    /// Hex SHA-256 of the payload (empty when unknown).
    pub checksum_hex: String,
    /// Write-once experiment metadata, schema-validated at insert.
    pub basic: Document,
    /// Appended processing-result sets (the paper's METADATA 1..N).
    pub processing: Vec<ProcessingResult>,
    /// Free-form tags; drive workflow triggering.
    pub tags: BTreeSet<String>,
}

impl DatasetRecord {
    /// The latest processing result for a given step name, if any.
    pub fn latest_processing(&self, step: &str) -> Option<&ProcessingResult> {
        self.processing.iter().rev().find(|p| p.step == step)
    }

    /// True if the record carries the tag.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.contains(tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn record() -> DatasetRecord {
        DatasetRecord {
            id: DatasetId(1),
            name: "img-001".into(),
            location: "lsdf://zebrafish/raw/img-001".into(),
            size_bytes: 4_000_000,
            checksum_hex: String::new(),
            basic: Document::new(),
            processing: vec![
                ProcessingResult {
                    step: "segmentation".into(),
                    params: Document::new(),
                    results: [("cells".to_string(), Value::Int(120))].into_iter().collect(),
                    derived_keys: vec![],
                    seq: 1,
                },
                ProcessingResult {
                    step: "segmentation".into(),
                    params: Document::new(),
                    results: [("cells".to_string(), Value::Int(131))].into_iter().collect(),
                    derived_keys: vec![],
                    seq: 2,
                },
            ],
            tags: ["raw".to_string()].into_iter().collect(),
        }
    }

    #[test]
    fn latest_processing_picks_highest_seq() {
        let r = record();
        let p = r.latest_processing("segmentation").unwrap();
        assert_eq!(p.seq, 2);
        assert_eq!(p.results.get("cells"), Some(&Value::Int(131)));
        assert!(r.latest_processing("missing").is_none());
    }

    #[test]
    fn tags_query() {
        let r = record();
        assert!(r.has_tag("raw"));
        assert!(!r.has_tag("processed"));
    }
}
