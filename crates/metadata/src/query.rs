//! The query language of the DataBrowser: typed field predicates over
//! basic metadata, tag membership, and boolean combinators.
//!
//! Construction is ergonomic through the free functions ([`eq`], [`lt`],
//! [`has_tag`], …) and the [`Predicate::and`]/[`Predicate::or`] methods.

use crate::record::DatasetRecord;
use crate::value::Value;

/// A query predicate over dataset records.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches every record.
    All,
    /// Field equals value.
    Eq(String, Value),
    /// Field differs from value (missing fields do not match).
    Ne(String, Value),
    /// Field strictly less than value.
    Lt(String, Value),
    /// Field less than or equal to value.
    Le(String, Value),
    /// Field strictly greater than value.
    Gt(String, Value),
    /// Field greater than or equal to value.
    Ge(String, Value),
    /// String field contains the substring.
    Contains(String, String),
    /// Record carries the tag.
    HasTag(String),
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// Sub-predicate does not hold.
    Not(Box<Predicate>),
}

/// `field == value`.
pub fn eq(field: &str, value: impl Into<Value>) -> Predicate {
    Predicate::Eq(field.to_string(), value.into())
}
/// `field != value`.
pub fn ne(field: &str, value: impl Into<Value>) -> Predicate {
    Predicate::Ne(field.to_string(), value.into())
}
/// `field < value`.
pub fn lt(field: &str, value: impl Into<Value>) -> Predicate {
    Predicate::Lt(field.to_string(), value.into())
}
/// `field <= value`.
pub fn le(field: &str, value: impl Into<Value>) -> Predicate {
    Predicate::Le(field.to_string(), value.into())
}
/// `field > value`.
pub fn gt(field: &str, value: impl Into<Value>) -> Predicate {
    Predicate::Gt(field.to_string(), value.into())
}
/// `field >= value`.
pub fn ge(field: &str, value: impl Into<Value>) -> Predicate {
    Predicate::Ge(field.to_string(), value.into())
}
/// String field contains substring.
pub fn contains(field: &str, needle: &str) -> Predicate {
    Predicate::Contains(field.to_string(), needle.to_string())
}
/// Record carries tag.
pub fn has_tag(tag: &str) -> Predicate {
    Predicate::HasTag(tag.to_string())
}

impl Predicate {
    /// Conjunction.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates against one record (full-scan fallback path).
    pub fn matches(&self, rec: &DatasetRecord) -> bool {
        use std::cmp::Ordering::*;
        let cmp = |field: &str, value: &Value| -> Option<std::cmp::Ordering> {
            rec.basic.get(field).and_then(|v| v.partial_cmp_typed(value))
        };
        match self {
            Predicate::All => true,
            Predicate::Eq(f, v) => cmp(f, v) == Some(Equal),
            Predicate::Ne(f, v) => matches!(cmp(f, v), Some(Less) | Some(Greater)),
            Predicate::Lt(f, v) => cmp(f, v) == Some(Less),
            Predicate::Le(f, v) => matches!(cmp(f, v), Some(Less) | Some(Equal)),
            Predicate::Gt(f, v) => cmp(f, v) == Some(Greater),
            Predicate::Ge(f, v) => matches!(cmp(f, v), Some(Greater) | Some(Equal)),
            Predicate::Contains(f, needle) => matches!(
                rec.basic.get(f),
                Some(Value::Str(s)) if s.contains(needle.as_str())
            ),
            Predicate::HasTag(t) => rec.has_tag(t),
            Predicate::And(a, b) => a.matches(rec) && b.matches(rec),
            Predicate::Or(a, b) => a.matches(rec) || b.matches(rec),
            Predicate::Not(p) => !p.matches(rec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DatasetId;
    use crate::schema::Document;

    fn rec(pairs: &[(&str, Value)], tags: &[&str]) -> DatasetRecord {
        DatasetRecord {
            id: DatasetId(0),
            name: "r".into(),
            location: String::new(),
            size_bytes: 0,
            checksum_hex: String::new(),
            basic: pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect::<Document>(),
            processing: vec![],
            tags: tags.iter().map(|t| t.to_string()).collect(),
        }
    }

    #[test]
    fn comparisons() {
        let r = rec(&[("x", Value::Int(5)), ("s", Value::from("hello"))], &[]);
        assert!(eq("x", 5i64).matches(&r));
        assert!(!eq("x", 6i64).matches(&r));
        assert!(ne("x", 6i64).matches(&r));
        assert!(lt("x", 6i64).matches(&r));
        assert!(le("x", 5i64).matches(&r));
        assert!(gt("x", 4i64).matches(&r));
        assert!(ge("x", 5i64).matches(&r));
        assert!(contains("s", "ell").matches(&r));
        assert!(!contains("s", "xyz").matches(&r));
    }

    #[test]
    fn missing_field_never_matches_even_negated_comparisons() {
        let r = rec(&[], &[]);
        assert!(!eq("x", 1i64).matches(&r));
        assert!(!ne("x", 1i64).matches(&r), "Ne on missing field is false");
        assert!(!lt("x", 1i64).matches(&r));
    }

    #[test]
    fn type_mismatch_never_matches() {
        let r = rec(&[("x", Value::from("five"))], &[]);
        assert!(!eq("x", 5i64).matches(&r));
        assert!(!ne("x", 5i64).matches(&r));
    }

    #[test]
    fn boolean_combinators() {
        let r = rec(&[("x", Value::Int(5))], &["raw"]);
        assert!(eq("x", 5i64).and(has_tag("raw")).matches(&r));
        assert!(!eq("x", 5i64).and(has_tag("cooked")).matches(&r));
        assert!(eq("x", 9i64).or(has_tag("raw")).matches(&r));
        assert!(has_tag("cooked").not().matches(&r));
        assert!(Predicate::All.matches(&r));
    }
}
