//! Secondary indexes over dataset basic-metadata fields.
//!
//! Two kinds: a hash index for equality lookups and an ordered index (over
//! order-preserving byte keys) for ranges. Both map to posting lists of
//! [`DatasetId`]s and are maintained incrementally on insert.

use std::collections::{BTreeMap, HashMap};

use crate::record::DatasetId;
use crate::value::Value;

/// An equality + range index over one field.
#[derive(Debug, Default)]
pub struct FieldIndex {
    /// value hash → ids (equality).
    eq: HashMap<Vec<u8>, Vec<DatasetId>>,
    /// order key → ids (ranges).
    ord: BTreeMap<Vec<u8>, Vec<DatasetId>>,
    entries: u64,
}

impl FieldIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one posting.
    pub fn insert(&mut self, value: &Value, id: DatasetId) {
        let key = value.order_key();
        self.eq.entry(key.clone()).or_default().push(id);
        self.ord.entry(key).or_default().push(id);
        self.entries += 1;
    }

    /// Ids with exactly this value.
    pub fn lookup_eq(&self, value: &Value) -> Vec<DatasetId> {
        self.eq
            .get(&value.order_key())
            .cloned()
            .unwrap_or_default()
    }

    /// Ids with values in the half-open range `[lo, hi)`; either bound may
    /// be `None` for unbounded. Both bounds must be of the same type as
    /// the indexed values for meaningful results (guaranteed by schema
    /// validation upstream).
    pub fn lookup_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<DatasetId> {
        use std::ops::Bound;
        let lo_b = match lo {
            Some(v) => Bound::Included(v.order_key()),
            None => Bound::Unbounded,
        };
        let hi_b = match hi {
            Some(v) => Bound::Excluded(v.order_key()),
            None => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for ids in self.ord.range((lo_b, hi_b)).map(|(_, v)| v) {
            out.extend_from_slice(ids);
        }
        out
    }

    /// Total postings.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True when the index holds no postings.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

/// Tag → ids posting lists.
#[derive(Debug, Default)]
pub struct TagIndex {
    postings: HashMap<String, Vec<DatasetId>>,
}

impl TagIndex {
    /// An empty tag index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `id` carries `tag`.
    pub fn insert(&mut self, tag: &str, id: DatasetId) {
        let ids = self.postings.entry(tag.to_string()).or_default();
        // Keep posting lists duplicate-free (re-tagging is idempotent).
        if ids.last() != Some(&id) && !ids.contains(&id) {
            ids.push(id);
        }
    }

    /// Removes a tag posting.
    pub fn remove(&mut self, tag: &str, id: DatasetId) {
        if let Some(ids) = self.postings.get_mut(tag) {
            ids.retain(|&x| x != id);
            if ids.is_empty() {
                self.postings.remove(tag);
            }
        }
    }

    /// Ids carrying the tag.
    pub fn lookup(&self, tag: &str) -> Vec<DatasetId> {
        self.postings.get(tag).cloned().unwrap_or_default()
    }

    /// All known tags.
    pub fn tags(&self) -> Vec<String> {
        let mut t: Vec<String> = self.postings.keys().cloned().collect();
        t.sort_unstable();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> DatasetId {
        DatasetId(n)
    }

    #[test]
    fn eq_lookup_finds_all_postings() {
        let mut idx = FieldIndex::new();
        idx.insert(&Value::Int(5), id(1));
        idx.insert(&Value::Int(5), id(2));
        idx.insert(&Value::Int(6), id(3));
        assert_eq!(idx.lookup_eq(&Value::Int(5)), vec![id(1), id(2)]);
        assert_eq!(idx.lookup_eq(&Value::Int(7)), Vec::<DatasetId>::new());
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn range_lookup_over_floats() {
        let mut idx = FieldIndex::new();
        for (i, x) in [-2.0, -0.5, 0.0, 1.5, 3.0, 10.0].iter().enumerate() {
            idx.insert(&Value::Float(*x), id(i as u64));
        }
        let got = idx.lookup_range(Some(&Value::Float(-1.0)), Some(&Value::Float(3.0)));
        assert_eq!(got, vec![id(1), id(2), id(3)]);
        // Unbounded below.
        let got = idx.lookup_range(None, Some(&Value::Float(0.0)));
        assert_eq!(got, vec![id(0), id(1)]);
        // Unbounded above includes hi values.
        let got = idx.lookup_range(Some(&Value::Float(3.0)), None);
        assert_eq!(got, vec![id(4), id(5)]);
    }

    #[test]
    fn range_lookup_over_strings() {
        let mut idx = FieldIndex::new();
        for (i, s) in ["apple", "banana", "cherry"].iter().enumerate() {
            idx.insert(&Value::from(*s), id(i as u64));
        }
        let got = idx.lookup_range(Some(&Value::from("b")), Some(&Value::from("c")));
        assert_eq!(got, vec![id(1)]);
    }

    #[test]
    fn tag_index_idempotent_insert_and_remove() {
        let mut t = TagIndex::new();
        t.insert("raw", id(1));
        t.insert("raw", id(1));
        t.insert("raw", id(2));
        assert_eq!(t.lookup("raw"), vec![id(1), id(2)]);
        t.remove("raw", id(1));
        assert_eq!(t.lookup("raw"), vec![id(2)]);
        t.remove("raw", id(2));
        assert!(t.lookup("raw").is_empty());
        assert!(t.tags().is_empty());
    }
}
