//! Metadata change events — the hook the workflow trigger engine
//! subscribes to (paper, slide 12: "allow tagging data and triggering
//! execution via DataBrowser").

use crate::record::DatasetId;

/// A change notification from a project store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetadataEvent {
    /// A new dataset was registered.
    Inserted {
        /// Project name.
        project: String,
        /// The new dataset.
        id: DatasetId,
    },
    /// A tag was added to a dataset.
    Tagged {
        /// Project name.
        project: String,
        /// The tagged dataset.
        id: DatasetId,
        /// The tag added.
        tag: String,
    },
    /// A tag was removed from a dataset.
    Untagged {
        /// Project name.
        project: String,
        /// The dataset.
        id: DatasetId,
        /// The tag removed.
        tag: String,
    },
    /// A processing-result set was appended.
    ProcessingAdded {
        /// Project name.
        project: String,
        /// The dataset.
        id: DatasetId,
        /// Processing step name.
        step: String,
        /// Sequence number of the new result set.
        seq: u32,
    },
}

/// A subscriber callback. Subscribers must be `Send + Sync`; stores invoke
/// them synchronously after the originating mutation commits.
pub type Subscriber = std::sync::Arc<dyn Fn(&MetadataEvent) + Send + Sync>;
