//! Unified catalog vs federated per-project stores — the substrate for the
//! paper's slide-3 claim that a "single big DB with scientific data is more
//! valuable than many small ones" (experiment E8).
//!
//! Both organisations implement [`CrossQuery`]; the unified catalog holds
//! every project's records in one indexed store (with a `project`
//! discriminator field), while the federation fans each query out to N
//! independent stores and merges. The instrumented costs (stores contacted,
//! records scanned, per-store fixed overhead) quantify the gap.

use std::sync::Arc;

use crate::query::Predicate;
use crate::record::DatasetRecord;
use crate::schema::{Document, Schema, SchemaBuilder};
use crate::store::{MetadataError, NewDataset, ProjectStore};
use crate::value::{FieldType, Value};

/// Result of a cross-project query, with cost accounting.
#[derive(Debug, Clone)]
pub struct CrossQueryResult {
    /// Matching records, annotated with their project.
    pub hits: Vec<(String, DatasetRecord)>,
    /// Number of stores contacted to answer the query.
    pub stores_contacted: usize,
    /// Records scanned across all contacted stores.
    pub records_scanned: u64,
}

/// Anything that can answer a cross-project metadata query.
pub trait CrossQuery {
    /// Runs `pred` across all projects.
    fn cross_query(&self, pred: &Predicate) -> CrossQueryResult;
    /// Total datasets held.
    fn total_records(&self) -> usize;
}

/// One store holding every project's records, discriminated by an indexed
/// `project` field merged into each document.
pub struct UnifiedCatalog {
    store: ProjectStore,
}

impl UnifiedCatalog {
    /// Builds the unified schema: the union of the project schemas' fields
    /// (all demoted to optional, since different projects fill different
    /// fields) plus the indexed `project` discriminator.
    pub fn new(project_schemas: &[Schema]) -> Result<Self, MetadataError> {
        let mut b = SchemaBuilder::new("unified").required("project", FieldType::Str);
        b = b.indexed();
        let mut seen = std::collections::HashSet::new();
        seen.insert("project".to_string());
        for s in project_schemas {
            for f in s.fields() {
                if seen.insert(f.name.clone()) {
                    b = b.optional(&f.name, f.ty);
                    if f.indexed {
                        b = b.indexed();
                    }
                }
            }
        }
        Ok(UnifiedCatalog {
            store: ProjectStore::new(b.build()?),
        })
    }

    /// Inserts a dataset for `project`.
    pub fn insert(&self, project: &str, mut new: NewDataset) -> Result<(), MetadataError> {
        new.basic
            .insert("project".to_string(), Value::Str(project.to_string()));
        // Names must stay unique across projects: prefix them.
        new.name = format!("{project}/{}", new.name);
        self.store.insert(new)?;
        Ok(())
    }

    /// The underlying store (for tagging etc.).
    pub fn store(&self) -> &ProjectStore {
        &self.store
    }
}

impl CrossQuery for UnifiedCatalog {
    fn cross_query(&self, pred: &Predicate) -> CrossQueryResult {
        let (_, scanned_before) = self.store.query_stats();
        let hits = self.store.query(pred);
        let (_, scanned_after) = self.store.query_stats();
        CrossQueryResult {
            hits: hits
                .into_iter()
                .map(|r| {
                    let project = match r.basic.get("project") {
                        Some(Value::Str(p)) => p.clone(),
                        _ => String::new(),
                    };
                    (project, r)
                })
                .collect(),
            stores_contacted: 1,
            records_scanned: scanned_after - scanned_before,
        }
    }

    fn total_records(&self) -> usize {
        self.store.len()
    }
}

/// N independent project stores; cross-project queries fan out to all.
#[derive(Default)]
pub struct Federation {
    stores: Vec<Arc<ProjectStore>>,
}

impl Federation {
    /// An empty federation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a member store.
    pub fn add(&mut self, store: Arc<ProjectStore>) {
        self.stores.push(store);
    }

    /// Member stores.
    pub fn stores(&self) -> &[Arc<ProjectStore>] {
        &self.stores
    }
}

impl CrossQuery for Federation {
    fn cross_query(&self, pred: &Predicate) -> CrossQueryResult {
        let mut hits = Vec::new();
        let mut scanned = 0;
        for store in &self.stores {
            let (_, before) = store.query_stats();
            // A federated query cannot know in advance which member holds
            // matches: every store is contacted.
            for r in store.query(pred) {
                hits.push((store.project().to_string(), r));
            }
            let (_, after) = store.query_stats();
            scanned += after - before;
        }
        CrossQueryResult {
            hits,
            stores_contacted: self.stores.len(),
            records_scanned: scanned,
        }
    }

    fn total_records(&self) -> usize {
        self.stores.iter().map(|s| s.len()).sum()
    }
}

/// Convenience used by benches and tests: builds a `NewDataset` from a
/// name and document.
pub fn dataset(name: &str, size_bytes: u64, basic: Document) -> NewDataset {
    NewDataset {
        name: name.to_string(),
        location: format!("lsdf://{name}"),
        size_bytes,
        checksum_hex: String::new(),
        basic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{eq, has_tag};
    use crate::schema::SchemaBuilder;

    fn mini_schema(name: &str) -> Schema {
        SchemaBuilder::new(name)
            .required("sample", FieldType::Str)
            .indexed()
            .required("temperature_k", FieldType::Float)
            .build()
            .unwrap()
    }

    fn fill(store: &ProjectStore, n: usize, sample: &str) {
        for i in 0..n {
            store
                .insert(dataset(
                    &format!("d{i}"),
                    100,
                    [
                        ("sample".to_string(), Value::from(sample)),
                        ("temperature_k".to_string(), Value::Float(300.0 + i as f64)),
                    ]
                    .into_iter()
                    .collect(),
                ))
                .unwrap();
        }
    }

    #[test]
    fn unified_and_federated_agree_on_hits() {
        let schemas: Vec<Schema> = (0..4).map(|i| mini_schema(&format!("proj{i}"))).collect();
        let unified = UnifiedCatalog::new(&schemas).unwrap();
        let mut fed = Federation::new();
        for (i, s) in schemas.iter().enumerate() {
            let store = Arc::new(ProjectStore::new(s.clone()));
            let sample = if i == 2 { "zebrafish" } else { "control" };
            fill(&store, 50, sample);
            for rec in store.all() {
                unified
                    .insert(
                        s.name.as_str(),
                        dataset(&rec.name, rec.size_bytes, rec.basic.clone()),
                    )
                    .unwrap();
            }
            fed.add(store);
        }
        let pred = eq("sample", "zebrafish");
        let u = unified.cross_query(&pred);
        let f = fed.cross_query(&pred);
        assert_eq!(u.hits.len(), 50);
        assert_eq!(f.hits.len(), 50);
        assert_eq!(unified.total_records(), 200);
        assert_eq!(fed.total_records(), 200);
        // All unified hits come from proj2.
        assert!(u.hits.iter().all(|(p, _)| p == "proj2"));
    }

    #[test]
    fn unified_contacts_one_store_and_scans_less() {
        let schemas: Vec<Schema> = (0..8).map(|i| mini_schema(&format!("proj{i}"))).collect();
        let unified = UnifiedCatalog::new(&schemas).unwrap();
        let mut fed = Federation::new();
        for (i, s) in schemas.iter().enumerate() {
            let store = Arc::new(ProjectStore::new(s.clone()));
            let sample = if i == 0 { "rare" } else { "common" };
            fill(&store, 100, sample);
            for rec in store.all() {
                unified
                    .insert(
                        s.name.as_str(),
                        dataset(&rec.name, rec.size_bytes, rec.basic.clone()),
                    )
                    .unwrap();
            }
            fed.add(store);
        }
        let pred = eq("sample", "rare");
        let u = unified.cross_query(&pred);
        let f = fed.cross_query(&pred);
        assert_eq!(u.hits.len(), 100);
        assert_eq!(f.hits.len(), 100);
        assert_eq!(u.stores_contacted, 1);
        assert_eq!(f.stores_contacted, 8);
        // Unified uses its cross-project index: scans exactly the hits.
        assert_eq!(u.records_scanned, 100);
        // Federation scans the matching store's index hits too, but had to
        // contact every store; with 7 misses its scan count equals the
        // unified one only because each member is indexed. Contact count is
        // the structural cost.
        assert!(f.stores_contacted > u.stores_contacted);
    }

    #[test]
    fn unified_supports_cross_project_tag_queries() {
        let schemas: Vec<Schema> = (0..3).map(|i| mini_schema(&format!("proj{i}"))).collect();
        let unified = UnifiedCatalog::new(&schemas).unwrap();
        for (i, s) in schemas.iter().enumerate() {
            for j in 0..10 {
                unified
                    .insert(
                        s.name.as_str(),
                        dataset(
                            &format!("d{i}-{j}"),
                            1,
                            [
                                ("sample".to_string(), Value::from("x")),
                                ("temperature_k".to_string(), Value::Float(1.0)),
                            ]
                            .into_iter()
                            .collect(),
                        ),
                    )
                    .unwrap();
            }
        }
        // Tag one record from each project.
        for rec in unified.store().all().iter().step_by(10) {
            unified.store().tag(rec.id, "golden").unwrap();
        }
        let res = unified.cross_query(&has_tag("golden"));
        assert_eq!(res.hits.len(), 3);
        let projects: std::collections::HashSet<_> =
            res.hits.iter().map(|(p, _)| p.clone()).collect();
        assert_eq!(projects.len(), 3, "hits span all projects in one query");
    }

    #[test]
    fn schema_union_dedups_fields() {
        let s1 = mini_schema("a");
        let s2 = mini_schema("b");
        let unified = UnifiedCatalog::new(&[s1, s2]).unwrap();
        let fields: Vec<&str> = unified
            .store()
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(fields, vec!["project", "sample", "temperature_k"]);
    }
}
