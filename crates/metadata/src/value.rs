//! Typed field values for project metadata documents.
//!
//! Metadata schemas are "highly project-dependent" (paper, slide 8), so
//! values are dynamically typed but schema-validated: a zebrafish record
//! carries wavelength and focus floats, a KATRIN record carries run numbers
//! and retarding potentials, and both live in the same repository engine.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// The type of a metadata field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldType {
    /// UTF-8 string.
    Str,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// Timestamp: nanoseconds since facility epoch.
    Time,
}

/// A dynamically typed metadata value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// UTF-8 string.
    Str(String),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (NaN is rejected at validation).
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Timestamp: nanoseconds since facility epoch.
    Time(i64),
}

impl Value {
    /// The value's runtime type.
    pub fn field_type(&self) -> FieldType {
        match self {
            Value::Str(_) => FieldType::Str,
            Value::Int(_) => FieldType::Int,
            Value::Float(_) => FieldType::Float,
            Value::Bool(_) => FieldType::Bool,
            Value::Time(_) => FieldType::Time,
        }
    }

    /// Total order within one type; cross-type comparisons yield `None`.
    /// Used by range predicates and ordered indexes.
    pub fn partial_cmp_typed(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Time(a), Value::Time(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// An order-preserving byte key for ordered indexes. Values of
    /// different types never collide because the first byte is a type tag.
    pub fn order_key(&self) -> Vec<u8> {
        fn f64_key(x: f64) -> [u8; 8] {
            // IEEE-754 total order trick: flip sign bit for positives,
            // all bits for negatives.
            let bits = x.to_bits();
            let flipped = if bits >> 63 == 0 {
                bits ^ 0x8000_0000_0000_0000
            } else {
                !bits
            };
            flipped.to_be_bytes()
        }
        fn i64_key(x: i64) -> [u8; 8] {
            ((x as u64) ^ 0x8000_0000_0000_0000).to_be_bytes()
        }
        match self {
            Value::Str(s) => {
                let mut k = vec![0u8];
                k.extend_from_slice(s.as_bytes());
                k
            }
            Value::Int(i) => {
                let mut k = vec![1u8];
                k.extend_from_slice(&i64_key(*i));
                k
            }
            Value::Float(x) => {
                let mut k = vec![2u8];
                k.extend_from_slice(&f64_key(*x));
                k
            }
            Value::Bool(b) => vec![3u8, u8::from(*b)],
            Value::Time(t) => {
                let mut k = vec![4u8];
                k.extend_from_slice(&i64_key(*t));
                k
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Time(t) => write!(f, "@{t}ns"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags() {
        assert_eq!(Value::from("x").field_type(), FieldType::Str);
        assert_eq!(Value::from(1i64).field_type(), FieldType::Int);
        assert_eq!(Value::from(1.5).field_type(), FieldType::Float);
        assert_eq!(Value::from(true).field_type(), FieldType::Bool);
        assert_eq!(Value::Time(9).field_type(), FieldType::Time);
    }

    #[test]
    fn typed_comparisons() {
        assert_eq!(
            Value::from(1i64).partial_cmp_typed(&Value::from(2i64)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::from("b").partial_cmp_typed(&Value::from("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::from(1i64).partial_cmp_typed(&Value::from(1.0)), None);
    }

    #[test]
    fn order_key_preserves_int_order() {
        let xs = [-5i64, -1, 0, 1, 42, i64::MIN, i64::MAX];
        let mut sorted = xs.to_vec();
        sorted.sort_unstable();
        let mut keys: Vec<(Vec<u8>, i64)> =
            xs.iter().map(|&x| (Value::Int(x).order_key(), x)).collect();
        keys.sort();
        let by_key: Vec<i64> = keys.into_iter().map(|(_, x)| x).collect();
        assert_eq!(by_key, sorted);
    }

    #[test]
    fn order_key_preserves_float_order() {
        let xs = [-1e9f64, -1.5, -0.0, 0.0, 1e-9, 3.25, 7e8];
        let mut keys: Vec<(Vec<u8>, f64)> = xs
            .iter()
            .map(|&x| (Value::Float(x).order_key(), x))
            .collect();
        keys.sort_by(|a, b| a.0.cmp(&b.0));
        let by_key: Vec<f64> = keys.into_iter().map(|(_, x)| x).collect();
        for w in by_key.windows(2) {
            assert!(w[0] <= w[1], "{w:?}");
        }
    }

    #[test]
    fn order_keys_of_distinct_types_never_collide() {
        let vals = [
            Value::from("1"),
            Value::from(1i64),
            Value::from(1.0),
            Value::from(true),
            Value::Time(1),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                if i != j {
                    assert_ne!(a.order_key(), b.order_key());
                }
            }
        }
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Value::from("zebrafish").to_string(), "zebrafish");
        assert_eq!(Value::Time(5).to_string(), "@5ns");
    }
}
