//! E4 bench: the real MapReduce executor on a miniature cluster (exact
//! results) and the virtual-time scaling sweep to 60 nodes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsdf_dfs::{ClusterTopology, Dfs, DfsConfig};
use lsdf_mapreduce::{
    no_combiner, run_job, simulate_job, ClusterModel, InputFormat, JobConfig, Mapper, Record,
    Reducer,
};
use lsdf_net::units::TB;

struct Checksum;
impl Mapper for Checksum {
    type Key = u8;
    type Value = u64;
    fn map(&self, record: &Record, emit: &mut dyn FnMut(u8, u64)) {
        let mut acc = 0u64;
        for &b in record.data.iter() {
            acc = acc.wrapping_mul(31).wrapping_add(u64::from(b));
        }
        emit((acc % 4) as u8, acc);
    }
}
struct Xor;
impl Reducer for Xor {
    type Key = u8;
    type Value = u64;
    type Output = u64;
    fn reduce(&self, _k: &u8, v: &[u64]) -> Vec<u64> {
        vec![v.iter().fold(0, |a, b| a ^ b)]
    }
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_scaling");
    group.sample_size(10);
    // Real executor over a 4 MB input on the miniature cluster.
    let dfs = Dfs::new(
        ClusterTopology::new(2, 4),
        DfsConfig {
            block_size: 64 * 1024,
            replication: 2,
            ..DfsConfig::default()
        },
    );
    let data: Vec<u8> = (0..4 * 1024 * 1024u32).map(|i| (i % 251) as u8).collect();
    dfs.write("/in", &data, None).expect("fits");
    for &workers in &[1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("real_executor_4MB", workers),
            &workers,
            |b, &w| {
                b.iter(|| {
                    let mut cfg = JobConfig::on_cluster(&dfs, 2);
                    cfg.workers.truncate(w);
                    cfg.input_format = InputFormat::WholeBlock;
                    run_job(&dfs, &["/in".to_string()], &Checksum, no_combiner::<Checksum>(), &Xor, &cfg)
                        .expect("job")
                        .stats
                        .map_tasks
                })
            },
        );
    }
    // Virtual-time sweep (the published figure).
    group.bench_function("simulated_sweep_1TB_1to60", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for nodes in [1usize, 2, 4, 8, 15, 30, 60] {
                let r = simulate_job(
                    &ClusterModel::lsdf_2011().with_nodes(nodes),
                    TB,
                    16_384,
                    2 * nodes,
                );
                total += r.total.as_secs_f64();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
