//! E14 bench: findability audit cost and ingest-enforcement overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use lsdf_core::{BackendChoice, DataBrowser, Facility, IngestItem, IngestPolicy, ProjectSpec};
use lsdf_metadata::zebrafish_schema;
use lsdf_workloads::microscopy::HtmGenerator;

fn facility_with(n_fish: usize, miss_every: usize) -> Facility {
    let f = Facility::builder()
        .tenant(ProjectSpec::new(
            zebrafish_schema(),
            BackendChoice::ObjectStore { capacity: u64::MAX },
        ))
        .build()
        .expect("facility");
    let admin = f.admin().clone();
    let mut gen = HtmGenerator::new(5, 32);
    let mut i = 0usize;
    for _ in 0..n_fish {
        for (acq, img) in gen.next_fish() {
            let metadata = if i.is_multiple_of(miss_every) {
                None
            } else {
                Some(acq.document())
            };
            f.ingest(
                &admin,
                IngestItem {
                    project: "zebrafish-htm".into(),
                    key: acq.key(),
                    data: img.encode(),
                    metadata,
                },
                IngestPolicy {
                    enforce_metadata: false,
                },
            )
            .expect("ingest");
            i += 1;
        }
    }
    f
}

fn bench_findability(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_findability");
    group.sample_size(10);
    let f = facility_with(20, 5);
    group.bench_function("audit_480_objects", |b| {
        let admin = f.admin().clone();
        b.iter(|| {
            let browser = DataBrowser::new(&f, admin.clone());
            let rep = browser.findability("zebrafish-htm").expect("audit");
            assert!(rep.invisible > 0);
            rep.findable
        })
    });
    group.bench_function("enforced_ingest_24_images", |b| {
        b.iter(|| {
            let f = Facility::builder()
                .tenant(ProjectSpec::new(
                    zebrafish_schema(),
                    BackendChoice::ObjectStore { capacity: u64::MAX },
                ))
                .build()
                .expect("facility");
            let admin = f.admin().clone();
            let mut gen = HtmGenerator::new(5, 32);
            let items: Vec<IngestItem> = gen
                .next_fish()
                .into_iter()
                .map(|(acq, img)| IngestItem {
                    project: "zebrafish-htm".into(),
                    key: acq.key(),
                    data: img.encode(),
                    metadata: Some(acq.document()),
                })
                .collect();
            f.ingest_batch(&admin, items, IngestPolicy::default()).registered
        })
    });
    group.finish();
}

criterion_group!(benches, bench_findability);
criterion_main!(benches);
