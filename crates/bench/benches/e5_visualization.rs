//! E5 bench: the MIP render kernel (per-slab cost that calibrates the
//! 1 TB-in-20-min extrapolation) and the distributed job.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lsdf_dfs::{ClusterTopology, Dfs, DfsConfig};
use lsdf_mapreduce::{no_combiner, run_job, InputFormat, JobConfig};
use lsdf_workloads::volume::{MipMapper, MipReducer, Volume};

fn bench_visualization(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_visualization");
    group.sample_size(10);
    let v = Volume::synthetic(5, 128, 128, 64);
    let bytes = v.voxels.len() as u64;
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("sequential_mip_1MiB_voxels", |b| {
        b.iter(|| v.mip())
    });

    let slabs = v.to_slabs(8);
    let slab_bytes = slabs[0].len() as u64;
    let dfs = Dfs::new(
        ClusterTopology::new(2, 3),
        DfsConfig {
            block_size: slab_bytes,
            replication: 2,
            ..DfsConfig::default()
        },
    );
    let mut all = Vec::new();
    for s in &slabs {
        all.extend_from_slice(s);
    }
    dfs.write("/vol", &all, None).expect("fits");
    group.bench_function("distributed_mip_8_slabs", |b| {
        b.iter(|| {
            let mut cfg = JobConfig::on_cluster(&dfs, 1);
            cfg.input_format = InputFormat::WholeBlock;
            let out = run_job(
                &dfs,
                &["/vol".to_string()],
                &MipMapper,
                no_combiner::<MipMapper>(),
                &MipReducer,
                &cfg,
            )
            .expect("job");
            out.output.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_visualization);
criterion_main!(benches);
