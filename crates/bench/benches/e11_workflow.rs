//! E11 bench: workflow-engine throughput — firings per second through a
//! pipeline, and trigger-engine round trips.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsdf_metadata::{dataset, FieldType, ProjectStore, SchemaBuilder, Value};
use lsdf_workflow::{
    Collect, Director, FilterActor, MapActor, Token, TriggerEngine, TriggerRule, VecSource,
    Workflow,
};
use parking_lot::Mutex;

fn pipeline(n: i64, director: Director) -> usize {
    let mut wf = Workflow::new();
    let sink = Arc::new(Mutex::new(Vec::new()));
    let src = wf.add(VecSource::new(
        "src",
        (0..n).map(Token::int).collect::<Vec<_>>(),
    ));
    let double = wf.add(MapActor::new("double", |t: Token| {
        Ok(vec![Token::int(t.as_int().ok_or("int")? * 2)])
    }));
    let keep = wf.add(FilterActor::new("evens", |t: &Token| {
        t.as_int().is_some_and(|i| i % 4 == 0)
    }));
    let out = wf.add(Collect::new("sink", sink.clone()));
    wf.connect(src, 0, double, 0).expect("ports");
    wf.connect(double, 0, keep, 0).expect("ports");
    wf.connect(keep, 0, out, 0).expect("ports");
    wf.run(director).expect("runs");
    let n = sink.lock().len();
    n
}

fn bench_workflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_workflow");
    group.sample_size(20);
    for director in [Director::Sequential, Director::Parallel] {
        group.bench_with_input(
            BenchmarkId::new("pipeline_1000_tokens", format!("{director:?}")),
            &director,
            |b, &d| b.iter(|| pipeline(1000, d)),
        );
    }
    group.bench_function("trigger_roundtrip_100_datasets", |b| {
        b.iter(|| {
            let schema = SchemaBuilder::new("p")
                .required("x", FieldType::Int)
                .build()
                .expect("schema");
            let store = Arc::new(ProjectStore::new(schema));
            for i in 0..100 {
                store
                    .insert(dataset(
                        &format!("d{i}"),
                        1,
                        [("x".to_string(), Value::Int(i))].into_iter().collect(),
                    ))
                    .expect("insert");
            }
            let engine = TriggerEngine::new(
                store.clone(),
                vec![TriggerRule {
                    step: "step".into(),
                    tag: "go".into(),
                    done_tag: "done".into(),
                    remove_trigger_tag: true,
                    build: Box::new(|id, sink| {
                        let mut wf = Workflow::new();
                        let src = wf.add(VecSource::new(
                            "s",
                            vec![Token::str("out"), Token::int(id.0 as i64)],
                        ));
                        let out = wf.add(Collect::new("c", sink));
                        wf.connect(src, 0, out, 0).expect("ports");
                        wf
                    }),
                }],
                Director::Sequential,
            );
            for i in 0..100 {
                store.tag(lsdf_metadata::DatasetId(i), "go").expect("tag");
            }
            engine.run_pending().expect("runs").len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_workflow);
criterion_main!(benches);
