//! E10 bench: cloud-manager throughput — placing and deploying VM fleets
//! under each placement policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsdf_cloud::{CloudConfig, CloudManager, Placement, VmTemplate};
use lsdf_sim::Simulation;

fn bench_cloud(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_cloud");
    group.sample_size(10);
    for policy in [Placement::FirstFit, Placement::Pack, Placement::Spread] {
        group.bench_with_input(
            BenchmarkId::new("deploy_240_vms", format!("{policy:?}")),
            &policy,
            |b, &p| {
                b.iter(|| {
                    let cloud = CloudManager::new(CloudConfig {
                        policy: p,
                        ..CloudConfig::lsdf()
                    });
                    let mut sim = Simulation::new();
                    for i in 0..240 {
                        cloud
                            .submit(&mut sim, VmTemplate::small(&format!("vm{i}")), |_, _| {})
                            .expect("submit");
                    }
                    sim.run();
                    assert_eq!(cloud.stats().deployed, 240);
                    cloud.stats().mean_deploy_secs
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cloud);
criterion_main!(benches);
